file(REMOVE_RECURSE
  "CMakeFiles/gdms_shell.dir/gdms_shell.cc.o"
  "CMakeFiles/gdms_shell.dir/gdms_shell.cc.o.d"
  "gdms_shell"
  "gdms_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
