# Empty compiler generated dependencies file for gdms_shell.
# This may be replaced when dependencies are built.
