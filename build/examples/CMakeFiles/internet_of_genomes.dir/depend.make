# Empty dependencies file for internet_of_genomes.
# This may be replaced when dependencies are built.
