file(REMOVE_RECURSE
  "CMakeFiles/internet_of_genomes.dir/internet_of_genomes.cpp.o"
  "CMakeFiles/internet_of_genomes.dir/internet_of_genomes.cpp.o.d"
  "internet_of_genomes"
  "internet_of_genomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_of_genomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
