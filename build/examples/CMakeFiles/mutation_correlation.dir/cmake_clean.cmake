file(REMOVE_RECURSE
  "CMakeFiles/mutation_correlation.dir/mutation_correlation.cpp.o"
  "CMakeFiles/mutation_correlation.dir/mutation_correlation.cpp.o.d"
  "mutation_correlation"
  "mutation_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
