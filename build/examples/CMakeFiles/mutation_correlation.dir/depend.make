# Empty dependencies file for mutation_correlation.
# This may be replaced when dependencies are built.
