file(REMOVE_RECURSE
  "CMakeFiles/ctcf_enhancers.dir/ctcf_enhancers.cpp.o"
  "CMakeFiles/ctcf_enhancers.dir/ctcf_enhancers.cpp.o.d"
  "ctcf_enhancers"
  "ctcf_enhancers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcf_enhancers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
