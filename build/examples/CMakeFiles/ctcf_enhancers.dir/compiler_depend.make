# Empty compiler generated dependencies file for ctcf_enhancers.
# This may be replaced when dependencies are built.
