file(REMOVE_RECURSE
  "CMakeFiles/federated_demo.dir/federated_demo.cpp.o"
  "CMakeFiles/federated_demo.dir/federated_demo.cpp.o.d"
  "federated_demo"
  "federated_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
