# Empty compiler generated dependencies file for federated_demo.
# This may be replaced when dependencies are built.
