# Empty compiler generated dependencies file for bench_e3_ctcf_enhancers.
# This may be replaced when dependencies are built.
