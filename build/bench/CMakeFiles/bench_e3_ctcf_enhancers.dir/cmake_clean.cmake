file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_ctcf_enhancers.dir/bench_e3_ctcf_enhancers.cc.o"
  "CMakeFiles/bench_e3_ctcf_enhancers.dir/bench_e3_ctcf_enhancers.cc.o.d"
  "bench_e3_ctcf_enhancers"
  "bench_e3_ctcf_enhancers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_ctcf_enhancers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
