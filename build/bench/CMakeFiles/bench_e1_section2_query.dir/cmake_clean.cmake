file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_section2_query.dir/bench_e1_section2_query.cc.o"
  "CMakeFiles/bench_e1_section2_query.dir/bench_e1_section2_query.cc.o.d"
  "bench_e1_section2_query"
  "bench_e1_section2_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_section2_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
