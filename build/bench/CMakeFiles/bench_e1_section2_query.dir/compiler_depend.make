# Empty compiler generated dependencies file for bench_e1_section2_query.
# This may be replaced when dependencies are built.
