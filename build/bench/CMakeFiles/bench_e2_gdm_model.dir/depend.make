# Empty dependencies file for bench_e2_gdm_model.
# This may be replaced when dependencies are built.
