file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_gdm_model.dir/bench_e2_gdm_model.cc.o"
  "CMakeFiles/bench_e2_gdm_model.dir/bench_e2_gdm_model.cc.o.d"
  "bench_e2_gdm_model"
  "bench_e2_gdm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_gdm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
