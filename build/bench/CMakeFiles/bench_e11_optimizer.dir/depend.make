# Empty dependencies file for bench_e11_optimizer.
# This may be replaced when dependencies are built.
