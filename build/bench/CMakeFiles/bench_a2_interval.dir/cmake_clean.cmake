file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_interval.dir/bench_a2_interval.cc.o"
  "CMakeFiles/bench_a2_interval.dir/bench_a2_interval.cc.o.d"
  "bench_a2_interval"
  "bench_a2_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
