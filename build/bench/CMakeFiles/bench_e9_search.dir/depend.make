# Empty dependencies file for bench_e9_search.
# This may be replaced when dependencies are built.
