file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_search.dir/bench_e9_search.cc.o"
  "CMakeFiles/bench_e9_search.dir/bench_e9_search.cc.o.d"
  "bench_e9_search"
  "bench_e9_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
