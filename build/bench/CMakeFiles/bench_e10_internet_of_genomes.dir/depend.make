# Empty dependencies file for bench_e10_internet_of_genomes.
# This may be replaced when dependencies are built.
