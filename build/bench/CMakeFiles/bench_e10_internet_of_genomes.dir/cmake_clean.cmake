file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_internet_of_genomes.dir/bench_e10_internet_of_genomes.cc.o"
  "CMakeFiles/bench_e10_internet_of_genomes.dir/bench_e10_internet_of_genomes.cc.o.d"
  "bench_e10_internet_of_genomes"
  "bench_e10_internet_of_genomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_internet_of_genomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
