file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_backends.dir/bench_e6_backends.cc.o"
  "CMakeFiles/bench_e6_backends.dir/bench_e6_backends.cc.o.d"
  "bench_e6_backends"
  "bench_e6_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
