file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_federation.dir/bench_e8_federation.cc.o"
  "CMakeFiles/bench_e8_federation.dir/bench_e8_federation.cc.o.d"
  "bench_e8_federation"
  "bench_e8_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
