# Empty dependencies file for bench_e4_genome_space.
# This may be replaced when dependencies are built.
