file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_mutation_correlation.dir/bench_e5_mutation_correlation.cc.o"
  "CMakeFiles/bench_e5_mutation_correlation.dir/bench_e5_mutation_correlation.cc.o.d"
  "bench_e5_mutation_correlation"
  "bench_e5_mutation_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_mutation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
