# Empty compiler generated dependencies file for bench_e5_mutation_correlation.
# This may be replaced when dependencies are built.
