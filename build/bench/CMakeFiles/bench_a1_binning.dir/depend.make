# Empty dependencies file for bench_a1_binning.
# This may be replaced when dependencies are built.
