file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_binning.dir/bench_a1_binning.cc.o"
  "CMakeFiles/bench_a1_binning.dir/bench_a1_binning.cc.o.d"
  "bench_a1_binning"
  "bench_a1_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
