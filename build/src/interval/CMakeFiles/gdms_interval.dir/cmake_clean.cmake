file(REMOVE_RECURSE
  "CMakeFiles/gdms_interval.dir/accumulation.cc.o"
  "CMakeFiles/gdms_interval.dir/accumulation.cc.o.d"
  "CMakeFiles/gdms_interval.dir/interval_tree.cc.o"
  "CMakeFiles/gdms_interval.dir/interval_tree.cc.o.d"
  "CMakeFiles/gdms_interval.dir/sweep.cc.o"
  "CMakeFiles/gdms_interval.dir/sweep.cc.o.d"
  "libgdms_interval.a"
  "libgdms_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
