# Empty compiler generated dependencies file for gdms_interval.
# This may be replaced when dependencies are built.
