
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/accumulation.cc" "src/interval/CMakeFiles/gdms_interval.dir/accumulation.cc.o" "gcc" "src/interval/CMakeFiles/gdms_interval.dir/accumulation.cc.o.d"
  "/root/repo/src/interval/interval_tree.cc" "src/interval/CMakeFiles/gdms_interval.dir/interval_tree.cc.o" "gcc" "src/interval/CMakeFiles/gdms_interval.dir/interval_tree.cc.o.d"
  "/root/repo/src/interval/sweep.cc" "src/interval/CMakeFiles/gdms_interval.dir/sweep.cc.o" "gcc" "src/interval/CMakeFiles/gdms_interval.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
