file(REMOVE_RECURSE
  "libgdms_interval.a"
)
