file(REMOVE_RECURSE
  "CMakeFiles/gdms_gdm.dir/dataset.cc.o"
  "CMakeFiles/gdms_gdm.dir/dataset.cc.o.d"
  "CMakeFiles/gdms_gdm.dir/metadata.cc.o"
  "CMakeFiles/gdms_gdm.dir/metadata.cc.o.d"
  "CMakeFiles/gdms_gdm.dir/region.cc.o"
  "CMakeFiles/gdms_gdm.dir/region.cc.o.d"
  "CMakeFiles/gdms_gdm.dir/schema.cc.o"
  "CMakeFiles/gdms_gdm.dir/schema.cc.o.d"
  "CMakeFiles/gdms_gdm.dir/value.cc.o"
  "CMakeFiles/gdms_gdm.dir/value.cc.o.d"
  "libgdms_gdm.a"
  "libgdms_gdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_gdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
