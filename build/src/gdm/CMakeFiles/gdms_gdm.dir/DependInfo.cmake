
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdm/dataset.cc" "src/gdm/CMakeFiles/gdms_gdm.dir/dataset.cc.o" "gcc" "src/gdm/CMakeFiles/gdms_gdm.dir/dataset.cc.o.d"
  "/root/repo/src/gdm/metadata.cc" "src/gdm/CMakeFiles/gdms_gdm.dir/metadata.cc.o" "gcc" "src/gdm/CMakeFiles/gdms_gdm.dir/metadata.cc.o.d"
  "/root/repo/src/gdm/region.cc" "src/gdm/CMakeFiles/gdms_gdm.dir/region.cc.o" "gcc" "src/gdm/CMakeFiles/gdms_gdm.dir/region.cc.o.d"
  "/root/repo/src/gdm/schema.cc" "src/gdm/CMakeFiles/gdms_gdm.dir/schema.cc.o" "gcc" "src/gdm/CMakeFiles/gdms_gdm.dir/schema.cc.o.d"
  "/root/repo/src/gdm/value.cc" "src/gdm/CMakeFiles/gdms_gdm.dir/value.cc.o" "gcc" "src/gdm/CMakeFiles/gdms_gdm.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
