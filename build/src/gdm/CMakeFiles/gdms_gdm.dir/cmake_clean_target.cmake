file(REMOVE_RECURSE
  "libgdms_gdm.a"
)
