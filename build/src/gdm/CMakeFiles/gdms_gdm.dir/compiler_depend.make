# Empty compiler generated dependencies file for gdms_gdm.
# This may be replaced when dependencies are built.
