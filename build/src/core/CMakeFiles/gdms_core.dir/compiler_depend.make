# Empty compiler generated dependencies file for gdms_core.
# This may be replaced when dependencies are built.
