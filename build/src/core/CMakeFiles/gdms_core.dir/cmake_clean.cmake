file(REMOVE_RECURSE
  "CMakeFiles/gdms_core.dir/aggregates.cc.o"
  "CMakeFiles/gdms_core.dir/aggregates.cc.o.d"
  "CMakeFiles/gdms_core.dir/executor.cc.o"
  "CMakeFiles/gdms_core.dir/executor.cc.o.d"
  "CMakeFiles/gdms_core.dir/operators.cc.o"
  "CMakeFiles/gdms_core.dir/operators.cc.o.d"
  "CMakeFiles/gdms_core.dir/optimizer.cc.o"
  "CMakeFiles/gdms_core.dir/optimizer.cc.o.d"
  "CMakeFiles/gdms_core.dir/parser.cc.o"
  "CMakeFiles/gdms_core.dir/parser.cc.o.d"
  "CMakeFiles/gdms_core.dir/plan.cc.o"
  "CMakeFiles/gdms_core.dir/plan.cc.o.d"
  "CMakeFiles/gdms_core.dir/predicates.cc.o"
  "CMakeFiles/gdms_core.dir/predicates.cc.o.d"
  "CMakeFiles/gdms_core.dir/runner.cc.o"
  "CMakeFiles/gdms_core.dir/runner.cc.o.d"
  "libgdms_core.a"
  "libgdms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
