file(REMOVE_RECURSE
  "libgdms_core.a"
)
