
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregates.cc" "src/core/CMakeFiles/gdms_core.dir/aggregates.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/aggregates.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/gdms_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/executor.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/gdms_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/operators.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/gdms_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/core/CMakeFiles/gdms_core.dir/parser.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/parser.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/gdms_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/plan.cc.o.d"
  "/root/repo/src/core/predicates.cc" "src/core/CMakeFiles/gdms_core.dir/predicates.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/predicates.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/gdms_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/gdms_core.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gdms_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
