
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/parallel_executor.cc" "src/engine/CMakeFiles/gdms_engine.dir/parallel_executor.cc.o" "gcc" "src/engine/CMakeFiles/gdms_engine.dir/parallel_executor.cc.o.d"
  "/root/repo/src/engine/shuffle.cc" "src/engine/CMakeFiles/gdms_engine.dir/shuffle.cc.o" "gcc" "src/engine/CMakeFiles/gdms_engine.dir/shuffle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gdms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gdms_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
