file(REMOVE_RECURSE
  "libgdms_engine.a"
)
