file(REMOVE_RECURSE
  "CMakeFiles/gdms_engine.dir/parallel_executor.cc.o"
  "CMakeFiles/gdms_engine.dir/parallel_executor.cc.o.d"
  "CMakeFiles/gdms_engine.dir/shuffle.cc.o"
  "CMakeFiles/gdms_engine.dir/shuffle.cc.o.d"
  "libgdms_engine.a"
  "libgdms_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
