# Empty compiler generated dependencies file for gdms_engine.
# This may be replaced when dependencies are built.
