# Empty compiler generated dependencies file for gdms_analysis.
# This may be replaced when dependencies are built.
