file(REMOVE_RECURSE
  "libgdms_analysis.a"
)
