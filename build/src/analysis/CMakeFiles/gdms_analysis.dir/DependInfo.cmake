
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/clustering.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/clustering.cc.o.d"
  "/root/repo/src/analysis/enrichment.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/enrichment.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/enrichment.cc.o.d"
  "/root/repo/src/analysis/genome_space.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/genome_space.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/genome_space.cc.o.d"
  "/root/repo/src/analysis/latent.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/latent.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/latent.cc.o.d"
  "/root/repo/src/analysis/network.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/network.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/network.cc.o.d"
  "/root/repo/src/analysis/phenotype.cc" "src/analysis/CMakeFiles/gdms_analysis.dir/phenotype.cc.o" "gcc" "src/analysis/CMakeFiles/gdms_analysis.dir/phenotype.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gdms_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
