file(REMOVE_RECURSE
  "CMakeFiles/gdms_analysis.dir/clustering.cc.o"
  "CMakeFiles/gdms_analysis.dir/clustering.cc.o.d"
  "CMakeFiles/gdms_analysis.dir/enrichment.cc.o"
  "CMakeFiles/gdms_analysis.dir/enrichment.cc.o.d"
  "CMakeFiles/gdms_analysis.dir/genome_space.cc.o"
  "CMakeFiles/gdms_analysis.dir/genome_space.cc.o.d"
  "CMakeFiles/gdms_analysis.dir/latent.cc.o"
  "CMakeFiles/gdms_analysis.dir/latent.cc.o.d"
  "CMakeFiles/gdms_analysis.dir/network.cc.o"
  "CMakeFiles/gdms_analysis.dir/network.cc.o.d"
  "CMakeFiles/gdms_analysis.dir/phenotype.cc.o"
  "CMakeFiles/gdms_analysis.dir/phenotype.cc.o.d"
  "libgdms_analysis.a"
  "libgdms_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
