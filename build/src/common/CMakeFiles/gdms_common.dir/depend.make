# Empty dependencies file for gdms_common.
# This may be replaced when dependencies are built.
