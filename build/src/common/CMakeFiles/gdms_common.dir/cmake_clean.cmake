file(REMOVE_RECURSE
  "CMakeFiles/gdms_common.dir/status.cc.o"
  "CMakeFiles/gdms_common.dir/status.cc.o.d"
  "CMakeFiles/gdms_common.dir/string_util.cc.o"
  "CMakeFiles/gdms_common.dir/string_util.cc.o.d"
  "CMakeFiles/gdms_common.dir/thread_pool.cc.o"
  "CMakeFiles/gdms_common.dir/thread_pool.cc.o.d"
  "libgdms_common.a"
  "libgdms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
