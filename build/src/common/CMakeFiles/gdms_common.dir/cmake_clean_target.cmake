file(REMOVE_RECURSE
  "libgdms_common.a"
)
