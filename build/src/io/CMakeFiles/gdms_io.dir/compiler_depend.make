# Empty compiler generated dependencies file for gdms_io.
# This may be replaced when dependencies are built.
