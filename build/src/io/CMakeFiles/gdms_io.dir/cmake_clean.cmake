file(REMOVE_RECURSE
  "CMakeFiles/gdms_io.dir/bed.cc.o"
  "CMakeFiles/gdms_io.dir/bed.cc.o.d"
  "CMakeFiles/gdms_io.dir/dataset_dir.cc.o"
  "CMakeFiles/gdms_io.dir/dataset_dir.cc.o.d"
  "CMakeFiles/gdms_io.dir/gdm_format.cc.o"
  "CMakeFiles/gdms_io.dir/gdm_format.cc.o.d"
  "CMakeFiles/gdms_io.dir/gtf.cc.o"
  "CMakeFiles/gdms_io.dir/gtf.cc.o.d"
  "CMakeFiles/gdms_io.dir/track_render.cc.o"
  "CMakeFiles/gdms_io.dir/track_render.cc.o.d"
  "CMakeFiles/gdms_io.dir/vcf.cc.o"
  "CMakeFiles/gdms_io.dir/vcf.cc.o.d"
  "libgdms_io.a"
  "libgdms_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
