
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bed.cc" "src/io/CMakeFiles/gdms_io.dir/bed.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/bed.cc.o.d"
  "/root/repo/src/io/dataset_dir.cc" "src/io/CMakeFiles/gdms_io.dir/dataset_dir.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/dataset_dir.cc.o.d"
  "/root/repo/src/io/gdm_format.cc" "src/io/CMakeFiles/gdms_io.dir/gdm_format.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/gdm_format.cc.o.d"
  "/root/repo/src/io/gtf.cc" "src/io/CMakeFiles/gdms_io.dir/gtf.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/gtf.cc.o.d"
  "/root/repo/src/io/track_render.cc" "src/io/CMakeFiles/gdms_io.dir/track_render.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/track_render.cc.o.d"
  "/root/repo/src/io/vcf.cc" "src/io/CMakeFiles/gdms_io.dir/vcf.cc.o" "gcc" "src/io/CMakeFiles/gdms_io.dir/vcf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
