file(REMOVE_RECURSE
  "libgdms_io.a"
)
