file(REMOVE_RECURSE
  "libgdms_sim.a"
)
