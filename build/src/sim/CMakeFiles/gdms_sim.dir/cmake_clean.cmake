file(REMOVE_RECURSE
  "CMakeFiles/gdms_sim.dir/generators.cc.o"
  "CMakeFiles/gdms_sim.dir/generators.cc.o.d"
  "libgdms_sim.a"
  "libgdms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
