# Empty compiler generated dependencies file for gdms_sim.
# This may be replaced when dependencies are built.
