file(REMOVE_RECURSE
  "libgdms_search.a"
)
