
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/internet_of_genomes.cc" "src/search/CMakeFiles/gdms_search.dir/internet_of_genomes.cc.o" "gcc" "src/search/CMakeFiles/gdms_search.dir/internet_of_genomes.cc.o.d"
  "/root/repo/src/search/metadata_index.cc" "src/search/CMakeFiles/gdms_search.dir/metadata_index.cc.o" "gcc" "src/search/CMakeFiles/gdms_search.dir/metadata_index.cc.o.d"
  "/root/repo/src/search/normalizer.cc" "src/search/CMakeFiles/gdms_search.dir/normalizer.cc.o" "gcc" "src/search/CMakeFiles/gdms_search.dir/normalizer.cc.o.d"
  "/root/repo/src/search/ontology.cc" "src/search/CMakeFiles/gdms_search.dir/ontology.cc.o" "gcc" "src/search/CMakeFiles/gdms_search.dir/ontology.cc.o.d"
  "/root/repo/src/search/region_search.cc" "src/search/CMakeFiles/gdms_search.dir/region_search.cc.o" "gcc" "src/search/CMakeFiles/gdms_search.dir/region_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gdms_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/gdms_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
