file(REMOVE_RECURSE
  "CMakeFiles/gdms_search.dir/internet_of_genomes.cc.o"
  "CMakeFiles/gdms_search.dir/internet_of_genomes.cc.o.d"
  "CMakeFiles/gdms_search.dir/metadata_index.cc.o"
  "CMakeFiles/gdms_search.dir/metadata_index.cc.o.d"
  "CMakeFiles/gdms_search.dir/normalizer.cc.o"
  "CMakeFiles/gdms_search.dir/normalizer.cc.o.d"
  "CMakeFiles/gdms_search.dir/ontology.cc.o"
  "CMakeFiles/gdms_search.dir/ontology.cc.o.d"
  "CMakeFiles/gdms_search.dir/region_search.cc.o"
  "CMakeFiles/gdms_search.dir/region_search.cc.o.d"
  "libgdms_search.a"
  "libgdms_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
