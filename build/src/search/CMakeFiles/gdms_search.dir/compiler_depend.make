# Empty compiler generated dependencies file for gdms_search.
# This may be replaced when dependencies are built.
