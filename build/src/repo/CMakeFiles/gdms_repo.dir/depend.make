# Empty dependencies file for gdms_repo.
# This may be replaced when dependencies are built.
