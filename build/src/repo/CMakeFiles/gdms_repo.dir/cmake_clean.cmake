file(REMOVE_RECURSE
  "CMakeFiles/gdms_repo.dir/catalog.cc.o"
  "CMakeFiles/gdms_repo.dir/catalog.cc.o.d"
  "CMakeFiles/gdms_repo.dir/estimator.cc.o"
  "CMakeFiles/gdms_repo.dir/estimator.cc.o.d"
  "CMakeFiles/gdms_repo.dir/federation.cc.o"
  "CMakeFiles/gdms_repo.dir/federation.cc.o.d"
  "libgdms_repo.a"
  "libgdms_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdms_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
