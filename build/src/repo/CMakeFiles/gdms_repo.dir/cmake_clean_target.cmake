file(REMOVE_RECURSE
  "libgdms_repo.a"
)
