# Empty compiler generated dependencies file for core_language_test.
# This may be replaced when dependencies are built.
