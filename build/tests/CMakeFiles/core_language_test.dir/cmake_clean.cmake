file(REMOVE_RECURSE
  "CMakeFiles/core_language_test.dir/core_language_test.cc.o"
  "CMakeFiles/core_language_test.dir/core_language_test.cc.o.d"
  "core_language_test"
  "core_language_test.pdb"
  "core_language_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
