# Empty dependencies file for core_operators_test.
# This may be replaced when dependencies are built.
