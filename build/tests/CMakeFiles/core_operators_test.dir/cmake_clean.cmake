file(REMOVE_RECURSE
  "CMakeFiles/core_operators_test.dir/core_operators_test.cc.o"
  "CMakeFiles/core_operators_test.dir/core_operators_test.cc.o.d"
  "core_operators_test"
  "core_operators_test.pdb"
  "core_operators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
