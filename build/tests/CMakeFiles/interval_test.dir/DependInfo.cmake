
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interval_test.cc" "tests/CMakeFiles/interval_test.dir/interval_test.cc.o" "gcc" "tests/CMakeFiles/interval_test.dir/interval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/gdms_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/repo/CMakeFiles/gdms_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/gdms_search.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gdms_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gdms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/gdms_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/gdms_io.dir/DependInfo.cmake"
  "/root/repo/build/src/gdm/CMakeFiles/gdms_gdm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gdms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
