# Empty compiler generated dependencies file for gdm_test.
# This may be replaced when dependencies are built.
