file(REMOVE_RECURSE
  "CMakeFiles/gdm_test.dir/gdm_test.cc.o"
  "CMakeFiles/gdm_test.dir/gdm_test.cc.o.d"
  "gdm_test"
  "gdm_test.pdb"
  "gdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
