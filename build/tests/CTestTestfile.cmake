# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/gdm_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/core_operators_test[1]_include.cmake")
include("/root/repo/build/tests/core_language_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/repo_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/aggregates_test[1]_include.cmake")
include("/root/repo/build/tests/predicates_test[1]_include.cmake")
