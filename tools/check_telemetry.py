#!/usr/bin/env python3
"""Validates GDMS telemetry artifacts produced by `gdms_shell --serve`.

Checks two things CI cares about:

  1. The Prometheus-style exposition file (--expo): every sample parses,
     every metric declares a TYPE, counters follow the `_total` naming rule,
     unit-suffixed names carry a matching `# UNIT` comment, and — when an
     earlier scrape is supplied via --expo-early — counters and summary
     `_count`/`_sum` series are monotonically non-decreasing between the
     two scrapes.
  2. The JSONL query log (--query-log): every line is valid JSON with the
     full figure schema, `seq` increases strictly from 1, timestamps are
     non-decreasing, and (with --expect-slow / --expect-fed) at least one
     entry carries the embedded EXPLAIN ANALYZE escalation and at least one
     shows federation traffic.
  3. Distributed tracing (--expect-trace): the exposition carries the
     exemplar gauge and critical-path histograms, every registry metric
     matches the gdms_<layer>_<name>[_unit][_total] naming scheme, and the
     query log has traced entries whose critical-path segments sum to the
     traced total. A stitched-trace JSON (--trace-json, from
     `gdms_shell .trace <id> FILE`) is additionally checked structurally:
     remote spans present, every parent link resolves to a span in the
     same trace, and the critical path sums to within 5% of the root span.

Exit code 0 when every check passes, 1 otherwise (each failure printed).
"""

import argparse
import json
import re
import sys

UNIT_SUFFIXES = {
    "_ns": "ns",
    "_us": "us",
    "_ms": "ms",
    "_seconds": "s",
    "_bytes": "bytes",
}

REQUIRED_LOG_KEYS = [
    "ts_ms", "seq", "query", "ok", "wall_ms", "operators", "cache_hits",
    "intermediate_datasets", "fused_chains", "tasks", "partitions",
    "shuffle_bytes", "stage_barriers", "fed", "mem", "slow",
]

SAMPLE_RE = re.compile(r"^(\S+(?:\{[^}]*\})?)\s+(-?[0-9.eE+-]+|[+-]?(?:inf|nan))$")

# Every registry metric: gdms_<layer>_<name>[_unit][_total] -- lowercase
# alphanumeric words joined by single underscores, at least one word after
# the layer. Summary sub-series (_sum/_count) inherit the shape.
METRIC_NAME_RE = re.compile(r"^gdms_[a-z0-9]+(_[a-z0-9]+)+$")

errors = []


def fail(msg):
    errors.append(msg)


def base_name(sample_name):
    return sample_name.split("{", 1)[0]


def expected_unit(base):
    if base.endswith("_total"):
        base = base[: -len("_total")]
    for suffix, unit in UNIT_SUFFIXES.items():
        if base.endswith(suffix):
            return unit
    if "_bytes_" in base:
        return "bytes"
    return None


def parse_exposition(path):
    """Returns (samples: name->float, types: base->type, units: base->unit)."""
    samples, types, units = {}, {}, {}
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed TYPE comment: {line}")
                    continue
                types[parts[2]] = parts[3]
                continue
            if line.startswith("# UNIT "):
                parts = line.split()
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed UNIT comment: {line}")
                    continue
                units[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
                continue
            try:
                samples[m.group(1)] = float(m.group(2))
            except ValueError:
                fail(f"{path}:{lineno}: bad value in: {line!r}")
    return samples, types, units


def summary_series_base(name):
    """gdms_x_us_sum / _count / {quantile=...} -> gdms_x_us, else None."""
    base = base_name(name)
    if "{quantile=" in name:
        return base
    for suffix in ("_sum", "_count"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return None


def check_exposition(
    path, early_path, expect_fed, expect_mem, expect_shed, expect_trace
):
    samples, types, units = parse_exposition(path)
    if not samples:
        fail(f"{path}: no samples scraped")
        return
    for base in sorted(set(types) | {base_name(n) for n in samples}):
        if not METRIC_NAME_RE.match(base):
            fail(
                f"{path}: metric {base} violates the "
                f"gdms_<layer>_<name>[_unit][_total] naming scheme"
            )
    for name, value in samples.items():
        base = base_name(name)
        # Summary sub-series (_sum/_count/quantile lines) inherit the TYPE
        # of their parent summary.
        owner = summary_series_base(name)
        declared = types.get(base) or (owner and types.get(owner))
        if not declared:
            fail(f"{path}: sample {name} has no # TYPE comment")
            continue
        if declared == "counter":
            if not base.endswith("_total"):
                fail(f"{path}: counter {base} does not end in _total")
            if value < 0:
                fail(f"{path}: counter {name} is negative ({value})")
    for base, declared in types.items():
        unit = expected_unit(base)
        if unit is not None and units.get(base) != unit:
            fail(
                f"{path}: {base} should declare '# UNIT {base} {unit}', "
                f"got {units.get(base)!r}"
            )
    if expect_fed:
        for required in (
            'gdms_fed_staged_bytes{node="site_a"}',
            'gdms_fed_staged_bytes{node="site_b"}',
            "gdms_fed_nodes",
            "gdms_fed_requests_total",
            "gdms_fed_bytes_shipped_total",
        ):
            if required not in samples:
                fail(f"{path}: expected federation sample {required} missing")
        if samples.get("gdms_fed_requests_total", 0) <= 0:
            fail(f"{path}: gdms_fed_requests_total shows no traffic")
    if expect_mem:
        for required in (
            "gdms_mem_rss_bytes",
            "gdms_mem_tracked_bytes",
            "gdms_mem_reclaimable_bytes",
            "gdms_mem_columnar_cache_bytes",
            "gdms_mem_budget_bytes",
            "gdms_mem_evictions_total",
            "gdms_storage_gdmz_map_bytes",
        ):
            if required not in samples:
                fail(f"{path}: expected memory sample {required} missing")
        if samples.get("gdms_mem_rss_bytes", 0) <= 0:
            fail(f"{path}: gdms_mem_rss_bytes shows no resident memory")
        if not any(
            name.startswith("gdms_storage_dataset_resident_bytes{")
            for name in samples
        ):
            fail(f"{path}: no per-dataset resident-bytes gauge")
    if expect_shed:
        budget = samples.get("gdms_mem_budget_bytes", 0)
        if budget <= 0:
            fail(f"{path}: --expect-shed but no memory budget configured")
        if samples.get("gdms_mem_evictions_total", 0) <= 0:
            fail(f"{path}: budgeted run recorded no evictions")
        reclaimable = samples.get("gdms_mem_reclaimable_bytes", 0)
        if budget > 0 and reclaimable > budget:
            fail(
                f"{path}: reclaimable bytes {reclaimable} exceed the "
                f"budget {budget} after shedding"
            )
    if expect_trace:
        if samples.get("gdms_trace_exemplars_kept_total", 0) <= 0:
            fail(f"{path}: no trace exemplars were retained")
        if not any(
            name.startswith("gdms_trace_exemplar_us{") for name in samples
        ):
            fail(f"{path}: no gdms_trace_exemplar_us samples (exemplar ring)")
        if not any(base.startswith("gdms_trace_critical_") for base in types):
            fail(f"{path}: no gdms_trace_critical_* segment histograms")
    if early_path:
        early_samples, _, _ = parse_exposition(early_path)
        for name, early_value in early_samples.items():
            base = base_name(name)
            monotone = (
                types.get(base) == "counter"
                or base.endswith("_count")
                or base.endswith("_sum")
            )
            if not monotone:
                continue
            late_value = samples.get(name)
            if late_value is None:
                fail(f"{path}: {name} present earlier but missing later")
            elif late_value < early_value:
                fail(
                    f"{path}: {name} went backwards "
                    f"({early_value} -> {late_value})"
                )


def check_trace_json(path):
    """Structural checks on one stitched-trace JSON (RenderJson output)."""
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable trace JSON: {e}")
        return
    tid = trace.get("trace_id", "")
    if not re.fullmatch(r"[0-9a-f]{32}", tid):
        fail(f"{path}: bad trace_id {tid!r}")
    spans = trace.get("spans", [])
    if not spans:
        fail(f"{path}: trace has no spans")
        return
    ids = {(s.get("origin", ""), s.get("id")) for s in spans}
    if len(ids) != len(spans):
        fail(f"{path}: duplicate (origin, id) span identities")
    roots = [s for s in spans if s.get("parent", 0) == 0]
    if len(roots) != 1:
        fail(f"{path}: expected exactly one root span, found {len(roots)}")
    for s in spans:
        if s.get("parent", 0) == 0:
            continue
        link = (s.get("parent_origin", ""), s.get("parent"))
        if link not in ids:
            fail(
                f"{path}: span ({s.get('origin')!r}, {s.get('id')}) has an "
                f"unresolved parent link {link}"
            )
    if not any(s.get("origin") for s in spans):
        fail(f"{path}: no remote spans (every origin is the coordinator)")
    total = trace.get("total_us", 0)
    if roots and roots[0].get("duration_us") != total:
        fail(
            f"{path}: root duration {roots[0].get('duration_us')}us "
            f"disagrees with total_us {total}"
        )
    path_sum = sum(seg.get("us", 0) for seg in trace.get("critical_path", []))
    if total > 0 and abs(path_sum - total) > 0.05 * total:
        fail(
            f"{path}: critical-path segments sum to {path_sum}us, "
            f"more than 5% off the {total}us total"
        )


def check_query_log(path, expect_slow, expect_fed, expect_trace):
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
                continue
            for key in REQUIRED_LOG_KEYS:
                if key not in entry:
                    fail(f"{path}:{lineno}: missing key {key!r}")
            entries.append(entry)
    if not entries:
        fail(f"{path}: empty query log")
        return
    prev_ts = None
    for i, entry in enumerate(entries):
        if entry.get("seq") != i + 1:
            fail(f"{path}: entry {i}: seq {entry.get('seq')} != {i + 1}")
        ts = entry.get("ts_ms", 0)
        if prev_ts is not None and ts < prev_ts:
            fail(f"{path}: ts_ms went backwards ({prev_ts} -> {ts})")
        prev_ts = ts
        if entry.get("wall_ms", 0) < 0:
            fail(f"{path}: entry seq={entry.get('seq')}: negative wall_ms")
        fed = entry.get("fed", {})
        if not isinstance(fed, dict) or not {
            "requests", "bytes_shipped", "bytes_received"
        } <= set(fed):
            fail(f"{path}: entry seq={entry.get('seq')}: malformed fed block")
        mem = entry.get("mem", {})
        if not isinstance(mem, dict) or not {
            "alloc_bytes", "peak_bytes"
        } <= set(mem):
            fail(f"{path}: entry seq={entry.get('seq')}: malformed mem block")
        elif mem["peak_bytes"] > mem["alloc_bytes"]:
            fail(
                f"{path}: entry seq={entry.get('seq')}: peak_bytes "
                f"{mem['peak_bytes']} exceeds alloc_bytes {mem['alloc_bytes']}"
            )
        if not entry.get("ok", True) and not entry.get("error"):
            fail(f"{path}: entry seq={entry.get('seq')}: failed but no error")
    if expect_slow:
        slow = [e for e in entries if e.get("slow")]
        if not slow:
            fail(f"{path}: no slow entries (expected escalation)")
        elif not any("explain" in e for e in slow):
            fail(f"{path}: no slow entry embeds an EXPLAIN ANALYZE capture")
        else:
            explained = next(e for e in slow if "explain" in e)
            if "query" not in explained["explain"]:
                fail(f"{path}: embedded explain lacks the query span root")
    if expect_fed:
        if not any(e.get("fed", {}).get("requests", 0) > 0 for e in entries):
            fail(f"{path}: no entry shows federation requests")
    if expect_trace:
        traced = [e for e in entries if e.get("trace_id")]
        if not traced:
            fail(f"{path}: no entry carries a trace_id")
            return
        with_path = [e for e in traced if e.get("critical_path")]
        if not with_path:
            fail(f"{path}: no traced entry carries a critical_path block")
        for e in with_path:
            for seg in e["critical_path"]:
                if not {"segment", "us"} <= set(seg):
                    fail(
                        f"{path}: entry seq={e.get('seq')}: malformed "
                        f"critical_path segment {seg!r}"
                    )
            if e.get("query", "").startswith(".fed "):
                # Federation traces tick in SimClock virtual time; their
                # wall_ms is unrelated by design.
                continue
            total = sum(seg.get("us", 0) for seg in e["critical_path"])
            want = e.get("wall_ms", 0) * 1000.0
            if want > 1000 and abs(total - want) > 0.05 * want:
                fail(
                    f"{path}: entry seq={e.get('seq')}: critical path sums "
                    f"to {total}us but the query took {want:.0f}us"
                )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--expo", help="exposition file (final scrape)")
    parser.add_argument(
        "--expo-early",
        help="earlier scrape of the same process, for monotonicity checks",
    )
    parser.add_argument("--query-log", help="JSONL query log")
    parser.add_argument(
        "--expect-slow",
        action="store_true",
        help="require at least one slow entry with embedded EXPLAIN ANALYZE",
    )
    parser.add_argument(
        "--expect-fed",
        action="store_true",
        help="require federation gauges/counters and per-query fed traffic",
    )
    parser.add_argument(
        "--expect-mem",
        action="store_true",
        help="require the gdms_mem_*/gdms_storage_* accounting families",
    )
    parser.add_argument(
        "--expect-shed",
        action="store_true",
        help="require a configured budget, evictions, and reclaimable bytes "
        "at or under the budget",
    )
    parser.add_argument(
        "--expect-trace",
        action="store_true",
        help="require trace exemplars + critical-path histograms in the "
        "exposition and traced query-log entries whose critical path sums "
        "to the query total",
    )
    parser.add_argument(
        "--trace-json",
        help="stitched-trace JSON (gdms_shell `.trace <id> FILE`) to check "
        "structurally: remote spans, resolved parent links, critical-path "
        "sum within 5%% of the root",
    )
    args = parser.parse_args()
    if not args.expo and not args.query_log and not args.trace_json:
        parser.error(
            "nothing to check: pass --expo, --query-log and/or --trace-json"
        )
    if args.expo:
        check_exposition(
            args.expo,
            args.expo_early,
            args.expect_fed,
            args.expect_mem,
            args.expect_shed,
            args.expect_trace,
        )
    if args.query_log:
        check_query_log(
            args.query_log, args.expect_slow, args.expect_fed,
            args.expect_trace,
        )
    if args.trace_json:
        check_trace_json(args.trace_json)
    if errors:
        for message in errors:
            print(f"FAIL: {message}", file=sys.stderr)
        print(f"check_telemetry: {len(errors)} failure(s)", file=sys.stderr)
        return 1
    print("check_telemetry: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
