// gdms_top — live terminal dashboard over the GDMS telemetry exposition.
//
// Two modes:
//
//   gdms_top --attach FILE [--period-ms N] [--ticks N] [--no-ansi]
//     Polls a Prometheus-style exposition file (as written by
//     `gdms_shell --serve --expo FILE`), derives rates from successive
//     scrapes and renders per-layer counters, gauges and latency summaries
//     with sparklines.
//
//   gdms_top --demo [--period-ms N] [--ticks N] [--no-ansi]
//     Drives an in-process workload (parallel engine + a two-site
//     federation over simulated ENCODE-like data) and renders the live
//     metrics registry directly — a self-contained demonstration needing
//     no second process.
//
// --ticks 0 (the default) runs until interrupted; a nonzero count renders
// that many frames and exits, which is what CI and transcript capture use
// together with --no-ansi (frames separated by a rule instead of clearing
// the screen).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "gdm/region.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "repo/federation.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT: tool brevity

struct Options {
  bool demo = false;
  std::string attach_path;
  int64_t period_ms = 500;
  uint64_t ticks = 0;  ///< 0 = run until interrupted
  bool ansi = true;
};

// ---------------------------------------------------------------------------
// Scrape history: successive exposition snapshots -> per-series rates
// ---------------------------------------------------------------------------

/// Rolling per-sample history across scrapes; rates are derived between
/// consecutive snapshots of the same sample name (labels included).
class History {
 public:
  static constexpr size_t kKeep = 64;

  void Ingest(const obs::ScrapedExposition& scrape, int64_t t_ns) {
    for (const auto& [name, value] : scrape.samples) {
      auto& points = series_[name];
      points.push_back({t_ns, value});
      if (points.size() > kKeep) points.pop_front();
    }
  }

  double Last(const std::string& name) const {
    auto it = series_.find(name);
    return it == series_.end() || it->second.empty() ? 0.0
                                                     : it->second.back().value;
  }

  /// Per-second deltas between consecutive points; counter resets clamp
  /// to zero instead of going negative.
  std::vector<double> Rates(const std::string& name) const {
    std::vector<double> out;
    auto it = series_.find(name);
    if (it == series_.end()) return out;
    const auto& points = it->second;
    for (size_t i = 1; i < points.size(); ++i) {
      double dt = static_cast<double>(points[i].t_ns - points[i - 1].t_ns) /
                  1e9;
      double dv = points[i].value - points[i - 1].value;
      out.push_back(dt > 0 && dv > 0 ? dv / dt : 0.0);
    }
    return out;
  }

  std::vector<double> Values(const std::string& name) const {
    std::vector<double> out;
    auto it = series_.find(name);
    if (it == series_.end()) return out;
    for (const auto& point : it->second) out.push_back(point.value);
    return out;
  }

 private:
  struct Point {
    int64_t t_ns;
    double value;
  };
  std::map<std::string, std::deque<Point>> series_;
};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Scales the last `width` values against their max onto ▁..█ (all-zero
/// series render as a flat baseline).
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  size_t begin = values.size() > width ? values.size() - width : 0;
  double max = 0;
  for (size_t i = begin; i < values.size(); ++i) {
    max = std::max(max, values[i]);
  }
  std::string out;
  for (size_t i = begin; i < values.size(); ++i) {
    int level =
        max > 0 ? static_cast<int>(values[i] / max * 7.0 + 0.5) : 0;
    out += kBars[std::min(7, std::max(0, level))];
  }
  return out;
}

std::string FormatValue(double v) {
  char buf[64];
  if (std::fabs(v) >= 1e15 || (v != 0 && std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else if (v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

std::string BaseName(const std::string& sample_name) {
  auto brace = sample_name.find('{');
  return brace == std::string::npos ? sample_name
                                    : sample_name.substr(0, brace);
}

/// Layer key for grouping: "engine" from gdms_engine_tasks_total.
std::string LayerOf(const std::string& base) {
  if (base.rfind("gdms_", 0) != 0) return "other";
  auto next = base.find('_', 5);
  return next == std::string::npos ? "other" : base.substr(5, next - 5);
}

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
  *out += '\n';
}

/// The Memory panel: process RSS (sparklined), the tracker's byte gauges,
/// columnar-cache occupancy + eviction rate, and per-dataset residency —
/// everything the gdms_mem_* / gdms_storage_* families expose. Rendered as
/// its own section; the generic per-layer listing skips those families.
std::string RenderMemoryPanel(const History& history,
                              const obs::ScrapedExposition& scrape) {
  double rss = history.Last("gdms_mem_rss_bytes");
  if (rss == 0 && history.Last("gdms_mem_tracked_bytes") == 0) {
    return "";  // serving process predates the memory gauges
  }
  std::string out;
  AppendLine(&out, "-- memory %s", std::string(68, '-').c_str());
  AppendLine(&out, "  rss %-10s tracked %-10s budget %-10s %s",
             HumanBytes(static_cast<uint64_t>(rss)).c_str(),
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_mem_tracked_bytes")))
                 .c_str(),
             history.Last("gdms_mem_budget_bytes") > 0
                 ? HumanBytes(static_cast<uint64_t>(
                                  history.Last("gdms_mem_budget_bytes")))
                       .c_str()
                 : "off",
             Sparkline(history.Values("gdms_mem_rss_bytes"), 20).c_str());
  auto evict_rate = history.Rates("gdms_mem_evictions_total");
  AppendLine(&out,
             "  columnar %-10s gdmz map %-10s resident %-10s evictions "
             "%s (%.1f/s) %s",
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_mem_columnar_cache_bytes")))
                 .c_str(),
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_storage_gdmz_map_bytes")))
                 .c_str(),
             HumanBytes(static_cast<uint64_t>(history.Last(
                            "gdms_storage_gdmz_resident_bytes")))
                 .c_str(),
             FormatValue(history.Last("gdms_mem_evictions_total")).c_str(),
             evict_rate.empty() ? 0.0 : evict_rate.back(),
             Sparkline(evict_rate, 12).c_str());
  // Per-dataset residency (labeled gauges).
  const std::string kResident = "gdms_storage_dataset_resident_bytes{";
  for (const auto& [name, value] : scrape.samples) {
    if (name.rfind(kResident, 0) != 0) continue;
    std::string label = name.substr(kResident.size());
    auto quote_end = label.rfind("\"}");
    std::string dataset =
        label.substr(9, quote_end == std::string::npos ? std::string::npos
                                                       : quote_end - 9);
    double columnar = history.Last(
        "gdms_storage_dataset_columnar_bytes{dataset=\"" + dataset + "\"}");
    AppendLine(&out, "  %-24s rows %-10s columnar %-10s", dataset.c_str(),
               HumanBytes(static_cast<uint64_t>(value)).c_str(),
               HumanBytes(static_cast<uint64_t>(columnar)).c_str());
  }
  return out;
}

/// The federation-health panel: per-site circuit-breaker state (the
/// gdms_fed_breaker_state gauge encodes 0=closed 1=open 2=half-open) plus
/// staging occupancy, and one resilience line with retry / hedge / timeout
/// / corruption rates. The generic per-layer listing skips the fed family.
std::string RenderFederationPanel(const History& history,
                                  const obs::ScrapedExposition& scrape) {
  const std::string kBreaker = "gdms_fed_breaker_state{site=\"";
  bool has_breakers = false;
  for (const auto& [name, value] : scrape.samples) {
    if (name.rfind(kBreaker, 0) == 0) has_breakers = true;
  }
  if (history.Last("gdms_fed_requests_total") == 0 && !has_breakers) {
    return "";  // no federation traffic yet
  }
  std::string out;
  AppendLine(&out, "-- federation %s", std::string(64, '-').c_str());
  auto req_rate = history.Rates("gdms_fed_requests_total");
  AppendLine(&out,
             "  requests %-8s (%.1f/s) %s | shipped %-10s received %-10s "
             "wasted %s",
             FormatValue(history.Last("gdms_fed_requests_total")).c_str(),
             req_rate.empty() ? 0.0 : req_rate.back(),
             Sparkline(req_rate, 16).c_str(),
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_fed_bytes_shipped_total")))
                 .c_str(),
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_fed_bytes_received_total")))
                 .c_str(),
             HumanBytes(static_cast<uint64_t>(
                            history.Last("gdms_fed_bytes_wasted_total")))
                 .c_str());
  auto retry_rate = history.Rates("gdms_fed_retries_total");
  auto hedge_rate = history.Rates("gdms_fed_hedges_total");
  auto timeout_rate = history.Rates("gdms_fed_timeouts_total");
  AppendLine(
      &out,
      "  retries %-6s (%.1f/s) %s hedges %-6s (%.1f/s) timeouts %-6s "
      "(%.1f/s) corruptions %-4s partial %s",
      FormatValue(history.Last("gdms_fed_retries_total")).c_str(),
      retry_rate.empty() ? 0.0 : retry_rate.back(),
      Sparkline(retry_rate, 10).c_str(),
      FormatValue(history.Last("gdms_fed_hedges_total")).c_str(),
      hedge_rate.empty() ? 0.0 : hedge_rate.back(),
      FormatValue(history.Last("gdms_fed_timeouts_total")).c_str(),
      timeout_rate.empty() ? 0.0 : timeout_rate.back(),
      FormatValue(history.Last("gdms_fed_corruptions_total")).c_str(),
      FormatValue(history.Last("gdms_fed_partial_results_total")).c_str());
  // Per-site health: breaker state + staging occupancy.
  for (const auto& [name, value] : scrape.samples) {
    if (name.rfind(kBreaker, 0) != 0) continue;
    std::string site = name.substr(kBreaker.size());
    auto quote = site.find('"');
    if (quote != std::string::npos) site = site.substr(0, quote);
    int state = static_cast<int>(value);
    const char* state_name = state == 0   ? "closed"
                             : state == 1 ? "OPEN"
                                          : "half-open";
    double staged = history.Last("gdms_fed_staged_bytes{node=\"" + site +
                                 "\"}");
    double staged_n = history.Last("gdms_fed_staged_results{node=\"" + site +
                                   "\"}");
    AppendLine(&out, "  %-24s breaker %-10s staged %-10s (%s results) %s",
               site.c_str(), state_name,
               HumanBytes(static_cast<uint64_t>(staged)).c_str(),
               FormatValue(staged_n).c_str(),
               Sparkline(history.Values(name), 12).c_str());
  }
  return out;
}

/// The serve panel: session-pool occupancy, admission health and cache
/// effectiveness of a `gdms_shell --serve --workers N` process. The generic
/// per-layer listing skips the serve family.
std::string RenderServePanel(const History& history) {
  if (history.Last("gdms_serve_workers") == 0) {
    return "";  // serving process runs without the session manager
  }
  std::string out;
  AppendLine(&out, "-- serve %s", std::string(69, '-').c_str());
  auto admit_rate = history.Rates("gdms_serve_admitted_total");
  auto reject_rate = history.Rates("gdms_serve_rejected_total");
  AppendLine(&out,
             "  workers %-4s active %-4s queued %-4s | admitted %s (%.1f/s) "
             "%s rejected %s (%.1f/s)",
             FormatValue(history.Last("gdms_serve_workers")).c_str(),
             FormatValue(history.Last("gdms_serve_active_sessions")).c_str(),
             FormatValue(history.Last("gdms_serve_queue_depth")).c_str(),
             FormatValue(history.Last("gdms_serve_admitted_total")).c_str(),
             admit_rate.empty() ? 0.0 : admit_rate.back(),
             Sparkline(admit_rate, 14).c_str(),
             FormatValue(history.Last("gdms_serve_rejected_total")).c_str(),
             reject_rate.empty() ? 0.0 : reject_rate.back());
  double plan_hits = history.Last("gdms_serve_plan_hits_total");
  double plan_total = plan_hits +
                      history.Last("gdms_serve_plan_rebinds_total") +
                      history.Last("gdms_serve_plan_misses_total");
  double result_hits = history.Last("gdms_serve_result_hits_total");
  double result_total =
      result_hits + history.Last("gdms_serve_result_misses_total");
  AppendLine(
      &out,
      "  plan cache %5.1f%% hit (%s lookups) | result cache %5.1f%% hit "
      "(%s lookups, %s invalidations)",
      plan_total > 0 ? 100.0 * plan_hits / plan_total : 0.0,
      FormatValue(plan_total).c_str(),
      result_total > 0 ? 100.0 * result_hits / result_total : 0.0,
      FormatValue(result_total).c_str(),
      FormatValue(history.Last("gdms_serve_result_invalidations_total"))
          .c_str());
  AppendLine(
      &out,
      "  latency us p50 %-8s p95 %-8s p99 %-8s | deadline_exceeded %s "
      "failed %s",
      FormatValue(
          history.Last("gdms_serve_latency_us{quantile=\"0.5\"}"))
          .c_str(),
      FormatValue(
          history.Last("gdms_serve_latency_us{quantile=\"0.95\"}"))
          .c_str(),
      FormatValue(
          history.Last("gdms_serve_latency_us{quantile=\"0.99\"}"))
          .c_str(),
      FormatValue(history.Last("gdms_serve_deadline_exceeded_total")).c_str(),
      FormatValue(history.Last("gdms_serve_failed_total")).c_str());
  return out;
}

/// One "key=\"value\"" extraction from a sample's label block.
std::string LabelValue(const std::string& labels, const std::string& key) {
  std::string needle = key + "=\"";
  auto pos = labels.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  auto end = labels.find('"', pos);
  return labels.substr(
      pos, end == std::string::npos ? std::string::npos : end - pos);
}

/// The "slowest recent traces" panel: the gdms_trace_exemplar_us samples
/// the serving shell appends from its trace exemplar ring — trace id,
/// end-to-end time, why the trace was retained, and its top-2
/// critical-path segments. Hidden until a trace has been retained.
std::string RenderTracesPanel(const obs::ScrapedExposition& scrape) {
  const std::string kPrefix = "gdms_trace_exemplar_us{";
  std::vector<std::pair<int, std::string>> rows;
  for (const auto& [name, value] : scrape.samples) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::string labels = name.substr(kPrefix.size());
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  #%s %-18s %12.1f ms  %-8s %-22s %s",
                  LabelValue(labels, "rank").c_str(),
                  LabelValue(labels, "trace").c_str(), value / 1000.0,
                  LabelValue(labels, "reason").c_str(),
                  LabelValue(labels, "seg1").c_str(),
                  LabelValue(labels, "seg2").c_str());
    rows.push_back({std::atoi(LabelValue(labels, "rank").c_str()), buf});
  }
  if (rows.empty()) return "";
  std::sort(rows.begin(), rows.end());
  std::string out;
  AppendLine(&out, "-- slowest recent traces %s", std::string(53, '-').c_str());
  for (auto& [rank, line] : rows) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string RenderFrame(const History& history,
                        const obs::ScrapedExposition& scrape, uint64_t tick,
                        double uptime_s) {
  std::string out;
  // Header: query throughput and latency at a glance.
  {
    double queries = history.Last("gdms_runner_queries_total");
    auto qps = history.Rates("gdms_runner_queries_total");
    double p50 =
        history.Last("gdms_runner_query_latency_us{quantile=\"0.5\"}");
    double p95 =
        history.Last("gdms_runner_query_latency_us{quantile=\"0.95\"}");
    double p99 =
        history.Last("gdms_runner_query_latency_us{quantile=\"0.99\"}");
    AppendLine(&out,
               "gdms_top  tick %" PRIu64
               "  up %.0fs | queries %s (%.1f/s) %s | latency us "
               "p50 %s p95 %s p99 %s",
               tick, uptime_s, FormatValue(queries).c_str(),
               qps.empty() ? 0.0 : qps.back(), Sparkline(qps, 16).c_str(),
               FormatValue(p50).c_str(), FormatValue(p95).c_str(),
               FormatValue(p99).c_str());
  }
  out += RenderServePanel(history);
  out += RenderMemoryPanel(history, scrape);
  out += RenderFederationPanel(history, scrape);
  out += RenderTracesPanel(scrape);
  // Group every scraped sample under its layer. The serve/mem/storage/fed
  // families are rendered by the dedicated panels above, not repeated here
  // (the exemplar gauge too — its ranked rows are the traces panel).
  std::map<std::string, std::vector<std::string>> layer_lines;
  for (const auto& [base, type] : scrape.types) {
    std::string layer = LayerOf(base);
    if (layer == "mem" || layer == "storage" || layer == "fed" ||
        layer == "serve" || base == "gdms_trace_exemplar_us") {
      continue;
    }
    std::string line;
    if (type == "counter") {
      auto rates = history.Rates(base);
      char buf[512];
      std::snprintf(buf, sizeof(buf), "  %-38s %12s  %8.1f/s  %s",
                    base.c_str(), FormatValue(history.Last(base)).c_str(),
                    rates.empty() ? 0.0 : rates.back(),
                    Sparkline(rates, 20).c_str());
      layer_lines[layer].push_back(buf);
    } else if (type == "gauge") {
      // Gauges may be labeled (one sample per site); render each variant.
      for (const auto& [name, value] : scrape.samples) {
        if (BaseName(name) != base) continue;
        char buf[512];
        std::snprintf(buf, sizeof(buf), "  %-38s %12s  %10s  %s",
                      name.c_str(), FormatValue(value).c_str(), "",
                      Sparkline(history.Values(name), 20).c_str());
        layer_lines[layer].push_back(buf);
      }
    } else if (type == "summary") {
      double p50 = history.Last(base + "{quantile=\"0.5\"}");
      double p95 = history.Last(base + "{quantile=\"0.95\"}");
      double p99 = history.Last(base + "{quantile=\"0.99\"}");
      auto rates = history.Rates(base + "_count");
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "  %-38s p50 %-8s p95 %-8s p99 %-8s %s", base.c_str(),
                    FormatValue(p50).c_str(), FormatValue(p95).c_str(),
                    FormatValue(p99).c_str(), Sparkline(rates, 12).c_str());
      layer_lines[layer].push_back(buf);
    }
  }
  // Stable layer order: the engine/runner hot path first, then everything
  // else alphabetically (federation has its own panel above).
  std::vector<std::string> order = {"runner", "engine", "core", "search"};
  for (const auto& [layer, lines] : layer_lines) {
    if (std::find(order.begin(), order.end(), layer) == order.end()) {
      order.push_back(layer);
    }
  }
  for (const auto& layer : order) {
    auto it = layer_lines.find(layer);
    if (it == layer_lines.end()) continue;
    AppendLine(&out, "-- %s %s", layer.c_str(),
               std::string(74 - std::min<size_t>(70, layer.size()), '-')
                   .c_str());
    for (const auto& line : it->second) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Demo workload
// ---------------------------------------------------------------------------

/// Background query mix for --demo: parallel-engine queries over simulated
/// peak/annotation data with a federated broadcast every few iterations, so
/// every dashboard section (engine, runner, fed) shows movement.
class DemoWorkload {
 public:
  void Start() {
    auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
    sim::PeakDatasetOptions popt;
    popt.num_samples = 4;
    popt.peaks_per_sample = 800;
    gdm::Dataset peaks = sim::GeneratePeakDataset(genome, popt, 1);
    peaks.set_name("ENCODE");
    auto catalog = sim::GenerateGenes(genome, 200, 1);
    gdm::Dataset genes = sim::GenerateAnnotations(genome, catalog, {}, 1);
    genes.set_name("ANNOTATIONS");

    engine::EngineOptions eopt;
    eopt.threads = 2;
    executor_ = std::make_unique<engine::ParallelExecutor>(eopt);
    runner_ = std::make_unique<core::QueryRunner>(executor_.get());
    runner_->RegisterDataset(peaks);
    runner_->RegisterDataset(genes);

    site_a_ = std::make_unique<repo::FederatedNode>("site_a");
    site_b_ = std::make_unique<repo::FederatedNode>("site_b");
    site_a_->catalog()->Put(peaks);
    site_b_->catalog()->Put(peaks);
    coordinator_ = std::make_unique<repo::Coordinator>();
    coordinator_->AddNode(site_a_.get());
    coordinator_->AddNode(site_b_.get());
    // A lightly faulty link to site_b so the federation panel shows live
    // retry/breaker movement in the demo.
    repo::LinkProfile flaky;
    flaky.drop_rate = 0.10;
    flaky.seed = 5;
    coordinator_->transport()->SetLinkProfile("site_b", flaky);

    thread_ = std::thread([this] { Loop(); });
  }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    const char* kQueries[] = {
        "S = SELECT(dataType == 'ChipSeq'; region: signal >= 2) ENCODE; "
        "MATERIALIZE S;",
        "M = MAP(n AS COUNT) ANNOTATIONS ENCODE; MATERIALIZE M;",
        "C = COVER(2, ANY) ENCODE; MATERIALIZE C;",
    };
    uint64_t i = 0;
    while (!stop_.load()) {
      if (i % 5 == 4) {
        (void)coordinator_->RunEverywhere(
            "F = SELECT(dataType == 'ChipSeq'; region: signal >= 3) ENCODE; "
            "MATERIALIZE F;");
      } else {
        (void)runner_->Run(kQueries[i % 3]);
      }
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }

  std::unique_ptr<engine::ParallelExecutor> executor_;
  std::unique_ptr<core::QueryRunner> runner_;
  std::unique_ptr<repo::FederatedNode> site_a_;
  std::unique_ptr<repo::FederatedNode> site_b_;
  std::unique_ptr<repo::Coordinator> coordinator_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "gdms_top: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      opts.demo = true;
    } else if (arg == "--attach") {
      const char* v = next();
      if (v == nullptr) return Fail("--attach needs an exposition file");
      opts.attach_path = v;
    } else if (arg == "--period-ms") {
      const char* v = next();
      if (v == nullptr) return Fail("--period-ms needs a value");
      opts.period_ms = std::atoll(v);
    } else if (arg == "--ticks") {
      const char* v = next();
      if (v == nullptr) return Fail("--ticks needs a count");
      opts.ticks = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--no-ansi") {
      opts.ansi = false;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: gdms_top (--attach FILE | --demo)\n"
          "               [--period-ms N] [--ticks N] [--no-ansi]\n"
          "  --attach FILE  poll a gdms_shell --serve --expo file\n"
          "  --demo         drive an in-process workload and watch it\n"
          "  --ticks N      render N frames then exit (0 = forever)");
      return 0;
    } else {
      return Fail("unknown argument " + arg + " (try --help)");
    }
  }
  if (!opts.demo && opts.attach_path.empty()) {
    return Fail("pick a mode: --attach FILE or --demo");
  }
  if (opts.demo && !opts.attach_path.empty()) {
    return Fail("--demo and --attach are mutually exclusive");
  }
  if (opts.period_ms <= 0) return Fail("--period-ms must be positive");

  DemoWorkload workload;
  if (opts.demo) workload.Start();

  History history;
  auto start = std::chrono::steady_clock::now();
  uint64_t waits_left = 20;  // attach mode: tolerate a late first dump
  for (uint64_t tick = 1; opts.ticks == 0 || tick <= opts.ticks; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.period_ms));
    std::string text;
    if (opts.demo) {
      text = obs::RenderExposition(obs::MetricsRegistry::Global());
    } else {
      std::ifstream in(opts.attach_path);
      if (!in) {
        if (--waits_left == 0) {
          workload.Stop();
          return Fail("no exposition at " + opts.attach_path);
        }
        std::printf("waiting for %s ...\n", opts.attach_path.c_str());
        --tick;
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    auto now = std::chrono::steady_clock::now();
    int64_t t_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
            .count();
    obs::ScrapedExposition scrape = obs::ParseExposition(text);
    history.Ingest(scrape, t_ns);
    std::string frame = RenderFrame(
        history, scrape, tick,
        std::chrono::duration<double>(now - start).count());
    if (opts.ansi) {
      std::fputs("\x1b[H\x1b[2J", stdout);
    } else if (tick > 1) {
      std::puts("========");
    }
    std::fputs(frame.c_str(), stdout);
    std::fflush(stdout);
  }
  if (opts.demo) workload.Stop();
  return 0;
}
