// gdms_shell — batch GMQL runner over files, and a long-running serve loop.
//
// Loads datasets from BED / narrowPeak / GTF / VCF / native-GDM files, runs
// a GMQL program (from a file, the command line, or stdin), prints result
// summaries and optionally writes each materialized dataset back out in the
// native GDM format.
//
// Usage:
//   gdms_shell [--load NAME=FILE]... [--query FILE | --exec GMQL]
//              [--out DIR] [--parallel [THREADS]] [--no-optimize]
//              [--no-fusion] [--no-columnar] [--show CHR:LEFT-RIGHT]
//              [--demo] [--gdmz-selftest] [--mem-budget-mb X]
//              [--trace FILE.json] [--metrics]
//              [--serve] [--sample-ms N] [--query-log FILE]
//              [--slow-ms X] [--expo FILE]
//
// Prefixing the GMQL text with EXPLAIN ANALYZE turns on tracing for the run
// and prints the per-operator profile tree (wall time, self time, task
// counts, partition skew) after the result summaries.
//
// --serve turns the shell into a long-running service loop reading commands
// from stdin: GMQL lines are executed as queries; `.`-prefixed commands
// control telemetry (`.help` lists them). While serving, a background
// sampler snapshots the metrics registry every --sample-ms (default 100,
// 0 disables) and, when --expo is given, rewrites the Prometheus-style
// exposition file atomically on every tick so a scraper or `gdms_top
// --attach` can poll it. --query-log appends one JSON line per query
// (schema in README "Operating GDMS"); queries at or above --slow-ms
// escalate their entry to a full embedded EXPLAIN ANALYZE capture.
//
// --mem-budget-mb X (fractional MB allowed) sets the resource tracker's
// memory budget over reclaimable bytes (columnar caches + mapped .gdmz
// pages): after each query the watermark shedder evicts LRU caches until
// usage is back under the budget. Results are bit-identical either way —
// only rebuild cost changes. `.mem` in serve mode prints the last query's
// accounting tree (query -> operator -> bytes) and storage residency.
//
// Examples:
//   gdms_shell --load PEAKS=peaks.narrowPeak --load GENES=genes.gtf \
//              --exec "R = MAP(n AS COUNT) GENES PEAKS; MATERIALIZE R;" \
//              --out results/
//   gdms_shell --demo --exec "C = COVER(2, ANY) ENCODE; MATERIALIZE C;" \
//              --show chr1:0-2000000
//   gdms_shell --demo --parallel 4 --serve --sample-ms 100 \
//              --expo expo.prom --query-log queries.jsonl --slow-ms 50

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "io/bed.h"
#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "io/gtf.h"
#include "io/track_render.h"
#include "io/vcf.h"
#include "obs/dtrace.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/resource.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "repo/catalog.h"
#include "repo/federation.h"
#include "serve/serve_catalog.h"
#include "serve/session_manager.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT: tool brevity

int Fail(const std::string& message) {
  std::fprintf(stderr, "gdms_shell: %s\n", message.c_str());
  return 1;
}

Result<gdm::Dataset> LoadFile(const std::string& name,
                              const std::string& path) {
  if (EndsWith(path, ".gdmz")) {
    // Binary columnar format; decoded straight out of the mapped file.
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::OpenGdmz(path));
    ds.set_name(name);
    return ds;
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  if (EndsWith(path, ".gdm")) {
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::ReadGdm(in));
    ds.set_name(name);
    return ds;
  }
  gdm::RegionSchema schema;
  gdm::Sample sample(1);
  if (EndsWith(path, ".narrowPeak") || EndsWith(path, ".narrowpeak")) {
    GDMS_ASSIGN_OR_RETURN(sample, io::ReadNarrowPeakSample(in, 1));
    schema = io::NarrowPeakSchema();
  } else if (EndsWith(path, ".broadPeak") || EndsWith(path, ".broadpeak")) {
    GDMS_ASSIGN_OR_RETURN(sample, io::ReadBroadPeakSample(in, 1));
    schema = io::BroadPeakSchema();
  } else if (EndsWith(path, ".gtf") || EndsWith(path, ".gff")) {
    GDMS_ASSIGN_OR_RETURN(sample,
                          io::ReadGtfSample(in, 1, {"gene_id", "gene_name"}));
    schema = io::GtfSchema({"gene_id", "gene_name"});
  } else if (EndsWith(path, ".vcf")) {
    GDMS_ASSIGN_OR_RETURN(sample, io::ReadVcfSample(in, 1));
    schema = io::VcfSchema();
  } else if (EndsWith(path, ".bed")) {
    GDMS_ASSIGN_OR_RETURN(sample, io::ReadBedSample(in, 1));
    int columns =
        3 + static_cast<int>(sample.regions.empty()
                                 ? 0
                                 : sample.regions[0].values.size());
    schema = io::BedSchema(columns >= 5 ? 5 : columns);
  } else {
    return Status::InvalidArgument(
        "unrecognized extension (want .bed/.narrowPeak/.gtf/.vcf/.gdm/.gdmz): " +
        path);
  }
  sample.metadata.Add("source_file", path);
  gdm::Dataset ds(name, schema);
  ds.AddSample(std::move(sample));
  GDMS_RETURN_NOT_OK(ds.Validate());
  return ds;
}

void LoadDemo(core::QueryRunner* runner) {
  auto genome = gdm::GenomeAssembly::HumanLike(6, 50000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 2000;
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, 1));
  auto catalog = sim::GenerateGenes(genome, 500, 1);
  runner->RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 1));
}

/// Strips a leading case-insensitive "EXPLAIN ANALYZE" from the query text;
/// returns whether it was present.
bool StripExplainAnalyze(std::string* gmql) {
  std::string text(Trim(*gmql));
  const char* words[] = {"EXPLAIN", "ANALYZE"};
  size_t pos = 0;
  for (const char* word : words) {
    size_t len = std::strlen(word);
    if (text.size() < pos + len) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::toupper(static_cast<unsigned char>(text[pos + i])) != word[i]) {
        return false;
      }
    }
    pos += len;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  *gmql = text.substr(pos);
  return true;
}

/// `--gdmz-selftest`: an in-process smoke of the binary format, runnable
/// under the sanitizer builds in CI. Round-trips a generated dataset
/// through .gdmz, checks the result is byte-identical to the text
/// round-trip (the formats share the decimal-6 double fidelity), and feeds
/// the decoder truncated and corrupted images, which must be rejected — not
/// crash, not loop.
int RunGdmzSelftest() {
  auto genome = gdm::GenomeAssembly::HumanLike(4, 30000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 4;
  popt.peaks_per_sample = 1000;
  gdm::Dataset generated = sim::GeneratePeakDataset(genome, popt, 7);
  // A text round-trip first, so the baseline carries text-representable
  // doubles (the equality below is then exact, not approximate).
  auto base = io::ReadGdmString(io::WriteGdmString(generated));
  if (!base.ok()) {
    return Fail("selftest: text round-trip: " + base.status().ToString());
  }
  std::string bin = io::WriteGdmzString(base.value());
  auto back = io::ReadGdmzString(bin);
  if (!back.ok()) {
    return Fail("selftest: gdmz round-trip: " + back.status().ToString());
  }
  std::string text_a = io::WriteGdmString(base.value());
  std::string text_b = io::WriteGdmString(back.value());
  if (text_a != text_b) {
    return Fail("selftest: gdmz round-trip diverged from the text form");
  }
  for (size_t cut = 0; cut < bin.size(); cut = cut * 2 + 7) {
    if (io::ReadGdmzBytes(std::string_view(bin.data(), cut)).ok()) {
      return Fail("selftest: truncated image accepted at " +
                  std::to_string(cut) + " bytes");
    }
  }
  std::string corrupt = bin;
  for (size_t i = 0; i < corrupt.size(); i += 97) {
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    // Decoding flipped bytes may legitimately succeed for payload bytes
    // that only change values; the requirement is no crash/UB (the point
    // of running this under ASan/UBSan).
    (void)io::ReadGdmzBytes(corrupt);
    corrupt[i] = bin[i];
  }
  std::printf("gdmz selftest ok: %zu text bytes -> %zu gdmz bytes (%.2fx)\n",
              text_a.size(), bin.size(),
              static_cast<double>(text_a.size()) /
                  static_cast<double>(bin.size()));
  return 0;
}

// ---------------------------------------------------------------------------
// Serve mode
// ---------------------------------------------------------------------------

struct ServeConfig {
  int64_t sample_ms = 100;  ///< sampler period; 0 disables the sampler
  double slow_ms = 250.0;   ///< query-log slow threshold
  std::string query_log_path;
  std::string expo_path;
  /// Fault profile applied to every federation link (the .fed driver):
  /// lets a long-running serve session exercise retries, hedges and
  /// breakers with live telemetry. Defaults are a perfect wire.
  repo::LinkProfile fed_link;
  size_t fed_sites = 2;  ///< sites built by EnsureFederation
  /// --workers N: route queries through the multi-session server core
  /// (serve::SessionManager) instead of the single shared runner. 0 keeps
  /// the classic single-runner loop.
  size_t workers = 0;
  size_t queue_limit = 64;   ///< --queue-limit
  double deadline_ms = 0;    ///< --deadline-ms (0 = none)
  size_t engine_threads = 1; ///< per-worker engine threads (from --parallel)
  core::ExecOptions exec;    ///< optimize/fusion/columnar for prepares
};

/// The long-running loop behind `gdms_shell --serve`: reads commands from
/// stdin, executes GMQL queries against the shared runner, and keeps the
/// telemetry pipeline (sampler, exposition file, query log) live throughout.
class ServeSession {
 public:
  ServeSession(core::QueryRunner* runner, ServeConfig config)
      : runner_(runner), config_(std::move(config)) {
    if (!config_.query_log_path.empty()) {
      obs::QueryLogOptions opt;
      opt.path = config_.query_log_path;
      opt.slow_ms = config_.slow_ms;
      log_ = std::make_unique<obs::QueryLog>(opt);
    }
  }

  int Loop() {
    if (config_.workers > 0) {
      // Multi-session server core: publish every registered dataset into
      // the shared versioned catalog and admit queries through the session
      // manager (plan cache, result cache, bounded queue, deadlines).
      catalog_ = std::make_unique<serve::ServeCatalog>();
      for (const auto& name : runner_->DatasetNames()) {
        catalog_->Publish(*runner_->FindDataset(name));
      }
      serve::ServeOptions opt;
      opt.workers = config_.workers;
      opt.queue_limit = config_.queue_limit;
      opt.default_deadline_ms = config_.deadline_ms;
      opt.engine_threads = config_.engine_threads;
      opt.exec = config_.exec;
      // Tail-based trace retention shares the query-log slow threshold.
      opt.trace_slow_ms = config_.slow_ms;
      manager_ = std::make_unique<serve::SessionManager>(catalog_.get(), opt);
    }
    // Tracing stays on for the whole session: the query log needs profile
    // trees for self-times and slow-query EXPLAIN capture. The span buffer
    // is cleared after every query so a long-running serve never fills
    // Tracer::kMaxSpans and silently stops capturing. The tracer's single
    // current-parent slot is not safe across concurrent sessions, so it
    // stays off when more than one worker can execute at once.
    obs::Tracer::Global().set_enabled(config_.workers <= 1);
    obs::Sampler sampler;
    if (config_.sample_ms > 0) {
      obs::SamplerOptions opt;
      opt.period_ms = config_.sample_ms;
      if (!config_.expo_path.empty()) {
        std::string path = config_.expo_path;
        opt.on_tick = [path](uint64_t) {
          obs::WriteExpositionFile(
              obs::MetricsRegistry::Global(), path,
              obs::TraceExemplars::Global().RenderExposition());
        };
      }
      sampler.Start(opt);
    }
    std::printf(
        "gdms_shell serving: workers=%zu sampler=%s expo=%s query-log=%s "
        "slow-ms=%.0f\n"
        "type GMQL to run it, .help for commands, .quit or EOF to stop\n",
        config_.workers,
        config_.sample_ms > 0
            ? (std::to_string(config_.sample_ms) + "ms").c_str()
            : "off",
        config_.expo_path.empty() ? "-" : config_.expo_path.c_str(),
        config_.query_log_path.empty() ? "-" : config_.query_log_path.c_str(),
        config_.slow_ms);
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string text(Trim(line));
      if (text.empty() || text[0] == '#') continue;
      if (text[0] == '.') {
        if (!Dispatch(text)) break;
      } else if (manager_ != nullptr) {
        ExecServe(text);
      } else {
        ExecQuery(text);
      }
    }
    if (manager_ != nullptr) manager_->Drain();
    sampler.Stop();
    if (config_.sample_ms > 0) sampler.SampleOnce();
    if (!config_.expo_path.empty()) {
      obs::WriteExpositionFile(obs::MetricsRegistry::Global(),
                               config_.expo_path,
                               obs::TraceExemplars::Global().RenderExposition());
    }
    std::printf("served %llu queries (%llu failed, %llu slow)\n",
                static_cast<unsigned long long>(queries_),
                static_cast<unsigned long long>(failed_),
                static_cast<unsigned long long>(slow_));
    return 0;
  }

 private:
  /// Handles a `.command` line; false means quit.
  bool Dispatch(const std::string& text) {
    auto space = text.find_first_of(" \t");
    std::string cmd = text.substr(0, space);
    std::string rest(
        space == std::string::npos ? "" : Trim(text.substr(space + 1)));
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::puts(
          "  <gmql>              run a query (EXPLAIN ANALYZE prefix works)\n"
          "  .metrics [FILE]     dump exposition to stdout or FILE\n"
          "  .mem                last query's byte tree + storage residency\n"
          "  .sessions           session-manager status (--workers mode)\n"
          "  .cache              plan + result cache summaries\n"
          "  .bump NAME          republish a dataset (bump its version)\n"
          "  .fed <gmql>         run the query on an in-process 2-site "
          "federation\n"
          "  .trace [ID [FILE]]  list retained traces; dump one (\"last\" or "
          "a hex-id\n"
          "                      prefix), or export it as Chrome JSON to "
          "FILE\n"
          "  .repeat N <gmql>    run the query N times\n"
          "  .sleep MS           pause (lets the sampler tick)\n"
          "  .datasets           list registered datasets\n"
          "  .quit               stop serving");
      return true;
    }
    if (cmd == ".sessions") {
      if (manager_ == nullptr) {
        std::puts("sessions off (start with --workers N)");
      } else {
        std::fputs(manager_->RenderSessions().c_str(), stdout);
      }
      return true;
    }
    if (cmd == ".cache") {
      if (manager_ == nullptr) {
        std::puts("caches off (start with --workers N)");
      } else {
        std::fputs(manager_->plan_cache().RenderSummary().c_str(), stdout);
        std::fputs(manager_->result_cache().RenderSummary().c_str(), stdout);
      }
      return true;
    }
    if (cmd == ".bump") {
      if (manager_ == nullptr) {
        std::puts("error: .bump needs --workers mode");
        return true;
      }
      serve::ServeCatalog::Snapshot snap = catalog_->Resolve(rest);
      if (snap.data == nullptr) {
        std::printf("error: unknown dataset %s\n", rest.c_str());
        return true;
      }
      uint64_t version = catalog_->Publish(*snap.data);
      std::printf("bumped %s to version %llu (cached results invalidated)\n",
                  rest.c_str(), static_cast<unsigned long long>(version));
      return true;
    }
    if (cmd == ".datasets") {
      for (const auto& name : runner_->DatasetNames()) {
        const gdm::Dataset* ds = runner_->FindDataset(name);
        std::printf("  %s: %zu samples, %llu regions\n", name.c_str(),
                    ds->num_samples(),
                    static_cast<unsigned long long>(ds->TotalRegions()));
      }
      return true;
    }
    if (cmd == ".mem") {
      const core::RunStats& stats = runner_->last_stats();
      std::printf("last query  alloc %s  peak %s\n",
                  HumanBytes(stats.alloc_bytes).c_str(),
                  HumanBytes(stats.peak_bytes).c_str());
      for (const obs::OpByteStat& op : stats.op_bytes) {
        std::printf("  %-24s alloc %-12s peak %-12s (%llu charge%s)\n",
                    op.op.c_str(), HumanBytes(op.alloc_bytes).c_str(),
                    HumanBytes(op.peak_bytes).c_str(),
                    static_cast<unsigned long long>(op.charges),
                    op.charges == 1 ? "" : "s");
      }
      std::fputs(
          obs::ResourceTracker::Global().RenderStorageSummary().c_str(),
          stdout);
      return true;
    }
    if (cmd == ".metrics") {
      std::string expo =
          obs::RenderExposition(obs::MetricsRegistry::Global());
      if (rest.empty()) {
        std::fputs(expo.c_str(), stdout);
      } else if (obs::WriteExpositionFile(obs::MetricsRegistry::Global(),
                                          rest)) {
        std::printf("wrote exposition to %s\n", rest.c_str());
      } else {
        std::printf("error: cannot write %s\n", rest.c_str());
      }
      return true;
    }
    if (cmd == ".sleep") {
      auto ms = ParseInt64(rest);
      if (!ms.ok() || ms.value() < 0) {
        std::puts("error: .sleep needs a millisecond count");
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(ms.value()));
      return true;
    }
    if (cmd == ".repeat") {
      auto space2 = rest.find_first_of(" \t");
      auto count = ParseInt64(rest.substr(0, space2));
      std::string gmql(
          space2 == std::string::npos ? "" : Trim(rest.substr(space2 + 1)));
      if (!count.ok() || count.value() <= 0 || gmql.empty()) {
        std::puts("error: usage is .repeat N <gmql>");
        return true;
      }
      for (int64_t i = 0; i < count.value(); ++i) ExecQuery(gmql);
      return true;
    }
    if (cmd == ".fed") {
      if (rest.empty()) {
        std::puts("error: usage is .fed <gmql>");
      } else {
        ExecFederated(rest);
      }
      return true;
    }
    if (cmd == ".trace") {
      if (rest.empty()) {
        std::fputs(obs::TraceExemplars::Global().RenderList().c_str(), stdout);
        return true;
      }
      auto space2 = rest.find_first_of(" \t");
      std::string id = rest.substr(0, space2);
      std::string file(
          space2 == std::string::npos ? "" : Trim(rest.substr(space2 + 1)));
      std::shared_ptr<const obs::DistTrace> trace =
          obs::TraceExemplars::Global().Find(id);
      if (trace == nullptr) {
        std::printf("error: no retained trace matches %s (.trace lists them)\n",
                    id.c_str());
        return true;
      }
      if (file.empty()) {
        std::fputs(trace->RenderTree().c_str(), stdout);
      } else {
        std::ofstream out(file);
        if (!out) {
          std::printf("error: cannot write %s\n", file.c_str());
          return true;
        }
        // A *.chrome.json target gets the chrome://tracing export (one lane
        // per site); anything else gets the full stitched-trace JSON with
        // span parent links and the critical path (what check_telemetry.py
        // --trace-json validates).
        bool chrome = EndsWith(file, ".chrome.json");
        out << (chrome ? trace->RenderChromeTrace() : trace->RenderJson());
        std::printf("wrote %s trace %s to %s\n", chrome ? "chrome" : "stitched",
                    trace->id.ToHex().c_str(), file.c_str());
      }
      return true;
    }
    std::printf("error: unknown command %s (try .help)\n", cmd.c_str());
    return true;
  }

  void ExecQuery(const std::string& gmql_in) {
    std::string gmql = gmql_in;
    bool explain = StripExplainAnalyze(&gmql);
    auto start = std::chrono::steady_clock::now();
    auto results = runner_->Run(gmql);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    ++queries_;
    obs::QueryLogEntry entry;
    if (results.ok()) {
      entry = core::MakeQueryLogEntry(gmql, runner_->last_stats());
      uint64_t regions = 0;
      for (const auto& [name, ds] : results.value()) {
        regions += ds.TotalRegions();
      }
      std::printf("[%llu] ok: %zu outputs, %llu regions, %.1f ms\n",
                  static_cast<unsigned long long>(queries_),
                  results.value().size(),
                  static_cast<unsigned long long>(regions), entry.wall_ms);
      if (explain && entry.profile != nullptr) {
        std::printf("%s", entry.profile->RenderTree().c_str());
      }
    } else {
      ++failed_;
      entry = core::MakeQueryLogEntry(gmql, core::RunStats{},
                                      results.status().ToString());
      entry.wall_ms = wall_ms;
      std::printf("[%llu] error: %s\n",
                  static_cast<unsigned long long>(queries_),
                  results.status().ToString().c_str());
    }
    if (entry.wall_ms >= config_.slow_ms) ++slow_;
    if (log_ != nullptr) log_->Record(entry);
    obs::Tracer::Global().Clear();
  }

  /// --workers mode: runs the query through the session manager (admission
  /// control, plan cache, result cache over catalog snapshots).
  void ExecServe(const std::string& gmql_in) {
    std::string gmql = gmql_in;
    bool explain = StripExplainAnalyze(&gmql);
    serve::ServeResponse resp = manager_->Execute(gmql);
    ++queries_;
    obs::QueryLogEntry entry;
    if (resp.status.ok()) {
      entry = core::MakeQueryLogEntry(gmql, resp.stats);
      entry.wall_ms = resp.total_ms;
      size_t outputs = 0;
      uint64_t regions = 0;
      if (resp.results != nullptr) {
        outputs = resp.results->size();
        for (const auto& [name, ds] : *resp.results) {
          regions += ds.TotalRegions();
        }
      }
      std::printf(
          "[%llu] ok: %zu outputs, %llu regions, %.1f ms "
          "(plan %s%s, queue %.1f ms, worker %llu)\n",
          static_cast<unsigned long long>(resp.id), outputs,
          static_cast<unsigned long long>(regions), resp.total_ms,
          resp.plan_cache, resp.result_cache_hit ? " + result cache" : "",
          resp.queue_ms, static_cast<unsigned long long>(resp.worker));
      if (explain && entry.profile != nullptr) {
        std::printf("%s", entry.profile->RenderTree().c_str());
      }
    } else {
      ++failed_;
      entry = core::MakeQueryLogEntry(gmql, core::RunStats{},
                                      resp.status.ToString());
      entry.wall_ms = resp.total_ms;
      std::printf("[%llu] error: %s\n",
                  static_cast<unsigned long long>(resp.id),
                  resp.status.ToString().c_str());
    }
    entry.serve = true;
    entry.session_id = resp.id;
    entry.queue_ms = resp.queue_ms;
    entry.plan_cache = resp.plan_cache;
    entry.result_cache_hit = resp.result_cache_hit;
    if (resp.trace != nullptr) {
      entry.trace_id = resp.trace->id.ToHex();
      entry.critical_path = obs::CriticalPath(*resp.trace);
    }
    if (entry.wall_ms >= config_.slow_ms) ++slow_;
    if (log_ != nullptr) log_->Record(entry);
    obs::Tracer::Global().Clear();
  }

  /// Runs the query over a lazily built in-process federation (two sites,
  /// both holding every registered dataset) so federation counters, hops
  /// and per-site staging gauges show real traffic in the exposition.
  void ExecFederated(const std::string& gmql) {
    EnsureFederation();
    repo::ProtocolCounters before = coordinator_->counters();
    const repo::FedStats before_fed = coordinator_->fed_stats();
    // Deterministic trace identity: the per-session .fed sequence number and
    // the transport seed, so two runs with the same seed and query order
    // mint identical trace ids and (virtual-time spans) identical traces.
    coordinator_->BeginTrace(
        obs::MintTraceId(++fed_trace_seq_, config_.fed_link.seed));
    auto start = std::chrono::steady_clock::now();
    auto results = coordinator_->RunEverywhere(gmql);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    ++queries_;
    obs::QueryLogEntry entry;
    entry.query = ".fed " + gmql;
    entry.wall_ms = wall_ms;
    const repo::ProtocolCounters& after = coordinator_->counters();
    entry.fed_requests = after.requests - before.requests;
    entry.fed_bytes_shipped = after.bytes_sent - before.bytes_sent;
    entry.fed_bytes_received = after.bytes_received - before.bytes_received;
    if (results.ok()) {
      const repo::FederatedResult& fed = results.value();
      const repo::FedStats& stats = coordinator_->fed_stats();
      std::printf(
          "[%llu] ok (federated, %s): %zu outputs, %llu requests, "
          "%s shipped, %s received, %.1f ms\n",
          static_cast<unsigned long long>(queries_), fed.Annotation().c_str(),
          fed.datasets.size(),
          static_cast<unsigned long long>(entry.fed_requests),
          HumanBytes(entry.fed_bytes_shipped).c_str(),
          HumanBytes(entry.fed_bytes_received).c_str(), wall_ms);
      if (stats.retries + stats.hedges + stats.timeouts +
              stats.breaker_trips >
          0) {
        std::printf(
            "      resilience: %llu retries, %llu hedges, %llu timeouts, "
            "%llu breaker trips, %s wasted\n",
            static_cast<unsigned long long>(stats.retries),
            static_cast<unsigned long long>(stats.hedges),
            static_cast<unsigned long long>(stats.timeouts),
            static_cast<unsigned long long>(stats.breaker_trips),
            HumanBytes(stats.wasted_bytes).c_str());
      }
    } else {
      ++failed_;
      entry.ok = false;
      entry.error = results.status().ToString();
      std::printf("[%llu] error (federated): %s\n",
                  static_cast<unsigned long long>(queries_),
                  entry.error.c_str());
    }
    // Tail-based retention: faulted (retry/hedge/timeout/breaker activity),
    // partial, errored or slow federated queries keep their stitched trace
    // in the exemplar ring; clean fast ones only contribute to the
    // critical-path histograms.
    const repo::FedStats& after_fed = coordinator_->fed_stats();
    bool faulted = (after_fed.retries - before_fed.retries) +
                       (after_fed.hedges - before_fed.hedges) +
                       (after_fed.timeouts - before_fed.timeouts) +
                       (after_fed.breaker_fast_fails -
                        before_fed.breaker_fast_fails) >
                   0;
    bool partial = results.ok() && !results.value().complete();
    std::string reason;
    if (!results.ok()) {
      reason = "error";
    } else if (partial) {
      reason = "partial";
    } else if (faulted) {
      reason = "faulted";
    } else if (wall_ms >= config_.slow_ms) {
      reason = "slow";
    }
    auto trace = std::make_shared<const obs::DistTrace>(
        coordinator_->FinishTrace(reason));
    std::vector<obs::PathSegment> critical = obs::CriticalPath(*trace);
    obs::RecordCriticalPathMetrics(critical);
    if (!reason.empty()) obs::TraceExemplars::Global().Keep(trace);
    entry.trace_id = trace->id.ToHex();
    entry.critical_path = std::move(critical);
    if (entry.wall_ms >= config_.slow_ms) ++slow_;
    if (log_ != nullptr) log_->Record(entry);
    obs::Tracer::Global().Clear();
  }

  void EnsureFederation() {
    if (coordinator_ != nullptr) return;
    coordinator_ = std::make_unique<repo::Coordinator>();
    size_t sites = std::max<size_t>(config_.fed_sites, 1);
    for (size_t s = 0; s < sites; ++s) {
      std::string name = "site_" + std::string(1, static_cast<char>('a' + s));
      auto node = std::make_unique<repo::FederatedNode>(name);
      for (const auto& ds_name : runner_->DatasetNames()) {
        node->catalog()->Put(*runner_->FindDataset(ds_name));
      }
      coordinator_->AddNode(node.get());
      repo::LinkProfile profile = config_.fed_link;
      profile.seed = config_.fed_link.seed + s;  // distinct fault schedules
      coordinator_->transport()->SetLinkProfile(name, profile);
      sites_.push_back(std::move(node));
    }
    std::printf(
        "federation up: %zu sites, %zu datasets each "
        "(link: %llums latency, drop %.2f, stall %.2f, corrupt %.2f%s)\n",
        sites_.size(), runner_->DatasetNames().size(),
        static_cast<unsigned long long>(config_.fed_link.latency_us / 1000),
        config_.fed_link.drop_rate, config_.fed_link.stall_rate,
        config_.fed_link.corrupt_rate,
        config_.fed_link.dead ? ", DEAD" : "");
  }

  core::QueryRunner* runner_;
  ServeConfig config_;
  std::unique_ptr<serve::ServeCatalog> catalog_;
  std::unique_ptr<serve::SessionManager> manager_;
  std::unique_ptr<obs::QueryLog> log_;
  std::vector<std::unique_ptr<repo::FederatedNode>> sites_;
  std::unique_ptr<repo::Coordinator> coordinator_;
  uint64_t queries_ = 0;
  uint64_t failed_ = 0;
  uint64_t slow_ = 0;
  /// .fed queries issued — the deterministic half of each .fed trace id.
  uint64_t fed_trace_seq_ = 0;
};

/// Parses "chr1:0-2000000".
Result<io::TrackWindow> ParseWindow(const std::string& spec) {
  auto colon = spec.find(':');
  auto dash = spec.find('-', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || dash == std::string::npos) {
    return Status::InvalidArgument("window must be CHR:LEFT-RIGHT: " + spec);
  }
  io::TrackWindow window;
  window.chrom = gdm::InternChrom(spec.substr(0, colon));
  GDMS_ASSIGN_OR_RETURN(window.left,
                        ParseInt64(spec.substr(colon + 1, dash - colon - 1)));
  GDMS_ASSIGN_OR_RETURN(window.right, ParseInt64(spec.substr(dash + 1)));
  window.width = 100;
  return window;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> loads;
  std::string query_file;
  std::string exec_text;
  std::string out_dir;
  std::string repo_dir;
  std::string save_repo_dir;
  std::string show_window;
  std::string trace_path;
  bool print_metrics = false;
  bool parallel = false;
  size_t threads = 0;
  bool optimize = true;
  bool fusion = true;
  bool columnar = true;
  bool gdmz_selftest = false;
  bool demo = false;
  bool serve = false;
  double mem_budget_mb = 0;
  ServeConfig serve_config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Fail("--load needs NAME=FILE");
      std::string spec = v;
      auto eq = spec.find('=');
      if (eq == std::string::npos) return Fail("--load needs NAME=FILE");
      loads.push_back({spec.substr(0, eq), spec.substr(eq + 1)});
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Fail("--query needs a file");
      query_file = v;
    } else if (arg == "--exec") {
      const char* v = next();
      if (v == nullptr) return Fail("--exec needs GMQL text");
      exec_text = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Fail("--out needs a directory");
      out_dir = v;
    } else if (arg == "--repo") {
      const char* v = next();
      if (v == nullptr) return Fail("--repo needs a directory");
      repo_dir = v;
    } else if (arg == "--save-repo") {
      const char* v = next();
      if (v == nullptr) return Fail("--save-repo needs a directory");
      save_repo_dir = v;
    } else if (arg == "--show") {
      const char* v = next();
      if (v == nullptr) return Fail("--show needs CHR:LEFT-RIGHT");
      show_window = v;
    } else if (arg == "--parallel") {
      parallel = true;
      if (i + 1 < argc &&
          std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
        threads = static_cast<size_t>(std::atoi(argv[++i]));
      }
    } else if (arg == "--no-optimize") {
      optimize = false;
    } else if (arg == "--no-fusion") {
      fusion = false;
    } else if (arg == "--no-columnar") {
      columnar = false;
    } else if (arg == "--gdmz-selftest") {
      gdmz_selftest = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Fail("--trace needs an output file");
      trace_path = v;
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Fail("--workers needs a count");
      serve_config.workers = static_cast<size_t>(std::atoi(v));
      if (serve_config.workers < 1) return Fail("--workers wants >= 1");
    } else if (arg == "--queue-limit") {
      const char* v = next();
      if (v == nullptr) return Fail("--queue-limit needs a count");
      serve_config.queue_limit = static_cast<size_t>(std::atoi(v));
      if (serve_config.queue_limit < 1) return Fail("--queue-limit wants >= 1");
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Fail("--deadline-ms needs milliseconds");
      serve_config.deadline_ms = std::atof(v);
    } else if (arg == "--sample-ms") {
      const char* v = next();
      if (v == nullptr) return Fail("--sample-ms needs a period");
      serve_config.sample_ms = std::atoll(v);
    } else if (arg == "--query-log") {
      const char* v = next();
      if (v == nullptr) return Fail("--query-log needs a file");
      serve_config.query_log_path = v;
    } else if (arg == "--slow-ms") {
      const char* v = next();
      if (v == nullptr) return Fail("--slow-ms needs a threshold");
      serve_config.slow_ms = std::atof(v);
    } else if (arg == "--expo") {
      const char* v = next();
      if (v == nullptr) return Fail("--expo needs a file");
      serve_config.expo_path = v;
    } else if (arg == "--fed-drop") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-drop needs a rate in [0,1]");
      serve_config.fed_link.drop_rate = std::atof(v);
    } else if (arg == "--fed-stall") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-stall needs a rate in [0,1]");
      serve_config.fed_link.stall_rate = std::atof(v);
    } else if (arg == "--fed-corrupt") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-corrupt needs a rate in [0,1]");
      serve_config.fed_link.corrupt_rate = std::atof(v);
    } else if (arg == "--fed-latency-us") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-latency-us needs microseconds");
      serve_config.fed_link.latency_us =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--fed-seed") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-seed needs an integer");
      serve_config.fed_link.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--fed-dead") {
      serve_config.fed_link.dead = true;
    } else if (arg == "--fed-sites") {
      const char* v = next();
      if (v == nullptr) return Fail("--fed-sites needs a count");
      serve_config.fed_sites = static_cast<size_t>(std::atoi(v));
      if (serve_config.fed_sites < 1 || serve_config.fed_sites > 26) {
        return Fail("--fed-sites wants 1..26 sites");
      }
    } else if (arg == "--mem-budget-mb") {
      const char* v = next();
      if (v == nullptr) return Fail("--mem-budget-mb needs a size in MB");
      mem_budget_mb = std::atof(v);
      if (mem_budget_mb <= 0) {
        return Fail("--mem-budget-mb needs a positive size in MB");
      }
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: gdms_shell [--repo DIR] [--load NAME=FILE]...\n"
          "                  [--query FILE | --exec GMQL]\n"
          "                  [--out DIR] [--parallel [N]] [--no-optimize]\n"
          "                  [--no-fusion] [--no-columnar]\n"
          "                  [--show CHR:LEFT-RIGHT] [--demo]\n"
          "                  [--gdmz-selftest] [--mem-budget-mb X]\n"
          "                  [--trace FILE.json] [--metrics]\n"
          "                  [--serve] [--workers N] [--queue-limit N]\n"
          "                  [--deadline-ms X] [--sample-ms N] [--expo FILE]\n"
          "                  [--query-log FILE] [--slow-ms X]\n"
          "                  [--fed-sites N] [--fed-drop R] [--fed-stall R]\n"
          "                  [--fed-corrupt R] [--fed-latency-us N]\n"
          "                  [--fed-seed N] [--fed-dead]\n"
          "       prefix GMQL text with EXPLAIN ANALYZE for a profile tree\n"
          "       --serve reads commands from stdin; see .help");
      return 0;
    } else {
      return Fail("unknown argument " + arg + " (try --help)");
    }
  }

  if (gdmz_selftest) return RunGdmzSelftest();

  if (mem_budget_mb > 0) {
    obs::ResourceTracker::Global().set_budget_bytes(
        static_cast<uint64_t>(mem_budget_mb * 1024.0 * 1024.0));
  }

  std::unique_ptr<engine::ParallelExecutor> executor;
  std::unique_ptr<core::QueryRunner> runner;
  if (parallel) {
    engine::EngineOptions options;
    options.threads = threads;
    executor = std::make_unique<engine::ParallelExecutor>(options);
    runner = std::make_unique<core::QueryRunner>(executor.get());
  } else {
    runner = std::make_unique<core::QueryRunner>();
  }
  runner->set_optimize(optimize);
  runner->set_fusion(fusion);
  runner->set_columnar(columnar);

  if (demo) LoadDemo(runner.get());
  if (!repo_dir.empty()) {
    repo::Catalog catalog;
    Status st = catalog.LoadFrom(repo_dir);
    if (!st.ok()) return Fail(st.ToString());
    for (const auto& name : catalog.Names()) {
      std::printf("loaded %s from repository (%llu regions)\n", name.c_str(),
                  static_cast<unsigned long long>(
                      catalog.Get(name)->TotalRegions()));
      runner->RegisterDataset(*catalog.Get(name));
    }
  }
  for (const auto& [name, path] : loads) {
    auto ds = LoadFile(name, path);
    if (!ds.ok()) return Fail(ds.status().ToString());
    std::printf("loaded %s: %zu samples, %llu regions [%s]\n", name.c_str(),
                ds.value().num_samples(),
                static_cast<unsigned long long>(ds.value().TotalRegions()),
                ds.value().schema().ToString().c_str());
    runner->RegisterDataset(std::move(ds).ValueOrDie());
  }
  if (runner->DatasetNames().empty()) {
    return Fail("no datasets loaded (use --load or --demo)");
  }

  if (serve) {
    // Per-worker engine threads: an explicit --parallel N carries over; a
    // bare --parallel gets a modest 2 per worker (N workers already run
    // concurrently, so hardware-wide intra-query pools would oversubscribe).
    serve_config.engine_threads = parallel ? (threads > 0 ? threads : 2) : 1;
    serve_config.exec.optimize = optimize;
    serve_config.exec.fusion = fusion;
    serve_config.exec.columnar = columnar;
    ServeSession session(runner.get(), serve_config);
    return session.Loop();
  }

  std::string gmql = exec_text;
  if (gmql.empty() && !query_file.empty()) {
    std::ifstream in(query_file);
    if (!in) return Fail("cannot open query file " + query_file);
    std::ostringstream buf;
    buf << in.rdbuf();
    gmql = buf.str();
  }
  if (gmql.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    gmql = buf.str();
  }
  if (Trim(gmql).empty()) return Fail("empty query (use --exec or --query)");

  bool explain = StripExplainAnalyze(&gmql);
  if (Trim(gmql).empty()) {
    return Fail("EXPLAIN ANALYZE needs a query to follow it");
  }
  if (explain || !trace_path.empty()) {
    obs::Tracer::Global().set_enabled(true);
  }

  auto results = runner->Run(gmql);
  if (!results.ok()) return Fail(results.status().ToString());

  for (const auto& [name, ds] : results.value()) {
    std::printf("%s: %zu samples, %llu regions, ~%s [%s]\n", name.c_str(),
                ds.num_samples(),
                static_cast<unsigned long long>(ds.TotalRegions()),
                HumanBytes(ds.EstimateBytes()).c_str(),
                ds.schema().ToString().c_str());
    if (!out_dir.empty()) {
      std::string path = out_dir + "/" + name + ".gdm";
      std::ofstream out(path);
      if (!out) return Fail("cannot write " + path);
      io::WriteGdm(ds, out);
      std::printf("  wrote %s\n", path.c_str());
    }
    if (!show_window.empty()) {
      auto window = ParseWindow(show_window);
      if (!window.ok()) return Fail(window.status().ToString());
      io::TrackRenderer renderer(window.value());
      for (const auto& s : ds.samples()) {
        renderer.AddTrack(name + "/" + std::to_string(s.id), s.regions);
      }
      auto rendered = renderer.Render();
      if (rendered.ok()) std::fputs(rendered.value().c_str(), stdout);
    }
  }
  if (!save_repo_dir.empty()) {
    repo::Catalog catalog;
    for (const auto& [name, ds] : results.value()) catalog.Put(ds);
    Status st = catalog.SaveTo(save_repo_dir);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("saved %zu datasets to repository %s\n",
                results.value().size(), save_repo_dir.c_str());
  }
  if (explain) {
    const auto& profile = runner->last_stats().profile;
    if (profile != nullptr) {
      std::printf("\nEXPLAIN ANALYZE\n%s", profile->RenderTree().c_str());
    }
  }
  if (!trace_path.empty()) {
    obs::Profile full(obs::Tracer::Global().TakeAll());
    if (!full.WriteChromeTrace(trace_path)) {
      return Fail("cannot write trace to " + trace_path);
    }
    std::printf("wrote trace to %s (%zu spans)\n", trace_path.c_str(),
                full.spans().size());
  }
  if (print_metrics) {
    std::fputs(obs::MetricsRegistry::Global().RenderText().c_str(), stdout);
  }
  std::printf("done: %zu operators, %zu memo hits, %.3f s\n",
              runner->last_stats().operators_evaluated,
              runner->last_stats().cache_hits,
              runner->last_stats().wall_seconds);
  return 0;
}
