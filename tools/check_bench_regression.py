#!/usr/bin/env python3
"""Compare a bench_e1 JSON report against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]

Fails (exit 1) when:
  * a scale row's wall_seconds regressed by more than the tolerance,
  * the fusion speedup dropped below baseline * (1 - tolerance),
  * fusion stopped eliminating intermediate datasets or chains
    (these are exact counts, not timings — any increase is a bug),
  * a scale row's result shape (result_regions) changed.

Timing improvements and faster rows are reported but never fail the gate.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def runs_by_samples(report):
    return {run["samples"]: run for run in report.get("runs", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown before failing (default 0.15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    tol = args.tolerance
    failures = []
    notes = []

    base_runs = runs_by_samples(baseline)
    cur_runs = runs_by_samples(current)
    for samples, base in sorted(base_runs.items()):
        cur = cur_runs.get(samples)
        if cur is None:
            failures.append(f"scale row samples={samples} missing from current report")
            continue
        if base.get("result_regions") != cur.get("result_regions"):
            failures.append(
                f"samples={samples}: result_regions changed "
                f"{base.get('result_regions')} -> {cur.get('result_regions')}"
            )
        bw, cw = base["wall_seconds"], cur["wall_seconds"]
        ratio = cw / bw
        line = f"samples={samples}: wall {bw:.3f}s -> {cw:.3f}s ({ratio:.2f}x)"
        if ratio > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)

    for key in ("fusion_off_seconds", "fusion_on_seconds"):
        if key in baseline and key in current:
            ratio = current[key] / baseline[key]
            line = f"{key}: {baseline[key]:.3f}s -> {current[key]:.3f}s ({ratio:.2f}x)"
            if ratio > 1 + tol:
                failures.append(line + f" exceeds +{tol:.0%} tolerance")
            else:
                notes.append(line)

    if "fusion_speedup" in baseline and "fusion_speedup" in current:
        bs, cs = baseline["fusion_speedup"], current["fusion_speedup"]
        line = f"fusion_speedup: {bs:.2f}x -> {cs:.2f}x"
        if cs < bs * (1 - tol):
            failures.append(line + f" dropped more than {tol:.0%}")
        else:
            notes.append(line)

    # Allocation counts are deterministic: any increase means fusion broke.
    for key in ("fusion_intermediates_on", "fusion_intermediates_off"):
        if key in baseline and key in current and current[key] > baseline[key]:
            failures.append(f"{key}: {baseline[key]} -> {current[key]} (increase)")
    if current.get("fusion_chains", 0) < baseline.get("fusion_chains", 0):
        failures.append(
            f"fusion_chains: {baseline['fusion_chains']} -> "
            f"{current['fusion_chains']} (fusion stopped firing)"
        )

    for note in notes:
        print(f"ok   {note}")
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond {tol:.0%} tolerance")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
