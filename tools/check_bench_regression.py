#!/usr/bin/env python3
"""Compare a bench JSON report against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]

The report schema is auto-detected from the `experiment` field:

bench_e1 reports fail (exit 1) when:
  * a scale row's wall_seconds regressed by more than the tolerance,
  * the fusion speedup dropped below baseline * (1 - tolerance),
  * fusion stopped eliminating intermediate datasets or chains
    (these are exact counts, not timings — any increase is a bug),
  * a scale row's result shape (result_regions) changed.

bench_e7 reports fail when:
  * the columnar speedup at max threads falls below the 1.5x acceptance
    floor or below baseline * (1 - tolerance),
  * the .gdmz/.gdm size ratio falls below the 3x acceptance floor or the
    encoded size grew beyond tolerance (both figures are byte counts of a
    seeded corpus, so they are machine-independent),
  * bytes_resident is missing or grew beyond tolerance,
  * a (threads, scheduling, columnar) row's wall_seconds regressed beyond
    the tolerance, or its task count changed (task counts are exact).

bench_e8 reports fail when:
  * any retryable-fault scenario (fault_free, flaky_fetch, straggler_*)
    drops below success rate 1.0 or stops being bit-identical to the
    fault-free result — the resilience layer must absorb retryable faults
    completely,
  * flaky_fetch retry amplification (requests vs fault_free) exceeds the
    3x floor, or its retries drop to zero (the scenario stopped injecting),
  * dead_site stops producing a partial result (completeness != 0.5) or
    its breaker never trips,
  * straggler_hedged stops hedging, or its simulated makespan is no longer
    faster than straggler_unhedged,
  * a scenario's simulated makespan drifts from baseline at all — virtual
    time is deterministic, so any change means behavior changed,
  * the query-shipping advantage falls below the 10x floor.

bench_e9_serve reports fail when:
  * any phase loses a response (admitted but never answered), duplicates
    one, or answers with an error — exact counts, never tolerated,
  * worker scaling at the max worker count falls below half the expected
    parallelism min(workers, hardware_threads) — on an 8-core host that is
    the 4x acceptance floor; on smaller hosts the floor shrinks with the
    hardware instead of demanding impossible speedups,
  * the warm plan-cache hit rate of the open-loop phase drops below 90%,
  * open-loop p99 latency regressed beyond the tolerance AND sits above an
    absolute grace floor (sub-5ms p99 never fails: on shared runners the
    worst sample of a few hundred is scheduler noise),
  * the overload burst stops being shed (zero rejections means admission
    control no longer applies backpressure) or a Submit call stalled long
    enough to look like it blocked on execution.

Timing improvements and faster rows are reported but never fail the gate.
"""

import argparse
import json
import sys

# Acceptance floors from the E7 columnar-storage work: the columnar fast
# path must stay >= 1.5x over the row path at the max measured thread
# count, and .gdmz must stay >= 3x smaller than the text format. These are
# absolute (not relative-to-baseline) so a slow baseline can never mask a
# real regression below the shipped figures.
E7_MIN_COLUMNAR_SPEEDUP = 1.5
E7_MIN_SIZE_RATIO = 3.0

# Acceptance floors from the E8 federation-resilience work. Retryable
# faults must be absorbed completely (success 1.0, bit-identical results)
# with bounded retry amplification; query shipping must stay far cheaper
# than data shipping. Absolute, so a bad baseline can never mask them.
E8_MAX_RETRY_AMPLIFICATION = 3.0
E8_MIN_SHIPPING_ADVANTAGE = 10.0
E8_RETRYABLE_SCENARIOS = ("fault_free", "flaky_fetch", "straggler_unhedged",
                          "straggler_hedged")

# Acceptance floors from the E9 serve work. The scaling floor is half the
# expected parallelism min(workers, hardware_threads): 4x at 8 workers on
# an 8-core host (the shipped acceptance figure), proportionally less on
# smaller machines where 8 workers cannot physically beat the core count.
E9_MIN_PLAN_HIT_RATE = 0.90
E9_SCALING_FRACTION = 0.5
E9_MAX_SUBMIT_STALL_MS = 1000.0
# p99 over a few hundred samples is the worst couple of requests — one OS
# scheduling hiccup moves it 10x on a shared runner. Below this grace floor
# the p99 always passes; above it, the relative tolerance applies (which is
# what catches a real serialization bug pushing tail latency to tens of ms).
E9_P99_GRACE_MS = 5.0


def load(path):
    with open(path) as f:
        return json.load(f)


def runs_by_samples(report):
    return {run["samples"]: run for run in report.get("runs", [])}


def check_e1(baseline, current, tol, failures, notes):
    base_runs = runs_by_samples(baseline)
    cur_runs = runs_by_samples(current)
    for samples, base in sorted(base_runs.items()):
        cur = cur_runs.get(samples)
        if cur is None:
            failures.append(f"scale row samples={samples} missing from current report")
            continue
        if base.get("result_regions") != cur.get("result_regions"):
            failures.append(
                f"samples={samples}: result_regions changed "
                f"{base.get('result_regions')} -> {cur.get('result_regions')}"
            )
        bw, cw = base["wall_seconds"], cur["wall_seconds"]
        ratio = cw / bw
        line = f"samples={samples}: wall {bw:.3f}s -> {cw:.3f}s ({ratio:.2f}x)"
        if ratio > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)

    for key in ("fusion_off_seconds", "fusion_on_seconds"):
        if key in baseline and key in current:
            ratio = current[key] / baseline[key]
            line = f"{key}: {baseline[key]:.3f}s -> {current[key]:.3f}s ({ratio:.2f}x)"
            if ratio > 1 + tol:
                failures.append(line + f" exceeds +{tol:.0%} tolerance")
            else:
                notes.append(line)

    if "fusion_speedup" in baseline and "fusion_speedup" in current:
        bs, cs = baseline["fusion_speedup"], current["fusion_speedup"]
        line = f"fusion_speedup: {bs:.2f}x -> {cs:.2f}x"
        if cs < bs * (1 - tol):
            failures.append(line + f" dropped more than {tol:.0%}")
        else:
            notes.append(line)

    # Allocation counts are deterministic: any increase means fusion broke.
    for key in ("fusion_intermediates_on", "fusion_intermediates_off"):
        if key in baseline and key in current and current[key] > baseline[key]:
            failures.append(f"{key}: {baseline[key]} -> {current[key]} (increase)")
    if current.get("fusion_chains", 0) < baseline.get("fusion_chains", 0):
        failures.append(
            f"fusion_chains: {baseline['fusion_chains']} -> "
            f"{current['fusion_chains']} (fusion stopped firing)"
        )


def e7_rows(report):
    return {
        (run["threads"], run["scheduling"], run.get("columnar", 1)): run
        for run in report.get("runs", [])
    }


def check_e7(baseline, current, tol, failures, notes):
    # Absolute acceptance floors first: these hold regardless of baseline.
    speedup = current.get("columnar_speedup_at_max_threads")
    if speedup is None:
        failures.append("columnar_speedup_at_max_threads missing from report")
    else:
        line = f"columnar_speedup_at_max_threads: {speedup:.2f}x (floor {E7_MIN_COLUMNAR_SPEEDUP}x)"
        if speedup < E7_MIN_COLUMNAR_SPEEDUP:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)
        base_speedup = baseline.get("columnar_speedup_at_max_threads")
        if base_speedup and speedup < base_speedup * (1 - tol):
            failures.append(
                f"columnar_speedup_at_max_threads: {base_speedup:.2f}x -> "
                f"{speedup:.2f}x dropped more than {tol:.0%}"
            )

    ratio = current.get("size_ratio")
    if ratio is None:
        failures.append("size_ratio missing from report")
    else:
        line = f"size_ratio (text/.gdmz): {ratio:.2f}x (floor {E7_MIN_SIZE_RATIO}x)"
        if ratio < E7_MIN_SIZE_RATIO:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)

    # Byte figures are seeded-corpus counts — machine-independent, so drift
    # means the encoder (or corpus) actually changed.
    for key in ("gdmz_bytes", "bytes_resident"):
        if key not in current:
            failures.append(f"{key} missing from report")
            continue
        base = baseline.get(key)
        if base is None:
            notes.append(f"{key}: {current[key]} (no baseline figure)")
            continue
        growth = current[key] / base
        line = f"{key}: {base} -> {current[key]} ({growth:.2f}x)"
        if growth > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)

    base_rows = e7_rows(baseline)
    cur_rows = e7_rows(current)
    for key, base in sorted(base_rows.items()):
        cur = cur_rows.get(key)
        threads, scheduling, columnar = key
        label = f"threads={threads} {scheduling}{' columnar' if columnar else ''}"
        if cur is None:
            failures.append(f"row {label} missing from current report")
            continue
        if base.get("tasks") != cur.get("tasks"):
            failures.append(
                f"{label}: tasks changed {base.get('tasks')} -> {cur.get('tasks')}"
            )
        bw, cw = base["wall_seconds"], cur["wall_seconds"]
        wall = cw / bw
        line = f"{label}: wall {bw:.3f}s -> {cw:.3f}s ({wall:.2f}x)"
        if wall > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)


def e8_rows(report):
    return {run["scenario"]: run for run in report.get("runs", [])}


def check_e8(baseline, current, tol, failures, notes):
    advantage = current.get("query_shipping_advantage_at_max_scale")
    if advantage is None:
        failures.append("query_shipping_advantage_at_max_scale missing")
    else:
        line = (
            f"query_shipping_advantage: {advantage:.1f}x "
            f"(floor {E8_MIN_SHIPPING_ADVANTAGE}x)"
        )
        if advantage < E8_MIN_SHIPPING_ADVANTAGE:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)

    base_rows = e8_rows(baseline)
    cur_rows = e8_rows(current)
    for name in base_rows:
        if name not in cur_rows:
            failures.append(f"scenario {name} missing from current report")
    for name, cur in sorted(cur_rows.items()):
        rate = cur.get("success_rate", 0)
        if name in E8_RETRYABLE_SCENARIOS:
            if rate != 1.0:
                failures.append(
                    f"{name}: success_rate {rate} != 1.0 under retryable faults"
                )
            else:
                notes.append(f"{name}: success_rate 1.00")
            if cur.get("bit_identical") != 1:
                failures.append(
                    f"{name}: results no longer bit-identical to fault-free"
                )
        # Virtual-time makespans are exact: any drift is a behavior change.
        base = base_rows.get(name)
        if base is not None and base.get("makespan_us") != cur.get("makespan_us"):
            failures.append(
                f"{name}: simulated makespan changed "
                f"{base.get('makespan_us')}us -> {cur.get('makespan_us')}us "
                "(virtual time is deterministic; behavior changed)"
            )

    flaky = cur_rows.get("flaky_fetch")
    if flaky is not None:
        amp = flaky.get("retry_amplification", 0)
        line = (
            f"flaky_fetch: retry_amplification {amp:.2f}x "
            f"(ceiling {E8_MAX_RETRY_AMPLIFICATION}x)"
        )
        if amp > E8_MAX_RETRY_AMPLIFICATION:
            failures.append(line + " above ceiling")
        else:
            notes.append(line)
        if flaky.get("retries", 0) == 0:
            failures.append("flaky_fetch: zero retries (faults not injected?)")

    dead = cur_rows.get("dead_site")
    if dead is not None:
        if dead.get("completeness") != 0.5:
            failures.append(
                f"dead_site: completeness {dead.get('completeness')} != 0.5 "
                "(partial-result degradation broke)"
            )
        else:
            notes.append("dead_site: completeness 0.50 (graceful partial)")
        if dead.get("breaker_trips", 0) < 1:
            failures.append("dead_site: breaker never tripped")

    hedged = cur_rows.get("straggler_hedged")
    unhedged = cur_rows.get("straggler_unhedged")
    if hedged is not None and unhedged is not None:
        if hedged.get("hedges", 0) == 0:
            failures.append("straggler_hedged: zero hedges fired")
        hm, um = hedged.get("makespan_us", 0), unhedged.get("makespan_us", 0)
        line = f"straggler makespan: hedged {hm}us vs unhedged {um}us"
        if hm >= um:
            failures.append(line + " (hedging no longer wins)")
        else:
            notes.append(line + f" ({um / hm:.2f}x faster)")


def e9_rows(report):
    return {run["phase"]: run for run in report.get("runs", [])
            if run.get("phase") != "capacity"} | {
        f"capacity_w{run['workers']}": run
        for run in report.get("runs", []) if run.get("phase") == "capacity"
    }


def check_e9(baseline, current, tol, failures, notes):
    # Response accounting is exact in every phase: a served query is
    # answered exactly once or the session layer is broken.
    for run in current.get("runs", []):
        label = run.get("phase", "?")
        for key in ("lost", "duplicates", "errors"):
            if run.get(key, 0) != 0:
                failures.append(f"{label}: {key} = {run.get(key)} (must be 0)")
        notes.append(
            f"{label}: submitted {run.get('submitted')}, admitted "
            f"{run.get('admitted')}, rejected {run.get('rejected')}, "
            f"lost/dup 0/0"
        )

    # Worker scaling, floored by what the hardware can deliver.
    scaling = current.get("scaling_at_max_workers")
    workers = current.get("workers_max", 8)
    hw = current.get("hardware_threads", 1)
    if scaling is None:
        failures.append("scaling_at_max_workers missing from report")
    else:
        expected = min(workers, max(1, hw))
        floor = max(E9_SCALING_FRACTION, E9_SCALING_FRACTION * expected)
        line = (
            f"scaling_at_max_workers: {scaling:.2f}x with {workers} workers "
            f"on {hw} hardware threads (floor {floor:.1f}x)"
        )
        if scaling < floor:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)

    cur_rows = e9_rows(current)
    base_rows = e9_rows(baseline)
    open_loop = cur_rows.get("open_loop")
    if open_loop is None:
        failures.append("open_loop phase missing from report")
    else:
        rate = open_loop.get("plan_hit_rate", 0)
        line = f"open_loop: plan_hit_rate {rate:.1%} (floor {E9_MIN_PLAN_HIT_RATE:.0%})"
        if rate < E9_MIN_PLAN_HIT_RATE:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)
        base_open = base_rows.get("open_loop")
        if base_open and base_open.get("p99_ms"):
            bp, cp = base_open["p99_ms"], open_loop.get("p99_ms", 0)
            ratio = cp / bp
            line = f"open_loop: p99 {bp:.2f}ms -> {cp:.2f}ms ({ratio:.2f}x)"
            if ratio > 1 + tol and cp > E9_P99_GRACE_MS:
                failures.append(line + f" exceeds +{tol:.0%} tolerance")
            else:
                notes.append(line)

    overload = cur_rows.get("overload")
    if overload is None:
        failures.append("overload phase missing from report")
    else:
        if overload.get("rejected", 0) < 1:
            failures.append(
                "overload: zero rejections — admission control stopped "
                "shedding load"
            )
        else:
            notes.append(
                f"overload: shed {overload['rejected']} of "
                f"{overload.get('submitted')} (backpressure engaged)"
            )
        stall = overload.get("max_submit_ms", 0)
        line = f"overload: max Submit stall {stall:.2f}ms (cap {E9_MAX_SUBMIT_STALL_MS:.0f}ms)"
        if stall > E9_MAX_SUBMIT_STALL_MS:
            failures.append(line + " — Submit appears to block under load")
        else:
            notes.append(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown before failing (default 0.15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    tol = args.tolerance
    failures = []
    notes = []

    experiment = current.get("experiment", "")
    if experiment != baseline.get("experiment", ""):
        failures.append(
            f"experiment mismatch: baseline {baseline.get('experiment')!r} "
            f"vs current {experiment!r}"
        )
    elif experiment.startswith("E7"):
        check_e7(baseline, current, tol, failures, notes)
    elif experiment.startswith("E8"):
        check_e8(baseline, current, tol, failures, notes)
    elif experiment.startswith("E9 serve"):
        check_e9(baseline, current, tol, failures, notes)
    else:
        check_e1(baseline, current, tol, failures, notes)

    for note in notes:
        print(f"ok   {note}")
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond {tol:.0%} tolerance")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
