#!/usr/bin/env python3
"""Compare a bench JSON report against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]

The report schema is auto-detected from the `experiment` field:

bench_e1 reports fail (exit 1) when:
  * a scale row's wall_seconds regressed by more than the tolerance,
  * the fusion speedup dropped below baseline * (1 - tolerance),
  * fusion stopped eliminating intermediate datasets or chains
    (these are exact counts, not timings — any increase is a bug),
  * a scale row's result shape (result_regions) changed.

bench_e7 reports fail when:
  * the columnar speedup at max threads falls below the 1.5x acceptance
    floor or below baseline * (1 - tolerance),
  * the .gdmz/.gdm size ratio falls below the 3x acceptance floor or the
    encoded size grew beyond tolerance (both figures are byte counts of a
    seeded corpus, so they are machine-independent),
  * bytes_resident is missing or grew beyond tolerance,
  * a (threads, scheduling, columnar) row's wall_seconds regressed beyond
    the tolerance, or its task count changed (task counts are exact).

Timing improvements and faster rows are reported but never fail the gate.
"""

import argparse
import json
import sys

# Acceptance floors from the E7 columnar-storage work: the columnar fast
# path must stay >= 1.5x over the row path at the max measured thread
# count, and .gdmz must stay >= 3x smaller than the text format. These are
# absolute (not relative-to-baseline) so a slow baseline can never mask a
# real regression below the shipped figures.
E7_MIN_COLUMNAR_SPEEDUP = 1.5
E7_MIN_SIZE_RATIO = 3.0


def load(path):
    with open(path) as f:
        return json.load(f)


def runs_by_samples(report):
    return {run["samples"]: run for run in report.get("runs", [])}


def check_e1(baseline, current, tol, failures, notes):
    base_runs = runs_by_samples(baseline)
    cur_runs = runs_by_samples(current)
    for samples, base in sorted(base_runs.items()):
        cur = cur_runs.get(samples)
        if cur is None:
            failures.append(f"scale row samples={samples} missing from current report")
            continue
        if base.get("result_regions") != cur.get("result_regions"):
            failures.append(
                f"samples={samples}: result_regions changed "
                f"{base.get('result_regions')} -> {cur.get('result_regions')}"
            )
        bw, cw = base["wall_seconds"], cur["wall_seconds"]
        ratio = cw / bw
        line = f"samples={samples}: wall {bw:.3f}s -> {cw:.3f}s ({ratio:.2f}x)"
        if ratio > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)

    for key in ("fusion_off_seconds", "fusion_on_seconds"):
        if key in baseline and key in current:
            ratio = current[key] / baseline[key]
            line = f"{key}: {baseline[key]:.3f}s -> {current[key]:.3f}s ({ratio:.2f}x)"
            if ratio > 1 + tol:
                failures.append(line + f" exceeds +{tol:.0%} tolerance")
            else:
                notes.append(line)

    if "fusion_speedup" in baseline and "fusion_speedup" in current:
        bs, cs = baseline["fusion_speedup"], current["fusion_speedup"]
        line = f"fusion_speedup: {bs:.2f}x -> {cs:.2f}x"
        if cs < bs * (1 - tol):
            failures.append(line + f" dropped more than {tol:.0%}")
        else:
            notes.append(line)

    # Allocation counts are deterministic: any increase means fusion broke.
    for key in ("fusion_intermediates_on", "fusion_intermediates_off"):
        if key in baseline and key in current and current[key] > baseline[key]:
            failures.append(f"{key}: {baseline[key]} -> {current[key]} (increase)")
    if current.get("fusion_chains", 0) < baseline.get("fusion_chains", 0):
        failures.append(
            f"fusion_chains: {baseline['fusion_chains']} -> "
            f"{current['fusion_chains']} (fusion stopped firing)"
        )


def e7_rows(report):
    return {
        (run["threads"], run["scheduling"], run.get("columnar", 1)): run
        for run in report.get("runs", [])
    }


def check_e7(baseline, current, tol, failures, notes):
    # Absolute acceptance floors first: these hold regardless of baseline.
    speedup = current.get("columnar_speedup_at_max_threads")
    if speedup is None:
        failures.append("columnar_speedup_at_max_threads missing from report")
    else:
        line = f"columnar_speedup_at_max_threads: {speedup:.2f}x (floor {E7_MIN_COLUMNAR_SPEEDUP}x)"
        if speedup < E7_MIN_COLUMNAR_SPEEDUP:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)
        base_speedup = baseline.get("columnar_speedup_at_max_threads")
        if base_speedup and speedup < base_speedup * (1 - tol):
            failures.append(
                f"columnar_speedup_at_max_threads: {base_speedup:.2f}x -> "
                f"{speedup:.2f}x dropped more than {tol:.0%}"
            )

    ratio = current.get("size_ratio")
    if ratio is None:
        failures.append("size_ratio missing from report")
    else:
        line = f"size_ratio (text/.gdmz): {ratio:.2f}x (floor {E7_MIN_SIZE_RATIO}x)"
        if ratio < E7_MIN_SIZE_RATIO:
            failures.append(line + " below acceptance floor")
        else:
            notes.append(line)

    # Byte figures are seeded-corpus counts — machine-independent, so drift
    # means the encoder (or corpus) actually changed.
    for key in ("gdmz_bytes", "bytes_resident"):
        if key not in current:
            failures.append(f"{key} missing from report")
            continue
        base = baseline.get(key)
        if base is None:
            notes.append(f"{key}: {current[key]} (no baseline figure)")
            continue
        growth = current[key] / base
        line = f"{key}: {base} -> {current[key]} ({growth:.2f}x)"
        if growth > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)

    base_rows = e7_rows(baseline)
    cur_rows = e7_rows(current)
    for key, base in sorted(base_rows.items()):
        cur = cur_rows.get(key)
        threads, scheduling, columnar = key
        label = f"threads={threads} {scheduling}{' columnar' if columnar else ''}"
        if cur is None:
            failures.append(f"row {label} missing from current report")
            continue
        if base.get("tasks") != cur.get("tasks"):
            failures.append(
                f"{label}: tasks changed {base.get('tasks')} -> {cur.get('tasks')}"
            )
        bw, cw = base["wall_seconds"], cur["wall_seconds"]
        wall = cw / bw
        line = f"{label}: wall {bw:.3f}s -> {cw:.3f}s ({wall:.2f}x)"
        if wall > 1 + tol:
            failures.append(line + f" exceeds +{tol:.0%} tolerance")
        else:
            notes.append(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown before failing (default 0.15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    tol = args.tolerance
    failures = []
    notes = []

    experiment = current.get("experiment", "")
    if experiment != baseline.get("experiment", ""):
        failures.append(
            f"experiment mismatch: baseline {baseline.get('experiment')!r} "
            f"vs current {experiment!r}"
        )
    elif experiment.startswith("E7"):
        check_e7(baseline, current, tol, failures, notes)
    else:
        check_e1(baseline, current, tol, failures, notes)

    for note in notes:
        print(f"ok   {note}")
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond {tol:.0%} tolerance")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
