// Ablation A2 — interval algebra strategy: streaming sweep vs interval tree.
//
// MAP-style aggregation can be computed by the engine's sorted sweep
// (OverlapJoin) or by stabbing an IntervalIndex per reference region. The
// sweep is the design choice for bulk operators (DESIGN.md); the index
// serves random access (feature search, browser probes). This ablation
// quantifies the crossover: sweeps win when the whole reference set is
// processed, indexes win for sparse point queries.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "interval/interval_tree.h"
#include "interval/sweep.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;
using gdm::GenomicRegion;

struct Workload {
  std::vector<GenomicRegion> refs;
  std::vector<GenomicRegion> exps;
};

Workload MakeWorkload(size_t refs_n, size_t exps_n) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 100000000);
  sim::PeakDatasetOptions opt;
  opt.num_samples = 1;
  opt.peaks_per_sample = exps_n;
  Workload w;
  w.exps = sim::GeneratePeakDataset(genome, opt, 3).sample(0).regions;
  auto catalog = sim::GenerateGenes(genome, refs_n, 3);
  for (const auto& g : catalog.genes) {
    w.refs.emplace_back(g.chrom, g.left, g.right, g.strand);
  }
  gdm::SortRegions(&w.refs);
  return w;
}

uint64_t CountBySweep(const Workload& w) {
  uint64_t total = 0;
  interval::OverlapJoin(w.refs, w.exps, [&](size_t, size_t) { ++total; });
  return total;
}

uint64_t CountByIndex(const Workload& w, const interval::IntervalIndex& index) {
  uint64_t total = 0;
  for (const auto& r : w.refs) {
    total += index.CountOverlaps(r.chrom, r.left, r.right);
  }
  return total;
}

void PrintTable() {
  bench::Header("A2 (ablation): sorted sweep vs interval-tree stabbing",
                "DESIGN.md design choice: bulk operators sweep; random "
                "probes stab an implicit interval tree");
  std::printf("%10s %10s %12s %12s %12s %12s\n", "refs", "exps", "build(ms)",
              "sweep(ms)", "index(ms)", "pairs");
  for (auto [refs_n, exps_n] :
       {std::pair<size_t, size_t>{100, 100000},
        std::pair<size_t, size_t>{3000, 100000},
        std::pair<size_t, size_t>{30000, 100000}}) {
    Workload w = MakeWorkload(refs_n, exps_n);
    Timer build_timer;
    interval::IntervalIndex index(w.exps);
    double build_ms = build_timer.Seconds() * 1000;
    Timer sweep_timer;
    uint64_t sweep_pairs = CountBySweep(w);
    double sweep_ms = sweep_timer.Seconds() * 1000;
    Timer index_timer;
    uint64_t index_pairs = CountByIndex(w, index);
    double index_ms = index_timer.Seconds() * 1000;
    std::printf("%10zu %10zu %12.2f %12.2f %12.2f %12s%s\n", w.refs.size(),
                w.exps.size(), build_ms, sweep_ms, index_ms,
                WithThousands(sweep_pairs).c_str(),
                sweep_pairs == index_pairs ? "" : "  !! MISMATCH");
  }
  bench::Note(
      "shape check: both strategies count identical pairs. The index "
      "amortizes its\nbuild only when few references probe many intervals; "
      "full-reference sweeps are\nthe right default for MAP/JOIN/COVER, the "
      "index for feature search.");
}

void BM_Sweep(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)), 50000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountBySweep(w));
  }
}
BENCHMARK(BM_Sweep)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_IndexProbe(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)), 50000);
  interval::IntervalIndex index(w.exps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountByIndex(w, index));
  }
}
BENCHMARK(BM_IndexProbe)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  Workload w = MakeWorkload(100, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    interval::IntervalIndex index(w.exps);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
