// E11 — Section 2/4.2: the logical optimizer.
//
// Runs queries that exercise each rewrite (SELECT fusion, meta-select
// pushdown through UNION, common-subexpression elimination) with the
// optimizer on and off, reporting operators evaluated, memo cache hits and
// wall time. Shape: identical results, fewer evaluated operators, lower
// time with the optimizer on.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

struct OptCase {
  const char* name;
  const char* gmql;
};

const OptCase kCases[] = {
    {"select fusion",
     "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
     "B = SELECT(antibody == 'CTCF') A;\n"
     "C = SELECT(region: signal >= 6) B;\n"
     "MATERIALIZE C;\n"},
    {"union pushdown",
     "U = UNION() ENCODE MARKS;\n"
     "S = SELECT(antibody == 'CTCF') U;\n"
     "M = MAP(n AS COUNT) PROMS S;\n"
     "MATERIALIZE M;\n"},
    {"cse",
     "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
     "M1 = MAP(n AS COUNT) PROMS A;\n"
     "B = SELECT(dataType == 'ChipSeq') ENCODE;\n"
     "M2 = MAP(n AS COUNT) PROMS B;\n"
     "MATERIALIZE M1; MATERIALIZE M2;\n"},
};

void RegisterData(core::QueryRunner* runner) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 80000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 8;
  popt.peaks_per_sample = 15000;
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, 5));
  popt.num_samples = 4;
  popt.antibodies = {"H3K27ac", "CTCF"};
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, 6, "MARKS"));
  auto catalog = sim::GenerateGenes(genome, 1500, 5);
  gdm::Dataset ann = sim::GenerateAnnotations(genome, catalog, {}, 5);
  // PROMS pre-extracted to keep the case queries focused.
  core::QueryRunner tmp;
  tmp.RegisterDataset(std::move(ann));
  auto proms = tmp.Run(
      "P = SELECT(annType == 'promoter') ANNOTATIONS;\nMATERIALIZE P INTO "
      "PROMS;\n");
  runner->RegisterDataset(proms.ValueOrDie().at("PROMS"));
}

struct OptRun {
  double seconds = 0;
  size_t operators = 0;
  size_t cache_hits = 0;
  uint64_t result_regions = 0;
  core::OptimizerStats stats;
};

OptRun RunCase(const char* gmql, bool optimize) {
  core::QueryRunner runner;
  runner.set_optimize(optimize);
  RegisterData(&runner);
  Timer timer;
  auto results = runner.Run(gmql);
  OptRun out;
  out.seconds = timer.Seconds();
  out.operators = runner.last_stats().operators_evaluated;
  out.cache_hits = runner.last_stats().cache_hits;
  out.stats = runner.last_stats().optimizer;
  for (const auto& [name, ds] : results.ValueOrDie()) {
    out.result_regions += ds.TotalRegions();
  }
  return out;
}

void PrintTable() {
  bench::Header("E11: logical optimizer on vs off",
                "Section 2 'three algebraic operations' expressiveness + "
                "Section 4.2's shared compiler/logical optimizer");
  std::printf("%-16s %-6s %10s %10s %10s %14s\n", "case", "opt", "sec",
              "operators", "cachehits", "result_regions");
  for (const auto& c : kCases) {
    OptRun off = RunCase(c.gmql, false);
    OptRun on = RunCase(c.gmql, true);
    std::printf("%-16s %-6s %10.3f %10zu %10zu %14s\n", c.name, "off",
                off.seconds, off.operators, off.cache_hits,
                WithThousands(off.result_regions).c_str());
    std::printf("%-16s %-6s %10.3f %10zu %10zu %14s\n", c.name, "on",
                on.seconds, on.operators, on.cache_hits,
                WithThousands(on.result_regions).c_str());
    std::printf("%-16s rewrites: fused=%zu pushed=%zu cse=%zu nodes %zu->%zu",
                "", on.stats.selects_fused,
                on.stats.selects_pushed_through_union,
                on.stats.nodes_deduplicated, on.stats.nodes_before,
                on.stats.nodes_after);
    std::printf(on.result_regions == off.result_regions
                    ? "  [results identical]\n"
                    : "  !! RESULT MISMATCH\n");
  }
  bench::Note(
      "shape check: every rewrite preserves results while reducing evaluated "
      "operators\n(CSE turns the duplicate MAP into a memo hit).");
}

void BM_OptimizedVsNot(benchmark::State& state) {
  bool optimize = state.range(0) == 1;
  for (auto _ : state) {
    OptRun run = RunCase(kCases[2].gmql, optimize);
    benchmark::DoNotOptimize(run.result_regions);
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
}
BENCHMARK(BM_OptimizedVsNot)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
