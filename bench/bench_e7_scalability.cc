// E7 — Section 4.2: parallel scalability of the binned executor, and the
// flat task graph vs the seed per-pair scheduler.
//
// The paper-scale workload shape is MANY samples against one reference
// (Section 2: 2,423 ENCODE samples), so the dominant parallelism axis is
// the sample pair, not the partitions within one pair. The seed scheduler
// looped pairs sequentially (one ParallelFor per pair: a sync point per
// pair, plus an O(|exp|) partitioner rescan per pair); the flat scheduler
// emits ONE task list spanning every pair x partition and reuses cached
// per-sample chromosome indexes. This bench runs the Section 2 MAP query on
// a many-samples dataset under both schedulers across thread counts and
// reports the per-thread-count speedup.

#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

const char* kQuery =
    "R = MAP(n AS COUNT, s AS SUM(signal)) PANELS ENCODE;\n"
    "MATERIALIZE R;\n";

// Many experiment samples mapped against several reference panels, the
// paper-scale workload shape (Section 2 averages ~35k peaks per ENCODE
// sample over a 22+2-chromosome genome). Every exp sample takes part in
// kRefPanels pairs, so the seed scheduler rescans each exp sample's regions
// kRefPanels times (MaxLenByChrom's std::map accumulation) and re-chunks
// every ref panel once per pair; the flat scheduler builds one cached
// ChromIndex per exp sample and one chunk list per panel.
constexpr size_t kRefPanels = 8;
constexpr size_t kPanelRegions = 400;
constexpr size_t kSamples = 96;
constexpr size_t kPeaksPerSample = 25000;
constexpr int64_t kBinSize = 10000000;

/// Generated once; each run copies out of the masters so dataset synthesis
/// stays off the clock and every run starts with cold chromosome indexes.
const gdm::GenomeAssembly& Genome() {
  static gdm::GenomeAssembly genome =
      gdm::GenomeAssembly::HumanLike(22, 80000000);
  return genome;
}

void RegisterData(core::QueryRunner* runner) {
  static const gdm::Dataset panels = [] {
    sim::PeakDatasetOptions popt;
    popt.num_samples = kRefPanels;
    popt.peaks_per_sample = kPanelRegions;
    gdm::Dataset ds = sim::GeneratePeakDataset(Genome(), popt, 13);
    ds.set_name("PANELS");
    return ds;
  }();
  static const gdm::Dataset peaks = [] {
    sim::PeakDatasetOptions popt;
    popt.num_samples = kSamples;
    popt.peaks_per_sample = kPeaksPerSample;
    return sim::GeneratePeakDataset(Genome(), popt, 7);
  }();
  runner->RegisterDataset(panels);
  runner->RegisterDataset(peaks);
}

struct RunResult {
  double seconds = 0;
  uint64_t tasks = 0;
  uint64_t partitions = 0;
};

RunResult RunOnce(size_t threads, engine::SchedulingMode scheduling,
                  bool columnar = true) {
  engine::EngineOptions options;
  options.threads = threads;
  options.bin_size = kBinSize;
  options.backend = engine::BackendKind::kPipelined;
  options.scheduling = scheduling;
  options.columnar = columnar;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  runner.set_columnar(columnar);
  RegisterData(&runner);
  Timer timer;
  auto results = runner.Run(kQuery);
  RunResult out;
  out.seconds = timer.Seconds();
  results.ValueOrDie();
  out.tasks = executor.trace().tasks.load();
  out.partitions = executor.trace().partitions.load();
  return out;
}

/// Best of `reps` runs: min wall time is the standard noise filter on a
/// shared/oversubscribed host.
RunResult RunWith(size_t threads, engine::SchedulingMode scheduling,
                  int reps = 3, bool columnar = true) {
  RunResult best = RunOnce(threads, scheduling, columnar);
  for (int i = 1; i < reps; ++i) {
    RunResult r = RunOnce(threads, scheduling, columnar);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

/// Storage figures on the bench's experiment corpus: text vs .gdmz encoded
/// sizes (the federation transfer figure) and the decoded in-memory
/// footprint. Machine-independent, so the regression gate can check ratios
/// without a host-speed fudge factor.
void PrintStorageFigures(bench::BenchJson* json) {
  sim::PeakDatasetOptions popt;
  popt.num_samples = kSamples;
  popt.peaks_per_sample = kPeaksPerSample;
  gdm::Dataset peaks = sim::GeneratePeakDataset(Genome(), popt, 7);
  size_t text_bytes = io::WriteGdmString(peaks).size();
  size_t gdmz_bytes = io::WriteGdmzString(peaks).size();
  uint64_t resident = peaks.EstimateResidentBytes();
  double ratio =
      gdmz_bytes > 0 ? static_cast<double>(text_bytes) / gdmz_bytes : 0;
  std::printf(
      "storage: text %.1f MiB, .gdmz %.1f MiB (%.2fx smaller), resident "
      "%.1f MiB\n",
      text_bytes / 1048576.0, gdmz_bytes / 1048576.0, ratio,
      resident / 1048576.0);
  json->top().Add("text_bytes", static_cast<uint64_t>(text_bytes));
  json->top().Add("gdmz_bytes", static_cast<uint64_t>(gdmz_bytes));
  json->top().Add("size_ratio", ratio);
  json->top().Add("bytes_resident", resident);
}

void PrintTable(bench::BenchJson* json) {
  bench::Header(
      "E7: flat (pair x partition) task graph vs seed per-pair scheduler",
      "Section 4.2: computational efficiency via parallel computing on "
      "clusters and clouds");
  size_t hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %zu\n", hw);
  std::printf(
      "workload: MAP of %zu ref panels x %zu exp samples (%zu pairs), "
      "%zu peaks/sample\n",
      kRefPanels, kSamples, kRefPanels * kSamples, kPeaksPerSample);
  json->top().Add("ref_panels", static_cast<uint64_t>(kRefPanels));
  json->top().Add("panel_regions", static_cast<uint64_t>(kPanelRegions));
  json->top().Add("samples", static_cast<uint64_t>(kSamples));
  json->top().Add("peaks_per_sample", static_cast<uint64_t>(kPeaksPerSample));
  json->top().Add("bin_size", kBinSize);
  json->top().Add("hardware_threads", static_cast<uint64_t>(hw));

  // Warm the allocator and page cache so the first measured config is not
  // penalized.
  (void)RunWith(1, engine::SchedulingMode::kFlat, 1);

  std::printf("%8s %12s %12s %12s %9s %9s %10s\n", "threads", "per-pair(s)",
              "flat-row(s)", "flat-col(s)", "sched-x", "col-x", "tasks");
  double flat_base = 0;
  double best_speedup = 0;
  double last_speedup = 0;
  double last_columnar_speedup = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    RunResult seed = RunWith(threads, engine::SchedulingMode::kPerPair);
    RunResult flat_row = RunWith(threads, engine::SchedulingMode::kFlat, 3,
                                 /*columnar=*/false);
    RunResult flat = RunWith(threads, engine::SchedulingMode::kFlat);
    double speedup = flat.seconds > 0 ? seed.seconds / flat.seconds : 0;
    double columnar_speedup =
        flat.seconds > 0 ? flat_row.seconds / flat.seconds : 0;
    best_speedup = std::max(best_speedup, speedup);
    last_speedup = speedup;
    last_columnar_speedup = columnar_speedup;
    if (threads == 1) flat_base = flat.seconds;
    std::printf("%8zu %12.3f %12.3f %12.3f %8.2fx %8.2fx %10llu\n", threads,
                seed.seconds, flat_row.seconds, flat.seconds, speedup,
                columnar_speedup,
                static_cast<unsigned long long>(flat.tasks));
    struct Row {
      engine::SchedulingMode mode;
      bool columnar;
      const RunResult* r;
    };
    const Row rows[] = {
        {engine::SchedulingMode::kPerPair, true, &seed},
        {engine::SchedulingMode::kFlat, false, &flat_row},
        {engine::SchedulingMode::kFlat, true, &flat},
    };
    for (const Row& row_spec : rows) {
      bench::JsonObject& row = json->NewRun();
      row.Add("threads", static_cast<uint64_t>(threads));
      row.Add("scheduling", engine::SchedulingModeName(row_spec.mode));
      row.Add("columnar", row_spec.columnar ? 1 : 0);
      row.Add("wall_seconds", row_spec.r->seconds);
      row.Add("tasks", row_spec.r->tasks);
      row.Add("partitions", row_spec.r->partitions);
    }
  }
  json->top().Add("speedup_at_max_threads", last_speedup);
  json->top().Add("columnar_speedup_at_max_threads", last_columnar_speedup);
  if (flat_base > 0) {
    bench::Note(
        "flat-vs-seed speedup holds the per-pair sync points and the "
        "per-pair O(|exp|)\npartitioner rescans constant (they are paid once "
        "per distinct sample, not once\nper pair); on multi-core hosts the "
        "flat list additionally parallelizes across\npairs, the dominant "
        "axis of the paper's 2,423-sample workload.");
  }
  if (hw <= 1) {
    bench::Note(
        "NOTE: this host exposes a single hardware thread; thread-count "
        "scaling cannot\nexceed ~1x here, so the flat-vs-seed ratio above is "
        "pure scheduling+indexing\nsavings. On a multi-core host the gap "
        "widens with the thread count.");
  }
  bench::Note(
      "col-x is the columnar batch-kernel speedup over the row-structured "
      "flat\nscheduler at the same thread count: the MAP inner loop runs "
      "over decoded\ncoordinate columns (CollectOverlaps + per-attribute "
      "moment arrays) instead of\nper-region accumulator objects, and rows "
      "are only rebuilt at assembly.");
  PrintStorageFigures(json);
}

void BM_MapScaling(benchmark::State& state) {
  auto scheduling = state.range(1) == 0 ? engine::SchedulingMode::kPerPair
                                        : engine::SchedulingMode::kFlat;
  for (auto _ : state) {
    RunResult r = RunOnce(static_cast<size_t>(state.range(0)), scheduling);
    benchmark::DoNotOptimize(r.seconds);
  }
  state.SetLabel(engine::SchedulingModeName(scheduling));
}
BENCHMARK(BM_MapScaling)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(&argc, argv);
  bench::ObsFlags obs_flags;
  obs_flags.ParseFromArgs(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_E7.json";
  bench::BenchJson json("E7 scheduler scalability");
  PrintTable(&json);
  json.WriteTo(json_path);
  obs_flags.Finish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
