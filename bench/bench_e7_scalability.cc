// E7 — Section 4.2: parallel scalability on the binned executor.
//
// Runs the Section 2 MAP query with 1..N worker threads and reports the
// speedup series. Shape: near-linear speedup while partitions outnumber
// workers, flattening at the partition/merge limits (Amdahl).

#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "R = MAP(n AS COUNT, s AS SUM(signal)) PROMS ENCODE;\n"
    "MATERIALIZE R;\n";

void RegisterData(core::QueryRunner* runner) {
  auto genome = gdm::GenomeAssembly::HumanLike(16, 140000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 8;
  popt.peaks_per_sample = 40000;
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 5000, 7);
  runner->RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 7));
}

double RunWithThreads(size_t threads, uint64_t* partitions) {
  engine::EngineOptions options;
  options.threads = threads;
  options.bin_size = 4000000;
  options.backend = engine::BackendKind::kPipelined;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  RegisterData(&runner);
  Timer timer;
  auto results = runner.Run(kQuery);
  double seconds = timer.Seconds();
  results.ValueOrDie();
  if (partitions != nullptr) {
    *partitions = executor.trace().partitions.load();
  }
  return seconds;
}

void PrintTable() {
  bench::Header("E7: thread scalability of the parallel executor",
                "Section 4.2: computational efficiency via parallel "
                "computing on clusters and clouds");
  size_t hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %zu\n", hw);
  std::printf("%10s %10s %10s %12s\n", "threads", "sec", "speedup",
              "partitions");
  double baseline = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw && hw > 0) break;
    uint64_t partitions = 0;
    double seconds = RunWithThreads(threads, &partitions);
    if (threads == 1) baseline = seconds;
    std::printf("%10zu %10.3f %9.2fx %12llu\n", threads, seconds,
                baseline > 0 ? baseline / seconds : 1.0,
                static_cast<unsigned long long>(partitions));
  }
  if (hw <= 1) {
    bench::Note(
        "NOTE: this host exposes a single hardware thread, so measured "
        "speedup cannot\nexceed ~1x (extra workers only add scheduling "
        "overhead). On a multi-core host\nthe series climbs toward the "
        "worker count while partitions outnumber workers.");
  } else {
    bench::Note(
        "shape check: speedup approaches the thread count while (chromosome, "
        "bin)\npartitions outnumber workers, then flattens — the cluster "
        "parallelism the paper\nrelies on, modeled in-process.");
  }
}

void BM_MapScaling(benchmark::State& state) {
  for (auto _ : state) {
    double seconds = RunWithThreads(static_cast<size_t>(state.range(0)), nullptr);
    benchmark::DoNotOptimize(seconds);
  }
}
BENCHMARK(BM_MapScaling)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
