// E5 — Section 3 problem 1: mutations / breaks / gene-activity correlation.
//
// Sweeps the fragile-site concentration of the synthetic data and reports
// the enrichment of mutations on break-hit genes recovered by the GMQL
// pipeline. Shape: enrichment grows with fragility and vanishes when
// fragility is removed (negative control).

#include <set>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/runner.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

struct Enrichment {
  double hit_rate = 0;    // mutations per Mb of break-hit genes
  double other_rate = 0;  // mutations per Mb of break-free genes
  double seconds = 0;
};

Enrichment RunStudy(double fragile_fraction, uint64_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  core::QueryRunner runner;
  auto catalog = sim::GenerateGenes(genome, 800, seed);
  sim::BreakpointOptions bopt;
  bopt.breaks_per_sample = 5000;
  bopt.fragile_fraction = fragile_fraction;
  runner.RegisterDataset(sim::GenerateBreakpoints(genome, bopt, seed));
  sim::MutationOptions mopt;
  mopt.num_samples = 4;
  mopt.mutations_per_sample = 12000;
  mopt.fragile_fraction = fragile_fraction;
  runner.RegisterDataset(sim::GenerateMutations(genome, mopt, seed));

  // All genes as the reference (differential selection is exercised in the
  // example; the enrichment shape is independent of it).
  gdm::RegionSchema schema;
  (void)schema.AddAttr("gene", gdm::AttrType::kString);
  gdm::Dataset genes("GENES", schema);
  gdm::Sample sample(1);
  for (const auto& g : catalog.genes) {
    gdm::GenomicRegion r(g.chrom, g.left, g.right, g.strand);
    r.values = {gdm::Value(g.id)};
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  genes.AddSample(std::move(sample));
  runner.RegisterDataset(std::move(genes));

  Timer timer;
  auto results = runner.Run(
      "IND_BREAKS = SELECT(condition == 'oncogene_induced') BREAKS;\n"
      "BROKEN = JOIN(DLE(0); LEFT) GENES IND_BREAKS;\n"
      "LOAD = MAP(mut_count AS COUNT) GENES MUTATIONS;\n"
      "MATERIALIZE BROKEN; MATERIALIZE LOAD;\n");
  Enrichment out;
  out.seconds = timer.Seconds();
  const auto& r = results.ValueOrDie();
  std::set<std::pair<int32_t, int64_t>> broken;
  for (const auto& s : r.at("BROKEN").samples()) {
    for (const auto& region : s.regions) {
      broken.insert({region.chrom, region.left});
    }
  }
  const auto& load = r.at("LOAD");
  size_t mc = *load.schema().IndexOf("mut_count");
  // Rates are per megabase of gene: longer genes catch more breaks AND more
  // mutations, so raw per-gene counts would show spurious enrichment even
  // with uniform placement (the length confound).
  uint64_t hit_m = 0;
  int64_t hit_bases = 0;
  uint64_t other_m = 0;
  int64_t other_bases = 0;
  for (const auto& s : load.samples()) {
    for (const auto& region : s.regions) {
      uint64_t n = static_cast<uint64_t>(region.values[mc].AsInt());
      if (broken.count({region.chrom, region.left})) {
        hit_m += n;
        hit_bases += region.length();
      } else {
        other_m += n;
        other_bases += region.length();
      }
    }
  }
  out.hit_rate =
      hit_bases == 0 ? 0 : static_cast<double>(hit_m) * 1e6 / hit_bases;
  out.other_rate =
      other_bases == 0 ? 0 : static_cast<double>(other_m) * 1e6 / other_bases;
  return out;
}

void PrintTable() {
  bench::Header("E5: mutation / break-point correlation study",
                "Section 3 problem 1: mutations occur where the genome is "
                "most fragile; fragility is revealed by DNA break points");
  std::printf("%18s %14s %14s %10s %8s\n", "fragile_fraction",
              "mut/Mb(hit)", "mut/Mb(free)", "enrich", "sec");
  for (double frac : {0.0, 0.3, 0.6, 0.9}) {
    Enrichment e = RunStudy(frac, 47);
    double enrich = e.other_rate > 0 ? e.hit_rate / e.other_rate : 0;
    std::printf("%18.1f %14.2f %14.2f %9.1fx %8.2f\n", frac, e.hit_rate,
                e.other_rate, enrich, e.seconds);
  }
  bench::Note(
      "shape check: enrichment ~1x with no fragile concentration (negative "
      "control)\nand grows monotonically with it — the correlation the study "
      "tests for.");
}

void BM_CorrelationStudy(benchmark::State& state) {
  for (auto _ : state) {
    Enrichment e = RunStudy(0.6, 47);
    benchmark::DoNotOptimize(e.hit_rate);
  }
}
BENCHMARK(BM_CorrelationStudy)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
