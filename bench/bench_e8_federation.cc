// E8 — Section 4.4: federated query processing — query shipping vs data
// shipping, and resilience on a faulty wire.
//
// Part 1 (the paper's claim): "Queries ... are short texts and produce
// short answers"; the protocol transfers results instead of datasets. The
// bench sweeps the remote dataset size and reports bytes moved both ways
// plus the advantage ratio.
//
// Part 2 (fault scenarios): every protocol message crosses a SimTransport
// with seeded deterministic faults. Scenarios measure the resilient RPC
// layer — retries under drops/corruption, graceful degradation with a dead
// site, and hedged FETCHes against a straggler — reporting simulated
// makespan, success rate, retry amplification and wasted bytes. Virtual
// time makes every figure machine-independent and exactly reproducible,
// so CI gates on them (tools/check_bench_regression.py).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "io/gdm_format.h"
#include "repo/federation.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
    "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
    "TOPK = ORDER(antibody; TOP 2) R;\n"
    "MATERIALIZE TOPK;\n";

void Populate(repo::FederatedNode* node, size_t peaks_per_sample) {
  auto genome = gdm::GenomeAssembly::HumanLike(6, 50000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = peaks_per_sample;
  node->catalog()->Put(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 400, 7);
  node->catalog()->Put(sim::GenerateAnnotations(genome, catalog, {}, 7));
}

// ---------------------------------------------------------------------------
// Part 1: query shipping vs data shipping (bytes moved)
// ---------------------------------------------------------------------------

struct FedRun {
  uint64_t query_ship_bytes = 0;
  uint64_t data_ship_bytes = 0;
  double query_ship_seconds = 0;
  double data_ship_seconds = 0;
  uint64_t remote_dataset_bytes = 0;
};

FedRun RunAtScale(size_t peaks_per_sample) {
  repo::FederatedNode node("milan");
  Populate(&node, peaks_per_sample);
  repo::Coordinator coordinator;
  coordinator.AddNode(&node);

  FedRun out;
  out.remote_dataset_bytes =
      node.catalog()->Get("ENCODE")->EstimateBytes() +
      node.catalog()->Get("ANNOTATIONS")->EstimateBytes();
  {
    Timer timer;
    coordinator.RunRemote("milan", kQuery).ValueOrDie();
    out.query_ship_seconds = timer.Seconds();
    out.query_ship_bytes = coordinator.counters().bytes_sent +
                           coordinator.counters().bytes_received;
  }
  coordinator.ResetCounters();
  {
    Timer timer;
    coordinator.RunWithDataShipping("milan", {"ANNOTATIONS", "ENCODE"}, kQuery)
        .ValueOrDie();
    out.data_ship_seconds = timer.Seconds();
    out.data_ship_bytes = coordinator.counters().bytes_sent +
                          coordinator.counters().bytes_received;
  }
  return out;
}

void PrintTable(bench::BenchJson* json) {
  bench::Header("E8: query shipping vs data shipping",
                "Section 4.4: 'distributing the processing to data, "
                "transferring only query results which are usually small'");
  std::printf("%14s %14s %14s %14s %8s\n", "remote_data", "query_ship",
              "data_ship", "advantage", "sec(q/d)");
  double last_advantage = 0;
  for (size_t peaks : {2000, 8000, 32000}) {
    FedRun run = RunAtScale(peaks);
    last_advantage = static_cast<double>(run.data_ship_bytes) /
                     static_cast<double>(
                         run.query_ship_bytes ? run.query_ship_bytes : 1);
    std::printf("%14s %14s %14s %13.1fx %4.2f/%4.2f\n",
                HumanBytes(run.remote_dataset_bytes).c_str(),
                HumanBytes(run.query_ship_bytes).c_str(),
                HumanBytes(run.data_ship_bytes).c_str(), last_advantage,
                run.query_ship_seconds, run.data_ship_seconds);
  }
  json->top().Add("query_shipping_advantage_at_max_scale", last_advantage);
  bench::Note(
      "shape check: the advantage of query shipping grows with remote data "
      "size\nbecause the shipped query and the TOP-k result stay small.");
}

// ---------------------------------------------------------------------------
// Part 2: fault scenarios on the simulated wire
// ---------------------------------------------------------------------------

/// Canonical serialized image of a result set, for bit-identity checks.
std::string Fingerprint(const std::map<std::string, gdm::Dataset>& results) {
  std::string out;
  for (const auto& [name, ds] : results) {
    out += name;
    out += '\0';
    out += io::WriteGdmString(ds);
    out += '\0';
  }
  return out;
}

constexpr size_t kFaultPeaks = 2000;
constexpr int kReps = 5;

struct Scenario {
  const char* name;
  repo::LinkProfile link;      ///< applied to milan for the measured phase
  repo::FedPolicies policies;
  bool warmup = false;         ///< clean-link runs to learn the p95 first
  bool dead_second_site = false;  ///< adds a dead "boston" (RunEverywhere)
};

/// The common wire both scenarios agree on: a realistic WAN link.
repo::LinkProfile BaseLink() {
  repo::LinkProfile link;
  link.latency_us = 20'000;                  // 20 ms RTT
  link.bandwidth_bytes_per_sec = 10'000'000; // 10 MB/s
  link.seed = 11;
  return link;
}

struct ScenarioResult {
  double success_rate = 0;
  int bit_identical = -1;  ///< -1 = not applicable (partial-result scenario)
  uint64_t makespan_us = 0;
  uint64_t requests = 0;
  repo::FedStats stats;
  double completeness = 1.0;
};

ScenarioResult RunScenario(const Scenario& scenario,
                           const std::string& reference) {
  repo::FederatedNode milan("milan");
  Populate(&milan, kFaultPeaks);
  milan.set_chunk_bytes(4096);  // several FETCH round trips per query
  repo::FederatedNode boston("boston");
  repo::Coordinator coordinator;
  coordinator.set_policies(scenario.policies);
  coordinator.AddNode(&milan);
  if (scenario.dead_second_site) {
    Populate(&boston, kFaultPeaks);
    boston.set_chunk_bytes(4096);
    coordinator.AddNode(&boston);
    repo::LinkProfile dead;
    dead.dead = true;
    coordinator.transport()->SetLinkProfile("boston", dead);
  }

  if (scenario.warmup) {
    // Learn the healthy p95 before the link degrades.
    coordinator.transport()->SetLinkProfile("milan", BaseLink());
    for (int i = 0; i < 3; ++i) {
      coordinator.RunRemote("milan", kQuery).ValueOrDie();
    }
  }
  coordinator.transport()->SetLinkProfile("milan", scenario.link);
  coordinator.ResetCounters();

  ScenarioResult out;
  uint64_t start_us = coordinator.transport()->clock().now_us();
  int successes = 0;
  bool identical = true;
  double completeness_sum = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    if (scenario.dead_second_site) {
      auto result = coordinator.RunEverywhere(kQuery);
      if (result.ok()) {
        ++successes;
        completeness_sum += result.value().completeness();
      }
      continue;
    }
    auto result = coordinator.RunRemote("milan", kQuery);
    if (result.ok()) {
      ++successes;
      completeness_sum += 1.0;
      if (Fingerprint(result.value()) != reference) identical = false;
    } else {
      identical = false;
    }
  }
  out.makespan_us = coordinator.transport()->clock().now_us() - start_us;
  out.success_rate = static_cast<double>(successes) / kReps;
  out.completeness = successes > 0 ? completeness_sum / successes : 0.0;
  if (!scenario.dead_second_site) out.bit_identical = identical ? 1 : 0;
  out.requests = coordinator.counters().requests;
  out.stats = coordinator.fed_stats();
  return out;
}

void PrintFaultScenarios(bench::BenchJson* json) {
  bench::Header("E8: federation resilience under injected faults",
                "simulated lossy transport; deadlines, retries, hedging, "
                "circuit breakers, partial results");

  // The fault-free reference fingerprint all retryable scenarios must
  // reproduce bit-identically.
  std::string reference;
  {
    repo::FederatedNode milan("milan");
    Populate(&milan, kFaultPeaks);
    milan.set_chunk_bytes(4096);
    repo::Coordinator coordinator;
    coordinator.AddNode(&milan);
    coordinator.transport()->SetLinkProfile("milan", BaseLink());
    reference = Fingerprint(coordinator.RunRemote("milan", kQuery)
                                .ValueOrDie());
  }

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "fault_free";
    s.link = BaseLink();
    scenarios.push_back(s);
  }
  {
    // Retryable faults only: drops (request and response), corrupted
    // payloads, occasional stalls. Success must stay 1.0 and results
    // bit-identical — the retry/checksum machinery absorbs everything.
    Scenario s;
    s.name = "flaky_fetch";
    s.link = BaseLink();
    s.link.drop_rate = 0.15;
    s.link.corrupt_rate = 0.10;
    s.link.stall_rate = 0.10;
    s.link.stall_us = 100'000;
    s.policies.retry.deadline_us = 500'000;
    scenarios.push_back(s);
  }
  {
    // One live site, one dead: the broadcast degrades to a partial result
    // (completeness 0.5) instead of failing, and boston's breaker trips.
    Scenario s;
    s.name = "dead_site";
    s.link = BaseLink();
    s.dead_second_site = true;
    scenarios.push_back(s);
  }
  {
    // A straggling site: 40% of FETCHes stall 900 ms (under the deadline,
    // so unhedged retrieval succeeds — slowly).
    Scenario s;
    s.name = "straggler_unhedged";
    s.link = BaseLink();
    s.link.stall_rate = 0.4;
    s.link.stall_us = 900'000;
    s.link.fault_kinds = repo::MessageKindBit(repo::MessageKind::kFetch);
    s.policies.retry.deadline_us = 2'000'000;
    s.policies.hedge.enabled = false;
    s.warmup = true;
    scenarios.push_back(s);
  }
  {
    // Same straggler with hedging on (at the median, since 40% of the
    // latency distribution is stalled): a completion passing the observed
    // quantile triggers a speculative duplicate, and the duplicate is
    // usually fast — trading wasted bytes for makespan.
    Scenario s;
    s.name = "straggler_hedged";
    s.link = BaseLink();
    s.link.stall_rate = 0.4;
    s.link.stall_us = 900'000;
    s.link.fault_kinds = repo::MessageKindBit(repo::MessageKind::kFetch);
    s.policies.retry.deadline_us = 2'000'000;
    s.policies.hedge.enabled = true;
    s.policies.hedge.quantile = 0.5;
    s.policies.hedge.min_observations = 6;
    s.warmup = true;
    scenarios.push_back(s);
  }

  std::printf("%20s %8s %10s %12s %8s %7s %7s %8s %10s\n", "scenario",
              "success", "identical", "makespan_ms", "requests", "retries",
              "hedges", "timeouts", "wasted");
  uint64_t fault_free_requests = 0;
  for (const Scenario& scenario : scenarios) {
    ScenarioResult r = RunScenario(scenario, reference);
    if (std::string(scenario.name) == "fault_free") {
      fault_free_requests = r.requests;
    }
    double amplification =
        fault_free_requests > 0
            ? static_cast<double>(r.requests) /
                  static_cast<double>(fault_free_requests)
            : 0.0;
    std::printf("%20s %8.2f %10s %12.1f %8llu %7llu %7llu %8llu %10s\n",
                scenario.name, r.success_rate,
                r.bit_identical < 0 ? "n/a" : (r.bit_identical ? "yes" : "NO"),
                static_cast<double>(r.makespan_us) / 1000.0,
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.hedges),
                static_cast<unsigned long long>(r.stats.timeouts),
                HumanBytes(r.stats.wasted_bytes).c_str());

    bench::JsonObject& row = json->NewRun();
    row.Add("scenario", scenario.name);
    row.Add("success_rate", r.success_rate);
    row.Add("bit_identical", static_cast<int64_t>(r.bit_identical));
    row.Add("makespan_us", r.makespan_us);
    row.Add("requests", r.requests);
    row.Add("retry_amplification", amplification);
    row.Add("retries", r.stats.retries);
    row.Add("hedges", r.stats.hedges);
    row.Add("timeouts", r.stats.timeouts);
    row.Add("corruptions", r.stats.corruptions);
    row.Add("breaker_trips", r.stats.breaker_trips);
    row.Add("wasted_bytes", r.stats.wasted_bytes);
    row.Add("completeness", r.completeness);
  }
  bench::Note(
      "shape check: retryable faults keep success at 1.00 with identical "
      "results;\nthe dead site degrades to completeness 0.5 instead of "
      "failing; hedging\nbeats the unhedged straggler on makespan at the "
      "price of wasted bytes.");
}

void BM_QueryShipping(benchmark::State& state) {
  for (auto _ : state) {
    FedRun run = RunAtScale(2000);
    benchmark::DoNotOptimize(run.query_ship_bytes);
  }
}
BENCHMARK(BM_QueryShipping)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(&argc, argv);
  bench::BenchJson json("E8 federation resilience");
  json.top().Add("fault_peaks_per_sample",
                 static_cast<uint64_t>(kFaultPeaks));
  json.top().Add("reps_per_scenario", static_cast<uint64_t>(kReps));
  PrintTable(&json);
  PrintFaultScenarios(&json);
  if (!json_path.empty()) json.WriteTo(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
