// E8 — Section 4.4: federated query processing — query shipping vs data
// shipping.
//
// "Queries ... are short texts and produce short answers"; the protocol
// transfers results instead of datasets. The bench sweeps the remote
// dataset size and reports bytes moved both ways plus the advantage ratio.
// Shape: the ratio grows with dataset size because the query text and the
// (selective) result stay near-constant.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "repo/federation.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
    "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
    "TOPK = ORDER(antibody; TOP 2) R;\n"
    "MATERIALIZE TOPK;\n";

struct FedRun {
  uint64_t query_ship_bytes = 0;
  uint64_t data_ship_bytes = 0;
  double query_ship_seconds = 0;
  double data_ship_seconds = 0;
  uint64_t remote_dataset_bytes = 0;
};

FedRun RunAtScale(size_t peaks_per_sample) {
  auto genome = gdm::GenomeAssembly::HumanLike(6, 50000000);
  repo::FederatedNode node("milan");
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = peaks_per_sample;
  node.catalog()->Put(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 400, 7);
  node.catalog()->Put(sim::GenerateAnnotations(genome, catalog, {}, 7));
  repo::Coordinator coordinator;
  coordinator.AddNode(&node);

  FedRun out;
  out.remote_dataset_bytes =
      node.catalog()->Get("ENCODE")->EstimateBytes() +
      node.catalog()->Get("ANNOTATIONS")->EstimateBytes();
  {
    Timer timer;
    coordinator.RunRemote("milan", kQuery).ValueOrDie();
    out.query_ship_seconds = timer.Seconds();
    out.query_ship_bytes = coordinator.counters().bytes_sent +
                           coordinator.counters().bytes_received;
  }
  coordinator.ResetCounters();
  {
    Timer timer;
    coordinator.RunWithDataShipping("milan", {"ANNOTATIONS", "ENCODE"}, kQuery)
        .ValueOrDie();
    out.data_ship_seconds = timer.Seconds();
    out.data_ship_bytes = coordinator.counters().bytes_sent +
                          coordinator.counters().bytes_received;
  }
  return out;
}

void PrintTable() {
  bench::Header("E8: query shipping vs data shipping",
                "Section 4.4: 'distributing the processing to data, "
                "transferring only query results which are usually small'");
  std::printf("%14s %14s %14s %14s %8s\n", "remote_data", "query_ship",
              "data_ship", "advantage", "sec(q/d)");
  for (size_t peaks : {2000, 8000, 32000}) {
    FedRun run = RunAtScale(peaks);
    std::printf("%14s %14s %14s %13.1fx %4.2f/%4.2f\n",
                HumanBytes(run.remote_dataset_bytes).c_str(),
                HumanBytes(run.query_ship_bytes).c_str(),
                HumanBytes(run.data_ship_bytes).c_str(),
                static_cast<double>(run.data_ship_bytes) /
                    static_cast<double>(
                        run.query_ship_bytes ? run.query_ship_bytes : 1),
                run.query_ship_seconds, run.data_ship_seconds);
  }
  bench::Note(
      "shape check: the advantage of query shipping grows with remote data "
      "size\nbecause the shipped query and the TOP-k result stay small.");
}

void BM_QueryShipping(benchmark::State& state) {
  for (auto _ : state) {
    FedRun run = RunAtScale(2000);
    benchmark::DoNotOptimize(run.query_ship_bytes);
  }
}
BENCHMARK(BM_QueryShipping)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
