// Ablation A1 — genomic bin width of the parallel executor.
//
// The binned (chromosome, bin) partitioning is the engine's central design
// choice (DESIGN.md). Sweeping the bin width on a fixed MAP workload shows
// the trade-off: tiny bins create many partitions (scheduling + halo
// overhead), huge bins collapse to one partition per chromosome (no
// parallel slack, but minimal overhead on a 1-core host). Results must be
// identical at every width (asserted).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "R = MAP(n AS COUNT, s AS SUM(signal)) PROMS ENCODE;\n"
    "MATERIALIZE R;\n";

void RegisterData(core::QueryRunner* runner) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 100000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 30000;
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, 11));
  auto catalog = sim::GenerateGenes(genome, 3000, 11);
  runner->RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 11));
}

struct AblationRun {
  double seconds = 0;
  uint64_t partitions = 0;
  uint64_t result_regions = 0;
};

AblationRun RunWithBinSize(int64_t bin_size) {
  engine::EngineOptions options;
  options.bin_size = bin_size;
  options.threads = 2;
  options.backend = engine::BackendKind::kPipelined;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  RegisterData(&runner);
  Timer timer;
  auto results = runner.Run(kQuery);
  AblationRun out;
  out.seconds = timer.Seconds();
  out.partitions = executor.trace().partitions.load();
  out.result_regions = results.ValueOrDie().at("R").TotalRegions();
  return out;
}

void PrintTable() {
  bench::Header("A1 (ablation): bin width of the binned partitioner",
                "DESIGN.md design choice: (chromosome, bin) range "
                "partitioning of the data-parallel operators");
  std::printf("%14s %12s %10s %14s\n", "bin_size", "partitions", "sec",
              "result_regions");
  uint64_t baseline_regions = 0;
  for (int64_t bin :
       {int64_t{100000}, int64_t{1000000}, int64_t{10000000},
        int64_t{100000000}, int64_t{1000000000}}) {
    AblationRun run = RunWithBinSize(bin);
    if (baseline_regions == 0) baseline_regions = run.result_regions;
    std::printf("%14s %12llu %10.3f %14s%s\n", WithThousands(bin).c_str(),
                static_cast<unsigned long long>(run.partitions), run.seconds,
                WithThousands(run.result_regions).c_str(),
                run.result_regions == baseline_regions ? ""
                                                       : "  !! MISMATCH");
  }
  bench::Note(
      "shape check: results are bin-size invariant; partition count scales "
      "inversely\nwith width. The default (5 Mb) keeps thousands of "
      "partitions on a human-scale\ngenome — enough parallel slack for tens "
      "of workers without halo overhead.");
}

void BM_BinSize(benchmark::State& state) {
  for (auto _ : state) {
    AblationRun run = RunWithBinSize(state.range(0));
    benchmark::DoNotOptimize(run.result_regions);
  }
}
BENCHMARK(BM_BinSize)
    ->Arg(1000000)
    ->Arg(100000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
