// E9 — Sections 4.3 + 4.5: metadata search with ontological mediation.
//
// A synthetic corpus with known ground truth measures precision/recall of
// keyword search, plain vs ontology-expanded (the UMLS-mediated "semantic
// closure" of Section 4.3). Shape: abstraction-level queries ("cancer cell
// line", "histone mark") have recall ~0 without the ontology and recall ~1
// with it; concrete queries are unaffected. Index build and query
// throughput round out the table.

#include <set>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "search/metadata_index.h"
#include "search/ontology.h"
#include "sim/generators.h"

namespace {

using namespace gdms;          // NOLINT
using namespace gdms::search;  // NOLINT
using bench::Timer;

gdm::Dataset Corpus(size_t num_samples, uint64_t seed) {
  sim::PeakDatasetOptions opt;
  opt.num_samples = num_samples;
  opt.peaks_per_sample = 4;  // metadata corpus; regions don't matter
  return sim::GeneratePeakDataset(gdm::GenomeAssembly::HumanLike(2, 1000000),
                                  opt, seed);
}

/// Ground truth: samples whose metadata annotation (via the ontology)
/// includes the query term.
std::vector<SampleRef> RelevantSamples(const gdm::Dataset& ds,
                                       const Ontology& ontology,
                                       const std::string& term) {
  std::vector<SampleRef> out;
  for (const auto& s : ds.samples()) {
    if (ontology.Annotate(s.metadata).count(ToLower(term))) {
      out.push_back({ds.name(), s.id});
    }
  }
  return out;
}

/// Ontology query expansion: the query term plus every descendant.
std::string ExpandQuery(const Ontology& ontology, const std::string& term) {
  std::string resolved = ontology.Resolve(term);
  if (resolved.empty()) return term;
  std::string out;
  for (const auto& d : ontology.Descendants(resolved)) {
    if (!out.empty()) out += " ";
    out += d;
  }
  return out;
}

void PrintTable() {
  bench::Header("E9: metadata search, plain vs ontology-expanded",
                "Sections 4.3/4.5: keyword search with UMLS-style semantic "
                "closure, measured with precision and recall");
  Ontology ontology = Ontology::BuiltinBio();
  gdm::Dataset corpus = Corpus(400, 9);
  Timer build_timer;
  MetadataIndex index;
  index.AddDataset(corpus);
  double build_seconds = build_timer.Seconds();
  std::printf("corpus: %zu samples, %zu terms, index build %.3f s\n",
              index.num_documents(), index.num_terms(), build_seconds);

  std::printf("\n%-20s %-10s %6s %10s %10s %8s\n", "query", "mode", "hits",
              "precision", "recall", "f1");
  for (const char* query :
       {"ctcf", "k562", "cancer_cell_line", "histone_mark",
        "transcription_factor"}) {
    auto relevant = RelevantSamples(corpus, ontology, query);
    auto plain = index.Search(query, corpus.num_samples());
    auto plain_eval = MetadataIndex::Evaluate(plain, relevant);
    auto expanded = index.Search(ExpandQuery(ontology, query),
                                 corpus.num_samples());
    auto exp_eval = MetadataIndex::Evaluate(expanded, relevant);
    std::printf("%-20s %-10s %6zu %10.2f %10.2f %8.2f\n", query, "plain",
                plain.size(), plain_eval.precision, plain_eval.recall,
                plain_eval.f1);
    std::printf("%-20s %-10s %6zu %10.2f %10.2f %8.2f\n", query, "ontology",
                expanded.size(), exp_eval.precision, exp_eval.recall,
                exp_eval.f1);
  }
  bench::Note(
      "shape check: abstraction-level queries (cancer_cell_line, "
      "histone_mark) recover\nrecall ~1.0 only with ontology expansion; "
      "leaf-level queries are unaffected.");
}

void BM_IndexBuild(benchmark::State& state) {
  gdm::Dataset corpus = Corpus(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    MetadataIndex index;
    index.AddDataset(corpus);
    benchmark::DoNotOptimize(index.num_terms());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(1000);

void BM_KeywordSearch(benchmark::State& state) {
  gdm::Dataset corpus = Corpus(1000, 9);
  MetadataIndex index;
  index.AddDataset(corpus);
  for (auto _ : state) {
    auto hits = index.Search("CTCF K562 cancer");
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_KeywordSearch);

void BM_SemanticClosure(benchmark::State& state) {
  Ontology ontology = Ontology::BuiltinBio();
  gdm::Metadata meta;
  meta.Add("cell", "K562");
  meta.Add("antibody", "H3K27ac");
  meta.Add("dataType", "ChipSeq");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ontology.Annotate(meta).size());
  }
}
BENCHMARK(BM_SemanticClosure);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
