// E6 — Section 4.2 / ref. [10]: "Evaluating cloud frameworks on genomic
// applications" — the Flink-vs-Spark comparison on three genomic queries.
//
// The materialized backend (Spark-like) serializes every partition through
// a shuffle codec between stages; the pipelined backend (Flink-like)
// streams per-partition slices with no intermediate copies. Three queries
// in the spirit of [10]: a MAP-heavy mapping of experiments to references,
// a genometric JOIN, and a COVER/HISTOGRAM accumulation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

struct QueryCase {
  const char* name;
  const char* gmql;
};

const QueryCase kQueries[] = {
    {"Q1 map",
     "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
     "R = MAP(n AS COUNT, avg_sig AS AVG(signal)) PROMS ENCODE;\n"
     "MATERIALIZE R;\n"},
    {"Q2 join",
     "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
     "R = JOIN(DLE(20000); CAT) GENES ENCODE;\n"
     "MATERIALIZE R;\n"},
    {"Q3 cover",
     "P = SELECT(dataType == 'ChipSeq') ENCODE;\n"
     "R = HISTOGRAM(1, ANY) P;\n"
     "MATERIALIZE R;\n"},
};

void RegisterData(core::QueryRunner* runner, uint64_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(12, 120000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 8;
  popt.peaks_per_sample = 25000;
  runner->RegisterDataset(sim::GeneratePeakDataset(genome, popt, seed));
  auto catalog = sim::GenerateGenes(genome, 3000, seed);
  runner->RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, seed));
}

struct BackendRun {
  double seconds = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t tasks = 0;
  uint64_t barriers = 0;
  uint64_t result_regions = 0;
};

BackendRun RunOn(engine::BackendKind backend, const char* gmql) {
  engine::EngineOptions options;
  options.backend = backend;
  options.threads = 4;
  options.bin_size = 2000000;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  RegisterData(&runner, 2016);
  Timer timer;
  auto results = runner.Run(gmql);
  BackendRun out;
  out.seconds = timer.Seconds();
  out.shuffle_bytes = executor.trace().shuffle_bytes.load();
  out.tasks = executor.trace().tasks.load();
  out.barriers = executor.trace().stage_barriers.load();
  out.result_regions = results.ValueOrDie().at("R").TotalRegions();
  return out;
}

void PrintTable(bench::BenchJson* json) {
  bench::Header("E6: materialized (Spark-like) vs pipelined (Flink-like)",
                "Section 4.2 / ref [10]: early comparison of Flink and Spark "
                "on three genomic queries");
  json->top().Add("samples", 8);
  json->top().Add("peaks_per_sample", 25000);
  json->top().Add("genes", 3000);
  json->top().Add("threads", 4);
  json->top().Add("bin_size", 2000000);
  auto record = [&](const char* query, const char* backend,
                    const BackendRun& run) {
    bench::JsonObject& row = json->NewRun();
    row.Add("query", query);
    row.Add("backend", backend);
    row.Add("wall_seconds", run.seconds);
    row.Add("shuffle_bytes", run.shuffle_bytes);
    row.Add("tasks", run.tasks);
    row.Add("stage_barriers", run.barriers);
    row.Add("result_regions", run.result_regions);
  };
  std::printf("%-10s %-14s %10s %14s %8s %8s %14s\n", "query", "backend",
              "sec", "shuffle", "tasks", "barriers", "result_regions");
  for (const auto& q : kQueries) {
    BackendRun mat = RunOn(engine::BackendKind::kMaterialized, q.gmql);
    BackendRun pipe = RunOn(engine::BackendKind::kPipelined, q.gmql);
    record(q.name, "materialized", mat);
    record(q.name, "pipelined", pipe);
    std::printf("%-10s %-14s %10.3f %14s %8llu %8llu %14s\n", q.name,
                "materialized", mat.seconds,
                HumanBytes(mat.shuffle_bytes).c_str(),
                static_cast<unsigned long long>(mat.tasks),
                static_cast<unsigned long long>(mat.barriers),
                WithThousands(mat.result_regions).c_str());
    std::printf("%-10s %-14s %10.3f %14s %8llu %8llu %14s\n", q.name,
                "pipelined", pipe.seconds,
                HumanBytes(pipe.shuffle_bytes).c_str(),
                static_cast<unsigned long long>(pipe.tasks),
                static_cast<unsigned long long>(pipe.barriers),
                WithThousands(pipe.result_regions).c_str());
    if (mat.result_regions != pipe.result_regions) {
      std::printf("  !! RESULT MISMATCH\n");
    }
    std::printf("%-10s speedup of pipelined: %.2fx\n", "",
                pipe.seconds > 0 ? mat.seconds / pipe.seconds : 0);
  }
  bench::Note(
      "shape check (ref [10]): both encodings compute identical GMQL results; "
      "the\nstage-materialized backend pays serialization+barrier overhead "
      "proportional to\nintermediate volume, so pipelining wins most on the "
      "shuffle-heavy queries.");
}

void BM_Backend(benchmark::State& state) {
  auto backend = state.range(0) == 0 ? engine::BackendKind::kMaterialized
                                     : engine::BackendKind::kPipelined;
  for (auto _ : state) {
    BackendRun run = RunOn(backend, kQueries[0].gmql);
    benchmark::DoNotOptimize(run.result_regions);
  }
  state.SetLabel(engine::BackendKindName(backend));
}
BENCHMARK(BM_Backend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(&argc, argv);
  bench::ObsFlags obs_flags;
  obs_flags.ParseFromArgs(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_E6.json";
  bench::BenchJson json("E6 materialized vs pipelined backends");
  PrintTable(&json);
  json.WriteTo(json_path);
  obs_flags.Finish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
