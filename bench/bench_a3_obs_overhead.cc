// Ablation A3 — cost of the disabled-tracer fast path.
//
// Observability is compiled in unconditionally (no build flavors), so the
// disabled path has to be near-free: every parallel stage pays exactly one
// relaxed atomic load of the tracer's enabled flag before deciding to skip
// all span/skew bookkeeping. This bench gates that claim two ways:
//
//  1. Microbench gate (exit code): a fixed arithmetic workload run plain
//     vs. with the per-stage enabled-check woven in, best-of-N minimum.
//     Exits 1 when the gated variant is more than 2% slower — the CI smoke
//     step runs this binary and fails the build on regression.
//  2. Telemetry gate (exit code): the E1-style MAP workload run with the
//     full continuous-telemetry pipeline live — a 100 ms background
//     Sampler over the metrics registry plus a JSONL QueryLog entry per
//     query — vs. the same workload with no telemetry. The pipeline is
//     designed to stay off the query's critical path (the sampler reads
//     relaxed atomics on its own thread; the log writes one line per
//     query), so this too must stay within 2%.
//  3. Accounting gate (exit code): the same E1-style batch with per-query
//     byte accounting on (the default) vs. forced off via the
//     ResourceTracker kill switch — the per-operator Charge walks and the
//     storage-gauge registry must also stay within 2%.
//  4. Distributed-tracing gate (exit code): a batch of federated
//     RunEverywhere queries with a full per-query distributed trace
//     (BeginTrace / wire @trace headers / remote span piggyback /
//     FinishTrace + critical-path extraction) vs. the same batch untraced.
//     Tracing is opt-in per query, so the traced path may do real work —
//     but it must stay within the same 2% budget.
//  5. End-to-end figures (informational): the E7-style MAP query under the
//     parallel executor with tracing off vs. on, showing what a traced run
//     actually costs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "obs/dtrace.h"
#include "obs/query_log.h"
#include "obs/resource.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "repo/federation.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

constexpr double kMaxOverheadPct = 2.0;

// One simulated "stage": a fixed pass over the work buffer, preceded by the
// same per-stage check RunStage does before any instrumentation — a single
// relaxed load of the enabled flag. Both variants run the identical loop;
// the baseline consults a detached always-false atomic where the measured
// variant consults the live tracer, so the delta isolates the cost of
// Tracer::Global().enabled() itself rather than compiler restructuring.
constexpr size_t kStageElems = 1 << 12;
constexpr size_t kStagesPerPass = 1 << 10;

std::atomic<bool> baseline_flag{false};

uint64_t StageWork(const std::vector<uint64_t>& buf) {
  uint64_t acc = 0;
  for (uint64_t v : buf) acc += v * 2654435761u + (acc >> 7);
  return acc;
}

double PassSeconds(bool live, const std::vector<uint64_t>& buf) {
  obs::Tracer& tracer = obs::Tracer::Global();
  Timer timer;
  uint64_t acc = 0;
  for (size_t s = 0; s < kStagesPerPass; ++s) {
    bool on = live ? tracer.enabled()
                   : baseline_flag.load(std::memory_order_relaxed);
    if (on) {
      // Tracing stays disabled for the gate; this branch never runs.
      benchmark::DoNotOptimize(acc);
    }
    acc ^= StageWork(buf);
  }
  benchmark::DoNotOptimize(acc);
  return timer.Seconds();
}

/// One measurement round: interleaved best-of-N minima of the two variants.
/// Interleaving keeps frequency scaling and noisy neighbors from biasing
/// one variant; the minimum is immune to one-sided scheduler noise.
struct Round {
  double plain = 1e100;
  double live = 1e100;
  double OverheadPct() const { return (live - plain) / plain * 100.0; }
};

Round MeasureRound(int n, const std::vector<uint64_t>& buf) {
  Round r;
  for (int i = 0; i < n; ++i) {
    r.plain = std::min(r.plain, PassSeconds(false, buf));
    r.live = std::min(r.live, PassSeconds(true, buf));
  }
  return r;
}

const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "R = MAP(n AS COUNT, s AS SUM(signal)) PROMS ENCODE;\n"
    "MATERIALIZE R;\n";

double QuerySeconds(bool traced) {
  obs::Tracer::Global().set_enabled(traced);
  engine::EngineOptions options;
  options.threads = 2;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(8, 100000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 20000;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 2000, 7);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 7));
  double best = 1e100;
  for (int i = 0; i < 3; ++i) {
    Timer timer;
    auto results = runner.Run(kQuery);
    double s = timer.Seconds();
    if (!results.ok()) std::abort();
    if (s < best) best = s;
  }
  obs::Tracer::Global().set_enabled(false);
  obs::Tracer::Global().Clear();
  return best;
}

// ---------------------------------------------------------------------------
// Telemetry gate: E1-style workload with the live pipeline vs. without
// ---------------------------------------------------------------------------

// Enough queries that several 100 ms sampler ticks land inside a measured
// batch — otherwise the gate would only price the sampler's start/stop.
constexpr int kBatchQueries = 30;
constexpr const char* kQueryLogPath = "bench_a3_query_log.jsonl";

/// Times one batch of E1-style queries; when `log` is set, every query is
/// also recorded into the JSONL query log (what serve mode does per query).
double BatchSeconds(core::QueryRunner* runner, obs::QueryLog* log) {
  Timer timer;
  for (int i = 0; i < kBatchQueries; ++i) {
    auto results = runner->Run(kQuery);
    if (!results.ok()) std::abort();
    if (log != nullptr) {
      log->Record(core::MakeQueryLogEntry(kQuery, runner->last_stats()));
    }
  }
  return timer.Seconds();
}

/// Interleaved rounds: plain batches against batches with the 100 ms
/// sampler running and the query log recording. Sampler start/stop cost is
/// charged to the live side — it is part of what telemetry costs.
Round MeasureTelemetryRound(int n, core::QueryRunner* runner,
                            obs::QueryLog* log) {
  Round r;
  for (int i = 0; i < n; ++i) {
    r.plain = std::min(r.plain, BatchSeconds(runner, nullptr));
    obs::Sampler sampler;
    obs::SamplerOptions sopt;
    sopt.period_ms = 100;
    sampler.Start(sopt);
    r.live = std::min(r.live, BatchSeconds(runner, log));
    sampler.Stop();
  }
  return r;
}

int RunTelemetryGate() {
  bench::Header("A3b (gate): continuous telemetry on the E1 workload",
                "100 ms sampler + JSONL query log vs. no telemetry");
  obs::Tracer::Global().set_enabled(false);
  engine::EngineOptions options;
  options.threads = 2;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(8, 100000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 20000;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 2000, 7);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 7));
  obs::QueryLogOptions lopt;
  lopt.path = kQueryLogPath;
  obs::QueryLog log(lopt);

  BatchSeconds(&runner, nullptr);  // warmup
  Round best = MeasureTelemetryRound(3, &runner, &log);
  for (int round = 1; round < 3 && best.OverheadPct() > kMaxOverheadPct;
       ++round) {
    Round r = MeasureTelemetryRound(3, &runner, &log);
    if (r.OverheadPct() < best.OverheadPct()) best = r;
  }
  double overhead_pct = best.OverheadPct();
  std::printf("%22s %12.3f ms\n", "E1 batch, no telemetry",
              best.plain * 1e3);
  std::printf("%22s %12.3f ms\n", "E1 batch, live", best.live * 1e3);
  std::printf("%22s %+12.2f %%  (gate: <= %.1f%%)\n", "overhead",
              overhead_pct, kMaxOverheadPct);
  std::remove(kQueryLogPath);
  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  bench::Note("ok: sampler + query log within budget");
  return 0;
}

// ---------------------------------------------------------------------------
// Accounting gate: E1-style workload with byte accounting on vs. off
// ---------------------------------------------------------------------------

/// Times one E1-style batch with resource accounting forced on or off. The
/// enabled path pays the per-operator Charge (an EstimateResidentBytes walk
/// of each operator's output) plus the storage Touch per source.
double AccountingBatchSeconds(core::QueryRunner* runner, bool enabled) {
  obs::ResourceTracker::Global().set_accounting_enabled(enabled);
  Timer timer;
  for (int i = 0; i < kBatchQueries; ++i) {
    auto results = runner->Run(kQuery);
    if (!results.ok()) std::abort();
  }
  return timer.Seconds();
}

Round MeasureAccountingRound(int n, core::QueryRunner* runner) {
  Round r;
  for (int i = 0; i < n; ++i) {
    r.plain = std::min(r.plain, AccountingBatchSeconds(runner, false));
    r.live = std::min(r.live, AccountingBatchSeconds(runner, true));
  }
  return r;
}

int RunAccountingGate() {
  bench::Header("A3c (gate): byte accounting on the E1 workload",
                "per-query/per-operator accounting + storage gauges vs. "
                "accounting off");
  obs::Tracer::Global().set_enabled(false);
  engine::EngineOptions options;
  options.threads = 2;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(8, 100000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 20000;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 2000, 7);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 7));

  AccountingBatchSeconds(&runner, true);  // warmup
  Round best = MeasureAccountingRound(3, &runner);
  for (int round = 1; round < 3 && best.OverheadPct() > kMaxOverheadPct;
       ++round) {
    Round r = MeasureAccountingRound(3, &runner);
    if (r.OverheadPct() < best.OverheadPct()) best = r;
  }
  obs::ResourceTracker::Global().set_accounting_enabled(true);
  double overhead_pct = best.OverheadPct();
  std::printf("%22s %12.3f ms\n", "E1 batch, no accounting",
              best.plain * 1e3);
  std::printf("%22s %12.3f ms\n", "E1 batch, accounting", best.live * 1e3);
  std::printf("%22s %+12.2f %%  (gate: <= %.1f%%)\n", "overhead",
              overhead_pct, kMaxOverheadPct);
  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: accounting overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  bench::Note("ok: byte accounting within budget");
  return 0;
}

// ---------------------------------------------------------------------------
// Distributed-tracing gate: traced vs. untraced federated batch
// ---------------------------------------------------------------------------

constexpr int kFedBatchQueries = 4;

/// Populates a federated site. The corpus is sized so one broadcast query
/// does tens of milliseconds of real work — tracing's cost is a fixed
/// per-RPC tax, and the gate should price it against a realistic query,
/// not a toy one that finishes in the time it takes to format a span name.
void PopulateSite(repo::FederatedNode* node, uint64_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(3, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 4;
  popt.peaks_per_sample = 4000;
  node->catalog()->Put(sim::GeneratePeakDataset(genome, popt, seed));
  auto catalog = sim::GenerateGenes(genome, 100, seed);
  node->catalog()->Put(sim::GenerateAnnotations(genome, catalog, {}, seed));
}

/// Times one batch of broadcast queries; when `traced` is set every query
/// runs under a full distributed trace — wire @trace headers, remote span
/// buffering + piggyback, SimClock stitching, and critical-path extraction
/// on the result (exactly what gdms_shell's .fed path does per query).
double FedBatchSeconds(repo::Coordinator* coordinator, bool traced) {
  Timer timer;
  for (int i = 0; i < kFedBatchQueries; ++i) {
    if (traced) {
      coordinator->BeginTrace(
          obs::MintTraceId(static_cast<uint64_t>(i) + 1, 0xa3d));
    }
    auto result = coordinator->RunEverywhere(kQuery);
    if (!result.ok()) std::abort();
    if (traced) {
      obs::DistTrace trace = coordinator->FinishTrace("bench");
      benchmark::DoNotOptimize(obs::CriticalPath(trace));
    }
  }
  return timer.Seconds();
}

Round MeasureTracingRound(int n, repo::Coordinator* coordinator) {
  Round r;
  for (int i = 0; i < n; ++i) {
    r.plain = std::min(r.plain, FedBatchSeconds(coordinator, false));
    r.live = std::min(r.live, FedBatchSeconds(coordinator, true));
  }
  return r;
}

int RunTracingGate() {
  bench::Header("A3d (gate): distributed tracing on a federated batch",
                "per-query BeginTrace/stitch/critical-path vs. untraced "
                "broadcast");
  repo::FederatedNode milan("milan");
  repo::FederatedNode geneva("geneva");
  PopulateSite(&milan, 7);
  PopulateSite(&geneva, 8);
  repo::Coordinator coordinator;
  coordinator.AddNode(&milan);
  coordinator.AddNode(&geneva);

  FedBatchSeconds(&coordinator, true);  // warmup
  Round best = MeasureTracingRound(3, &coordinator);
  for (int round = 1; round < 3 && best.OverheadPct() > kMaxOverheadPct;
       ++round) {
    Round r = MeasureTracingRound(3, &coordinator);
    if (r.OverheadPct() < best.OverheadPct()) best = r;
  }
  double overhead_pct = best.OverheadPct();
  std::printf("%22s %12.3f ms\n", "fed batch, untraced", best.plain * 1e3);
  std::printf("%22s %12.3f ms\n", "fed batch, traced", best.live * 1e3);
  std::printf("%22s %+12.2f %%  (gate: <= %.1f%%)\n", "overhead",
              overhead_pct, kMaxOverheadPct);
  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr, "FAIL: tracing overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  bench::Note("ok: traced federation path within budget");
  return 0;
}

int RunGate() {
  bench::Header("A3 (ablation): no-op tracing overhead",
                "observability tentpole: disabled-tracer fast path must stay "
                "under 2%");
  std::vector<uint64_t> buf(kStageElems);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = i * 11400714819323198485ull;
  // Warmup, then up to three rounds: the gate takes the most favorable
  // round, so a single noisy window cannot fail the build while a real
  // regression (present in every round) still does.
  PassSeconds(false, buf);
  PassSeconds(true, buf);
  Round best = MeasureRound(9, buf);
  for (int round = 1; round < 3 && best.OverheadPct() > kMaxOverheadPct;
       ++round) {
    Round r = MeasureRound(9, buf);
    if (r.OverheadPct() < best.OverheadPct()) best = r;
  }
  double overhead_pct = best.OverheadPct();
  std::printf("%22s %12.3f ms\n", "baseline flag check", best.plain * 1e3);
  std::printf("%22s %12.3f ms\n", "live tracer check", best.live * 1e3);
  std::printf("%22s %+12.2f %%  (gate: <= %.1f%%)\n", "overhead",
              overhead_pct, kMaxOverheadPct);

  double off = QuerySeconds(false);
  double on = QuerySeconds(true);
  std::printf("%22s %12.3f ms\n", "E7-style query, off", off * 1e3);
  std::printf("%22s %12.3f ms  (informational)\n", "E7-style query, on",
              on * 1e3);

  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: disabled-tracer overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  bench::Note("ok: disabled-tracer fast path within budget");
  return 0;
}

void BM_StagePass(benchmark::State& state) {
  std::vector<uint64_t> buf(kStageElems);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = i * 11400714819323198485ull;
  bool gated = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PassSeconds(gated, buf));
  }
}
BENCHMARK(BM_StagePass)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int gate = RunGate();
  int telemetry_gate = RunTelemetryGate();
  int accounting_gate = RunAccountingGate();
  int tracing_gate = RunTracingGate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (gate != 0) return gate;
  if (telemetry_gate != 0) return telemetry_gate;
  return accounting_gate != 0 ? accounting_gate : tracing_gate;
}
