// E9 (serve) — Section 4.4's "GMQL as a service": the src/serve session
// layer under load.
//
// Three phases against one shared versioned catalog:
//   capacity   — closed-loop batch with the result cache OFF, 1 worker vs
//                kWorkersMax workers: every query executes, so qps measures
//                real engine capacity and the ratio is the worker scaling.
//   open loop  — a paced arrival stream (fraction of measured capacity)
//                with both caches ON: reports achieved qps, warm plan- and
//                result-cache hit rates, and p50/p95/p99 latency.
//   overload   — a burst far beyond a tiny admission queue: admission must
//                shed (reject fast), never block, and still answer every
//                admitted query exactly once.
//
// Every phase cross-checks response accounting: lost (admitted but never
// answered) and duplicated (answered twice) responses are reported and
// gated at exactly zero by tools/check_bench_regression.py.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "serve/serve_catalog.h"
#include "serve/session_manager.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

constexpr size_t kWorkersMax = 8;
constexpr size_t kCapacityQueries = 96;
constexpr size_t kOpenLoopQueries = 200;
constexpr size_t kOverloadQueries = 200;
constexpr size_t kOverloadQueueLimit = 8;

const gdm::GenomeAssembly& Genome() {
  static gdm::GenomeAssembly genome =
      gdm::GenomeAssembly::HumanLike(8, 60000000);
  return genome;
}

/// The shared catalog every phase's manager serves from. Built once;
/// dataset synthesis stays off every clock.
serve::ServeCatalog* SharedCatalog() {
  static serve::ServeCatalog* catalog = [] {
    auto* cat = new serve::ServeCatalog();
    sim::PeakDatasetOptions popt;
    popt.num_samples = 6;
    popt.peaks_per_sample = 2500;
    cat->Publish(sim::GeneratePeakDataset(Genome(), popt, 7));
    sim::PeakDatasetOptions panels;
    panels.num_samples = 4;
    panels.peaks_per_sample = 200;
    cat->Publish(sim::GeneratePeakDataset(Genome(), panels, 13, "PANELS"));
    sim::GeneCatalog genes = sim::GenerateGenes(Genome(), 800, 21);
    cat->Publish(sim::GenerateAnnotations(Genome(), genes, {}, 21));
    return cat;
  }();
  return catalog;
}

/// The mixed workload: E1-shaped metadata-select + MAP (six antibody
/// bindings of one shape), E3-shaped COVER (three threshold bindings), and
/// the E7-shaped aggregate MAP (literal-free). Ten (shape, binding)
/// variants total — a warmed plan cache answers every one from memory.
const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> queries = [] {
    std::vector<std::string> out;
    for (const char* ab :
         {"CTCF", "POLR2A", "H3K27ac", "H3K4me1", "H3K4me3", "EP300"}) {
      out.push_back(
          std::string("PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
                      "PEAKS = SELECT(antibody == '") +
          ab +
          "') ENCODE;\n"
          "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
          "MATERIALIZE R;\n");
    }
    for (int k : {2, 3, 4}) {
      out.push_back("MARKED = SELECT(dataType == 'ChipSeq') ENCODE;\n"
                    "ACTIVE = COVER(" +
                    std::to_string(k) +
                    ", ANY) MARKED;\n"
                    "MATERIALIZE ACTIVE;\n");
    }
    out.push_back(
        "R = MAP(n AS COUNT, s AS SUM(signal)) PANELS ENCODE;\n"
        "MATERIALIZE R;\n");
    return out;
  }();
  return queries;
}

/// Response-side accounting: per-id response counts catch lost and
/// duplicated callbacks; latencies feed the percentile report.
struct Collector {
  std::mutex mu;
  std::map<uint64_t, int> responses;
  std::vector<double> latencies_ms;
  uint64_t errors = 0;

  void Record(const serve::ServeResponse& resp) {
    std::lock_guard<std::mutex> lock(mu);
    ++responses[resp.id];
    latencies_ms.push_back(resp.total_ms);
    if (!resp.status.ok()) ++errors;
  }

  /// (lost, duplicates) against the ids Submit admitted.
  std::pair<uint64_t, uint64_t> Audit(const std::vector<uint64_t>& admitted) {
    std::lock_guard<std::mutex> lock(mu);
    uint64_t lost = 0, dups = 0;
    for (uint64_t id : admitted) {
      auto it = responses.find(id);
      if (it == responses.end()) {
        ++lost;
      } else if (it->second > 1) {
        dups += static_cast<uint64_t>(it->second - 1);
      }
    }
    return {lost, dups};
  }

  double Percentile(double q) {
    std::lock_guard<std::mutex> lock(mu);
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }
};

struct PhaseResult {
  double wall_seconds = 0;
  double qps = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t lost = 0;
  uint64_t duplicates = 0;
  uint64_t errors = 0;
  double plan_hit_rate = 0;
  double result_hit_rate = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double max_submit_ms = 0;
};

/// Hit rate over a stats window: hits-delta / lookups-delta.
double DeltaRate(uint64_t hits0, uint64_t total0, uint64_t hits1,
                 uint64_t total1) {
  uint64_t total = total1 - total0;
  return total == 0 ? 0.0
                    : static_cast<double>(hits1 - hits0) /
                          static_cast<double>(total);
}

serve::ServeOptions BaseOptions(size_t workers) {
  serve::ServeOptions opts;
  opts.workers = workers;
  opts.engine_threads = 1;  // inter-query concurrency only: scaling = workers
  return opts;
}

/// Closed-loop batch, result cache off: every query executes, qps is
/// engine capacity at this worker count.
PhaseResult RunCapacity(size_t workers, size_t queries) {
  serve::ServeOptions opts = BaseOptions(workers);
  opts.queue_limit = queries + kWorkersMax;  // batch admits fully
  opts.result_cache_bytes = 0;
  serve::SessionManager manager(SharedCatalog(), opts);
  const auto& mix = QueryMix();
  for (const auto& q : mix) manager.Execute(q);  // warm the plan cache

  Collector col;
  std::vector<uint64_t> admitted;
  PhaseResult out;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    auto id = manager.Submit(
        mix[i % mix.size()],
        [&col](const serve::ServeResponse& resp) { col.Record(resp); });
    ++out.submitted;
    if (id.ok()) {
      admitted.push_back(id.ValueOrDie());
    } else {
      ++out.rejected;
    }
  }
  manager.Drain();
  out.wall_seconds = timer.Seconds();
  out.admitted = admitted.size();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(admitted.size()) / out.wall_seconds
                : 0;
  std::tie(out.lost, out.duplicates) = col.Audit(admitted);
  out.errors = col.errors;
  return out;
}

/// Paced arrival stream with both caches on, offered below capacity so
/// queueing stays incidental: the steady-state serving picture.
PhaseResult RunOpenLoop(size_t workers, double offered_qps, size_t queries) {
  serve::ServeOptions opts = BaseOptions(workers);
  opts.queue_limit = 64;
  serve::SessionManager manager(SharedCatalog(), opts);
  const auto& mix = QueryMix();
  for (const auto& q : mix) manager.Execute(q);  // fill plan + result caches

  serve::PlanCache::Stats plan0 = manager.plan_cache().stats();
  serve::ResultCache::Stats res0 = manager.result_cache().stats();

  Collector col;
  std::vector<uint64_t> admitted;
  PhaseResult out;
  auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(offered_qps > 0 ? 1.0 / offered_qps : 0));
  auto next = std::chrono::steady_clock::now();
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    auto id = manager.Submit(
        mix[i % mix.size()],
        [&col](const serve::ServeResponse& resp) { col.Record(resp); });
    ++out.submitted;
    if (id.ok()) {
      admitted.push_back(id.ValueOrDie());
    } else {
      ++out.rejected;
    }
  }
  manager.Drain();
  out.wall_seconds = timer.Seconds();
  out.admitted = admitted.size();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(admitted.size()) / out.wall_seconds
                : 0;
  std::tie(out.lost, out.duplicates) = col.Audit(admitted);
  out.errors = col.errors;

  serve::PlanCache::Stats plan1 = manager.plan_cache().stats();
  serve::ResultCache::Stats res1 = manager.result_cache().stats();
  out.plan_hit_rate =
      DeltaRate(plan0.hits, plan0.hits + plan0.rebinds + plan0.misses,
                plan1.hits, plan1.hits + plan1.rebinds + plan1.misses);
  out.result_hit_rate = DeltaRate(res0.hits, res0.hits + res0.misses,
                                  res1.hits, res1.hits + res1.misses);
  out.p50_ms = col.Percentile(0.50);
  out.p95_ms = col.Percentile(0.95);
  out.p99_ms = col.Percentile(0.99);
  return out;
}

/// Burst far beyond a tiny queue with the result cache off (queries cost
/// real work): admission must reject — fast, without blocking — and every
/// admitted query must still be answered exactly once.
PhaseResult RunOverload(size_t queries) {
  serve::ServeOptions opts = BaseOptions(2);
  opts.queue_limit = kOverloadQueueLimit;
  opts.result_cache_bytes = 0;
  serve::SessionManager manager(SharedCatalog(), opts);
  const auto& mix = QueryMix();
  for (const auto& q : mix) manager.Execute(q);

  Collector col;
  std::vector<uint64_t> admitted;
  PhaseResult out;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    Timer submit_timer;
    auto id = manager.Submit(
        mix[i % mix.size()],
        [&col](const serve::ServeResponse& resp) { col.Record(resp); });
    out.max_submit_ms =
        std::max(out.max_submit_ms, submit_timer.Seconds() * 1000.0);
    ++out.submitted;
    if (id.ok()) {
      admitted.push_back(id.ValueOrDie());
    } else {
      ++out.rejected;
    }
  }
  manager.Drain();
  out.wall_seconds = timer.Seconds();
  out.admitted = admitted.size();
  std::tie(out.lost, out.duplicates) = col.Audit(admitted);
  out.errors = col.errors;
  return out;
}

void AddCommonFields(bench::JsonObject* row, const PhaseResult& r) {
  row->Add("submitted", r.submitted);
  row->Add("admitted", r.admitted);
  row->Add("rejected", r.rejected);
  row->Add("lost", r.lost);
  row->Add("duplicates", r.duplicates);
  row->Add("errors", r.errors);
  row->Add("wall_seconds", r.wall_seconds);
}

void PrintTable(bench::BenchJson* json) {
  bench::Header("E9 serve: admission control, plan/result caches, scaling",
                "Section 4.4: GMQL as a shared multi-user service");
  size_t hw = std::thread::hardware_concurrency();
  const auto& mix = QueryMix();
  std::printf("hardware threads: %zu\n", hw);
  std::printf("query mix: %zu (shape, binding) variants (E1/E3/E7-shaped)\n",
              mix.size());
  json->top().Add("hardware_threads", static_cast<uint64_t>(hw));
  json->top().Add("workers_max", static_cast<uint64_t>(kWorkersMax));
  json->top().Add("query_variants", static_cast<uint64_t>(mix.size()));

  // -- capacity: 1 worker vs kWorkersMax, every query executes --
  PhaseResult cap1 = RunCapacity(1, kCapacityQueries);
  PhaseResult capN = RunCapacity(kWorkersMax, kCapacityQueries);
  double scaling = cap1.qps > 0 ? capN.qps / cap1.qps : 0;
  std::printf("\n%10s %10s %12s %9s %6s %6s\n", "phase", "workers", "qps",
              "wall(s)", "lost", "dup");
  std::printf("%10s %10d %12.1f %9.3f %6llu %6llu\n", "capacity", 1, cap1.qps,
              cap1.wall_seconds, static_cast<unsigned long long>(cap1.lost),
              static_cast<unsigned long long>(cap1.duplicates));
  std::printf("%10s %10zu %12.1f %9.3f %6llu %6llu  (%.2fx vs 1 worker)\n",
              "capacity", kWorkersMax, capN.qps, capN.wall_seconds,
              static_cast<unsigned long long>(capN.lost),
              static_cast<unsigned long long>(capN.duplicates), scaling);
  for (const auto* r : {&cap1, &capN}) {
    bench::JsonObject& row = json->NewRun();
    row.Add("phase", "capacity");
    row.Add("workers", static_cast<uint64_t>(r == &cap1 ? 1 : kWorkersMax));
    row.Add("qps", r->qps);
    AddCommonFields(&row, *r);
  }
  json->top().Add("scaling_at_max_workers", scaling);

  // -- open loop at a sustainable fraction of measured capacity --
  double offered = std::max(20.0, capN.qps * 0.6);
  PhaseResult open = RunOpenLoop(kWorkersMax, offered, kOpenLoopQueries);
  std::printf(
      "\nopen loop: offered %.1f qps, achieved %.1f qps over %zu queries\n",
      offered, open.qps, kOpenLoopQueries);
  std::printf("  plan cache hit rate:   %5.1f%% (warm; gate >= 90%%)\n",
              open.plan_hit_rate * 100);
  std::printf("  result cache hit rate: %5.1f%%\n",
              open.result_hit_rate * 100);
  std::printf("  latency ms: p50 %.2f  p95 %.2f  p99 %.2f\n", open.p50_ms,
              open.p95_ms, open.p99_ms);
  std::printf("  lost %llu, duplicates %llu, errors %llu, rejected %llu\n",
              static_cast<unsigned long long>(open.lost),
              static_cast<unsigned long long>(open.duplicates),
              static_cast<unsigned long long>(open.errors),
              static_cast<unsigned long long>(open.rejected));
  {
    bench::JsonObject& row = json->NewRun();
    row.Add("phase", "open_loop");
    row.Add("workers", static_cast<uint64_t>(kWorkersMax));
    row.Add("offered_qps", offered);
    row.Add("qps", open.qps);
    row.Add("plan_hit_rate", open.plan_hit_rate);
    row.Add("result_hit_rate", open.result_hit_rate);
    row.Add("p50_ms", open.p50_ms);
    row.Add("p95_ms", open.p95_ms);
    row.Add("p99_ms", open.p99_ms);
    AddCommonFields(&row, open);
  }

  // -- overload: burst >> queue, shedding must engage --
  PhaseResult over = RunOverload(kOverloadQueries);
  std::printf(
      "\noverload: %zu-query burst into queue limit %zu -> admitted %llu, "
      "rejected %llu\n",
      kOverloadQueries, kOverloadQueueLimit,
      static_cast<unsigned long long>(over.admitted),
      static_cast<unsigned long long>(over.rejected));
  std::printf("  max Submit stall %.2f ms (rejection is a fast path)\n",
              over.max_submit_ms);
  std::printf("  lost %llu, duplicates %llu\n",
              static_cast<unsigned long long>(over.lost),
              static_cast<unsigned long long>(over.duplicates));
  {
    bench::JsonObject& row = json->NewRun();
    row.Add("phase", "overload");
    row.Add("workers", static_cast<uint64_t>(2));
    row.Add("queue_limit", static_cast<uint64_t>(kOverloadQueueLimit));
    row.Add("max_submit_ms", over.max_submit_ms);
    AddCommonFields(&row, over);
  }

  bench::Note(
      "capacity runs with the result cache OFF so qps measures executed "
      "queries;\nworker scaling is bounded by hardware threads (engine "
      "threads are pinned to 1\nper worker, so sessions are the only "
      "parallelism axis). The open-loop phase\nserves the same mix with both "
      "caches on: a warmed plan cache answers every\nvariant without parsing "
      "and the result cache answers repeats without executing.");
}

void BM_WarmServe(benchmark::State& state) {
  static serve::SessionManager* manager = [] {
    serve::ServeOptions opts = BaseOptions(2);
    auto* m = new serve::SessionManager(SharedCatalog(), opts);
    for (const auto& q : QueryMix()) m->Execute(q);
    return m;
  }();
  const auto& mix = QueryMix();
  size_t i = 0;
  for (auto _ : state) {
    serve::ServeResponse resp = manager->Execute(mix[i++ % mix.size()]);
    benchmark::DoNotOptimize(resp.result_cache_hit);
  }
  state.SetLabel("plan+result caches warm");
}
BENCHMARK(BM_WarmServe)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(&argc, argv);
  bench::ObsFlags obs_flags;
  obs_flags.ParseFromArgs(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_E9_SERVE.json";
  bench::BenchJson json("E9 serve admission and caching");
  PrintTable(&json);
  json.WriteTo(json_path);
  obs_flags.Finish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
