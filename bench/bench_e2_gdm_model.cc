// E2 — Figure 2: the GDM schema and instances.
//
// Reproduces the PEAKS dataset of Figure 2 literally (two samples, fixed
// coordinates + P_VALUE, metadata triples connected by sample id), validates
// the GDM constraint, and micro-benchmarks the model's core operations:
// validation, native-format round-trip, schema merging and sorting.

#include <sstream>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gdm/dataset.h"
#include "io/gdm_format.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT

gdm::Dataset Figure2() {
  gdm::RegionSchema schema;
  (void)schema.AddAttr("p_value", gdm::AttrType::kDouble);
  gdm::Dataset ds("PEAKS", schema);
  int32_t chr1 = gdm::InternChrom("chr1");
  int32_t chr2 = gdm::InternChrom("chr2");
  gdm::Sample s1(1);
  s1.metadata.Add("antibody_target", "CTCF");
  s1.metadata.Add("dataType", "ChipSeq");
  s1.metadata.Add("cell", "HeLa-S3");
  s1.metadata.Add("karyotype", "cancer");
  s1.regions = {
      {chr1, 2571, 3049, gdm::Strand::kPlus, {gdm::Value(3.3e-9)}},
      {chr1, 10200, 10641, gdm::Strand::kMinus, {gdm::Value(1.2e-7)}},
      {chr1, 30018, 30601, gdm::Strand::kPlus, {gdm::Value(8.1e-10)}},
      {chr2, 1001, 1441, gdm::Strand::kPlus, {gdm::Value(3.4e-8)}},
      {chr2, 8801, 9321, gdm::Strand::kMinus, {gdm::Value(5.5e-9)}}};
  s1.SortNow();
  gdm::Sample s2(2);
  s2.metadata.Add("antibody_target", "POLR2A");
  s2.metadata.Add("dataType", "ChipSeq");
  s2.metadata.Add("sex", "female");
  s2.regions = {
      {chr1, 3001, 3540, gdm::Strand::kNone, {gdm::Value(6.0e-8)}},
      {chr1, 15000, 15440, gdm::Strand::kNone, {gdm::Value(2.2e-7)}},
      {chr2, 1200, 1640, gdm::Strand::kNone, {gdm::Value(9.1e-9)}},
      {chr2, 10200, 10560, gdm::Strand::kNone, {gdm::Value(4.4e-8)}}};
  s2.SortNow();
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  return ds;
}

gdm::Dataset BigDataset(size_t samples, size_t regions) {
  sim::PeakDatasetOptions opt;
  opt.num_samples = samples;
  opt.peaks_per_sample = regions;
  return sim::GeneratePeakDataset(gdm::GenomeAssembly::HumanLike(8, 50000000),
                                  opt, 1);
}

void PrintTable() {
  bench::Header("E2: GDM model reproduction",
                "Figure 2: GDM schema and instances for NGS ChIP-Seq data");
  gdm::Dataset fig2 = Figure2();
  std::fputs(fig2.Describe(2, 5).c_str(), stdout);
  bench::Note("GDM constraint validates: %s",
              fig2.Validate().ToString().c_str());
  std::string wire = io::WriteGdmString(fig2);
  auto back = io::ReadGdmString(wire);
  bench::Note("native-format round-trip: %s (%zu bytes)",
              back.ok() ? "ok" : back.status().ToString().c_str(), wire.size());
  // Schema merging (the interoperability mechanism).
  gdm::RegionSchema other;
  (void)other.AddAttr("p_value", gdm::AttrType::kDouble);
  (void)other.AddAttr("fold_change", gdm::AttrType::kDouble);
  auto merged = gdm::RegionSchema::Merge(fig2.schema(), other);
  bench::Note("schema merge of [%s] and [%s] -> [%s]",
              fig2.schema().ToString().c_str(), other.ToString().c_str(),
              merged.ToString().c_str());
}

void BM_Validate(benchmark::State& state) {
  gdm::Dataset ds = BigDataset(4, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Validate().ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.TotalRegions()));
}
BENCHMARK(BM_Validate)->Arg(1000)->Arg(10000);

void BM_GdmFormatRoundTrip(benchmark::State& state) {
  gdm::Dataset ds = BigDataset(2, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string wire = io::WriteGdmString(ds);
    auto back = io::ReadGdmString(wire);
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.TotalRegions()));
}
BENCHMARK(BM_GdmFormatRoundTrip)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_SortRegions(benchmark::State& state) {
  gdm::Dataset ds = BigDataset(1, static_cast<size_t>(state.range(0)));
  std::vector<gdm::GenomicRegion> shuffled = ds.sample(0).regions;
  std::reverse(shuffled.begin(), shuffled.end());
  for (auto _ : state) {
    auto copy = shuffled;
    gdm::SortRegions(&copy);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_SortRegions)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SchemaMerge(benchmark::State& state) {
  gdm::RegionSchema a;
  gdm::RegionSchema b;
  for (int i = 0; i < 16; ++i) {
    (void)a.AddAttr("a" + std::to_string(i), gdm::AttrType::kDouble);
    (void)b.AddAttr(i % 2 ? "a" + std::to_string(i) : "b" + std::to_string(i),
                    gdm::AttrType::kDouble);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gdm::RegionSchema::Merge(a, b).size());
  }
}
BENCHMARK(BM_SchemaMerge);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
