// E10 — Section 4.5: the Internet of Genomes.
//
// Sweeps the number of publishing hosts, crawls them, and reports crawl
// cost (metadata vs dataset bytes), snippet-search latency and the effect
// of crawler-side caching on later dataset fetches. Shape: metadata-only
// crawling stays cheap as hosts grow; caching turns repeat fetches free.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "search/internet_of_genomes.h"
#include "sim/generators.h"

namespace {

using namespace gdms;               // NOLINT
using namespace gdms::search::iog;  // NOLINT
using bench::Timer;

std::vector<std::unique_ptr<Host>> MakeHosts(size_t count,
                                             size_t datasets_per_host) {
  static const char* kCells[] = {"K562", "HeLa-S3", "GM12878", "HepG2",
                                 "IMR90"};
  static const char* kAntibodies[] = {"CTCF", "POLR2A", "H3K27ac", "H3K4me1",
                                      "H3K4me3", "EP300"};
  auto genome = gdm::GenomeAssembly::HumanLike(3, 20000000);
  std::vector<std::unique_ptr<Host>> hosts;
  for (size_t h = 0; h < count; ++h) {
    auto host = std::make_unique<Host>("center" + std::to_string(h) + ".org");
    for (size_t d = 0; d < datasets_per_host; ++d) {
      sim::PeakDatasetOptions opt;
      opt.num_samples = 1;
      opt.peaks_per_sample = 300;
      const char* cell = kCells[(h + d) % 5];
      const char* antibody = kAntibodies[(h * 3 + d) % 6];
      opt.cells = {cell};
      opt.antibodies = {antibody};
      gdm::Metadata meta;
      meta.Add("dataType", "ChipSeq");
      meta.Add("cell", cell);
      meta.Add("antibody", antibody);
      host->Publish(
          sim::GeneratePeakDataset(genome, opt, h * 100 + d,
                                   std::string(antibody) + "_" + cell + "_" +
                                       std::to_string(h) + "_" +
                                       std::to_string(d)),
          std::move(meta));
    }
    hosts.push_back(std::move(host));
  }
  return hosts;
}

void PrintTable() {
  bench::Header("E10: Internet of Genomes — publish, crawl, search, fetch",
                "Section 4.5: hosts publish links+metadata, a crawler feeds "
                "a search service producing snippets");
  std::printf("%6s %8s %10s %12s %12s %10s %12s\n", "hosts", "entries",
              "crawl_s", "meta_bytes", "data_bytes", "search_us",
              "fetch_bytes");
  for (size_t hosts_n : {4, 16, 64}) {
    auto hosts = MakeHosts(hosts_n, 6);
    SearchService service;
    for (const auto& h : hosts) service.AddHost(h.get());
    Timer crawl_timer;
    auto stats = service.Crawl().ValueOrDie();  // metadata-only crawl
    double crawl_seconds = crawl_timer.Seconds();
    // Search latency over many queries.
    Timer search_timer;
    size_t searches = 200;
    size_t total_snippets = 0;
    for (size_t q = 0; q < searches; ++q) {
      total_snippets +=
          service.Search(q % 2 ? "CTCF" : "cancer_cell_line").size();
    }
    double search_us = search_timer.Seconds() * 1e6 / searches;
    // First fetch goes over the wire.
    auto snippets = service.Search("CTCF");
    uint64_t fetch_bytes = 0;
    if (!snippets.empty()) {
      (void)service.FetchDataset(snippets[0].url, &fetch_bytes).ValueOrDie();
    }
    std::printf("%6zu %8zu %10.3f %12s %12s %10.1f %12s\n", hosts_n,
                stats.entries_indexed, crawl_seconds,
                HumanBytes(stats.metadata_bytes).c_str(),
                HumanBytes(stats.dataset_bytes).c_str(), search_us,
                HumanBytes(fetch_bytes).c_str());
    benchmark::DoNotOptimize(total_snippets);
  }

  // Cache effect.
  auto hosts = MakeHosts(8, 6);
  SearchService service;
  for (const auto& h : hosts) service.AddHost(h.get());
  (void)service.Crawl().ValueOrDie();
  auto snippets = service.Search("CTCF");
  uint64_t cold = 0;
  (void)service.FetchDataset(snippets[0].url, &cold).ValueOrDie();
  (void)service.Crawl(/*cache_budget_bytes=*/10 << 20).ValueOrDie();
  uint64_t warm = 0;
  (void)service.FetchDataset(snippets[0].url, &warm).ValueOrDie();
  bench::Note(
      "\ncache effect: fetch before caching crawl moved %s, after it %s "
      "(served locally).\nshape check: metadata crawl cost grows linearly "
      "and stays orders of magnitude\nbelow dataset volume — the crawler "
      "protocol is non-intrusive.",
      HumanBytes(cold).c_str(), HumanBytes(warm).c_str());
}

void BM_Crawl(benchmark::State& state) {
  auto hosts = MakeHosts(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    SearchService service;
    for (const auto& h : hosts) service.AddHost(h.get());
    auto stats = service.Crawl().ValueOrDie();
    benchmark::DoNotOptimize(stats.entries_indexed);
  }
}
BENCHMARK(BM_Crawl)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SnippetSearch(benchmark::State& state) {
  auto hosts = MakeHosts(32, 6);
  SearchService service;
  for (const auto& h : hosts) service.AddHost(h.get());
  (void)service.Crawl().ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.Search("histone_mark K562").size());
  }
}
BENCHMARK(BM_SnippetSearch);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
