// E3 — Figure 3 / Section 3 problem 2: CTCF loops and enhancer-promoter
// pairing.
//
// Sweeps the number of CTCF loops and reports how many active-enhancer
// candidates fall inside loops and how many candidate promoter-enhancer
// pairs the GMQL pipeline extracts. The paper's qualitative claim — the
// loop constraint is selective (it prunes the candidate space) — is checked
// by comparing in-loop pair counts against the unconstrained pairing.

#include <benchmark/benchmark.h>

#include "analysis/enrichment.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

struct PipelineResult {
  uint64_t active = 0;
  uint64_t in_loop = 0;
  uint64_t pairs_constrained = 0;
  uint64_t pairs_unconstrained = 0;
  double seconds = 0;
  /// GREAT-style significance of active-enhancer enrichment inside loops.
  analysis::EnrichmentResult enrichment;
};

PipelineResult RunPipeline(size_t num_loops, uint64_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  core::QueryRunner runner;
  sim::CtcfLoopOptions lopt;
  lopt.num_loops = num_loops;
  runner.RegisterDataset(sim::GenerateCtcfLoops(genome, lopt, seed));
  sim::PeakDatasetOptions popt;
  popt.num_samples = 3;
  popt.peaks_per_sample = 3000;
  popt.antibodies = {"H3K27ac", "H3K4me1", "H3K4me3"};
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, seed, "MARKS"));
  auto catalog = sim::GenerateGenes(genome, 1000, seed);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, seed));

  PipelineResult out;
  Timer timer;
  auto results = runner.Run(
      "MARKED = SELECT(dataType == 'ChipSeq') MARKS;\n"
      "ACTIVE = COVER(2, ANY) MARKED;\n"
      // In-loop membership without duplication: subtract twice.
      "OUT_LOOP = DIFFERENCE() ACTIVE CTCF_LOOPS;\n"
      "IN_LOOP = DIFFERENCE() ACTIVE OUT_LOOP;\n"
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PAIRS = JOIN(DLE(200000); CAT) PROMS IN_LOOP;\n"
      "PAIRS_FREE = JOIN(DLE(200000); CAT) PROMS ACTIVE;\n"
      "MATERIALIZE ACTIVE; MATERIALIZE IN_LOOP; MATERIALIZE PAIRS;\n"
      "MATERIALIZE PAIRS_FREE;\n");
  out.seconds = timer.Seconds();
  const auto& r = results.ValueOrDie();
  out.active = r.at("ACTIVE").TotalRegions();
  out.in_loop = r.at("IN_LOOP").TotalRegions();
  out.pairs_constrained = r.at("PAIRS").TotalRegions();
  out.pairs_unconstrained = r.at("PAIRS_FREE").TotalRegions();
  // Significance of the overlap (Sec 4.3's GREAT-style statistics): are the
  // active candidates inside loops more often than chance predicts?
  out.enrichment =
      analysis::BinomialEnrichment(
          r.at("ACTIVE").sample(0).regions,
          sim::GenerateCtcfLoops(genome, lopt, seed).sample(0).regions,
          genome.TotalLength())
          .ValueOrDie();
  return out;
}

void PrintTable() {
  bench::Header("E3: CTCF loops x enhancer marks x promoters",
                "Figure 3: interaction between CTCF loops and gene "
                "regulation by enhancers");
  std::printf("%8s %10s %10s %14s %14s %10s %8s %8s\n", "loops", "active",
              "in_loop", "pairs(loop)", "pairs(free)", "pruning", "fold",
              "-log10p");
  for (size_t loops : {500, 1500, 4500}) {
    PipelineResult r = RunPipeline(loops, 33);
    double pruning = r.pairs_unconstrained == 0
                         ? 0
                         : 1.0 - static_cast<double>(r.pairs_constrained) /
                                     static_cast<double>(r.pairs_unconstrained);
    std::printf("%8zu %10s %10s %14s %14s %9.1f%% %8.2f %8.1f\n", loops,
                WithThousands(r.active).c_str(),
                WithThousands(r.in_loop).c_str(),
                WithThousands(r.pairs_constrained).c_str(),
                WithThousands(r.pairs_unconstrained).c_str(), pruning * 100,
                r.enrichment.fold_enrichment, r.enrichment.log10_p);
  }
  bench::Note(
      "shape check: the CTCF-loop constraint prunes candidate pairs, and the "
      "pruning\nweakens as loop coverage of the genome grows — the spatial "
      "condition of Fig. 3.\nThe GREAT-style binomial column validates the "
      "statistics on a synthetic null:\nmarks and loops are placed "
      "independently, so fold enrichment sits near 1.");
}

void BM_CtcfPipeline(benchmark::State& state) {
  for (auto _ : state) {
    PipelineResult r = RunPipeline(static_cast<size_t>(state.range(0)), 33);
    benchmark::DoNotOptimize(r.pairs_constrained);
  }
}
BENCHMARK(BM_CtcfPipeline)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
