// E1 — the paper's one measured query (Section 2):
//
//   PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//   PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
//   RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
//
// Paper numbers: 2,423 ENCODE samples, 83,899,526 peaks, 131,780 promoters,
// 29 GB of result data. We run the identical query at scale factors and
// check the shape: result regions = promoters x samples, and bytes/region
// extrapolate to the tens-of-GB range at paper scale.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

struct ScaledRun {
  size_t samples;
  uint64_t peaks;
  uint64_t promoters;
  size_t result_samples;
  uint64_t result_regions;
  uint64_t result_bytes;
  double seconds;
};

ScaledRun RunAtScale(size_t num_samples, size_t peaks_per_sample,
                     size_t num_genes) {
  auto genome = gdm::GenomeAssembly::HumanLike(22, 240000000 / 4);
  core::QueryRunner runner;
  sim::PeakDatasetOptions popt;
  popt.num_samples = num_samples;
  popt.peaks_per_sample = peaks_per_sample;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 2016));
  auto catalog = sim::GenerateGenes(genome, num_genes, 2016);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 2016));

  ScaledRun run;
  run.samples = num_samples;
  run.peaks = static_cast<uint64_t>(num_samples) * peaks_per_sample;
  run.promoters = catalog.genes.size();

  Timer timer;
  auto results = runner.Run(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "MATERIALIZE RESULT;\n");
  run.seconds = timer.Seconds();
  auto outputs = std::move(results).ValueOrDie();
  const gdm::Dataset& result = outputs.at("RESULT");
  run.result_samples = result.num_samples();
  run.result_regions = result.TotalRegions();
  run.result_bytes = result.EstimateBytes();
  return run;
}

void PrintTable(bench::BenchJson* json) {
  bench::Header("E1: the Section 2 MAP query at increasing scale",
                "Section 2 measured query: 2,423 samples / 83,899,526 peaks "
                "/ 131,780 promoters -> 29 GB");
  std::printf("%8s %12s %10s %10s %14s %12s %8s\n", "samples", "peaks",
              "promoters", "out_samp", "out_regions", "out_bytes", "sec");

  struct Scale {
    size_t samples;
    size_t peaks;
    size_t genes;
  };
  const Scale scales[] = {
      {38, 1024, 2059},   // ~1/64 of paper scale
      {76, 2048, 4118},   // ~1/32
      {151, 4096, 8236},  // ~1/16
  };
  double last_bytes_per_unit = 0;
  for (const auto& s : scales) {
    ScaledRun run = RunAtScale(s.samples, s.peaks, s.genes);
    bench::JsonObject& row = json->NewRun();
    row.Add("samples", static_cast<uint64_t>(run.samples));
    row.Add("peaks_per_sample", static_cast<uint64_t>(s.peaks));
    row.Add("genes", static_cast<uint64_t>(s.genes));
    row.Add("promoters", run.promoters);
    row.Add("result_samples", static_cast<uint64_t>(run.result_samples));
    row.Add("result_regions", run.result_regions);
    row.Add("result_bytes", run.result_bytes);
    row.Add("wall_seconds", run.seconds);
    std::printf("%8zu %12s %10s %10zu %14s %12s %8.2f\n", run.samples,
                WithThousands(run.peaks).c_str(),
                WithThousands(run.promoters).c_str(), run.result_samples,
                WithThousands(run.result_regions).c_str(),
                HumanBytes(run.result_bytes).c_str(), run.seconds);
    // Shape checks mirrored in EXPERIMENTS.md:
    //   result samples == peak samples; result regions == promoters x samples.
    if (run.result_samples != run.samples ||
        run.result_regions !=
            run.promoters * static_cast<uint64_t>(run.samples)) {
      std::printf("  !! SHAPE MISMATCH\n");
    }
    last_bytes_per_unit =
        static_cast<double>(run.result_bytes) /
        static_cast<double>(run.result_regions);
  }
  // Extrapolate the last run to paper scale.
  double paper_regions = 131780.0 * 2423.0;
  double paper_bytes = paper_regions * last_bytes_per_unit;
  bench::Note(
      "extrapolation to paper scale: %.0f promoters x %d samples = %s "
      "result regions -> ~%s (paper reports 29 GB)",
      131780.0, 2423,
      WithThousands(static_cast<uint64_t>(paper_regions)).c_str(),
      HumanBytes(static_cast<uint64_t>(paper_bytes)).c_str());
  json->top().Add("extrapolated_paper_bytes",
                  static_cast<uint64_t>(paper_bytes));
}

// E1b — the Section 2 query extended with the enrichment filter, fused vs
// --no-fusion on the parallel engine (8 threads, flat scheduler). The
// MAP->SELECT chain fuses into one physical stage: the SELECT runs inside
// MAP's per-pair assembly tasks and the intermediate MAP dataset is never
// allocated.
void FusionAB(bench::BenchJson* json) {
  bench::Header("E1b: MAP->SELECT chain, fusion on vs off",
                "8 threads, flat scheduler; best of 3 runs each");
  auto genome = gdm::GenomeAssembly::HumanLike(22, 240000000 / 4);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 76;
  popt.peaks_per_sample = 2048;
  gdm::Dataset encode = sim::GeneratePeakDataset(genome, popt, 2016);
  auto catalog = sim::GenerateGenes(genome, 4118, 2016);
  gdm::Dataset annotations =
      sim::GenerateAnnotations(genome, catalog, {}, 2016);
  const char* query =
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "ENRICHED = SELECT(region: peak_count >= 2) RESULT;\n"
      "MATERIALIZE ENRICHED;\n";

  struct FusionRun {
    double seconds = 0;
    size_t intermediates = 0;
    size_t chains = 0;
  };
  auto run_one = [&](bool fusion) {
    engine::EngineOptions options;
    options.threads = 8;
    engine::ParallelExecutor executor(options);
    core::QueryRunner runner(&executor);
    runner.set_fusion(fusion);
    runner.RegisterDataset(encode);
    runner.RegisterDataset(annotations);
    FusionRun best;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      auto results = runner.Run(query);
      double seconds = timer.Seconds();
      (void)std::move(results).ValueOrDie();
      if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
    }
    best.intermediates = runner.last_stats().intermediate_datasets;
    best.chains = runner.last_stats().fusion.chains_fused;
    return best;
  };

  FusionRun off = run_one(false);
  FusionRun on = run_one(true);
  double speedup = off.seconds / on.seconds;
  double intermediate_drop =
      1.0 - static_cast<double>(on.intermediates) /
                static_cast<double>(off.intermediates);
  std::printf("%10s %10s %14s %8s\n", "fusion", "sec", "intermediates",
              "chains");
  std::printf("%10s %10.3f %14zu %8zu\n", "off", off.seconds,
              off.intermediates, off.chains);
  std::printf("%10s %10.3f %14zu %8zu\n", "on", on.seconds, on.intermediates,
              on.chains);
  bench::Note(
      "fusion speedup %.2fx; intermediate datasets %zu -> %zu (-%.0f%%)",
      speedup, off.intermediates, on.intermediates, intermediate_drop * 100);
  json->top().Add("fusion_off_seconds", off.seconds);
  json->top().Add("fusion_on_seconds", on.seconds);
  json->top().Add("fusion_speedup", speedup);
  json->top().Add("fusion_intermediates_off",
                  static_cast<uint64_t>(off.intermediates));
  json->top().Add("fusion_intermediates_on",
                  static_cast<uint64_t>(on.intermediates));
  json->top().Add("fusion_chains", static_cast<uint64_t>(on.chains));
}

void BM_Section2Query(benchmark::State& state) {
  for (auto _ : state) {
    ScaledRun run = RunAtScale(static_cast<size_t>(state.range(0)), 1024,
                               2000);
    benchmark::DoNotOptimize(run.result_regions);
  }
}
BENCHMARK(BM_Section2Query)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(&argc, argv);
  bench::ObsFlags obs_flags;
  obs_flags.ParseFromArgs(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_E1.json";
  bench::BenchJson json("E1 section2 map query");
  PrintTable(&json);
  FusionAB(&json);
  json.WriteTo(json_path);
  obs_flags.Finish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
