// E4 — Figure 4: MAP -> genome space -> gene network.
//
// Builds the genome space from a real MAP query, prints its corner (the
// figure's table), derives the gene network at several similarity
// thresholds, and checks the paper's Section 4.2 scale claim: "simple
// queries over genes may produce genome spaces of 10K genes and 100M
// relationships" — i.e. edge counts approach the n^2/2 all-pairs ceiling as
// the threshold drops.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/clustering.h"
#include "analysis/genome_space.h"
#include "analysis/latent.h"
#include "analysis/network.h"
#include "analysis/phenotype.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT
using bench::Timer;

gdm::Dataset BuildMapResult(size_t num_genes, size_t num_experiments,
                            uint64_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  core::QueryRunner runner;
  sim::PeakDatasetOptions popt;
  popt.num_samples = num_experiments;
  popt.peaks_per_sample = 2500;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, seed));
  auto catalog = sim::GenerateGenes(genome, num_genes, seed);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, seed));
  auto results = runner.Run(
      "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
      "GS = MAP(n AS COUNT) GENES ENCODE;\nMATERIALIZE GS;\n");
  return std::move(results).ValueOrDie().at("GS");
}

analysis::GenomeSpace BuildSpace(size_t num_genes, size_t num_experiments,
                                 uint64_t seed) {
  return analysis::GenomeSpace::FromMapResult(
             BuildMapResult(num_genes, num_experiments, seed), "n")
      .ValueOrDie();
}

void PrintTable() {
  bench::Header("E4: genome space and gene network",
                "Figure 4: MAP query as genome space, genome space as gene "
                "network; Sec. 4.2 claim of 10K genes / 100M relationships");
  analysis::GenomeSpace space = BuildSpace(600, 8, 44);
  std::printf("genome space: %zu regions x %zu experiments; corner:\n",
              space.num_regions(), space.num_experiments());
  std::fputs(space.RenderCorner(5, 6).c_str(), stdout);

  std::printf("\n%10s %10s %10s %12s %12s %10s\n", "threshold", "nodes",
              "edges", "avg_degree", "components", "largest");
  for (double threshold : {0.9, 0.6, 0.3, 0.1}) {
    auto net = analysis::GeneNetwork::FromGenomeSpace(
        space, analysis::SimilarityKind::kJaccard, threshold);
    auto stats = net.Stats();
    std::printf("%10.2f %10zu %10s %12.2f %12zu %10zu\n", threshold,
                stats.nodes, WithThousands(stats.edges).c_str(),
                stats.avg_degree, stats.connected_components,
                stats.largest_component);
  }
  // Scale claim: at 10K genes the all-pairs relationship space is ~50M and
  // with near-zero threshold the network materializes most of it.
  double pairs_10k = 10000.0 * 9999.0 / 2.0;
  bench::Note(
      "\nscale claim: 10K genes give %.0fM potential relationships "
      "(paper says '10K genes\nand 100M relationships'); a dense genome "
      "space materializes that order of arcs.",
      pairs_10k / 1e6);

  // Clustering of genome-space rows (Sec. 4.1 "DNA region clustering").
  std::printf("\n%6s %14s %12s\n", "k", "inertia", "iterations");
  for (size_t k : {2, 4, 8, 16}) {
    auto clust = analysis::KMeans(space, k, 7);
    std::printf("%6zu %14.1f %12zu\n", k, clust.inertia, clust.iterations);
  }

  // Latent semantic analysis (Sec. 4.1): truncated SVD spectrum and the
  // variance captured per rank.
  double total_norm = 0;
  for (size_t r = 0; r < space.num_regions(); ++r) {
    for (size_t e = 0; e < space.num_experiments(); ++e) {
      total_norm += space.at(r, e) * space.at(r, e);
    }
  }
  total_norm = std::sqrt(total_norm);
  std::printf("\n%6s %16s %18s\n", "rank", "sigma_k", "residual/||A||");
  auto model = analysis::TruncatedSvd(space, 4, 7).ValueOrDie();
  for (size_t k = 1; k <= model.rank; ++k) {
    analysis::LatentModel truncated = model;
    truncated.rank = k;
    double err = analysis::ReconstructionError(space, truncated);
    std::printf("%6zu %16.2f %18.3f\n", k, model.singular_values[k - 1],
                total_norm > 0 ? err / total_norm : 0);
  }

  // Genotype-phenotype correlation (Sec. 4.1): split experiments by the
  // karyotype metadata and rank regions by point-biserial correlation.
  gdm::Dataset mapped = BuildMapResult(600, 8, 44);
  auto assocs = analysis::PhenotypeCorrelation(space, mapped, "karyotype",
                                               "cancer");
  if (assocs.ok()) {
    std::puts("\ntop regions associated with karyotype == cancer:");
    for (size_t i = 0; i < 5 && i < assocs.value().size(); ++i) {
      std::printf("  %-28s r=%+.3f\n", assocs.value()[i].label.c_str(),
                  assocs.value()[i].correlation);
    }
  } else {
    std::printf("\nphenotype split unavailable: %s\n",
                assocs.status().ToString().c_str());
  }
}

void BM_BuildGenomeSpace(benchmark::State& state) {
  for (auto _ : state) {
    auto space = BuildSpace(static_cast<size_t>(state.range(0)), 6, 44);
    benchmark::DoNotOptimize(space.num_regions());
  }
}
BENCHMARK(BM_BuildGenomeSpace)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_NetworkExtraction(benchmark::State& state) {
  analysis::GenomeSpace space = BuildSpace(400, 6, 44);
  for (auto _ : state) {
    auto net = analysis::GeneNetwork::FromGenomeSpace(
        space, analysis::SimilarityKind::kPearson, 0.5);
    benchmark::DoNotOptimize(net.edges().size());
  }
}
BENCHMARK(BM_NetworkExtraction)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  analysis::GenomeSpace space = BuildSpace(400, 6, 44);
  for (auto _ : state) {
    auto clust = analysis::KMeans(space, 8, 7);
    benchmark::DoNotOptimize(clust.inertia);
  }
}
BENCHMARK(BM_KMeans)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
