#ifndef GDMS_BENCH_BENCH_UTIL_H_
#define GDMS_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches. Every bench binary prints the
// paper-shaped table for its experiment (EXPERIMENTS.md records the mapping)
// and then runs its google-benchmark microbenchmarks, so both
// `./bench_e1_...` and `--benchmark_filter=...` behave as expected.

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace gdms::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// One flat JSON object, rendered in insertion order.
class JsonObject {
 public:
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<int64_t>(value));
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Machine-readable bench report: top-level fields (workload parameters)
/// plus a "runs" array of per-configuration measurements. Written when the
/// bench was invoked with `--json <path>`.
class BenchJson {
 public:
  explicit BenchJson(const std::string& experiment) {
    top_.Add("experiment", experiment);
  }

  JsonObject& top() { return top_; }
  JsonObject& NewRun() {
    runs_.emplace_back();
    return runs_.back();
  }

  bool WriteTo(const std::string& path) const {
    if (path.empty()) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string top = top_.Render();
    top.pop_back();  // re-open the object to append the runs array
    std::fprintf(f, "%s, \"runs\": [", top.c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "%s%s", i > 0 ? ", " : "", runs_[i].Render().c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  JsonObject top_;
  std::vector<JsonObject> runs_;
};

/// Extracts `--json <path>` (or `--json=<path>`) from argv, removing it so
/// benchmark::Initialize does not reject the unknown flag. Returns the path,
/// or an empty string when the flag is absent.
inline std::string JsonPathFromArgs(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return path;
}

}  // namespace gdms::bench

#endif  // GDMS_BENCH_BENCH_UTIL_H_
