#ifndef GDMS_BENCH_BENCH_UTIL_H_
#define GDMS_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches. Every bench binary prints the
// paper-shaped table for its experiment (EXPERIMENTS.md records the mapping)
// and then runs its google-benchmark microbenchmarks, so both
// `./bench_e1_...` and `--benchmark_filter=...` behave as expected.

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gdms::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("==========================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// One flat JSON object, rendered in insertion order.
class JsonObject {
 public:
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<int64_t>(value));
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Machine-readable bench report: top-level fields (workload parameters)
/// plus a "runs" array of per-configuration measurements. Written when the
/// bench was invoked with `--json <path>`.
class BenchJson {
 public:
  explicit BenchJson(const std::string& experiment) {
    top_.Add("experiment", experiment);
  }

  JsonObject& top() { return top_; }
  JsonObject& NewRun() {
    runs_.emplace_back();
    return runs_.back();
  }

  bool WriteTo(const std::string& path) const {
    if (path.empty()) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string top = top_.Render();
    top.pop_back();  // re-open the object to append the runs array
    std::fprintf(f, "%s, \"runs\": [", top.c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "%s%s", i > 0 ? ", " : "", runs_[i].Render().c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  JsonObject top_;
  std::vector<JsonObject> runs_;
};

/// Extracts `--<flag> <value>` (or `--<flag>=<value>`) from argv, removing it
/// so benchmark::Initialize does not reject the unknown flag. Returns the
/// value, or an empty string when the flag is absent.
inline std::string FlagFromArgs(const char* flag, int* argc, char** argv) {
  std::string spaced = std::string("--") + flag;
  std::string joined = spaced + "=";
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (spaced == argv[i] && i + 1 < *argc) {
      value = argv[++i];
    } else if (std::strncmp(argv[i], joined.c_str(), joined.size()) == 0) {
      value = argv[i] + joined.size();
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return value;
}

/// Extracts `--json <path>` (or `--json=<path>`) from argv. Returns the path,
/// or an empty string when the flag is absent.
inline std::string JsonPathFromArgs(int* argc, char** argv) {
  return FlagFromArgs("json", argc, argv);
}

/// The shared observability flags of the experiment benches:
///   --trace <path>    enable the span tracer; write a Chrome trace-event
///                     JSON of every span the bench produced to <path>
///   --metrics <path>  write the process metrics registry (counters,
///                     gauges, histograms) as JSON to <path>
/// Call ParseFromArgs before benchmark::Initialize and Finish after the
/// paper-table section (profile JSONs land next to the BENCH_E*.json).
class ObsFlags {
 public:
  void ParseFromArgs(int* argc, char** argv) {
    trace_path_ = FlagFromArgs("trace", argc, argv);
    metrics_path_ = FlagFromArgs("metrics", argc, argv);
    if (!trace_path_.empty()) obs::Tracer::Global().set_enabled(true);
  }

  void Finish() const {
    if (!trace_path_.empty()) {
      obs::Profile profile(obs::Tracer::Global().TakeAll());
      if (profile.WriteChromeTrace(trace_path_)) {
        std::printf("wrote %s (%zu spans)\n", trace_path_.c_str(),
                    profile.spans().size());
      }
    }
    if (!metrics_path_.empty()) {
      std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path_.c_str());
        return;
      }
      std::string json = obs::MetricsRegistry::Global().RenderJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace gdms::bench

#endif  // GDMS_BENCH_BENCH_UTIL_H_
