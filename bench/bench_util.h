#ifndef GDMS_BENCH_BENCH_UTIL_H_
#define GDMS_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches. Every bench binary prints the
// paper-shaped table for its experiment (EXPERIMENTS.md records the mapping)
// and then runs its google-benchmark microbenchmarks, so both
// `./bench_e1_...` and `--benchmark_filter=...` behave as expected.

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace gdms::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace gdms::bench

#endif  // GDMS_BENCH_BENCH_UTIL_H_
