// Degenerate-input behavior of every operator and both engines: empty
// datasets, empty samples, zero-length regions, single-region inputs.
// Nothing here may crash; results must be well-formed (Validate()) and
// follow documented semantics.

#include <gtest/gtest.h>

#include "core/operators.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"

namespace gdms::core {
namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

RegionSchema OneAttrSchema() {
  RegionSchema s;
  EXPECT_TRUE(s.AddAttr("v", AttrType::kDouble).ok());
  return s;
}

Dataset EmptyDataset(const char* name) {
  return Dataset(name, OneAttrSchema());
}

Dataset EmptySampleDataset(const char* name) {
  Dataset ds(name, OneAttrSchema());
  Sample s(1);
  s.metadata.Add("cell", "K562");
  ds.AddSample(std::move(s));
  return ds;
}

Dataset OneRegionDataset(const char* name, int64_t left = 100,
                         int64_t right = 200) {
  Dataset ds(name, OneAttrSchema());
  Sample s(1);
  s.metadata.Add("cell", "K562");
  s.regions.push_back(
      {InternChrom("chr1"), left, right, Strand::kNone, {Value(1.5)}});
  ds.AddSample(std::move(s));
  return ds;
}

TEST(EdgeCaseTest, UnaryOperatorsOnEmptyDataset) {
  Dataset empty = EmptyDataset("E");
  SelectParams select;
  select.meta = MetaPredicate::Compare("x", CmpOp::kEq, "y");
  EXPECT_EQ(Operators::Select(select, empty).ValueOrDie().num_samples(), 0u);
  ProjectParams project;
  project.keep_all = true;
  EXPECT_EQ(Operators::Project(project, empty).ValueOrDie().num_samples(), 0u);
  ExtendParams extend;
  extend.aggregates = {{"n", AggFunc::kCount, ""}};
  EXPECT_EQ(Operators::Extend(extend, empty).ValueOrDie().num_samples(), 0u);
  // MERGE of an empty dataset produces one empty group (by definition the
  // single all-samples group over zero samples).
  Dataset merged = Operators::Merge(MergeParams{}, empty).ValueOrDie();
  EXPECT_LE(merged.num_samples(), 1u);
  CoverParams cover;
  cover.min_acc = 1;
  cover.max_acc = -1;
  Dataset covered = Operators::Cover(cover, empty).ValueOrDie();
  EXPECT_EQ(covered.TotalRegions(), 0u);
  OrderParams order;
  order.meta_attr = "cell";
  EXPECT_EQ(Operators::Order(order, empty).ValueOrDie().num_samples(), 0u);
}

TEST(EdgeCaseTest, BinaryOperatorsWithEmptySides) {
  Dataset empty = EmptyDataset("E");
  Dataset one = OneRegionDataset("O");
  // UNION with an empty side keeps the other side's content.
  EXPECT_EQ(Operators::Union(empty, one).ValueOrDie().TotalRegions(), 1u);
  EXPECT_EQ(Operators::Union(one, empty).ValueOrDie().TotalRegions(), 1u);
  // DIFFERENCE against nothing keeps everything.
  EXPECT_EQ(Operators::Difference(DifferenceParams{}, one, empty)
                .ValueOrDie()
                .TotalRegions(),
            1u);
  // MAP of empty refs over data: no output samples (no ref samples).
  EXPECT_EQ(Operators::Map(MapParams{}, empty, one).ValueOrDie().num_samples(),
            0u);
  // MAP over an empty experiment side: no pairs either.
  EXPECT_EQ(Operators::Map(MapParams{}, one, empty).ValueOrDie().num_samples(),
            0u);
  JoinParams join;
  join.predicate.max_dist = 100;
  join.predicate.has_upper = true;
  EXPECT_EQ(Operators::Join(join, one, empty).ValueOrDie().num_samples(), 0u);
}

TEST(EdgeCaseTest, EmptySamplesFlowThrough) {
  Dataset es = EmptySampleDataset("ES");
  Dataset one = OneRegionDataset("O");
  // MAP with an empty ref sample yields an output sample with no regions.
  Dataset mapped = Operators::Map(MapParams{}, es, one).ValueOrDie();
  ASSERT_EQ(mapped.num_samples(), 1u);
  EXPECT_EQ(mapped.sample(0).regions.size(), 0u);
  EXPECT_TRUE(mapped.Validate().ok());
  // EXTEND on an empty sample: COUNT is 0, AVG is NULL -> ".".
  ExtendParams extend;
  extend.aggregates = {{"n", AggFunc::kCount, ""}, {"a", AggFunc::kAvg, "v"}};
  Dataset extended = Operators::Extend(extend, es).ValueOrDie();
  EXPECT_EQ(extended.sample(0).metadata.FirstValue("n"), "0");
  EXPECT_EQ(extended.sample(0).metadata.FirstValue("a"), ".");
}

TEST(EdgeCaseTest, ZeroLengthRegions) {
  // Zero-length (point) regions — e.g. insertion sites — are valid (left ==
  // right). Like bedtools, a point strictly inside an interval counts as
  // intersecting it; but a point covers no bases, so accumulation (COVER)
  // ignores it.
  Dataset ds(OneRegionDataset("Z", 50, 50));
  EXPECT_TRUE(ds.Validate().ok());
  Dataset one = OneRegionDataset("O", 0, 100);
  Dataset mapped = Operators::Map(MapParams{}, one, ds).ValueOrDie();
  size_t count_idx = *mapped.schema().IndexOf("count");
  EXPECT_EQ(mapped.sample(0).regions[0].values[count_idx].AsInt(), 1);
  CoverParams cover;
  cover.min_acc = 1;
  cover.max_acc = -1;
  EXPECT_EQ(Operators::Cover(cover, ds).ValueOrDie().TotalRegions(), 0u);
}

TEST(EdgeCaseTest, ParallelEngineHandlesEmptyInputs) {
  for (auto backend :
       {engine::BackendKind::kPipelined, engine::BackendKind::kMaterialized}) {
    engine::EngineOptions options;
    options.backend = backend;
    options.threads = 2;
    engine::ParallelExecutor executor(options);
    QueryRunner runner(&executor);
    runner.RegisterDataset(EmptyDataset("E"));
    runner.RegisterDataset(EmptySampleDataset("ES"));
    runner.RegisterDataset(OneRegionDataset("O"));
    auto results = runner.Run(
        "A = SELECT(cell == 'K562') E;\n"
        "B = MAP() ES O;\n"
        "C = COVER(1, ANY) ES;\n"
        "D = JOIN(DLE(10); LEFT) O E;\n"
        "F = DIFFERENCE() O ES;\n"
        "MATERIALIZE A; MATERIALIZE B; MATERIALIZE C; MATERIALIZE D;\n"
        "MATERIALIZE F;\n");
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    for (const auto& [name, ds] : results.value()) {
      EXPECT_TRUE(ds.Validate().ok()) << name;
    }
    EXPECT_EQ(results.value().at("F").TotalRegions(), 1u);
  }
}

TEST(EdgeCaseTest, GroupAndMergeSingletons) {
  Dataset one = OneRegionDataset("O");
  GroupParams group;
  group.meta_attr = "cell";
  Dataset grouped = Operators::Group(group, one).ValueOrDie();
  ASSERT_EQ(grouped.num_samples(), 1u);
  EXPECT_EQ(grouped.sample(0).regions.size(), 1u);
  Dataset merged = Operators::Merge(MergeParams{}, one).ValueOrDie();
  ASSERT_EQ(merged.num_samples(), 1u);
  EXPECT_NE(merged.sample(0).id, one.sample(0).id);  // derived id
}

TEST(EdgeCaseTest, SelfMapAndSelfJoin) {
  Dataset one = OneRegionDataset("O");
  Dataset self_map = Operators::Map(MapParams{}, one, one).ValueOrDie();
  size_t count_idx = *self_map.schema().IndexOf("count");
  EXPECT_EQ(self_map.sample(0).regions[0].values[count_idx].AsInt(), 1);
  JoinParams join;
  join.predicate.max_dist = 0;
  join.predicate.has_upper = true;
  Dataset self_join = Operators::Join(join, one, one).ValueOrDie();
  EXPECT_EQ(self_join.TotalRegions(), 1u);  // the region pairs with itself
}

TEST(EdgeCaseTest, HugeCoordinatesSurvive) {
  // Coordinates near the top of the int64 range must not overflow the
  // distance/window math.
  const int64_t big = int64_t{1} << 55;
  Dataset a("A", OneAttrSchema());
  Sample sa(1);
  sa.regions.push_back(
      {InternChrom("chrBig"), big, big + 100, Strand::kNone, {Value(1.0)}});
  a.AddSample(std::move(sa));
  Dataset b("B", OneAttrSchema());
  Sample sb(1);
  sb.regions.push_back({InternChrom("chrBig"), big + 200, big + 300,
                        Strand::kNone, {Value(2.0)}});
  b.AddSample(std::move(sb));
  JoinParams join;
  join.predicate.max_dist = 150;
  join.predicate.has_upper = true;
  Dataset joined = Operators::Join(join, a, b).ValueOrDie();
  EXPECT_EQ(joined.TotalRegions(), 1u);
}

}  // namespace
}  // namespace gdms::core
