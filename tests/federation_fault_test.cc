// Fault-tolerant federation: the simulated lossy transport, the resilient
// RPC layer (deadlines, retries, hedging, circuit breakers, checksums) and
// graceful partial results. All faults are seeded and deterministic, so
// every expectation here is exact, not statistical.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "io/gdm_format.h"
#include "repo/federation.h"
#include "repo/transport.h"
#include "sim/generators.h"

namespace gdms::repo {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

constexpr const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
    "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
    "MATERIALIZE R;\n";

Dataset SmallPeaks(uint64_t seed = 1) {
  sim::PeakDatasetOptions opt;
  opt.num_samples = 3;
  opt.peaks_per_sample = 150;
  return sim::GeneratePeakDataset(GenomeAssembly::HumanLike(3, 20000000), opt,
                                  seed);
}

Dataset SmallAnnotations(uint64_t seed = 1) {
  auto genome = GenomeAssembly::HumanLike(3, 20000000);
  auto catalog = sim::GenerateGenes(genome, 100, seed);
  return sim::GenerateAnnotations(genome, catalog, {}, seed);
}

void Populate(FederatedNode* node, uint64_t seed = 1) {
  node->catalog()->Put(SmallPeaks(seed));
  node->catalog()->Put(SmallAnnotations(seed));
}

/// Canonical serialized image of a result set: name -> text rendering.
std::string Fingerprint(const std::map<std::string, Dataset>& results) {
  std::string out;
  for (const auto& [name, ds] : results) {
    out += name;
    out += '\0';
    out += io::WriteGdmString(ds);
    out += '\0';
  }
  return out;
}

// -- transport primitives -------------------------------------------------

TEST(TransportTest, EnvelopeRoundTripsAndDetectsCorruption) {
  std::string wire = EncodeEnvelope("hello staged payload");
  auto ok = DecodeEnvelope(wire);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "hello staged payload");

  wire[kEnvelopeOverhead + 3] ^= 0x20;
  auto bad = DecodeEnvelope(wire);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataCorruption);
}

TEST(TransportTest, ReplyFramingCarriesAppErrors) {
  auto ok = DecodeReply(EncodeReply(std::string("payload")));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "payload");

  auto err = DecodeReply(EncodeReply(Status::NotFound("no such dataset")));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.status().message(), "no such dataset");
}

TEST(TransportTest, FaultScheduleIsSeededDeterministic) {
  // Two transports with identical profiles replay identical schedules.
  FederatedNode node("milan");
  Populate(&node);
  LinkProfile profile;
  profile.drop_rate = 0.5;
  profile.seed = 42;

  auto run = [&](std::vector<bool>* outcomes) {
    SimTransport transport;
    transport.AddSite(&node);
    transport.SetLinkProfile("milan", profile);
    for (int i = 0; i < 32; ++i) {
      outcomes->push_back(
          transport.Attempt("milan", MessageKind::kInfo, "").status.ok());
    }
  };
  std::vector<bool> a, b;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
  // And the schedule actually mixes successes and failures.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(TransportTest, PerfectLinkIsFreeAndInstant) {
  FederatedNode node("milan");
  Populate(&node);
  SimTransport transport;
  transport.AddSite(&node);
  AttemptOutcome out = transport.Attempt("milan", MessageKind::kInfo, "");
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.latency_us, 0u);
  EXPECT_GT(out.bytes_received, 0u);
}

// -- circuit breaker state machine ----------------------------------------

TEST(CircuitBreakerTest, ClosedOpensHalfOpensAndRecovers) {
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_duration_us = 1000;
  CircuitBreaker breaker(policy);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.RecordFailure(0));
  EXPECT_FALSE(breaker.RecordFailure(0));
  EXPECT_TRUE(breaker.RecordFailure(0));  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(500));  // still inside the open window
  EXPECT_TRUE(breaker.Allow(1000));  // window over -> half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // A failed probe re-opens immediately (single failure, not threshold).
  EXPECT_TRUE(breaker.RecordFailure(1000));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.Allow(2000));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

// -- resilient coordinator ------------------------------------------------

class FaultFederationTest : public ::testing::Test {
 protected:
  FaultFederationTest() : milan_("milan") {
    Populate(&milan_);
    coordinator_.AddNode(&milan_);
  }

  FederatedNode milan_;
  Coordinator coordinator_;
};

TEST_F(FaultFederationTest, RetryableFaultsYieldBitIdenticalResults) {
  // Baseline: fault-free run.
  auto clean = coordinator_.RunRemote("milan", kQuery);
  ASSERT_TRUE(clean.ok());
  std::string clean_print = Fingerprint(clean.value());

  // Same query under a nasty-but-retryable wire: drops, stalls, corruption.
  FederatedNode milan2("milan");
  Populate(&milan2);
  Coordinator faulty;
  faulty.AddNode(&milan2);
  LinkProfile profile;
  profile.latency_us = 1000;
  profile.drop_rate = 0.25;
  profile.stall_rate = 0.2;
  profile.stall_us = 50000;
  profile.corrupt_rate = 0.15;
  profile.seed = 9;
  faulty.transport()->SetLinkProfile("milan", profile);

  auto result = faulty.RunRemote("milan", kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Fingerprint(result.value()), clean_print);
  // The schedule at this seed must actually have exercised the retry path.
  EXPECT_GT(faulty.fed_stats().retries + faulty.fed_stats().corruptions, 0u);
  EXPECT_EQ(milan2.staged_count(), 0u);  // nothing leaked
}

TEST_F(FaultFederationTest, CorruptionIsDetectedAndRefetched) {
  FederatedNode milan2("milan");
  Populate(&milan2);
  Coordinator c;
  c.AddNode(&milan2);
  LinkProfile profile;
  profile.corrupt_rate = 0.5;
  profile.seed = 3;
  c.transport()->SetLinkProfile("milan", profile);

  auto result = c.RunRemote("milan", kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(c.fed_stats().corruptions, 0u);
  EXPECT_EQ(c.fed_stats().corruptions, c.fed_stats().retries);
}

TEST_F(FaultFederationTest, RetriesExhaustOnTotalLoss) {
  LinkProfile profile;
  profile.drop_rate = 1.0;
  coordinator_.transport()->SetLinkProfile("milan", profile);

  auto result = coordinator_.RunRemote("milan", kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // max_attempts - 1 retries for the first RPC in the chain.
  EXPECT_EQ(coordinator_.fed_stats().retries,
            static_cast<uint64_t>(coordinator_.policies().retry.max_attempts -
                                  1));
  EXPECT_EQ(coordinator_.fed_stats().timeouts,
            static_cast<uint64_t>(coordinator_.policies().retry.max_attempts));
}

TEST_F(FaultFederationTest, BreakerTripsFastFailsAndHalfOpenRecovers) {
  FedPolicies policies;
  policies.retry.max_attempts = 3;
  policies.breaker.failure_threshold = 3;
  policies.breaker.open_duration_us = 1'000'000;
  coordinator_.set_policies(policies);

  LinkProfile profile;
  profile.dead = true;
  coordinator_.transport()->SetLinkProfile("milan", profile);

  // One full RPC = 3 failed attempts = breaker trips at the threshold.
  EXPECT_FALSE(coordinator_.Call("milan", MessageKind::kInfo, "").ok());
  EXPECT_EQ(coordinator_.BreakerState("milan"),
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(coordinator_.fed_stats().breaker_trips, 1u);

  // While open, calls fast-fail without touching the wire.
  uint64_t requests_before = coordinator_.counters().requests;
  EXPECT_FALSE(coordinator_.Call("milan", MessageKind::kInfo, "").ok());
  EXPECT_EQ(coordinator_.counters().requests, requests_before);
  EXPECT_GT(coordinator_.fed_stats().breaker_fast_fails, 0u);

  // Past the open window the site has recovered; the half-open probe
  // succeeds and the breaker closes again.
  coordinator_.transport()->clock().Advance(
      policies.breaker.open_duration_us);
  coordinator_.transport()->SetLinkProfile("milan", LinkProfile{});
  EXPECT_TRUE(coordinator_.Call("milan", MessageKind::kInfo, "").ok());
  EXPECT_EQ(coordinator_.BreakerState("milan"),
            CircuitBreaker::State::kClosed);
}

TEST_F(FaultFederationTest, DownWindowHealsBySimTime) {
  LinkProfile profile;
  profile.down_from_us = 0;
  profile.down_until_us = 500'000;
  coordinator_.transport()->SetLinkProfile("milan", profile);

  // Inside the window every attempt is refused, but the retry backoff
  // advances sim time past the outage, so the RPC succeeds on a later try.
  auto result = coordinator_.Call("milan", MessageKind::kInfo, "");
  if (!result.ok()) {
    // Backoffs too short to escape the window: advance and try again.
    coordinator_.transport()->clock().Advance(500'000);
    result = coordinator_.Call("milan", MessageKind::kInfo, "");
  }
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(coordinator_.fed_stats().retries, 0u);
}

TEST_F(FaultFederationTest, ExecuteTokenMakesRetriesIdempotent) {
  // Lost EXECUTE responses must not stage duplicate results server-side.
  auto first = milan_.HandleExecute(kQuery, "tok-1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(milan_.staged_count(), 1u);
  auto retry = milan_.HandleExecute(kQuery, "tok-1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), first.value());
  EXPECT_EQ(milan_.staged_count(), 1u);  // deduped, not re-staged

  // Releasing the staged result also forgets the token.
  milan_.ReleaseStaged(first.value());
  EXPECT_EQ(milan_.staged_count(), 0u);
  auto again = milan_.HandleExecute(kQuery, "tok-1");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value(), first.value());
  milan_.ReleaseStaged(again.value());
}

TEST_F(FaultFederationTest, MidFetchFailureReleasesStagedResult) {
  // Faults aimed only at FETCH: COMPILE and EXECUTE succeed, every FETCH
  // vanishes — the RAII guard must still release the staged result.
  LinkProfile profile;
  profile.drop_rate = 1.0;
  profile.fault_kinds = MessageKindBit(MessageKind::kFetch);
  coordinator_.transport()->SetLinkProfile("milan", profile);

  auto result = coordinator_.RunRemote("milan", kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(milan_.staged_count(), 0u);
  EXPECT_EQ(milan_.staged_bytes(), 0u);
}

TEST_F(FaultFederationTest, HedgedFetchFiresAfterP95) {
  // Warm the latency history with fast FETCHes, then stall every FETCH:
  // completions pass the observed p95 and hedges fire.
  FedPolicies policies;
  policies.hedge.min_observations = 4;
  coordinator_.set_policies(policies);
  milan_.set_chunk_bytes(256);  // several FETCHes per run -> p95 warms fast
  LinkProfile fast;
  fast.latency_us = 1000;
  coordinator_.transport()->SetLinkProfile("milan", fast);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(coordinator_.RunRemote("milan", kQuery).ok());
  }
  ASSERT_EQ(coordinator_.fed_stats().hedges, 0u);

  LinkProfile slow = fast;
  slow.stall_rate = 1.0;
  slow.stall_us = 400'000;
  slow.fault_kinds = MessageKindBit(MessageKind::kFetch);
  coordinator_.transport()->SetLinkProfile("milan", slow);
  auto result = coordinator_.RunRemote("milan", kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(coordinator_.fed_stats().hedges, 0u);
  EXPECT_GT(coordinator_.fed_stats().wasted_bytes, 0u);
}

TEST_F(FaultFederationTest, RunEverywhereDegradesToPartial) {
  FederatedNode boston("boston");
  Populate(&boston, 2);
  coordinator_.AddNode(&boston);
  LinkProfile dead;
  dead.dead = true;
  coordinator_.transport()->SetLinkProfile("boston", dead);

  auto result = coordinator_.RunEverywhere(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FederatedResult& fed = result.value();
  EXPECT_FALSE(fed.complete());
  EXPECT_EQ(fed.sites_answered, 1u);
  EXPECT_EQ(fed.sites_failed, 1u);
  EXPECT_DOUBLE_EQ(fed.completeness(), 0.5);
  EXPECT_EQ(fed.datasets.count("R@milan"), 1u);
  ASSERT_EQ(fed.failures.size(), 1u);
  EXPECT_NE(fed.failures[0].find("boston"), std::string::npos);
  EXPECT_NE(fed.Annotation().find("partial 1/2"), std::string::npos);
  EXPECT_EQ(coordinator_.fed_stats().partial_results, 1u);
}

TEST_F(FaultFederationTest, AllSitesDeadIsAProperError) {
  LinkProfile dead;
  dead.dead = true;
  coordinator_.transport()->SetLinkProfile("milan", dead);

  auto result = coordinator_.RunEverywhere(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("no node could answer"),
            std::string::npos);
}

TEST_F(FaultFederationTest, AppErrorsAreNotRetriedAndDoNotTrip) {
  // A compile error is an answer: one request, no retries, breaker closed.
  auto result = coordinator_.RunRemote("milan", "X = SELECT(a == 'b') GHOST;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(coordinator_.fed_stats().retries, 0u);
  EXPECT_EQ(coordinator_.BreakerState("milan"),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(coordinator_.counters().requests, 1u);
}

TEST(FederationConcurrencyTest, ConcurrentCoordinatorsShareNodesSafely) {
  // Two coordinators hammer the same two nodes from four threads; the
  // staging map, token table and query-id counter are mutex-guarded, so
  // under TSan this must be clean and nothing may leak.
  FederatedNode milan("milan");
  FederatedNode boston("boston");
  Populate(&milan);
  Populate(&boston, 2);

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Coordinator coordinator;
      coordinator.AddNode(&milan);
      coordinator.AddNode(&boston);
      LinkProfile flaky;
      flaky.drop_rate = 0.2;
      flaky.seed = 100 + static_cast<uint64_t>(t);
      coordinator.transport()->SetLinkProfile("milan", flaky);
      for (int round = 0; round < kRounds; ++round) {
        auto result = coordinator.RunEverywhere(kQuery);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(milan.staged_count(), 0u);
  EXPECT_EQ(boston.staged_count(), 0u);
}

}  // namespace
}  // namespace gdms::repo
