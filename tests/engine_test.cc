#include <gtest/gtest.h>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "engine/shuffle.h"
#include "sim/generators.h"

namespace gdms::engine {
namespace {

using core::QueryRunner;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::Sample;
using gdm::Value;

// ---------------------------------------------------------------- codec ---

TEST(RegionCodecTest, RoundTripAllValueTypes) {
  std::vector<GenomicRegion> rs;
  GenomicRegion r(InternChrom("chr1"), 100, 200, gdm::Strand::kMinus);
  r.values = {Value(int64_t{7}), Value(2.5), Value("hello"), Value(true),
              Value::Null()};
  rs.push_back(r);
  rs.emplace_back(InternChrom("chr2"), 0, 1, gdm::Strand::kNone);
  std::string buf;
  RegionCodec::Encode(rs, 0, rs.size(), &buf);
  auto back = RegionCodec::Decode(buf).ValueOrDie();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].chrom, rs[0].chrom);
  EXPECT_EQ(back[0].strand, gdm::Strand::kMinus);
  ASSERT_EQ(back[0].values.size(), 5u);
  EXPECT_EQ(back[0].values[0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(back[0].values[1].AsDouble(), 2.5);
  EXPECT_EQ(back[0].values[2].AsString(), "hello");
  EXPECT_TRUE(back[0].values[3].AsBool());
  EXPECT_TRUE(back[0].values[4].is_null());
}

TEST(RegionCodecTest, RejectsTruncated) {
  std::vector<GenomicRegion> rs = {GenomicRegion(InternChrom("chr1"), 0, 5)};
  std::string buf;
  RegionCodec::Encode(rs, 0, 1, &buf);
  buf.resize(buf.size() - 1);
  EXPECT_FALSE(RegionCodec::Decode(buf).ok());
}

TEST(RegionCodecTest, SliceEncoding) {
  std::vector<GenomicRegion> rs;
  for (int i = 0; i < 10; ++i) {
    rs.emplace_back(InternChrom("chr1"), i * 10, i * 10 + 5);
  }
  std::string buf;
  RegionCodec::Encode(rs, 3, 7, &buf);
  auto back = RegionCodec::Decode(buf).ValueOrDie();
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0].left, 30);
}

// ------------------------------------------------- engine vs reference ----

/// Structural dataset equality ignoring sample order within the dataset.
void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.schema().ToString(), b.schema().ToString());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (const auto& sa : a.samples()) {
    const Sample* sb = b.FindSample(sa.id);
    ASSERT_NE(sb, nullptr) << "missing sample " << sa.id;
    EXPECT_EQ(sa.metadata.entries().size(), sb->metadata.entries().size());
    EXPECT_TRUE(sa.metadata == sb->metadata);
    ASSERT_EQ(sa.regions.size(), sb->regions.size()) << "sample " << sa.id;
    for (size_t i = 0; i < sa.regions.size(); ++i) {
      const auto& ra = sa.regions[i];
      const auto& rb = sb->regions[i];
      EXPECT_EQ(ra.chrom, rb.chrom);
      EXPECT_EQ(ra.left, rb.left);
      EXPECT_EQ(ra.right, rb.right);
      EXPECT_EQ(ra.strand, rb.strand);
      ASSERT_EQ(ra.values.size(), rb.values.size());
      for (size_t v = 0; v < ra.values.size(); ++v) {
        EXPECT_EQ(ra.values[v].Compare(rb.values[v]), 0)
            << "sample " << sa.id << " region " << i << " value " << v << ": "
            << ra.values[v].ToString() << " vs " << rb.values[v].ToString();
      }
    }
  }
}

struct EngineCase {
  BackendKind backend;
  size_t threads;
  int64_t bin_size;
  SchedulingMode scheduling = SchedulingMode::kFlat;
};

std::string EngineCaseName(const EngineCase& c) {
  return std::string(BackendKindName(c.backend)) + "_t" +
         std::to_string(c.threads) + "_b" + std::to_string(c.bin_size) +
         (c.scheduling == SchedulingMode::kFlat ? "_flat" : "_perpair");
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  static QueryRunner MakeRunner(core::Executor* executor) {
    QueryRunner runner = executor ? QueryRunner(executor) : QueryRunner();
    auto genome = gdm::GenomeAssembly::HumanLike(5, 30000000);
    sim::PeakDatasetOptions popt;
    popt.num_samples = 5;
    popt.peaks_per_sample = 800;
    runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 99));
    auto catalog = sim::GenerateGenes(genome, 200, 99);
    runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 99));
    return runner;
  }

  void CheckQuery(const char* query) {
    EngineCase c = GetParam();
    EngineOptions options;
    options.backend = c.backend;
    options.threads = c.threads;
    options.bin_size = c.bin_size;
    options.scheduling = c.scheduling;
    ParallelExecutor parallel(options);
    QueryRunner ref_runner = MakeRunner(nullptr);
    QueryRunner par_runner = MakeRunner(&parallel);
    auto ref = ref_runner.Run(query).ValueOrDie();
    auto par = par_runner.Run(query).ValueOrDie();
    ASSERT_EQ(ref.size(), par.size());
    for (const auto& [name, ds] : ref) {
      ExpectDatasetsEqual(ds, par.at(name));
    }
  }
};

TEST_P(EngineEquivalenceTest, SelectMatchesReference) {
  CheckQuery(
      "X = SELECT(dataType == 'ChipSeq'; region: signal >= 8 AND chr == "
      "'chr2') ENCODE;\nMATERIALIZE X;\n");
}

TEST_P(EngineEquivalenceTest, MapMatchesReference) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT, s AS SUM(signal), m AS MAX(p_value)) PROMS ENCODE;\n"
      "MATERIALIZE R;\n");
}

TEST_P(EngineEquivalenceTest, JoinDistanceMatchesReference) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "J = JOIN(DLE(50000) AND DGE(1); CAT) PROMS ENCODE;\n"
      "MATERIALIZE J;\n");
}

TEST_P(EngineEquivalenceTest, JoinMdMatchesReference) {
  CheckQuery(
      "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
      "J = JOIN(MD(2) AND DLE(1000000); INT) GENES ENCODE;\n"
      "MATERIALIZE J;\n");
}

TEST_P(EngineEquivalenceTest, DifferenceMatchesReference) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "D = DIFFERENCE() PROMS ENCODE;\n"
      "MATERIALIZE D;\n");
}

TEST_P(EngineEquivalenceTest, CoverMatchesReference) {
  CheckQuery(
      "P = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "C = COVER(2, ANY; n AS COUNT, avg AS AVG(signal)) P;\n"
      "MATERIALIZE C;\n");
}

TEST_P(EngineEquivalenceTest, HistogramAllMatchesReference) {
  CheckQuery(
      "P = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "H = HISTOGRAM(1, ALL) P;\n"
      "MATERIALIZE H;\n");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineEquivalenceTest,
    ::testing::Values(
        EngineCase{BackendKind::kPipelined, 4, 5000000},
        EngineCase{BackendKind::kMaterialized, 4, 5000000},
        EngineCase{BackendKind::kPipelined, 1, 5000000},
        EngineCase{BackendKind::kPipelined, 8, 500000},   // many partitions
        EngineCase{BackendKind::kMaterialized, 2, 1000000},
        // The seed scheduler stays the before/after baseline for E7; keep
        // it equal to the reference on both backends.
        EngineCase{BackendKind::kPipelined, 4, 5000000,
                   SchedulingMode::kPerPair},
        EngineCase{BackendKind::kMaterialized, 4, 5000000,
                   SchedulingMode::kPerPair}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return EngineCaseName(info.param);
    });

// ------------------------------------------------- skewed-input sweeps ----

/// Same equivalence contract as above, but over inputs crafted to stress
/// the flat task graph: one giant sample among tiny ones (task-length skew),
/// empty samples (zero-partition pairs), and single-chromosome datasets
/// (no chromosome-level slicing to hide behind).
class EngineSkewTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  static void AddSample(Dataset* ds, gdm::SampleId id, int32_t chroms,
                        size_t regions, int64_t spacing, uint64_t seed,
                        const std::string& kind) {
    Sample s(id);
    s.metadata.Add("dataType", "ChipSeq");
    s.metadata.Add("kind", kind);
    uint64_t state = seed * 2654435761u + 1;
    for (size_t i = 0; i < regions; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      int32_t chrom = InternChrom("chr" + std::to_string(1 + (state >> 33) %
                                                                 chroms));
      int64_t left = static_cast<int64_t>((state >> 17) % 97) * spacing +
                     static_cast<int64_t>(i) * spacing;
      int64_t len = 50 + static_cast<int64_t>(state % 2000);
      GenomicRegion r(chrom, left, left + len);
      r.values.push_back(Value(static_cast<double>(state % 100)));
      s.regions.push_back(r);
    }
    s.SortNow();
    ds->AddSample(std::move(s));
  }

  static QueryRunner MakeRunner(core::Executor* executor, int32_t chroms) {
    QueryRunner runner = executor ? QueryRunner(executor) : QueryRunner();
    gdm::RegionSchema schema;
    (void)schema.AddAttr("signal", gdm::AttrType::kDouble);
    Dataset peaks("ENCODE", schema);
    // One giant sample among tiny ones, plus empty samples.
    AddSample(&peaks, 1, chroms, 4000, 400, 11, "giant");
    for (gdm::SampleId i = 0; i < 4; ++i) {
      AddSample(&peaks, 2 + i, chroms, 20, 90000, 100 + i, "tiny");
    }
    peaks.AddSample(Sample(6));
    Sample empty2(7);
    empty2.metadata.Add("dataType", "ChipSeq");
    peaks.AddSample(std::move(empty2));
    runner.RegisterDataset(std::move(peaks));

    Dataset anns("ANNOTATIONS", schema);
    AddSample(&anns, 1, chroms, 300, 60000, 7, "ref");
    runner.RegisterDataset(std::move(anns));
    return runner;
  }

  void CheckQuery(const char* query, int32_t chroms) {
    EngineCase c = GetParam();
    EngineOptions options;
    options.backend = c.backend;
    options.threads = c.threads;
    options.bin_size = c.bin_size;
    options.scheduling = c.scheduling;
    ParallelExecutor parallel(options);
    QueryRunner ref_runner = MakeRunner(nullptr, chroms);
    QueryRunner par_runner = MakeRunner(&parallel, chroms);
    auto ref = ref_runner.Run(query).ValueOrDie();
    auto par = par_runner.Run(query).ValueOrDie();
    ASSERT_EQ(ref.size(), par.size());
    for (const auto& [name, ds] : ref) {
      ExpectDatasetsEqual(ds, par.at(name));
    }
  }
};

TEST_P(EngineSkewTest, MapSkewedMatchesReference) {
  CheckQuery(
      "R = MAP(n AS COUNT, s AS SUM(signal)) ANNOTATIONS ENCODE;\n"
      "MATERIALIZE R;\n",
      4);
}

TEST_P(EngineSkewTest, MapSingleChromosomeMatchesReference) {
  CheckQuery(
      "R = MAP(n AS COUNT) ANNOTATIONS ENCODE;\nMATERIALIZE R;\n", 1);
}

TEST_P(EngineSkewTest, JoinSkewedMatchesReference) {
  CheckQuery(
      "J = JOIN(DLE(100000); CAT) ANNOTATIONS ENCODE;\nMATERIALIZE J;\n", 4);
}

TEST_P(EngineSkewTest, DifferenceSkewedMatchesReference) {
  CheckQuery("D = DIFFERENCE() ANNOTATIONS ENCODE;\nMATERIALIZE D;\n", 4);
}

TEST_P(EngineSkewTest, DifferenceJoinbyMatchesReference) {
  CheckQuery(
      "D = DIFFERENCE(joinby: kind) ENCODE ENCODE;\nMATERIALIZE D;\n", 4);
}

TEST_P(EngineSkewTest, CoverSkewedMatchesReference) {
  CheckQuery("C = COVER(2, ANY) ENCODE;\nMATERIALIZE C;\n", 4);
}

TEST_P(EngineSkewTest, CoverGroupbySingleChromMatchesReference) {
  CheckQuery("C = COVER(1, ALL; groupby: kind) ENCODE;\nMATERIALIZE C;\n", 1);
}

TEST_P(EngineSkewTest, MapJoinbyMatchesReference) {
  CheckQuery(
      "R = MAP(n AS COUNT; joinby: dataType) ENCODE ENCODE;\n"
      "MATERIALIZE R;\n",
      4);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadSweep, EngineSkewTest,
    ::testing::Values(
        EngineCase{BackendKind::kPipelined, 1, 2000000},
        EngineCase{BackendKind::kPipelined, 2, 2000000},
        EngineCase{BackendKind::kPipelined, 8, 2000000},
        EngineCase{BackendKind::kMaterialized, 1, 2000000},
        EngineCase{BackendKind::kMaterialized, 2, 2000000},
        EngineCase{BackendKind::kMaterialized, 8, 2000000},
        EngineCase{BackendKind::kPipelined, 8, 300000},
        EngineCase{BackendKind::kPipelined, 4, 2000000,
                   SchedulingMode::kPerPair},
        EngineCase{BackendKind::kMaterialized, 4, 2000000,
                   SchedulingMode::kPerPair}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return EngineCaseName(info.param);
    });

// ---------------------------------------------------- joinby pair match ---

TEST(TaskGraphTest, MatchJoinbyPairsEqualsNestedScan) {
  gdm::RegionSchema schema;
  Dataset left("L", schema);
  Dataset right("R", schema);
  auto add = [](Dataset* ds, gdm::SampleId id,
                std::vector<std::pair<std::string, std::string>> meta) {
    Sample s(id);
    for (auto& [k, v] : meta) s.metadata.Add(k, v);
    ds->AddSample(std::move(s));
  };
  add(&left, 10, {{"cell", "K562"}, {"tf", "CTCF"}});
  add(&left, 11, {{"cell", "HeLa"}, {"tf", "CTCF"}, {"tf", "MYC"}});
  add(&left, 12, {{"cell", "K562"}});  // missing tf
  add(&left, 13, {});
  add(&right, 20, {{"cell", "K562"}, {"tf", "MYC"}});
  add(&right, 21, {{"cell", "HeLa"}, {"tf", "MYC"}});
  add(&right, 22, {{"cell", "K562"}, {"tf", "CTCF"}});
  add(&right, 23, {{"cell", "GM12878"}, {"tf", "CTCF"}});

  for (const auto& joinby : std::vector<std::vector<std::string>>{
           {}, {"cell"}, {"tf"}, {"cell", "tf"}, {"absent"}}) {
    std::vector<std::pair<size_t, size_t>> expected;
    for (size_t l = 0; l < left.num_samples(); ++l) {
      for (size_t r = 0; r < right.num_samples(); ++r) {
        if (core::Operators::JoinbyMatch(joinby, left.sample(l).metadata,
                                         right.sample(r).metadata)) {
          expected.emplace_back(l, r);
        }
      }
    }
    EXPECT_EQ(MatchJoinbyPairs(left, right, joinby), expected)
        << "joinby size " << joinby.size();
  }
}

TEST(EngineTraceTest, MaterializedCountsShuffleBytes) {
  EngineOptions options;
  options.backend = BackendKind::kMaterialized;
  options.threads = 2;
  ParallelExecutor executor(options);
  QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(3, 10000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 2;
  popt.peaks_per_sample = 300;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 5));
  auto catalog = sim::GenerateGenes(genome, 100, 5);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 5));
  auto r = runner.Run(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP() PROMS ENCODE;\nMATERIALIZE R;\n");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(executor.trace().shuffle_bytes.load(), 0u);
  EXPECT_GT(executor.trace().stage_barriers.load(), 0u);
  EXPECT_GT(executor.trace().tasks.load(), 0u);
}

TEST(EngineTraceTest, PipelinedMovesNoShuffleBytes) {
  EngineOptions options;
  options.backend = BackendKind::kPipelined;
  options.threads = 2;
  ParallelExecutor executor(options);
  QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(3, 10000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 2;
  popt.peaks_per_sample = 300;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 5));
  auto catalog = sim::GenerateGenes(genome, 100, 5);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 5));
  auto r = runner.Run(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP() PROMS ENCODE;\nMATERIALIZE R;\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(executor.trace().shuffle_bytes.load(), 0u);
  EXPECT_EQ(executor.trace().stage_barriers.load(), 0u);
}

TEST(EngineTest, JoinWithoutUpperBoundRejected) {
  ParallelExecutor executor;
  QueryRunner runner(&executor);
  gdm::RegionSchema schema;
  runner.RegisterDataset(gdm::Dataset("A", schema));
  runner.RegisterDataset(gdm::Dataset("B", schema));
  auto r = runner.Run("X = JOIN(DGE(5); LEFT) A B;");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gdms::engine
