#include <gtest/gtest.h>

#include "gdm/dataset.h"
#include "gdm/metadata.h"
#include "gdm/region.h"
#include "gdm/schema.h"
#include "gdm/value.h"

namespace gdms::gdm {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), AttrType::kNull);
  EXPECT_EQ(v.ToString(), ".");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
}

TEST(ValueTest, NumericConversion) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).ToNumeric().ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToNumeric().ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(Value(true).ToNumeric().ValueOrDie(), 1.0);
  EXPECT_FALSE(Value("x").ToNumeric().ok());
  EXPECT_FALSE(Value().ToNumeric().ok());
}

TEST(ValueTest, ParseRoundTrip) {
  EXPECT_EQ(Value::Parse("42", AttrType::kInt).ValueOrDie().AsInt(), 42);
  EXPECT_DOUBLE_EQ(
      Value::Parse("0.25", AttrType::kDouble).ValueOrDie().AsDouble(), 0.25);
  EXPECT_EQ(Value::Parse("hi", AttrType::kString).ValueOrDie().AsString(),
            "hi");
  EXPECT_TRUE(Value::Parse("true", AttrType::kBool).ValueOrDie().AsBool());
  EXPECT_TRUE(Value::Parse(".", AttrType::kInt).ValueOrDie().is_null());
  EXPECT_FALSE(Value::Parse("zz", AttrType::kInt).ok());
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, NullsSortFirstAndEqual) {
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(Value("a").Compare(Value()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(AttrTypeTest, ParseNames) {
  EXPECT_EQ(ParseAttrType("INT").ValueOrDie(), AttrType::kInt);
  EXPECT_EQ(ParseAttrType("double").ValueOrDie(), AttrType::kDouble);
  EXPECT_EQ(ParseAttrType("String").ValueOrDie(), AttrType::kString);
  EXPECT_EQ(ParseAttrType("BOOLEAN").ValueOrDie(), AttrType::kBool);
  EXPECT_FALSE(ParseAttrType("blob").ok());
}

TEST(SchemaTest, FixedAttributesAreFive) {
  EXPECT_EQ(RegionSchema::FixedAttributeNames().size(), 5u);
}

TEST(SchemaTest, AddAndLookup) {
  RegionSchema s;
  ASSERT_TRUE(s.AddAttr("p_value", AttrType::kDouble).ok());
  EXPECT_TRUE(s.Contains("p_value"));
  EXPECT_EQ(*s.IndexOf("p_value"), 0u);
  EXPECT_FALSE(s.IndexOf("other").has_value());
  EXPECT_FALSE(s.AddAttr("p_value", AttrType::kInt).ok());  // duplicate
  EXPECT_FALSE(s.AddAttr("chr", AttrType::kString).ok());   // reserved
}

TEST(SchemaTest, MergeSharesSameTypedAttrs) {
  RegionSchema a;
  ASSERT_TRUE(a.AddAttr("score", AttrType::kDouble).ok());
  RegionSchema b;
  ASSERT_TRUE(b.AddAttr("score", AttrType::kDouble).ok());
  ASSERT_TRUE(b.AddAttr("extra", AttrType::kString).ok());
  RegionSchema m = RegionSchema::Merge(a, b);
  EXPECT_EQ(m.size(), 2u);  // score shared, extra appended
  EXPECT_TRUE(m.Contains("extra"));
}

TEST(SchemaTest, MergeRenamesTypeConflicts) {
  RegionSchema a;
  ASSERT_TRUE(a.AddAttr("score", AttrType::kDouble).ok());
  RegionSchema b;
  ASSERT_TRUE(b.AddAttr("score", AttrType::kString).ok());
  RegionSchema m = RegionSchema::Merge(a, b);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.Contains("right_score"));
}

TEST(SchemaTest, ConcatAlwaysAppends) {
  RegionSchema a;
  ASSERT_TRUE(a.AddAttr("x", AttrType::kDouble).ok());
  RegionSchema b;
  ASSERT_TRUE(b.AddAttr("x", AttrType::kDouble).ok());
  RegionSchema c = RegionSchema::Concat(a, b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.Contains("right_x"));
}

TEST(RegionTest, ChromInterning) {
  int32_t a = InternChrom("chrTestA");
  int32_t b = InternChrom("chrTestB");
  EXPECT_NE(a, b);
  EXPECT_EQ(InternChrom("chrTestA"), a);
  EXPECT_EQ(ChromName(a), "chrTestA");
}

TEST(RegionTest, OverlapHalfOpen) {
  int32_t c = InternChrom("chr1");
  GenomicRegion a(c, 100, 200);
  GenomicRegion b(c, 200, 300);
  EXPECT_FALSE(a.Overlaps(b));  // touching, half-open
  GenomicRegion d(c, 199, 300);
  EXPECT_TRUE(a.Overlaps(d));
  GenomicRegion e(InternChrom("chr2"), 100, 200);
  EXPECT_FALSE(a.Overlaps(e));
}

TEST(RegionTest, GenometricDistance) {
  int32_t c = InternChrom("chr1");
  GenomicRegion a(c, 100, 200);
  EXPECT_EQ(a.DistanceTo(GenomicRegion(c, 300, 400)), 100);
  EXPECT_EQ(a.DistanceTo(GenomicRegion(c, 200, 400)), 0);   // adjacent
  EXPECT_EQ(a.DistanceTo(GenomicRegion(c, 150, 400)), -50); // overlap
  EXPECT_EQ(a.DistanceTo(GenomicRegion(c, 0, 40)), 60);
  GenomicRegion other(InternChrom("chr2"), 100, 200);
  EXPECT_EQ(a.DistanceTo(other), INT64_MAX);
  // Symmetry.
  GenomicRegion b(c, 300, 400);
  EXPECT_EQ(a.DistanceTo(b), b.DistanceTo(a));
}

TEST(RegionTest, SortAndSortedCheck) {
  int32_t c1 = InternChrom("chr1");
  int32_t c2 = InternChrom("chr2");
  std::vector<GenomicRegion> rs = {
      {c2, 10, 20}, {c1, 50, 60}, {c1, 5, 100}, {c1, 5, 20}};
  EXPECT_FALSE(RegionsSorted(rs));
  SortRegions(&rs);
  EXPECT_TRUE(RegionsSorted(rs));
  EXPECT_EQ(rs[0].left, 5);
  EXPECT_EQ(rs[0].right, 20);  // shorter first on ties
}

TEST(RegionTest, StrandChars) {
  EXPECT_EQ(StrandChar(Strand::kPlus), '+');
  EXPECT_EQ(StrandFromChar('-'), Strand::kMinus);
  EXPECT_EQ(StrandFromChar('?'), Strand::kNone);
}

TEST(GenomeAssemblyTest, HumanLikeShape) {
  GenomeAssembly g = GenomeAssembly::HumanLike(22, 240000000);
  EXPECT_EQ(g.num_chromosomes(), 22u);
  EXPECT_GT(g.chrom_length(0), g.chrom_length(21));
  EXPECT_GT(g.TotalLength(), 0);
  EXPECT_EQ(g.LengthOf(g.chrom_id(3)), g.chrom_length(3));
  EXPECT_EQ(g.LengthOf(-999), 0);
}

TEST(MetadataTest, AddLookupMultivalue) {
  Metadata m;
  m.Add("antibody", "CTCF");
  m.Add("antibody", "POLR2A");
  m.Add("antibody", "CTCF");  // duplicate ignored
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.Has("antibody"));
  EXPECT_TRUE(m.HasPair("antibody", "CTCF"));
  EXPECT_FALSE(m.HasPair("antibody", "EP300"));
  auto vals = m.ValuesOf("antibody");
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], "CTCF");
}

TEST(MetadataTest, UnionMergesSorted) {
  Metadata a;
  a.Add("cell", "K562");
  Metadata b;
  b.Add("cell", "K562");
  b.Add("sex", "female");
  Metadata u = Metadata::Union(a, b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.HasPair("sex", "female"));
}

TEST(MetadataTest, PrefixAndRemove) {
  Metadata m;
  m.Add("cell", "K562");
  Metadata p = m.WithPrefix("left.");
  EXPECT_TRUE(p.HasPair("left.cell", "K562"));
  m.Add("cell", "HeLa");
  m.RemoveAttr("cell");
  EXPECT_FALSE(m.Has("cell"));
}

TEST(MetadataTest, AttributeNamesDistinct) {
  Metadata m;
  m.Add("a", "1");
  m.Add("a", "2");
  m.Add("b", "3");
  auto names = m.AttributeNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

Dataset Fig2Dataset() {
  // The PEAKS dataset of Figure 2: two samples, P_VALUE variable attribute.
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("p_value", AttrType::kDouble).ok());
  Dataset ds("PEAKS", schema);
  int32_t c1 = InternChrom("chr1");
  int32_t c2 = InternChrom("chr2");
  Sample s1(1);
  s1.metadata.Add("antibody_target", "CTCF");
  s1.metadata.Add("karyotype", "cancer");
  s1.regions = {{c1, 100, 300, Strand::kPlus, {Value(1e-5)}},
                {c1, 500, 800, Strand::kMinus, {Value(2e-4)}},
                {c2, 100, 250, Strand::kPlus, {Value(3e-6)}}};
  Sample s2(2);
  s2.metadata.Add("sex", "female");
  s2.regions = {{c1, 150, 350, Strand::kNone, {Value(5e-3)}},
                {c2, 300, 500, Strand::kNone, {Value(1e-2)}}};
  s1.SortNow();
  s2.SortNow();
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  return ds;
}

TEST(DatasetTest, Fig2Validates) {
  Dataset ds = Fig2Dataset();
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.num_samples(), 2u);
  EXPECT_EQ(ds.TotalRegions(), 5u);
  EXPECT_EQ(ds.TotalMetadata(), 3u);
  EXPECT_NE(ds.FindSample(1), nullptr);
  EXPECT_EQ(ds.FindSample(99), nullptr);
}

TEST(DatasetTest, ValidateRejectsDuplicateIds) {
  Dataset ds = Fig2Dataset();
  ds.mutable_sample(1)->id = 1;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsArityMismatch) {
  Dataset ds = Fig2Dataset();
  ds.mutable_sample(0)->regions[0].values.clear();
  auto st = ds.Validate();
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
}

TEST(DatasetTest, ValidateRejectsTypeMismatch) {
  Dataset ds = Fig2Dataset();
  ds.mutable_sample(0)->regions[0].values[0] = Value("oops");
  auto st = ds.Validate();
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(DatasetTest, ValidateAcceptsNulls) {
  Dataset ds = Fig2Dataset();
  ds.mutable_sample(0)->regions[0].values[0] = Value::Null();
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsInvertedCoords) {
  Dataset ds = Fig2Dataset();
  ds.mutable_sample(0)->regions[0].left = 1000;
  ds.mutable_sample(0)->regions[0].right = 10;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, EstimateBytesPositive) {
  Dataset ds = Fig2Dataset();
  EXPECT_GT(ds.EstimateBytes(), 100u);
}

TEST(DatasetTest, DescribeMentionsSchemaAndMeta) {
  Dataset ds = Fig2Dataset();
  std::string d = ds.Describe();
  EXPECT_NE(d.find("p_value:DOUBLE"), std::string::npos);
  EXPECT_NE(d.find("karyotype"), std::string::npos);
}

TEST(ChromIndexTest, SlicesAndMaxLen) {
  std::vector<GenomicRegion> rs;
  rs.emplace_back(InternChrom("chr1"), 100, 200);
  rs.emplace_back(InternChrom("chr1"), 150, 1150);
  rs.emplace_back(InternChrom("chr1"), 300, 320);
  rs.emplace_back(InternChrom("chr3"), 5, 10);
  SortRegions(&rs);
  ChromIndex idx = ChromIndex::Build(rs);
  ASSERT_EQ(idx.slices().size(), 2u);
  const ChromIndex::Slice* c1 = idx.FindSlice(InternChrom("chr1"));
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->begin, 0u);
  EXPECT_EQ(c1->end, 3u);
  EXPECT_EQ(c1->max_len, 1000);
  EXPECT_EQ(idx.MaxLen(InternChrom("chr1")), 1000);
  EXPECT_EQ(idx.MaxLen(InternChrom("chr2")), 0);
  EXPECT_EQ(idx.FindSlice(InternChrom("chr2")), nullptr);
  // Lower bound on left within a chromosome slice.
  EXPECT_EQ(idx.LowerBoundLeft(rs, InternChrom("chr1"), 150), 1u);
  EXPECT_EQ(idx.LowerBoundLeft(rs, InternChrom("chr1"), 151), 2u);
  EXPECT_EQ(idx.LowerBoundLeft(rs, InternChrom("chr1"), 10000), 3u);
  EXPECT_EQ(idx.LowerBoundLeft(rs, InternChrom("chr3"), 0), 3u);
}

TEST(ChromIndexTest, SampleCachesAndReuses) {
  Sample s(1);
  s.regions.emplace_back(InternChrom("chr1"), 10, 20);
  s.regions.emplace_back(InternChrom("chr2"), 5, 105);
  const ChromIndex& idx = s.chrom_index();
  EXPECT_EQ(idx.MaxLen(InternChrom("chr2")), 100);
  // Unchanged storage: same cached object.
  EXPECT_EQ(&s.chrom_index(), &idx);
}

TEST(ChromIndexTest, InvalidatesAfterRegionMutation) {
  Sample s(1);
  for (int i = 0; i < 8; ++i) {
    s.regions.emplace_back(InternChrom("chr1"), i * 100, i * 100 + 10);
  }
  EXPECT_EQ(s.chrom_index().MaxLen(InternChrom("chr1")), 10);
  // Size change (append) is detected automatically.
  s.regions.emplace_back(InternChrom("chr2"), 0, 500);
  EXPECT_EQ(s.chrom_index().MaxLen(InternChrom("chr2")), 500);
  // In-place coordinate mutation requires explicit invalidation; SortNow
  // (the mutation path every operator uses) performs it.
  s.regions[0].right = s.regions[0].left + 9000;
  s.SortNow();
  EXPECT_EQ(s.chrom_index().MaxLen(InternChrom("chr1")), 9000);
  // Direct invalidation also works.
  s.regions[1].right = s.regions[1].left + 20000;
  s.InvalidateChromIndex();
  EXPECT_EQ(s.chrom_index().MaxLen(InternChrom("chr1")), 20000);
}

TEST(DeriveSampleIdTest, DeterministicAndTagged) {
  SampleId a = DeriveSampleId("MAP", {1, 2});
  EXPECT_EQ(a, DeriveSampleId("MAP", {1, 2}));
  EXPECT_NE(a, DeriveSampleId("MAP", {2, 1}));
  EXPECT_NE(a, DeriveSampleId("JOIN", {1, 2}));
  EXPECT_NE(a & (1ULL << 63), 0u);  // derived-id bit set
}

}  // namespace
}  // namespace gdms::gdm
