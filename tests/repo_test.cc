#include <gtest/gtest.h>

#include "core/parser.h"
#include <filesystem>
#include <unistd.h>

#include "repo/catalog.h"
#include "repo/estimator.h"
#include "repo/federation.h"
#include "sim/generators.h"

namespace gdms::repo {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

Dataset SmallPeaks(uint64_t seed = 1) {
  sim::PeakDatasetOptions opt;
  opt.num_samples = 3;
  opt.peaks_per_sample = 150;
  return sim::GeneratePeakDataset(GenomeAssembly::HumanLike(3, 20000000), opt,
                                  seed);
}

Dataset SmallAnnotations(uint64_t seed = 1) {
  auto genome = GenomeAssembly::HumanLike(3, 20000000);
  auto catalog = sim::GenerateGenes(genome, 100, seed);
  return sim::GenerateAnnotations(genome, catalog, {}, seed);
}

TEST(CatalogTest, PutGetRemove) {
  Catalog catalog;
  catalog.Put(SmallPeaks());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_NE(catalog.Get("ENCODE"), nullptr);
  EXPECT_EQ(catalog.Get("NOPE"), nullptr);
  EXPECT_TRUE(catalog.Remove("ENCODE").ok());
  EXPECT_FALSE(catalog.Remove("ENCODE").ok());
}

TEST(CatalogTest, InfoSummarizesMetadata) {
  Catalog catalog;
  catalog.Put(SmallPeaks());
  DatasetInfo info = catalog.Info("ENCODE").ValueOrDie();
  EXPECT_EQ(info.num_samples, 3u);
  EXPECT_EQ(info.num_regions, 450u);
  EXPECT_GT(info.estimated_bytes, 0u);
  bool has_antibody = false;
  for (const auto& [attr, values] : info.metadata_summary) {
    if (attr == "antibody") has_antibody = true;
  }
  EXPECT_TRUE(has_antibody);
  EXPECT_NE(info.ToString().find("ENCODE"), std::string::npos);
}

TEST(CatalogTest, SaveLoadRoundTripsRepository) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("gdms_catalog_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  Catalog catalog;
  catalog.Put(SmallPeaks());
  catalog.Put(SmallAnnotations());
  ASSERT_TRUE(catalog.SaveTo(dir.string()).ok());
  EXPECT_TRUE(fs::exists(dir / "ENCODE" / "schema.txt"));
  Catalog loaded;
  ASSERT_TRUE(loaded.LoadFrom(dir.string()).ok());
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_NE(loaded.Get("ENCODE"), nullptr);
  EXPECT_EQ(loaded.Get("ENCODE")->TotalRegions(),
            catalog.Get("ENCODE")->TotalRegions());
  EXPECT_EQ(loaded.Get("ANNOTATIONS")->num_samples(), 3u);
  fs::remove_all(dir);
  // Loading a missing directory is an error surfaced via the iterator.
  Catalog empty;
  EXPECT_FALSE(empty.LoadFrom((dir / "nope").string()).ok());
}

TEST(EstimatorTest, SourceAndSelect) {
  Catalog catalog;
  catalog.Put(SmallPeaks());
  Estimator est(&catalog);
  auto program =
      core::Parser::Parse("X = SELECT(antibody == 'CTCF') ENCODE;")
          .ValueOrDie();
  Estimate e = est.EstimatePlan(*program.sinks[0]).ValueOrDie();
  EXPECT_DOUBLE_EQ(e.samples, 1.5);   // 3 x 0.5
  EXPECT_DOUBLE_EQ(e.regions, 225.0); // 450 x 0.5
  EXPECT_GT(e.bytes, 0);
}

TEST(EstimatorTest, MapMultipliesPairs) {
  Catalog catalog;
  catalog.Put(SmallPeaks());
  catalog.Put(SmallAnnotations());
  Estimator est(&catalog);
  auto program =
      core::Parser::Parse("X = MAP() ANNOTATIONS ENCODE;").ValueOrDie();
  Estimate e = est.EstimatePlan(*program.sinks[0]).ValueOrDie();
  // 3 annotation samples x 3 encode samples = 9 output samples.
  EXPECT_DOUBLE_EQ(e.samples, 9.0);
  EXPECT_GT(e.regions, 0);
}

TEST(EstimatorTest, UnknownDatasetErrors) {
  Catalog catalog;
  Estimator est(&catalog);
  auto program = core::Parser::Parse("X = SELECT(a == 'b') NOPE;").ValueOrDie();
  EXPECT_FALSE(est.EstimatePlan(*program.sinks[0]).ok());
}

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = std::make_unique<FederatedNode>("milan");
    node_->catalog()->Put(SmallPeaks());
    node_->catalog()->Put(SmallAnnotations());
    coordinator_.AddNode(node_.get());
  }

  std::unique_ptr<FederatedNode> node_;
  Coordinator coordinator_;
};

TEST_F(FederationTest, InfoListsDatasets) {
  std::string info = node_->HandleInfo();
  EXPECT_NE(info.find("ENCODE"), std::string::npos);
  EXPECT_NE(info.find("ANNOTATIONS"), std::string::npos);
}

TEST_F(FederationTest, CompileEstimatesOrFails) {
  CompileInfo good = node_->HandleCompile(
      "X = SELECT(dataType == 'ChipSeq') ENCODE;");
  EXPECT_TRUE(good.ok);
  EXPECT_GT(good.estimated_regions, 0);
  CompileInfo bad = node_->HandleCompile("X = SELECT(");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  CompileInfo missing = node_->HandleCompile("X = SELECT(a == 'b') NOPE;");
  EXPECT_FALSE(missing.ok);
}

TEST_F(FederationTest, ExecuteAndStagedFetch) {
  node_->set_chunk_bytes(512);  // force multiple chunks
  std::string qid = node_->HandleExecute(
      "X = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE X;\n")
      .ValueOrDie();
  EXPECT_EQ(node_->staged_count(), 1u);
  size_t chunks = 0;
  size_t index = 0;
  while (true) {
    FetchResult chunk = node_->HandleFetch(qid, index).ValueOrDie();
    ++chunks;
    if (!chunk.has_more) break;
    ++index;
  }
  EXPECT_GT(chunks, 1u);
  node_->ReleaseStaged(qid);
  EXPECT_EQ(node_->staged_count(), 0u);
  EXPECT_FALSE(node_->HandleFetch(qid, 0).ok());
}

TEST_F(FederationTest, QueryShippingReturnsCorrectResult) {
  auto results = coordinator_.RunRemote(
      "milan",
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\nMATERIALIZE R;\n").ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  const Dataset& r = results.at("R");
  EXPECT_EQ(r.num_samples(), 3u);  // 1 promoter sample x 3 peaks samples
  EXPECT_TRUE(r.schema().Contains("n"));
  EXPECT_GT(coordinator_.counters().bytes_received, 0u);
}

TEST_F(FederationTest, QueryShippingMovesFewerBytesThanDataShipping) {
  const char* query =
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\n"
      "S = ORDER(antibody; TOP 1) R;\nMATERIALIZE S;\n";
  coordinator_.ResetCounters();
  auto remote = coordinator_.RunRemote("milan", query).ValueOrDie();
  uint64_t query_shipping = coordinator_.counters().bytes_received +
                            coordinator_.counters().bytes_sent;
  coordinator_.ResetCounters();
  auto local = coordinator_
                   .RunWithDataShipping("milan", {"ANNOTATIONS", "ENCODE"},
                                        query)
                   .ValueOrDie();
  uint64_t data_shipping = coordinator_.counters().bytes_received +
                           coordinator_.counters().bytes_sent;
  EXPECT_LT(query_shipping, data_shipping);
  // Same answer both ways.
  ASSERT_EQ(remote.size(), local.size());
  EXPECT_EQ(remote.at("S").TotalRegions(), local.at("S").TotalRegions());
  EXPECT_EQ(remote.at("S").num_samples(), local.at("S").num_samples());
}

TEST_F(FederationTest, StagingBudgetEnforced) {
  node_->set_max_staged_bytes(64);  // far below any result payload
  auto r = node_->HandleExecute(
      "X = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE X;\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(node_->staged_count(), 0u);
  // Raising the budget unblocks execution; releasing frees the space.
  node_->set_max_staged_bytes(100 << 20);
  std::string qid = node_->HandleExecute(
      "X = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE X;\n")
      .ValueOrDie();
  EXPECT_GT(node_->staged_bytes(), 0u);
  node_->ReleaseStaged(qid);
  EXPECT_EQ(node_->staged_bytes(), 0u);
}

TEST_F(FederationTest, RunEverywhereMergesPerNodeResults) {
  // Second node with only mutation data; the ENCODE query is answerable on
  // milan only, the mutation query on boston only.
  FederatedNode boston("boston");
  sim::MutationOptions mopt;
  mopt.num_samples = 2;
  mopt.mutations_per_sample = 100;
  boston.catalog()->Put(sim::GenerateMutations(
      GenomeAssembly::HumanLike(3, 20000000), mopt, 2));
  coordinator_.AddNode(&boston);

  auto encode_everywhere = coordinator_.RunEverywhere(
      "X = SELECT(dataType == 'ChipSeq') ENCODE;\nMATERIALIZE X;\n")
      .ValueOrDie();
  ASSERT_EQ(encode_everywhere.datasets.size(), 1u);
  EXPECT_TRUE(encode_everywhere.datasets.count("X@milan"));
  EXPECT_TRUE(encode_everywhere.complete());
  EXPECT_EQ(encode_everywhere.sites_answered, 1u);
  EXPECT_EQ(encode_everywhere.sites_skipped, 1u);

  auto mutations_everywhere = coordinator_.RunEverywhere(
      "X = SELECT(dataType == 'Mutation') MUTATIONS;\nMATERIALIZE X;\n")
      .ValueOrDie();
  ASSERT_EQ(mutations_everywhere.datasets.size(), 1u);
  EXPECT_TRUE(mutations_everywhere.datasets.count("X@boston"));

  auto nowhere = coordinator_.RunEverywhere(
      "X = SELECT(a == 'b') GHOST;\nMATERIALIZE X;\n");
  EXPECT_FALSE(nowhere.ok());
}

TEST_F(FederationTest, UnknownNodeOrDatasetErrors) {
  EXPECT_FALSE(coordinator_.RunRemote("rome", "X = SELECT(a == 'b') D;").ok());
  EXPECT_FALSE(
      coordinator_.RunWithDataShipping("milan", {"GHOST"}, "X = MERGE() GHOST;")
          .ok());
}

TEST_F(FederationTest, RemoteCompileErrorSurfaces) {
  auto r = coordinator_.RunRemote("milan", "X = SELECT(a == 'b') GHOST;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("remote compile failed"),
            std::string::npos);
}

}  // namespace
}  // namespace gdms::repo
