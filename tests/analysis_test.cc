#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "analysis/genome_space.h"
#include "analysis/latent.h"
#include "analysis/network.h"
#include "analysis/phenotype.h"
#include "core/runner.h"
#include "sim/generators.h"

namespace gdms::analysis {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

/// Builds a real MAP result over synthetic data.
Dataset MapResult() {
  auto genome = GenomeAssembly::HumanLike(3, 20000000);
  core::QueryRunner runner;
  sim::PeakDatasetOptions opt;
  opt.num_samples = 6;
  opt.peaks_per_sample = 400;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, opt, 77));
  auto catalog = sim::GenerateGenes(genome, 120, 77);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 77));
  auto results = runner.Run(
      "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
      "GS = MAP(n AS COUNT) GENES ENCODE;\nMATERIALIZE GS;\n");
  return results.ValueOrDie().at("GS");
}

TEST(GenomeSpaceTest, BuildsFromMapResult) {
  Dataset map_result = MapResult();
  GenomeSpace space = GenomeSpace::FromMapResult(map_result, "n").ValueOrDie();
  EXPECT_EQ(space.num_experiments(), 6u);
  EXPECT_EQ(space.num_regions(), map_result.sample(0).regions.size());
  // Cell values equal the MAP counts.
  size_t n_idx = *map_result.schema().IndexOf("n");
  for (size_t e = 0; e < 3; ++e) {
    for (size_t r = 0; r < 5; ++r) {
      EXPECT_DOUBLE_EQ(
          space.at(r, e),
          static_cast<double>(
              map_result.sample(e).regions[r].values[n_idx].AsInt()));
    }
  }
  auto corner = space.RenderCorner(3, 3);
  EXPECT_NE(corner.find("region"), std::string::npos);
}

TEST(GenomeSpaceTest, RejectsUnknownAttrAndMisalignment) {
  Dataset map_result = MapResult();
  EXPECT_FALSE(GenomeSpace::FromMapResult(map_result, "ghost").ok());
  Dataset broken = map_result;
  broken.mutable_sample(1)->regions.pop_back();
  EXPECT_FALSE(GenomeSpace::FromMapResult(broken, "n").ok());
}

TEST(RowSimilarityTest, KnownValues) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {2, 4, 6};
  EXPECT_NEAR(RowSimilarity(a, b, SimilarityKind::kPearson), 1.0, 1e-9);
  EXPECT_NEAR(RowSimilarity(a, b, SimilarityKind::kCosine), 1.0, 1e-9);
  std::vector<double> c = {3, 2, 1};
  EXPECT_NEAR(RowSimilarity(a, c, SimilarityKind::kPearson), -1.0, 1e-9);
  std::vector<double> d = {1, 0, 1};
  std::vector<double> e = {1, 1, 0};
  EXPECT_NEAR(RowSimilarity(d, e, SimilarityKind::kJaccard), 1.0 / 3, 1e-9);
  // Constant rows have zero Pearson similarity (no variance).
  std::vector<double> f = {5, 5, 5};
  EXPECT_DOUBLE_EQ(RowSimilarity(f, a, SimilarityKind::kPearson), 0.0);
}

TEST(GeneNetworkTest, ThresholdControlsEdgeCount) {
  GenomeSpace space = GenomeSpace::FromMapResult(MapResult(), "n").ValueOrDie();
  GeneNetwork loose =
      GeneNetwork::FromGenomeSpace(space, SimilarityKind::kJaccard, 0.05);
  GeneNetwork strict =
      GeneNetwork::FromGenomeSpace(space, SimilarityKind::kJaccard, 0.9);
  EXPECT_GE(loose.edges().size(), strict.edges().size());
  EXPECT_EQ(loose.num_nodes(), space.num_regions());
}

TEST(GeneNetworkTest, StatsAndTopEdges) {
  GenomeSpace space = GenomeSpace::FromMapResult(MapResult(), "n").ValueOrDie();
  GeneNetwork net =
      GeneNetwork::FromGenomeSpace(space, SimilarityKind::kJaccard, 0.3);
  NetworkStats stats = net.Stats();
  EXPECT_EQ(stats.nodes, net.num_nodes());
  EXPECT_EQ(stats.edges, net.edges().size());
  EXPECT_LE(stats.largest_component, stats.nodes);
  EXPECT_GE(stats.connected_components, 1u);
  auto top = net.TopEdges(5);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].weight, top[i].weight);
  }
  auto deg = net.Degrees();
  size_t total = 0;
  for (size_t d : deg) total += d;
  EXPECT_EQ(total, 2 * net.edges().size());
}

TEST(KMeansTest, PartitionsRows) {
  GenomeSpace space = GenomeSpace::FromMapResult(MapResult(), "n").ValueOrDie();
  ClusteringResult r = KMeans(space, 4, 123);
  ASSERT_EQ(r.assignment.size(), space.num_regions());
  EXPECT_LE(r.centroids.size(), 4u);
  for (uint32_t a : r.assignment) {
    EXPECT_LT(a, r.centroids.size());
  }
  EXPECT_GE(r.inertia, 0.0);
  // Deterministic in the seed.
  ClusteringResult r2 = KMeans(space, 4, 123);
  EXPECT_EQ(r.assignment, r2.assignment);
  // More clusters never increase inertia (same seed family).
  ClusteringResult r8 = KMeans(space, 8, 123);
  EXPECT_LE(r8.inertia, r.inertia + 1e-9);
}

TEST(KMeansTest, DegenerateInputs) {
  GenomeSpace empty;
  ClusteringResult r = KMeans(empty, 3, 1);
  EXPECT_TRUE(r.assignment.empty());
}

// ---------------------------------------------------------------- latent ---

/// A genome space with an exact rank-2 structure for SVD validation.
GenomeSpace RankTwoSpace() {
  // Build via a synthetic MAP-like dataset: 8 regions x 6 experiments,
  // cells = 3*u1[r]*v1[e] + 1*u2[r]*v2[e] rounded to ints so counts stay
  // plausible. We construct the dataset directly.
  gdm::RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("n", gdm::AttrType::kDouble).ok());
  Dataset ds("GS", schema);
  const double u1[] = {1, 2, 3, 4, 0, 1, 2, 1};
  const double u2[] = {1, 0, 1, 0, 2, 0, 1, 0};
  const double v1[] = {1, 0.5, 2, 1, 0.5, 1.5};
  const double v2[] = {0.5, 2, 0, 1, 1, 0.5};
  for (size_t e = 0; e < 6; ++e) {
    gdm::Sample s(e + 1);
    s.metadata.Add("sample_name", "exp" + std::to_string(e));
    for (size_t r = 0; r < 8; ++r) {
      gdm::GenomicRegion region(gdm::InternChrom("chr1"),
                                static_cast<int64_t>(r) * 1000,
                                static_cast<int64_t>(r) * 1000 + 500);
      region.values.push_back(
          gdm::Value(3.0 * u1[r] * v1[e] + 1.0 * u2[r] * v2[e]));
      s.regions.push_back(std::move(region));
    }
    ds.AddSample(std::move(s));
  }
  return GenomeSpace::FromMapResult(ds, "n").ValueOrDie();
}

TEST(LatentTest, RecoversExactLowRank) {
  GenomeSpace space = RankTwoSpace();
  LatentModel model = TruncatedSvd(space, 2, 7).ValueOrDie();
  ASSERT_EQ(model.rank, 2u);
  EXPECT_GE(model.singular_values[0], model.singular_values[1]);
  // Rank-2 reconstruction of a rank-2 matrix is (numerically) exact.
  EXPECT_LT(ReconstructionError(space, model), 1e-6);
}

TEST(LatentTest, ErrorDecreasesWithRank) {
  GenomeSpace space = GenomeSpace::FromMapResult(MapResult(), "n").ValueOrDie();
  double prev = 1e300;
  for (size_t k : {1, 2, 4}) {
    LatentModel model = TruncatedSvd(space, k, 7).ValueOrDie();
    double err = ReconstructionError(space, model);
    EXPECT_LE(err, prev + 1e-9) << "rank " << k;
    prev = err;
  }
}

TEST(LatentTest, FactorsAreUnitNorm) {
  GenomeSpace space = RankTwoSpace();
  LatentModel model = TruncatedSvd(space, 2, 7).ValueOrDie();
  for (size_t k = 0; k < model.rank; ++k) {
    double nu = 0;
    for (double x : model.region_factors[k]) nu += x * x;
    double nv = 0;
    for (double x : model.experiment_factors[k]) nv += x * x;
    EXPECT_NEAR(nu, 1.0, 1e-9);
    EXPECT_NEAR(nv, 1.0, 1e-9);
  }
}

TEST(LatentTest, DegenerateInputs) {
  GenomeSpace empty;
  EXPECT_FALSE(TruncatedSvd(empty, 2, 1).ok());
  GenomeSpace space = RankTwoSpace();
  EXPECT_FALSE(TruncatedSvd(space, 0, 1).ok());
  // Requested rank above matrix rank truncates gracefully.
  LatentModel model = TruncatedSvd(space, 6, 1).ValueOrDie();
  EXPECT_LE(model.rank, 6u);
}

// ------------------------------------------------------------- phenotype ---

TEST(PointBiserialTest, KnownValues) {
  // Perfect separation: group 1 all high, group 0 all low.
  std::vector<double> values = {10, 10, 0, 0};
  std::vector<char> group = {1, 1, 0, 0};
  EXPECT_NEAR(PointBiserial(values, group), 1.0, 1e-12);
  std::vector<char> inverted = {0, 0, 1, 1};
  EXPECT_NEAR(PointBiserial(values, inverted), -1.0, 1e-12);
  // Constant values carry no signal.
  std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(PointBiserial(flat, group), 0.0);
  // Degenerate group.
  std::vector<char> all_one = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PointBiserial(values, all_one), 0.0);
}

TEST(PhenotypeTest, RecoversPlantedAssociation) {
  // Build a MAP-like dataset where region 0 is high exactly in 'cancer'
  // samples; other regions are noise-free constants.
  gdm::RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("n", gdm::AttrType::kDouble).ok());
  Dataset ds("GS", schema);
  for (size_t e = 0; e < 8; ++e) {
    gdm::Sample s(e + 1);
    bool cancer = e % 2 == 0;
    s.metadata.Add("karyotype", cancer ? "cancer" : "normal");
    for (size_t r = 0; r < 5; ++r) {
      gdm::GenomicRegion region(gdm::InternChrom("chr1"),
                                static_cast<int64_t>(r) * 1000,
                                static_cast<int64_t>(r) * 1000 + 500);
      double value = (r == 0) ? (cancer ? 9.0 : 1.0) : 3.0 + r;
      region.values.push_back(gdm::Value(value));
      s.regions.push_back(std::move(region));
    }
    ds.AddSample(std::move(s));
  }
  GenomeSpace space = GenomeSpace::FromMapResult(ds, "n").ValueOrDie();
  auto assocs =
      PhenotypeCorrelation(space, ds, "karyotype", "cancer").ValueOrDie();
  ASSERT_EQ(assocs.size(), 5u);
  EXPECT_EQ(assocs[0].region, 0u);
  EXPECT_NEAR(assocs[0].correlation, 1.0, 1e-9);
  for (size_t i = 1; i < assocs.size(); ++i) {
    EXPECT_NEAR(assocs[i].correlation, 0.0, 1e-9);
  }
}

TEST(PhenotypeTest, RejectsDegeneratePhenotype) {
  Dataset mapped = MapResult();
  GenomeSpace space = GenomeSpace::FromMapResult(mapped, "n").ValueOrDie();
  EXPECT_FALSE(
      PhenotypeCorrelation(space, mapped, "nonexistent", "x").ok());
}

}  // namespace
}  // namespace gdms::analysis
