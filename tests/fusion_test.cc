// Equivalence tests for per-partition operator fusion: every fusable chain
// must produce byte-identical datasets (schema, sample ids, metadata, region
// coordinates and values) with fusion on and off, across the reference
// executor and both parallel schedulers. The fused runs also assert that
// fusion actually happened (chains_fused > 0), so a silently-disabled pass
// cannot fake equivalence.
#include <gtest/gtest.h>

#include <string>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "sim/generators.h"

namespace gdms::engine {
namespace {

using core::QueryRunner;
using gdm::Dataset;
using gdm::Sample;

/// Structural dataset equality ignoring sample order within the dataset.
void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.schema().ToString(), b.schema().ToString());
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (const auto& sa : a.samples()) {
    const Sample* sb = b.FindSample(sa.id);
    ASSERT_NE(sb, nullptr) << "missing sample " << sa.id;
    EXPECT_TRUE(sa.metadata == sb->metadata) << "sample " << sa.id;
    ASSERT_EQ(sa.regions.size(), sb->regions.size()) << "sample " << sa.id;
    for (size_t i = 0; i < sa.regions.size(); ++i) {
      const auto& ra = sa.regions[i];
      const auto& rb = sb->regions[i];
      EXPECT_EQ(ra.chrom, rb.chrom);
      EXPECT_EQ(ra.left, rb.left);
      EXPECT_EQ(ra.right, rb.right);
      EXPECT_EQ(ra.strand, rb.strand);
      ASSERT_EQ(ra.values.size(), rb.values.size());
      for (size_t v = 0; v < ra.values.size(); ++v) {
        EXPECT_EQ(ra.values[v].Compare(rb.values[v]), 0)
            << "sample " << sa.id << " region " << i << " value " << v;
      }
    }
  }
}

struct FusionCase {
  enum Executor { kReference, kParallel };
  Executor executor = kParallel;
  BackendKind backend = BackendKind::kPipelined;
  SchedulingMode scheduling = SchedulingMode::kFlat;
  size_t threads = 4;
};

std::string FusionCaseName(const FusionCase& c) {
  if (c.executor == FusionCase::kReference) return "reference";
  return std::string(BackendKindName(c.backend)) + "_" +
         (c.scheduling == SchedulingMode::kFlat ? "flat" : "perpair") + "_t" +
         std::to_string(c.threads);
}

class FusionEquivalenceTest : public ::testing::TestWithParam<FusionCase> {
 public:
  static QueryRunner MakeRunner(core::Executor* executor) {
    QueryRunner runner = executor ? QueryRunner(executor) : QueryRunner();
    auto genome = gdm::GenomeAssembly::HumanLike(5, 30000000);
    sim::PeakDatasetOptions popt;
    popt.num_samples = 5;
    popt.peaks_per_sample = 800;
    runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 99));
    auto catalog = sim::GenerateGenes(genome, 200, 99);
    runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 99));
    return runner;
  }

  static std::unique_ptr<ParallelExecutor> MakeExecutor(const FusionCase& c) {
    if (c.executor == FusionCase::kReference) return nullptr;
    EngineOptions options;
    options.backend = c.backend;
    options.scheduling = c.scheduling;
    options.threads = c.threads;
    return std::make_unique<ParallelExecutor>(options);
  }

  /// Runs `query` twice on identical inputs — fusion on vs off — and demands
  /// identical outputs plus exactly `expected_chains` fused chains.
  void CheckQuery(const char* query, size_t expected_chains) {
    FusionCase c = GetParam();
    auto fused_exec = MakeExecutor(c);
    auto plain_exec = MakeExecutor(c);
    QueryRunner fused_runner = MakeRunner(fused_exec.get());
    QueryRunner plain_runner = MakeRunner(plain_exec.get());
    plain_runner.set_fusion(false);
    auto fused = fused_runner.Run(query).ValueOrDie();
    auto plain = plain_runner.Run(query).ValueOrDie();
    EXPECT_EQ(fused_runner.last_stats().fusion.chains_fused, expected_chains);
    EXPECT_EQ(plain_runner.last_stats().fusion.chains_fused, 0u);
    ASSERT_EQ(fused.size(), plain.size());
    for (const auto& [name, ds] : plain) {
      ExpectDatasetsEqual(ds, fused.at(name));
    }
  }
};

TEST_P(FusionEquivalenceTest, MapSelectRegion) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT, s AS SUM(signal)) PROMS ENCODE;\n"
      "E = SELECT(region: n >= 2) R;\n"
      "MATERIALIZE E;\n",
      1);
}

TEST_P(FusionEquivalenceTest, MapSelectMetadataDropsSamples) {
  // The consumer SELECT's metadata predicate drops whole samples inside the
  // fused tail (MAP output carries the union of ref+exp metadata).
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\n"
      "E = SELECT(karyotype == 'cancer') R;\n"
      "MATERIALIZE E;\n",
      1);
}

TEST_P(FusionEquivalenceTest, MapExtend) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT, m AS MAX(p_value)) PROMS ENCODE;\n"
      "E = EXTEND(total AS SUM(n), regions AS COUNT) R;\n"
      "MATERIALIZE E;\n",
      1);
}

TEST_P(FusionEquivalenceTest, MapSelectProjectThreeStages) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\n"
      "E = SELECT(region: n >= 1) R;\n"
      "P = PROJECT(n; doubled AS n + n) E;\n"
      "MATERIALIZE P;\n",
      1);
}

TEST_P(FusionEquivalenceTest, JoinSelect) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "J = JOIN(DLE(50000) AND DGE(1); CAT) PROMS ENCODE;\n"
      "S = SELECT(region: chr == 'chr2') J;\n"
      "MATERIALIZE S;\n",
      1);
}

TEST_P(FusionEquivalenceTest, JoinMdProject) {
  // MD(k) joins parallelize per pair (no genomic partitioning); the tail
  // still applies inside the pair tasks.
  CheckQuery(
      "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
      "J = JOIN(MD(2) AND DLE(1000000); INT) GENES ENCODE;\n"
      "P = PROJECT(*; meta: provider) J;\n"
      "MATERIALIZE P;\n",
      1);
}

TEST_P(FusionEquivalenceTest, SelectProject) {
  CheckQuery(
      "X = SELECT(dataType == 'ChipSeq'; region: signal >= 8) ENCODE;\n"
      "P = PROJECT(signal, p_value; reg_len AS right - left) X;\n"
      "MATERIALIZE P;\n",
      1);
}

TEST_P(FusionEquivalenceTest, DifferenceExtend) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "D = DIFFERENCE() PROMS ENCODE;\n"
      "E = EXTEND(n AS COUNT) D;\n"
      "MATERIALIZE E;\n",
      1);
}

TEST_P(FusionEquivalenceTest, CoverSelect) {
  CheckQuery(
      "P = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "C = COVER(2, ANY; n AS COUNT) P;\n"
      "S = SELECT(region: chr == 'chr1') C;\n"
      "MATERIALIZE S;\n",
      1);
}

TEST_P(FusionEquivalenceTest, EmptyPartitions) {
  // The region predicate empties every sample before the chain; fused and
  // unfused runs must agree on the empty (but present) samples.
  CheckQuery(
      "X = SELECT(region: signal >= 100000) ENCODE;\n"
      "P = PROJECT(signal; reg_len AS right - left) X;\n"
      "MATERIALIZE P;\n",
      1);
}

TEST_P(FusionEquivalenceTest, EmptyInputDataset) {
  // The meta predicate matches no samples, so the fused chain runs over an
  // empty dataset (zero tasks in every stage).
  CheckQuery(
      "NONE = SELECT(annType == 'nonexistent') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) NONE ENCODE;\n"
      "E = SELECT(region: n >= 1) R;\n"
      "MATERIALIZE E;\n",
      1);
}

TEST_P(FusionEquivalenceTest, SingleSampleChain) {
  // ANNOTATIONS' promoter track is a single sample: the chain fuses and
  // the one-task stages still agree with the unfused plan.
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "P = PROJECT(*; meta: provider) PROMS;\n"
      "MATERIALIZE P;\n",
      1);
}

TEST_P(FusionEquivalenceTest, MaterializedProducerNotFused) {
  // R is materialized AND consumed downstream: fusing it away would lose a
  // sink payload, so the pass must leave the chain alone.
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\n"
      "E = SELECT(region: n >= 2) R;\n"
      "MATERIALIZE R;\n"
      "MATERIALIZE E;\n",
      0);
}

TEST_P(FusionEquivalenceTest, TwoIndependentChains) {
  CheckQuery(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\n"
      "E = SELECT(region: n >= 2) R;\n"
      "X = SELECT(dataType == 'ChipSeq'; region: signal >= 8) ENCODE;\n"
      "P = PROJECT(signal) X;\n"
      "MATERIALIZE E;\n"
      "MATERIALIZE P;\n",
      2);
}

INSTANTIATE_TEST_SUITE_P(
    Executors, FusionEquivalenceTest,
    ::testing::Values(
        FusionCase{FusionCase::kReference},
        FusionCase{FusionCase::kParallel, BackendKind::kPipelined,
                   SchedulingMode::kFlat, 4},
        FusionCase{FusionCase::kParallel, BackendKind::kMaterialized,
                   SchedulingMode::kFlat, 4},
        FusionCase{FusionCase::kParallel, BackendKind::kPipelined,
                   SchedulingMode::kFlat, 1},
        FusionCase{FusionCase::kParallel, BackendKind::kPipelined,
                   SchedulingMode::kPerPair, 4}),
    [](const ::testing::TestParamInfo<FusionCase>& info) {
      return FusionCaseName(info.param);
    });

// ------------------------------------------------ allocation accounting ---

TEST(FusionStatsTest, FusionEliminatesIntermediateDatasets) {
  auto run = [](bool fusion) {
    QueryRunner runner = FusionEquivalenceTest::MakeRunner(nullptr);
    runner.set_fusion(fusion);
    auto r = runner
                 .Run(
                     "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
                     "R = MAP(n AS COUNT) PROMS ENCODE;\n"
                     "E = SELECT(region: n >= 2) R;\n"
                     "MATERIALIZE E;\n")
                 .ValueOrDie();
    (void)r;
    return runner.last_stats();
  };
  core::RunStats fused = run(true);
  core::RunStats plain = run(false);
  // Unfused: PROMS and R are materialized only to feed the next operator.
  // Fused: the MAP+SELECT chain materializes once, leaving only PROMS.
  EXPECT_EQ(plain.intermediate_datasets, 2u);
  EXPECT_EQ(fused.intermediate_datasets, 1u);
  EXPECT_EQ(fused.fusion.chains_fused, 1u);
  EXPECT_EQ(fused.fusion.stages_fused, 1u);
}

TEST(FusionStatsTest, ThreeStageChainCountsOnce) {
  QueryRunner runner = FusionEquivalenceTest::MakeRunner(nullptr);
  auto r = runner
               .Run(
                   "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
                   "R = MAP(n AS COUNT) PROMS ENCODE;\n"
                   "E = SELECT(region: n >= 1) R;\n"
                   "P = PROJECT(n) E;\n"
                   "MATERIALIZE P;\n")
               .ValueOrDie();
  (void)r;
  EXPECT_EQ(runner.last_stats().fusion.chains_fused, 1u);
  EXPECT_EQ(runner.last_stats().fusion.stages_fused, 2u);
  EXPECT_EQ(runner.last_stats().intermediate_datasets, 1u);
}

}  // namespace
}  // namespace gdms::engine
