#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <sstream>

#include <gtest/gtest.h>

#include "gdm/dataset.h"
#include "io/bed.h"
#include "io/dataset_dir.h"
#include "io/gdm_format.h"
#include "io/gtf.h"
#include "io/vcf.h"

namespace gdms::io {
namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

TEST(BedTest, ReadsBed3) {
  std::istringstream in("chr1\t100\t200\nchr2\t0\t50\n");
  Sample s = ReadBedSample(in, 7).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 2u);
  EXPECT_EQ(s.id, 7u);
  EXPECT_EQ(s.regions[0].chrom, InternChrom("chr1"));
  EXPECT_EQ(s.regions[0].left, 100);
  EXPECT_EQ(s.regions[0].right, 200);
  EXPECT_TRUE(s.regions[0].values.empty());
  EXPECT_TRUE(s.IsSorted());
}

TEST(BedTest, ReadsBed6WithStrandAndSkipsHeaders) {
  std::istringstream in(
      "# a comment\n"
      "track name=test\n"
      "browser position chr1\n"
      "chr1\t10\t20\tpeak1\t3.5\t+\n"
      "chr1\t30\t40\tpeak2\t4.5\t-\n");
  Sample s = ReadBedSample(in, 1).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 2u);
  EXPECT_EQ(s.regions[0].strand, Strand::kPlus);
  EXPECT_EQ(s.regions[1].strand, Strand::kMinus);
  EXPECT_EQ(s.regions[0].values[0].AsString(), "peak1");
  EXPECT_DOUBLE_EQ(s.regions[0].values[1].AsDouble(), 3.5);
}

TEST(BedTest, RejectsMalformed) {
  std::istringstream bad_cols("chr1\t100\n");
  EXPECT_FALSE(ReadBedSample(bad_cols, 1).ok());
  std::istringstream inconsistent("chr1\t1\t2\nchr1\t1\t2\tname\n");
  EXPECT_FALSE(ReadBedSample(inconsistent, 1).ok());
  std::istringstream inverted("chr1\t200\t100\n");
  EXPECT_FALSE(ReadBedSample(inverted, 1).ok());
}

TEST(BedTest, SchemaForColumns) {
  EXPECT_EQ(BedSchema(3).size(), 0u);
  EXPECT_EQ(BedSchema(4).size(), 1u);
  EXPECT_EQ(BedSchema(6).size(), 2u);
  EXPECT_EQ(NarrowPeakSchema().size(), 6u);
}

TEST(BedTest, NarrowPeakRoundTrip) {
  std::istringstream in(
      "chr1\t100\t600\tpeak_a\t850\t.\t12.5\t5.2\t3.1\t250\n");
  Sample s = ReadNarrowPeakSample(in, 3).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 1u);
  const auto& r = s.regions[0];
  ASSERT_EQ(r.values.size(), 6u);
  EXPECT_DOUBLE_EQ(r.values[2].AsDouble(), 12.5);  // signal_value
  EXPECT_EQ(r.values[5].AsInt(), 250);             // peak
}

TEST(BedTest, BroadPeakRoundTrip) {
  std::istringstream in("chr2\t50\t900\tbroad_a\t300\t+\t6.5\t4.2\t2.1\n");
  Sample s = ReadBroadPeakSample(in, 4).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 1u);
  EXPECT_EQ(s.regions[0].strand, Strand::kPlus);
  ASSERT_EQ(s.regions[0].values.size(), 5u);
  EXPECT_DOUBLE_EQ(s.regions[0].values[2].AsDouble(), 6.5);
  EXPECT_EQ(BroadPeakSchema().size(), 5u);
  // 10-column input is rejected.
  std::istringstream ten("chr2\t50\t900\ta\t300\t+\t6.5\t4.2\t2.1\t30\n");
  EXPECT_FALSE(ReadBroadPeakSample(ten, 1).ok());
}

TEST(BedTest, NarrowPeakRejectsWrongColumnCount) {
  std::istringstream in("chr1\t100\t600\tp\t850\t.\t12.5\t5.2\t3.1\n");
  EXPECT_FALSE(ReadNarrowPeakSample(in, 1).ok());
}

TEST(BedTest, WriteBedRoundTrips) {
  std::istringstream in("chr1\t10\t20\tx\t1.5\t+\n");
  Sample s = ReadBedSample(in, 1).ValueOrDie();
  std::ostringstream out;
  WriteBedSample(s, BedSchema(6), out);
  std::istringstream back(out.str());
  Sample s2 = ReadBedSample(back, 1).ValueOrDie();
  ASSERT_EQ(s2.regions.size(), 1u);
  EXPECT_EQ(s2.regions[0].left, 10);
  EXPECT_EQ(s2.regions[0].strand, Strand::kPlus);
  EXPECT_EQ(s2.regions[0].values[0].AsString(), "x");
}

TEST(GtfTest, ReadsAndConvertsCoordinates) {
  std::istringstream in(
      "# header\n"
      "chr1\thavana\tgene\t1\t1000\t.\t+\t.\tgene_id \"G1\"; "
      "gene_name \"FOO\";\n"
      "chr1\thavana\texon\t51\t200\t0.5\t-\t0\tgene_id \"G1\";\n");
  Sample s = ReadGtfSample(in, 1, {"gene_id", "gene_name"}).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 2u);
  // 1-based closed [1,1000] -> 0-based half-open [0,1000).
  EXPECT_EQ(s.regions[0].left, 0);
  EXPECT_EQ(s.regions[0].right, 1000);
  EXPECT_EQ(s.regions[0].values[4].AsString(), "G1");   // gene_id
  EXPECT_EQ(s.regions[0].values[5].AsString(), "FOO");  // gene_name
  // Missing attribute -> NULL.
  EXPECT_TRUE(s.regions[1].values[5].is_null());
  EXPECT_DOUBLE_EQ(s.regions[1].values[2].AsDouble(), 0.5);
}

TEST(GtfTest, SchemaLayout) {
  auto schema = GtfSchema({"gene_id"});
  EXPECT_EQ(schema.size(), 5u);
  EXPECT_EQ(*schema.IndexOf("gene_id"), 4u);
  EXPECT_EQ(schema.attr(2).type, AttrType::kDouble);  // score
}

TEST(GtfTest, RejectsBadCoordinates) {
  std::istringstream in("chr1\tx\tgene\t0\t100\t.\t+\t.\t\n");
  EXPECT_FALSE(ReadGtfSample(in, 1, {}).ok());
}

TEST(GtfTest, WriteRoundTrips) {
  std::istringstream in(
      "chr2\tsrc\tgene\t101\t300\t2.5\t-\t.\tgene_id \"G9\";\n");
  Sample s = ReadGtfSample(in, 1, {"gene_id"}).ValueOrDie();
  std::ostringstream out;
  WriteGtfSample(s, GtfSchema({"gene_id"}), out);
  std::istringstream back(out.str());
  Sample s2 = ReadGtfSample(back, 1, {"gene_id"}).ValueOrDie();
  ASSERT_EQ(s2.regions.size(), 1u);
  EXPECT_EQ(s2.regions[0].left, 100);
  EXPECT_EQ(s2.regions[0].right, 300);
  EXPECT_EQ(s2.regions[0].values[4].AsString(), "G9");
}

TEST(VcfTest, ReadsSitesSkippingHeaders) {
  std::istringstream in(
      "##fileformat=VCFv4.2\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"
      "chr1\t101\trs1\tA\tT\t50\tPASS\tDP=10\n"
      "chr1\t201\t.\tACG\tA\t.\t.\t.\n");
  Sample s = ReadVcfSample(in, 1).ValueOrDie();
  ASSERT_EQ(s.regions.size(), 2u);
  EXPECT_EQ(s.regions[0].left, 100);  // POS 101 -> 0-based 100
  EXPECT_EQ(s.regions[0].right, 101); // SNV spans len(REF)=1
  EXPECT_EQ(s.regions[1].right - s.regions[1].left, 3);  // deletion REF=ACG
  EXPECT_EQ(s.regions[0].values[0].AsString(), "rs1");
  EXPECT_TRUE(s.regions[1].values[0].is_null());
  EXPECT_DOUBLE_EQ(s.regions[0].values[3].AsDouble(), 50.0);
}

TEST(VcfTest, RejectsBadPos) {
  std::istringstream in("chr1\t0\t.\tA\tT\t.\t.\t.\n");
  EXPECT_FALSE(ReadVcfSample(in, 1).ok());
  std::istringstream narrow("chr1\t10\t.\tA\n");
  EXPECT_FALSE(ReadVcfSample(narrow, 1).ok());
}

Dataset SmallDataset() {
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("p_value", AttrType::kDouble).ok());
  EXPECT_TRUE(schema.AddAttr("label", AttrType::kString).ok());
  Dataset ds("PEAKS", schema);
  Sample s1(1);
  s1.metadata.Add("antibody", "CTCF");
  s1.metadata.Add("cell", "K562");
  s1.regions.push_back({InternChrom("chr1"), 10, 20, Strand::kPlus,
                        {Value(0.001), Value("a")}});
  s1.regions.push_back({InternChrom("chr2"), 5, 30, Strand::kNone,
                        {Value::Null(), Value("b")}});
  Sample s2(2);
  s2.metadata.Add("cell", "HeLa");
  s2.regions.push_back({InternChrom("chr1"), 100, 200, Strand::kMinus,
                        {Value(0.5), Value::Null()}});
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  return ds;
}

TEST(GdmFormatTest, RoundTripPreservesEverything) {
  Dataset ds = SmallDataset();
  std::string text = WriteGdmString(ds);
  Dataset back = ReadGdmString(text).ValueOrDie();
  EXPECT_EQ(back.name(), "PEAKS");
  EXPECT_EQ(back.schema(), ds.schema());
  ASSERT_EQ(back.num_samples(), 2u);
  EXPECT_EQ(back.sample(0).id, 1u);
  EXPECT_EQ(back.sample(0).metadata, ds.sample(0).metadata);
  ASSERT_EQ(back.sample(0).regions.size(), 2u);
  EXPECT_EQ(back.sample(0).regions[0].left, ds.sample(0).regions[0].left);
  EXPECT_TRUE(back.sample(0).regions[1].values[0].is_null());
  EXPECT_EQ(back.sample(1).regions[0].strand, Strand::kMinus);
}

TEST(GdmFormatTest, SecondRoundTripIsIdentical) {
  Dataset ds = SmallDataset();
  std::string once = WriteGdmString(ds);
  std::string twice = WriteGdmString(ReadGdmString(once).ValueOrDie());
  EXPECT_EQ(once, twice);
}

TEST(GdmFormatTest, RejectsMissingMagic) {
  EXPECT_FALSE(ReadGdmString("#NAME x\n").ok());
}

TEST(GdmFormatTest, RejectsTruncatedRegions) {
  Dataset ds = SmallDataset();
  std::string text = WriteGdmString(ds);
  text.resize(text.size() - 20);
  EXPECT_FALSE(ReadGdmString(text).ok());
}

TEST(GdmFormatTest, RejectsArityMismatch) {
  std::string text =
      "#GDMS v1\n#NAME X\n#SCHEMA\tv:INT\n#SAMPLE 1\n#REGIONS 1\n"
      "chr1\t0\t10\t*\t1\t2\n";
  EXPECT_FALSE(ReadGdmString(text).ok());
}

TEST(GdmFormatTest, EmptyDatasetRoundTrips) {
  Dataset ds("EMPTY", RegionSchema{});
  Dataset back = ReadGdmString(WriteGdmString(ds)).ValueOrDie();
  EXPECT_EQ(back.name(), "EMPTY");
  EXPECT_EQ(back.num_samples(), 0u);
}

class DatasetDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gdms_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DatasetDirTest, SaveLoadRoundTrip) {
  Dataset ds = SmallDataset();
  ASSERT_TRUE(SaveDatasetDir(ds, dir_.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "schema.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "S_1.regions.tsv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "S_1.meta.tsv"));
  Dataset back = LoadDatasetDir(dir_.string()).ValueOrDie();
  EXPECT_EQ(back.name(), ds.name());
  EXPECT_EQ(back.schema(), ds.schema());
  ASSERT_EQ(back.num_samples(), ds.num_samples());
  for (const auto& s : ds.samples()) {
    const auto* bs = back.FindSample(s.id);
    ASSERT_NE(bs, nullptr);
    EXPECT_EQ(bs->metadata, s.metadata);
    ASSERT_EQ(bs->regions.size(), s.regions.size());
    for (size_t i = 0; i < s.regions.size(); ++i) {
      EXPECT_EQ(bs->regions[i].left, s.regions[i].left);
      EXPECT_EQ(bs->regions[i].values[1].Compare(s.regions[i].values[1]), 0);
    }
  }
}

TEST_F(DatasetDirTest, LoadMissingDirErrors) {
  EXPECT_FALSE(LoadDatasetDir((dir_ / "nope").string()).ok());
}

TEST_F(DatasetDirTest, CorruptRegionFileRejected) {
  Dataset ds = SmallDataset();
  ASSERT_TRUE(SaveDatasetDir(ds, dir_.string()).ok());
  std::ofstream corrupt(dir_ / "S_1.regions.tsv", std::ios::app);
  corrupt << "chr1\t5\n";  // wrong arity
  corrupt.close();
  EXPECT_FALSE(LoadDatasetDir(dir_.string()).ok());
}

TEST_F(DatasetDirTest, EmptySchemaDataset) {
  Dataset ds("BARE", RegionSchema{});
  gdm::Sample s(7);
  s.regions.push_back({InternChrom("chr1"), 1, 2, Strand::kNone, {}});
  ds.AddSample(std::move(s));
  ASSERT_TRUE(SaveDatasetDir(ds, dir_.string()).ok());
  Dataset back = LoadDatasetDir(dir_.string()).ValueOrDie();
  EXPECT_EQ(back.name(), "BARE");
  EXPECT_EQ(back.TotalRegions(), 1u);
}

}  // namespace
}  // namespace gdms::io
