#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gdm/region.h"
#include "interval/accumulation.h"
#include "interval/binning.h"
#include "interval/interval_tree.h"
#include "interval/sweep.h"

namespace gdms::interval {
namespace {

using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::SortRegions;

std::vector<GenomicRegion> MakeRegions(
    const std::vector<std::tuple<const char*, int64_t, int64_t>>& spec) {
  std::vector<GenomicRegion> out;
  for (const auto& [chrom, l, r] : spec) {
    out.emplace_back(InternChrom(chrom), l, r);
  }
  SortRegions(&out);
  return out;
}

/// Brute-force overlap pairs for validation.
std::set<std::pair<size_t, size_t>> BruteOverlaps(
    const std::vector<GenomicRegion>& a, const std::vector<GenomicRegion>& b) {
  std::set<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i].Overlaps(b[j])) out.insert({i, j});
    }
  }
  return out;
}

TEST(OverlapJoinTest, BasicPairs) {
  auto refs = MakeRegions({{"chr1", 100, 200}, {"chr1", 300, 400}});
  auto exps = MakeRegions(
      {{"chr1", 150, 160}, {"chr1", 250, 260}, {"chr1", 390, 500}});
  std::set<std::pair<size_t, size_t>> got;
  OverlapJoin(refs, exps, [&](size_t i, size_t j) { got.insert({i, j}); });
  EXPECT_EQ(got, BruteOverlaps(refs, exps));
  EXPECT_EQ(got.size(), 2u);
}

TEST(OverlapJoinTest, CrossChromosomeNeverMatches) {
  auto refs = MakeRegions({{"chr1", 100, 200}});
  auto exps = MakeRegions({{"chr2", 100, 200}});
  size_t count = 0;
  OverlapJoin(refs, exps, [&](size_t, size_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(OverlapJoinTest, RandomizedAgainstBruteForce) {
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    std::vector<GenomicRegion> a;
    std::vector<GenomicRegion> b;
    const char* chroms[] = {"chr1", "chr2", "chr3"};
    for (int i = 0; i < 120; ++i) {
      int64_t l = rng.Uniform(0, 4000);
      a.emplace_back(InternChrom(chroms[rng.Next() % 3]), l,
                     l + rng.Uniform(1, 600));
      int64_t l2 = rng.Uniform(0, 4000);
      b.emplace_back(InternChrom(chroms[rng.Next() % 3]), l2,
                     l2 + rng.Uniform(1, 600));
    }
    SortRegions(&a);
    SortRegions(&b);
    std::set<std::pair<size_t, size_t>> got;
    OverlapJoin(a, b, [&](size_t i, size_t j) { got.insert({i, j}); });
    EXPECT_EQ(got, BruteOverlaps(a, b)) << "round " << round;
  }
}

TEST(DistanceJoinTest, WindowedPairs) {
  auto refs = MakeRegions({{"chr1", 1000, 1100}});
  auto exps = MakeRegions({{"chr1", 1150, 1200},    // dist 50
                           {"chr1", 2000, 2100},    // dist 900
                           {"chr1", 1050, 1080}});  // overlap, dist -30
  std::vector<int64_t> dists;
  DistanceJoin(refs, exps, 0, 100, [&](size_t i, size_t j) {
    dists.push_back(refs[i].DistanceTo(exps[j]));
  });
  ASSERT_EQ(dists.size(), 1u);
  EXPECT_EQ(dists[0], 50);
  // Negative min admits overlaps.
  size_t count = 0;
  DistanceJoin(refs, exps, -1000, 100, [&](size_t, size_t) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(DistanceJoinTest, RandomizedAgainstBruteForce) {
  Rng rng(13);
  std::vector<GenomicRegion> a;
  std::vector<GenomicRegion> b;
  for (int i = 0; i < 150; ++i) {
    int64_t l = rng.Uniform(0, 20000);
    a.emplace_back(InternChrom("chr1"), l, l + rng.Uniform(1, 300));
    int64_t l2 = rng.Uniform(0, 20000);
    b.emplace_back(InternChrom("chr1"), l2, l2 + rng.Uniform(1, 300));
  }
  SortRegions(&a);
  SortRegions(&b);
  const int64_t min_d = 10;
  const int64_t max_d = 500;
  std::set<std::pair<size_t, size_t>> got;
  DistanceJoin(a, b, min_d, max_d,
               [&](size_t i, size_t j) { got.insert({i, j}); });
  std::set<std::pair<size_t, size_t>> want;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      int64_t d = a[i].DistanceTo(b[j]);
      if (d >= min_d && d <= max_d) want.insert({i, j});
    }
  }
  EXPECT_EQ(got, want);
}

TEST(NearestKTest, FindsNearestByDistance) {
  auto refs = MakeRegions({{"chr1", 1000, 1100}});
  auto exps = MakeRegions({{"chr1", 0, 10},        // far left
                           {"chr1", 900, 950},     // dist 50
                           {"chr1", 1500, 1600},   // dist 400
                           {"chr1", 1050, 1070}}); // overlap
  std::vector<size_t> picked;
  NearestK(refs, exps, 2, [&](size_t, size_t j) { picked.push_back(j); });
  ASSERT_EQ(picked.size(), 2u);
  // The two nearest are the overlapping one and the dist-50 one.
  std::set<int64_t> dists;
  for (size_t j : picked) dists.insert(refs[0].DistanceTo(exps[j]));
  EXPECT_TRUE(dists.count(-20));
  EXPECT_TRUE(dists.count(50));
}

TEST(NearestKTest, KLargerThanCandidates) {
  auto refs = MakeRegions({{"chr1", 100, 200}});
  auto exps = MakeRegions({{"chr1", 300, 400}, {"chr1", 500, 600}});
  size_t count = 0;
  NearestK(refs, exps, 10, [&](size_t, size_t) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(NearestKTest, RandomizedAgainstBruteForce) {
  Rng rng(17);
  std::vector<GenomicRegion> a;
  std::vector<GenomicRegion> b;
  for (int i = 0; i < 60; ++i) {
    int64_t l = rng.Uniform(0, 1000000);
    a.emplace_back(InternChrom("chr1"), l, l + rng.Uniform(1, 500));
  }
  for (int i = 0; i < 200; ++i) {
    int64_t l = rng.Uniform(0, 1000000);
    b.emplace_back(InternChrom("chr1"), l, l + rng.Uniform(1, 500));
  }
  SortRegions(&a);
  SortRegions(&b);
  const size_t k = 3;
  std::vector<std::vector<size_t>> got(a.size());
  NearestK(a, b, k, [&](size_t i, size_t j) { got[i].push_back(j); });
  for (size_t i = 0; i < a.size(); ++i) {
    // Brute force: the set of k smallest distances must match.
    std::vector<int64_t> all;
    for (const auto& e : b) all.push_back(a[i].DistanceTo(e));
    std::sort(all.begin(), all.end());
    std::multiset<int64_t> want(all.begin(), all.begin() + k);
    std::multiset<int64_t> have;
    for (size_t j : got[i]) have.insert(a[i].DistanceTo(b[j]));
    EXPECT_EQ(have, want) << "ref " << i;
  }
}

TEST(ExistsOverlapTest, Flags) {
  auto refs = MakeRegions({{"chr1", 0, 10}, {"chr1", 100, 200}});
  auto exps = MakeRegions({{"chr1", 150, 160}});
  auto flags = ExistsOverlap(refs, exps);
  ASSERT_EQ(flags.size(), 2u);
  EXPECT_EQ(flags[0], 0);
  EXPECT_EQ(flags[1], 1);
}

TEST(MergeTouchingTest, MergesOverlapAndTouch) {
  auto rs = MakeRegions(
      {{"chr1", 0, 10}, {"chr1", 10, 20}, {"chr1", 30, 40}, {"chr2", 5, 15}});
  auto merged = MergeTouching(rs);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].left, 0);
  EXPECT_EQ(merged[0].right, 20);
}

TEST(CoordHelpersTest, IntersectAndSpan) {
  GenomicRegion a(InternChrom("chr1"), 100, 300, gdm::Strand::kPlus);
  GenomicRegion b(InternChrom("chr1"), 200, 400, gdm::Strand::kPlus);
  auto i = IntersectCoords(a, b);
  EXPECT_EQ(i.left, 200);
  EXPECT_EQ(i.right, 300);
  EXPECT_EQ(i.strand, gdm::Strand::kPlus);
  auto s = SpanCoords(a, b);
  EXPECT_EQ(s.left, 100);
  EXPECT_EQ(s.right, 400);
  b.strand = gdm::Strand::kMinus;
  EXPECT_EQ(IntersectCoords(a, b).strand, gdm::Strand::kNone);
}

TEST(AccumulationTest, ProfileBasic) {
  auto rs = MakeRegions({{"chr1", 0, 100}, {"chr1", 50, 150}});
  auto profile = AccumulationProfile(rs);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].count, 1);
  EXPECT_EQ(profile[1].count, 2);
  EXPECT_EQ(profile[1].left, 50);
  EXPECT_EQ(profile[1].right, 100);
  EXPECT_EQ(profile[2].count, 1);
  EXPECT_EQ(MaxAccumulation(profile), 2);
}

TEST(AccumulationTest, ZeroLengthIgnored) {
  std::vector<GenomicRegion> rs = {{InternChrom("chr1"), 5, 5}};
  EXPECT_TRUE(AccumulationProfile(rs).empty());
}

TEST(CoverTest, MinAccTwoMergesPlateau) {
  auto rs = MakeRegions(
      {{"chr1", 0, 100}, {"chr1", 50, 150}, {"chr1", 120, 200}});
  auto profile = AccumulationProfile(rs);
  auto covers = Cover(profile, {2, CoverBounds::kAny});
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].left, 50);
  EXPECT_EQ(covers[0].right, 100);
  EXPECT_EQ(covers[1].left, 120);
  EXPECT_EQ(covers[1].right, 150);
}

TEST(CoverTest, AllBoundResolves) {
  auto rs = MakeRegions({{"chr1", 0, 100}, {"chr1", 0, 100}, {"chr1", 50, 80}});
  auto profile = AccumulationProfile(rs);
  auto covers = Cover(profile, {CoverBounds::kAll, CoverBounds::kAny});
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0].left, 50);
  EXPECT_EQ(covers[0].right, 80);
}

TEST(CoverTest, MaxAccExcludesDeepRegions) {
  auto rs = MakeRegions({{"chr1", 0, 100}, {"chr1", 0, 100}, {"chr1", 40, 60}});
  auto profile = AccumulationProfile(rs);
  auto covers = Cover(profile, {1, 2});
  // The 3-deep middle segment is excluded, splitting the area.
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].right, 40);
  EXPECT_EQ(covers[1].left, 60);
}

TEST(HistogramTest, SegmentsWithCounts) {
  auto rs = MakeRegions({{"chr1", 0, 100}, {"chr1", 50, 150}});
  auto profile = AccumulationProfile(rs);
  std::vector<int64_t> counts;
  auto segs = Histogram(profile, {1, CoverBounds::kAny}, &counts);
  ASSERT_EQ(segs.size(), 3u);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[1], 2);
}

TEST(SummitTest, PeakSegmentOnly) {
  auto rs = MakeRegions(
      {{"chr1", 0, 300}, {"chr1", 100, 200}, {"chr1", 120, 180}});
  auto profile = AccumulationProfile(rs);
  std::vector<int64_t> counts;
  auto summits = Summit(profile, {1, CoverBounds::kAny}, &counts);
  ASSERT_EQ(summits.size(), 1u);
  EXPECT_EQ(summits[0].left, 120);
  EXPECT_EQ(summits[0].right, 180);
  EXPECT_EQ(counts[0], 3);
}

TEST(FlatTest, ExtendsToContributingInputs) {
  auto rs = MakeRegions({{"chr1", 0, 100}, {"chr1", 80, 300}});
  auto profile = AccumulationProfile(rs);
  auto flats = Flat(profile, {2, CoverBounds::kAny}, rs);
  ASSERT_EQ(flats.size(), 1u);
  EXPECT_EQ(flats[0].left, 0);
  EXPECT_EQ(flats[0].right, 300);
}

TEST(IntervalIndexTest, EmptyIndex) {
  std::vector<GenomicRegion> none;
  IntervalIndex idx(none);
  EXPECT_EQ(idx.CountOverlaps(InternChrom("chr1"), 0, 100), 0u);
}

TEST(IntervalIndexTest, SingleRegion) {
  auto rs = MakeRegions({{"chr1", 100, 200}});
  IntervalIndex idx(rs);
  EXPECT_EQ(idx.CountOverlaps(InternChrom("chr1"), 150, 160), 1u);
  EXPECT_EQ(idx.CountOverlaps(InternChrom("chr1"), 200, 300), 0u);
  EXPECT_TRUE(idx.AnyOverlap(InternChrom("chr1"), 0, 101));
}

TEST(IntervalIndexTest, RandomizedAgainstBruteForce) {
  Rng rng(23);
  std::vector<GenomicRegion> rs;
  const char* chroms[] = {"chr1", "chr2"};
  for (int i = 0; i < 500; ++i) {
    int64_t l = rng.Uniform(0, 100000);
    rs.emplace_back(InternChrom(chroms[rng.Next() % 2]), l,
                    l + rng.Uniform(1, 3000));
  }
  IntervalIndex idx(rs);
  EXPECT_EQ(idx.size(), rs.size());
  for (int q = 0; q < 200; ++q) {
    int32_t chrom = InternChrom(chroms[rng.Next() % 2]);
    int64_t l = rng.Uniform(0, 100000);
    int64_t r = l + rng.Uniform(1, 5000);
    size_t want = 0;
    for (const auto& reg : rs) {
      if (reg.chrom == chrom && reg.left < r && l < reg.right) ++want;
    }
    EXPECT_EQ(idx.CountOverlaps(chrom, l, r), want) << "query " << q;
  }
}

TEST(BinningTest, SpanAndOwnership) {
  Binning bins(1000);
  GenomicRegion r(InternChrom("chr1"), 500, 2500);
  auto [first, last] = bins.BinSpan(r);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 2);
  // Region ending exactly on a boundary stays out of the next bin.
  GenomicRegion r2(InternChrom("chr1"), 0, 1000);
  auto [f2, l2] = bins.BinSpan(r2);
  EXPECT_EQ(f2, 0);
  EXPECT_EQ(l2, 0);
  // Pair ownership: bin of max(left, left).
  GenomicRegion a(InternChrom("chr1"), 900, 1200);
  GenomicRegion b(InternChrom("chr1"), 1100, 1300);
  EXPECT_FALSE(bins.OwnsPair(0, a, b));
  EXPECT_TRUE(bins.OwnsPair(1, a, b));
}

TEST(BinningTest, SlackWidensSpan) {
  Binning bins(1000);
  GenomicRegion r(InternChrom("chr1"), 1500, 1600);
  auto [f, l] = bins.BinSpan(r, 600);
  EXPECT_EQ(f, 0);
  EXPECT_EQ(l, 2);
}

TEST(BinningTest, PartitionStable) {
  EXPECT_EQ(Binning::PartitionOf(1, 5, 8), Binning::PartitionOf(1, 5, 8));
  // Different bins usually land on different partitions.
  std::set<size_t> parts;
  for (int64_t bin = 0; bin < 100; ++bin) {
    parts.insert(Binning::PartitionOf(1, bin, 8));
  }
  EXPECT_GT(parts.size(), 1u);
}

}  // namespace
}  // namespace gdms::interval
