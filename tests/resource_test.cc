// Resource-accounting tests: tracked bytes against ground truth (columnar
// caches, .gdmz mappings, per-query accounting), the watermark shedder's
// budget contract, eviction-then-requery bit-identity, and concurrent
// accounting under the flat scheduler (exercised under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "gdm/dataset.h"
#include "gdm/region_columns.h"
#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "obs/resource.h"
#include "sim/generators.h"

namespace gdms::obs {
namespace {

/// Restores the global tracker's budget and accounting switch on scope
/// exit, so tests cannot leak shedding behavior into each other.
class TrackerStateGuard {
 public:
  TrackerStateGuard() = default;
  ~TrackerStateGuard() {
    ResourceTracker::Global().set_budget_bytes(0);
    ResourceTracker::Global().set_accounting_enabled(true);
    ResourceTracker::Global().SetActiveQuery(nullptr);
  }
};

gdm::Dataset PeakDataset(int samples, int peaks, uint32_t seed) {
  auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = samples;
  popt.peaks_per_sample = peaks;
  return sim::GeneratePeakDataset(genome, popt, seed);
}

TEST(QueryAccountingTest, ChargeReleaseArithmetic) {
  QueryAccounting account;
  account.SetCurrentOp("SELECT");
  account.Charge(1000);
  account.SetCurrentOp("MAP");
  account.Charge(3000);
  EXPECT_EQ(account.alloc_bytes(), 4000u);
  EXPECT_EQ(account.current_bytes(), 4000u);
  EXPECT_EQ(account.peak_bytes(), 4000u);

  account.ReleaseFrom("SELECT", 1000);
  EXPECT_EQ(account.current_bytes(), 3000u);
  EXPECT_EQ(account.peak_bytes(), 4000u);   // high-water sticks
  EXPECT_EQ(account.alloc_bytes(), 4000u);  // cumulative never decreases

  account.ChargeTo("JOIN", 500);
  auto stats = account.OperatorStats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].op, "MAP");  // largest alloc first
  EXPECT_EQ(stats[0].alloc_bytes, 3000u);
  uint64_t total = 0;
  for (const auto& op : stats) total += op.alloc_bytes;
  EXPECT_EQ(total, account.alloc_bytes());

  std::string tree = account.RenderTree("q1");
  EXPECT_NE(tree.find("q1"), std::string::npos);
  EXPECT_NE(tree.find("MAP"), std::string::npos);

  account.Drain();
  EXPECT_EQ(account.current_bytes(), 0u);
  EXPECT_EQ(account.peak_bytes(), 4000u);  // 500 charged after the release
}

TEST(QueryAccountingTest, ScopedChargeKeepsAttributionAcrossOpChange) {
  TrackerStateGuard guard;
  auto account = std::make_shared<QueryAccounting>();
  ResourceTracker::Global().SetActiveQuery(account);
  account->SetCurrentOp("MAP");
  {
    ScopedCharge charge(2048);
    // The runner has moved on, but the scoped bytes stay on MAP.
    account->SetCurrentOp("SELECT");
    EXPECT_EQ(account->current_bytes(), 2048u);
  }
  EXPECT_EQ(account->current_bytes(), 0u);
  EXPECT_EQ(account->peak_bytes(), 2048u);
  auto stats = account->OperatorStats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].op, "MAP");
  ResourceTracker::Global().SetActiveQuery(nullptr);

  // Without an active account the whole mechanism is a no-op.
  ScopedCharge idle(4096);
  ChargeActiveQuery(4096);
  EXPECT_EQ(account->current_bytes(), 0u);
}

TEST(QueryAccountingTest, ClearActiveQueryOnlyClearsOwnRegistration) {
  TrackerStateGuard guard;
  auto first = std::make_shared<QueryAccounting>();
  auto second = std::make_shared<QueryAccounting>();
  ResourceTracker::Global().SetActiveQuery(first);
  // A sibling query publishes its own account before `first` finishes…
  ResourceTracker::Global().SetActiveQuery(second);
  // …so `first` finishing must NOT clobber the sibling's registration.
  ResourceTracker::Global().ClearActiveQuery(first);
  EXPECT_EQ(ResourceTracker::Global().active_query(), second);
  ResourceTracker::Global().ClearActiveQuery(second);
  EXPECT_EQ(ResourceTracker::Global().active_query(), nullptr);
}

TEST(ResourceTest, ColumnarCacheBytesMatchGroundTruth) {
  gdm::Dataset ds = PeakDataset(3, 400, 11);
  EXPECT_EQ(ds.ColumnarCacheBytes(), 0u);

  uint64_t expected = 0;
  for (const auto& sample : ds.samples()) {
    expected += sample.columns(ds.schema()).MemoryBytes();
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(ds.ColumnarCacheBytes(), expected);

  uint64_t samples_evicted = 0;
  uint64_t freed = ds.EvictColumnarCaches(&samples_evicted);
  EXPECT_EQ(freed, expected);
  EXPECT_EQ(samples_evicted, ds.samples().size());
  EXPECT_EQ(ds.ColumnarCacheBytes(), 0u);

  // Caches rebuild lazily from the intact rows to the same bytes.
  uint64_t rebuilt = 0;
  for (const auto& sample : ds.samples()) {
    rebuilt += sample.columns(ds.schema()).MemoryBytes();
  }
  EXPECT_EQ(rebuilt, expected);
}

TEST(ResourceTest, MappedGdmzResidencyAndColdPageDrop) {
  gdm::Dataset ds = PeakDataset(4, 5000, 13);
  std::string blob = io::WriteGdmzString(ds);
  std::string path = ::testing::TempDir() + "resource_test_map.gdmz";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  auto opened = io::MappedGdmz::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  io::MappedGdmz mapped = std::move(opened).value();
  EXPECT_EQ(mapped.map_length(), blob.size());
  EXPECT_EQ(mapped.bytes(), std::string_view(blob));

  mapped.WillNeedPrefix();
  auto first = mapped.Parse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string first_text = io::WriteGdmString(first.value());

  // Parsing touched the image; the mapping reports resident pages, bounded
  // by the page-rounded map length.
  uint64_t page = 4096;
  uint64_t resident = mapped.ResidentBytes();
  EXPECT_GT(resident, 0u);
  EXPECT_LE(resident, (mapped.map_length() + page - 1) / page * page);

  uint64_t dropped = mapped.DropColdPages();
  if (mapped.mapped()) {
    // A multi-page body parsed moments ago has cold pages to give back.
    EXPECT_GT(dropped, 0u);
    EXPECT_LT(mapped.ResidentBytes(), resident);
  }
  // Dropped pages re-fault from the file: the re-parse is bit-identical.
  auto second = mapped.Parse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(io::WriteGdmString(second.value()), first_text);
  std::remove(path.c_str());
}

TEST(ResourceTest, MappedGdmzTrackerRegistrationFollowsMoves) {
  gdm::Dataset ds = PeakDataset(2, 300, 17);
  std::string blob = io::WriteGdmzString(ds);
  std::string path = ::testing::TempDir() + "resource_test_reg.gdmz";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  {
    auto opened = io::MappedGdmz::Open(path);
    ASSERT_TRUE(opened.ok());
    io::MappedGdmz mapped = std::move(opened).value();
    mapped.RegisterWithTracker();
    std::string summary = ResourceTracker::Global().RenderStorageSummary();
    EXPECT_NE(summary.find("gdmz:resource_test_reg.gdmz"), std::string::npos);

    io::MappedGdmz moved = std::move(mapped);
    ResourceTracker::Global().UpdateGauges();  // walks the moved callbacks
    summary = ResourceTracker::Global().RenderStorageSummary();
    EXPECT_NE(summary.find("gdmz:resource_test_reg.gdmz"), std::string::npos);
  }
  // Destruction unregisters; the gauges no longer list the mapping.
  std::string summary = ResourceTracker::Global().RenderStorageSummary();
  EXPECT_EQ(summary.find("gdmz:resource_test_reg.gdmz"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResourceTest, ShedderRespectsBudgetAndLruOrder) {
  ResourceTracker tracker;  // private instance: deterministic registry
  uint64_t cold_bytes = 60000, warm_bytes = 40000;
  int cold_sheds = 0, warm_sheds = 0;
  uint64_t cold = tracker.RegisterStorage(
      "cold",
      [&] {
        StorageUsage usage;
        usage.columnar_bytes = cold_bytes;
        return usage;
      },
      [&](uint64_t want) {
        ++cold_sheds;
        uint64_t freed = std::min(want, cold_bytes);
        cold_bytes -= freed;
        return freed;
      });
  uint64_t warm = tracker.RegisterStorage(
      "warm",
      [&] {
        StorageUsage usage;
        usage.columnar_bytes = warm_bytes;
        return usage;
      },
      [&](uint64_t want) {
        ++warm_sheds;
        uint64_t freed = std::min(want, warm_bytes);
        warm_bytes -= freed;
        return freed;
      });
  tracker.Touch(cold);
  tracker.Touch(warm);  // "cold" is now least recently touched

  EXPECT_EQ(tracker.ReclaimableBytes(), 100000u);
  EXPECT_EQ(tracker.MaybeShed(), 0u);  // no budget, no shedding

  tracker.set_budget_bytes(50000);
  uint64_t freed = tracker.MaybeShed();
  EXPECT_GT(freed, 0u);
  EXPECT_LE(tracker.ReclaimableBytes(), 50000u);
  // LRU-first: the 60000-byte cold registration alone covers the request
  // down to the low watermark, so the warm one is never asked.
  EXPECT_EQ(cold_sheds, 1);
  EXPECT_EQ(warm_sheds, 0);

  EXPECT_EQ(tracker.MaybeShed(), 0u);  // already under budget
  tracker.UnregisterStorage(cold);
  tracker.UnregisterStorage(warm);
  EXPECT_EQ(tracker.ReclaimableBytes(), 0u);
}

TEST(ResourceTest, QueryPeakBytesTracksGroundTruth) {
  TrackerStateGuard guard;
  core::QueryRunner runner;
  runner.RegisterDataset(PeakDataset(4, 500, 19));

  auto results = runner.Run(
      "S = SELECT(dataType == 'ChipSeq'; region: signal >= 2) ENCODE; "
      "MATERIALIZE S;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const core::RunStats& stats = runner.last_stats();

  // Single-operator program: the peak is exactly the SELECT output's
  // resident footprint (MATERIALIZE passes through uncharged).
  auto it = results.value().find("S");
  ASSERT_NE(it, results.value().end());
  uint64_t ground_truth = it->second.EstimateResidentBytes();
  ASSERT_GT(ground_truth, 0u);
  EXPECT_EQ(stats.peak_bytes, ground_truth);
  EXPECT_EQ(stats.alloc_bytes, ground_truth);
  ASSERT_EQ(stats.op_bytes.size(), 1u);
  EXPECT_EQ(stats.op_bytes[0].op, "SELECT");
  EXPECT_EQ(stats.op_bytes[0].alloc_bytes, ground_truth);

  // The kill switch zeroes the whole pipeline.
  ResourceTracker::Global().set_accounting_enabled(false);
  auto again = runner.Run(
      "S = SELECT(dataType == 'ChipSeq'; region: signal >= 2) ENCODE; "
      "MATERIALIZE S;");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(runner.last_stats().peak_bytes, 0u);
  EXPECT_EQ(runner.last_stats().alloc_bytes, 0u);
  EXPECT_TRUE(runner.last_stats().op_bytes.empty());
}

TEST(ResourceTest, EvictionThenRequeryIsBitIdentical) {
  TrackerStateGuard guard;
  core::QueryRunner runner;
  runner.RegisterDataset(PeakDataset(4, 500, 23));
  const char* kQuery =
      "S = SELECT(dataType == 'ChipSeq'; region: signal >= 2) ENCODE; "
      "MATERIALIZE S;";

  // Build the columnar overlay, then capture the unbudgeted result.
  const gdm::Dataset* encode = runner.FindDataset("ENCODE");
  ASSERT_NE(encode, nullptr);
  for (const auto& sample : encode->samples()) {
    sample.columns(encode->schema());
  }
  ASSERT_GT(encode->ColumnarCacheBytes(), 0u);
  auto before = runner.Run(kQuery);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  std::string before_text = io::WriteGdmString(before.value().at("S"));

  // A 1-byte budget forces the end-of-query watermark pass to shed every
  // reclaimable byte this runner registered.
  ResourceTracker& tracker = ResourceTracker::Global();
  uint64_t evictions0 = tracker.evictions();
  uint64_t evicted_bytes0 = tracker.evicted_bytes();
  tracker.set_budget_bytes(1);
  auto budgeted = runner.Run(kQuery);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_EQ(io::WriteGdmString(budgeted.value().at("S")), before_text);
  EXPECT_GT(tracker.evictions(), evictions0);
  EXPECT_GT(tracker.evicted_bytes(), evicted_bytes0);
  EXPECT_EQ(encode->ColumnarCacheBytes(), 0u);

  // Re-query after shedding: caches rebuild, results unchanged.
  tracker.set_budget_bytes(0);
  auto after = runner.Run(kQuery);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(io::WriteGdmString(after.value().at("S")), before_text);
}

TEST(ResourceTest, ConcurrentAccountingUnderFlatScheduler) {
  TrackerStateGuard guard;
  engine::EngineOptions options;
  options.threads = 4;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 4;
  popt.peaks_per_sample = 400;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 29));
  auto catalog = sim::GenerateGenes(genome, 200, 29);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 29));

  // The sampler thread refreshes gauges (usage callbacks walk live cache
  // pointers) while engine workers charge shuffle buffers into the active
  // account — the race surface TSan checks.
  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    while (!stop.load()) {
      ResourceTracker::Global().UpdateGauges();
      ResourceTracker::Global().ReclaimableBytes();
      ResourceTracker::Global().RenderStorageSummary();
    }
  });
  for (int i = 0; i < 6; ++i) {
    auto results = runner.Run(
        "M = MAP(n AS COUNT) ANNOTATIONS ENCODE; MATERIALIZE M;");
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    EXPECT_GT(runner.last_stats().peak_bytes, 0u);
    EXPECT_GE(runner.last_stats().alloc_bytes,
              runner.last_stats().peak_bytes);
  }
  stop.store(true);
  sampler.join();
}

}  // namespace
}  // namespace gdms::obs
