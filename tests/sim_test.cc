#include <set>

#include <gtest/gtest.h>

#include "interval/sweep.h"
#include "sim/generators.h"

namespace gdms::sim {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

GenomeAssembly TestGenome() { return GenomeAssembly::HumanLike(5, 40000000); }

TEST(GenerateGenesTest, DeterministicAndOrdered) {
  auto g = TestGenome();
  GeneCatalog a = GenerateGenes(g, 500, 7);
  GeneCatalog b = GenerateGenes(g, 500, 7);
  ASSERT_EQ(a.genes.size(), b.genes.size());
  EXPECT_GT(a.genes.size(), 400u);  // quota rounding loses a few
  for (size_t i = 0; i < a.genes.size(); ++i) {
    EXPECT_EQ(a.genes[i].id, b.genes[i].id);
    EXPECT_EQ(a.genes[i].left, b.genes[i].left);
    EXPECT_LT(a.genes[i].left, a.genes[i].right);
  }
  GeneCatalog c = GenerateGenes(g, 500, 8);
  EXPECT_NE(a.genes[0].left, c.genes[0].left);  // seed matters
}

TEST(GenerateGenesTest, TssRespectsStrand) {
  Gene plus{0, 100, 200, gdm::Strand::kPlus, "g"};
  Gene minus{0, 100, 200, gdm::Strand::kMinus, "g"};
  EXPECT_EQ(plus.Tss(), 100);
  EXPECT_EQ(minus.Tss(), 200);
}

TEST(PeakDatasetTest, ShapeAndMetadata) {
  PeakDatasetOptions opt;
  opt.num_samples = 4;
  opt.peaks_per_sample = 200;
  Dataset ds = GeneratePeakDataset(TestGenome(), opt, 11);
  EXPECT_EQ(ds.name(), "ENCODE");
  ASSERT_EQ(ds.num_samples(), 4u);
  EXPECT_TRUE(ds.Validate().ok());
  for (const auto& s : ds.samples()) {
    EXPECT_EQ(s.regions.size(), 200u);
    EXPECT_TRUE(s.IsSorted());
    EXPECT_EQ(s.metadata.FirstValue("dataType"), "ChipSeq");
    EXPECT_FALSE(s.metadata.FirstValue("antibody").empty());
  }
  // Deterministic.
  Dataset ds2 = GeneratePeakDataset(TestGenome(), opt, 11);
  EXPECT_EQ(ds2.sample(0).regions[0].left, ds.sample(0).regions[0].left);
}

TEST(PeakDatasetTest, HotspotsCreateCrossSampleOverlap) {
  PeakDatasetOptions clustered;
  clustered.num_samples = 2;
  clustered.peaks_per_sample = 1500;
  clustered.hotspot_fraction = 0.95;
  clustered.num_hotspots = 50;
  clustered.antibodies = {"CTCF"};  // same stratum for both samples
  PeakDatasetOptions uniform = clustered;
  uniform.hotspot_fraction = 0.0;
  auto genome = TestGenome();
  Dataset c = GeneratePeakDataset(genome, clustered, 3);
  Dataset u = GeneratePeakDataset(genome, uniform, 3);
  auto overlaps = [](const Dataset& ds) {
    size_t n = 0;
    interval::OverlapJoin(ds.sample(0).regions, ds.sample(1).regions,
                          [&](size_t, size_t) { ++n; });
    return n;
  };
  EXPECT_GT(overlaps(c), 4 * overlaps(u) + 10);
}

TEST(AnnotationTest, ThreeSamplesWithTypes) {
  auto genome = TestGenome();
  auto catalog = GenerateGenes(genome, 300, 5);
  Dataset ds = GenerateAnnotations(genome, catalog, {}, 5);
  ASSERT_EQ(ds.num_samples(), 3u);
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.sample(0).metadata.FirstValue("annType"), "gene");
  EXPECT_EQ(ds.sample(1).metadata.FirstValue("annType"), "promoter");
  EXPECT_EQ(ds.sample(2).metadata.FirstValue("annType"), "enhancer");
  EXPECT_EQ(ds.sample(0).regions.size(), catalog.genes.size());
  EXPECT_EQ(ds.sample(1).regions.size(), catalog.genes.size());
}

TEST(AnnotationTest, PromoterSpansTss) {
  auto genome = TestGenome();
  auto catalog = GenerateGenes(genome, 100, 5);
  AnnotationOptions opt;
  Dataset ds = GenerateAnnotations(genome, catalog, opt, 5);
  // Promoter regions are sorted, genes are in catalog order; match by name.
  std::map<std::string, const gdm::GenomicRegion*> promoters;
  size_t name_idx = *ds.schema().IndexOf("name");
  for (const auto& r : ds.sample(1).regions) {
    promoters[r.values[name_idx].AsString()] = &r;
  }
  for (const auto& g : catalog.genes) {
    auto it = promoters.find(g.id + "_prom");
    ASSERT_NE(it, promoters.end());
    const auto* p = it->second;
    EXPECT_LE(p->left, g.Tss());
    EXPECT_GE(p->right, g.Tss());
    EXPECT_LE(p->right - p->left,
              opt.promoter_upstream + opt.promoter_downstream);
  }
}

TEST(MutationTest, ConditionsAndTypes) {
  MutationOptions opt;
  opt.num_samples = 4;
  opt.mutations_per_sample = 300;
  Dataset ds = GenerateMutations(TestGenome(), opt, 9);
  ASSERT_EQ(ds.num_samples(), 4u);
  EXPECT_TRUE(ds.Validate().ok());
  std::set<std::string> conditions;
  for (const auto& s : ds.samples()) {
    conditions.insert(s.metadata.FirstValue("condition"));
  }
  EXPECT_EQ(conditions.size(), 2u);
}

TEST(BreakpointTest, InductionDoublesBreaks) {
  BreakpointOptions opt;
  opt.num_samples = 2;
  opt.breaks_per_sample = 400;
  Dataset ds = GenerateBreakpoints(TestGenome(), opt, 13);
  ASSERT_EQ(ds.num_samples(), 2u);
  const auto& control = ds.sample(0);
  const auto& induced = ds.sample(1);
  EXPECT_EQ(control.metadata.FirstValue("condition"), "control");
  EXPECT_EQ(induced.regions.size(), 2 * control.regions.size());
}

TEST(BreakpointMutationTest, SharedFragileSitesColocalize) {
  // Same seed -> same fragile sites -> breaks and mutations co-locate far
  // more than breaks vs a different-seed mutation set.
  auto genome = TestGenome();
  BreakpointOptions bopt;
  bopt.num_samples = 1;
  bopt.breaks_per_sample = 2000;
  MutationOptions mopt;
  mopt.num_samples = 1;
  mopt.mutations_per_sample = 2000;
  Dataset breaks = GenerateBreakpoints(genome, bopt, 21);
  Dataset muts_same = GenerateMutations(genome, mopt, 21);
  Dataset muts_other = GenerateMutations(genome, mopt, 22);
  auto near_count = [&](const Dataset& m) {
    size_t n = 0;
    interval::DistanceJoin(breaks.sample(0).regions, m.sample(0).regions,
                           INT64_MIN / 4, 10000,
                           [&](size_t, size_t) { ++n; });
    return n;
  };
  EXPECT_GT(near_count(muts_same), 2 * near_count(muts_other));
}

TEST(ReplicationTest, DomainsTileAndShift) {
  ReplicationOptions opt;
  Dataset ds = GenerateReplicationTiming(TestGenome(), opt, 31);
  ASSERT_EQ(ds.num_samples(), 2u);
  EXPECT_TRUE(ds.Validate().ok());
  const auto& control = ds.sample(0);
  const auto& induced = ds.sample(1);
  ASSERT_EQ(control.regions.size(), induced.regions.size());
  // Domains tile each chromosome: consecutive same-chrom regions touch.
  for (size_t i = 1; i < control.regions.size(); ++i) {
    if (control.regions[i].chrom == control.regions[i - 1].chrom) {
      EXPECT_EQ(control.regions[i].left, control.regions[i - 1].right);
    }
  }
  // A visible fraction of domains shifted down by ~1.5.
  size_t shifted = 0;
  for (size_t i = 0; i < control.regions.size(); ++i) {
    double d = induced.regions[i].values[0].AsDouble() -
               control.regions[i].values[0].AsDouble();
    if (d < -1.0) ++shifted;
  }
  double frac = static_cast<double>(shifted) / control.regions.size();
  EXPECT_NEAR(frac, opt.shift_fraction, 0.08);
}

TEST(ExpressionTest, DifferentialGenes) {
  auto genome = TestGenome();
  auto catalog = GenerateGenes(genome, 400, 17);
  ExpressionOptions opt;
  Dataset ds = GenerateExpression(genome, catalog, opt, 17);
  ASSERT_EQ(ds.num_samples(), 2u);
  const auto& control = ds.sample(0);
  const auto& induced = ds.sample(1);
  ASSERT_EQ(control.regions.size(), catalog.genes.size());
  size_t gene_idx = *ds.schema().IndexOf("gene");
  size_t fpkm_idx = *ds.schema().IndexOf("fpkm");
  // Region order identical (same coords), so compare positionally.
  size_t differential = 0;
  for (size_t i = 0; i < control.regions.size(); ++i) {
    ASSERT_EQ(control.regions[i].values[gene_idx].AsString(),
              induced.regions[i].values[gene_idx].AsString());
    double fc = induced.regions[i].values[fpkm_idx].AsDouble() /
                control.regions[i].values[fpkm_idx].AsDouble();
    if (fc > 2.0 || fc < 0.5) ++differential;
  }
  double frac = static_cast<double>(differential) / control.regions.size();
  EXPECT_NEAR(frac, opt.diff_fraction, 0.06);
}

TEST(CtcfTest, LoopsAndAnchorsAgree) {
  CtcfLoopOptions opt;
  opt.num_loops = 200;
  auto genome = TestGenome();
  Dataset loops = GenerateCtcfLoops(genome, opt, 23);
  Dataset anchors = GenerateCtcfAnchors(genome, opt, 23);
  ASSERT_EQ(loops.num_samples(), 1u);
  EXPECT_EQ(loops.sample(0).regions.size(), opt.num_loops);
  EXPECT_EQ(anchors.sample(0).regions.size(), 2 * opt.num_loops);
  EXPECT_TRUE(loops.Validate().ok());
  EXPECT_TRUE(anchors.Validate().ok());
  for (const auto& r : loops.sample(0).regions) {
    EXPECT_LE(r.length(), opt.loop_len_max);
  }
  // Every loop overlaps at least two anchors (its own ends).
  size_t total_overlaps = 0;
  interval::OverlapJoin(loops.sample(0).regions, anchors.sample(0).regions,
                        [&](size_t, size_t) { ++total_overlaps; });
  EXPECT_GE(total_overlaps, 2 * opt.num_loops);
}

}  // namespace
}  // namespace gdms::sim
