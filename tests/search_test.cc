#include <gtest/gtest.h>

#include "search/internet_of_genomes.h"
#include "core/operators.h"
#include "search/metadata_index.h"
#include "search/normalizer.h"
#include "search/ontology.h"
#include "search/region_search.h"
#include "sim/generators.h"

namespace gdms::search {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

Dataset Peaks(uint64_t seed = 1) {
  sim::PeakDatasetOptions opt;
  opt.num_samples = 6;
  opt.peaks_per_sample = 100;
  return sim::GeneratePeakDataset(GenomeAssembly::HumanLike(3, 20000000), opt,
                                  seed);
}

TEST(TokenizeTest, LowercasesAndSplits) {
  auto toks = TokenizeMeta("ChIP-Seq of CTCF (rep.2)");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0], "chip");
  EXPECT_EQ(toks[1], "seq");
  EXPECT_EQ(toks[3], "ctcf");
  EXPECT_EQ(toks[4], "rep");
  EXPECT_EQ(toks[5], "2");
  // Underscores are word characters (ontology term ids stay whole).
  auto terms = TokenizeMeta("cancer_cell_line");
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], "cancer_cell_line");
}

TEST(MetadataIndexTest, IndexesAndSearches) {
  MetadataIndex index;
  index.AddDataset(Peaks());
  EXPECT_EQ(index.num_documents(), 6u);
  EXPECT_GT(index.num_terms(), 5u);
  auto hits = index.Search("CTCF");
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits) {
    EXPECT_EQ(h.ref.dataset, "ENCODE");
    EXPECT_GT(h.score, 0.0);
  }
}

TEST(MetadataIndexTest, ScoresRareTermsHigher) {
  MetadataIndex index;
  Dataset ds = Peaks();
  ds.mutable_sample(0)->metadata.Add("note", "unique_marker_xyz");
  index.AddDataset(ds);
  auto hits = index.Search("unique_marker_xyz ChipSeq");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].ref.sample, ds.sample(0).id);
}

TEST(MetadataIndexTest, ExactLookup) {
  MetadataIndex index;
  index.AddDataset(Peaks());
  auto refs = index.Lookup("dataType", "ChipSeq");
  EXPECT_EQ(refs.size(), 6u);
  EXPECT_TRUE(index.Lookup("dataType", "RnaSeq").empty());
}

TEST(MetadataIndexTest, PrecisionRecallEvaluation) {
  std::vector<SearchHit> hits = {{{"D", 1}, 1.0}, {{"D", 2}, 0.9}};
  std::vector<SampleRef> relevant = {{"D", 1}, {"D", 3}};
  PrEval eval = MetadataIndex::Evaluate(hits, relevant);
  EXPECT_DOUBLE_EQ(eval.precision, 0.5);
  EXPECT_DOUBLE_EQ(eval.recall, 0.5);
  EXPECT_DOUBLE_EQ(eval.f1, 0.5);
  PrEval empty = MetadataIndex::Evaluate({}, {});
  EXPECT_DOUBLE_EQ(empty.f1, 1.0);
}

TEST(OntologyTest, IsAClosure) {
  Ontology o;
  ASSERT_TRUE(o.AddIsA("k562", "cancer_cell_line").ok());
  ASSERT_TRUE(o.AddIsA("cancer_cell_line", "cell_line").ok());
  auto closure = o.Closure("k562");
  EXPECT_EQ(closure.size(), 3u);
  EXPECT_TRUE(closure.count("cell_line"));
  auto desc = o.Descendants("cell_line");
  EXPECT_TRUE(desc.count("k562"));
}

TEST(OntologyTest, RejectsCycles) {
  Ontology o;
  ASSERT_TRUE(o.AddIsA("a", "b").ok());
  ASSERT_TRUE(o.AddIsA("b", "c").ok());
  EXPECT_FALSE(o.AddIsA("c", "a").ok());
  EXPECT_FALSE(o.AddIsA("a", "a").ok());
}

TEST(OntologyTest, SynonymsResolve) {
  Ontology o = Ontology::BuiltinBio();
  EXPECT_EQ(o.Resolve("K562"), "k562");
  EXPECT_EQ(o.Resolve("ChipSeq"), "chip_seq");
  EXPECT_EQ(o.Resolve("unknown-thing"), "");
  EXPECT_EQ(o.Resolve("ctcf"), "ctcf");  // direct term name
}

TEST(OntologyTest, AnnotateExpandsMetadata) {
  Ontology o = Ontology::BuiltinBio();
  gdm::Metadata meta;
  meta.Add("cell", "K562");
  meta.Add("dataType", "ChipSeq");
  auto terms = o.Annotate(meta);
  EXPECT_TRUE(terms.count("k562"));
  EXPECT_TRUE(terms.count("cancer_cell_line"));
  EXPECT_TRUE(terms.count("cell_line"));
  EXPECT_TRUE(terms.count("sequencing_assay"));
}

TEST(RegionSearchTest, RanksBySignal) {
  Dataset ds = Peaks();
  RegionSearch search({});
  std::vector<FeatureWeight> weights = {
      {RegionFeature::kAttrValue, 1.0, "signal"}};
  auto hits = search.TopK(ds, weights, 10).ValueOrDie();
  ASSERT_EQ(hits.size(), 10u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  // The top hit has the global max signal.
  size_t sig = *ds.schema().IndexOf("signal");
  double max_signal = 0;
  for (const auto& s : ds.samples()) {
    for (const auto& r : s.regions) {
      max_signal = std::max(max_signal, r.values[sig].AsDouble());
    }
  }
  EXPECT_DOUBLE_EQ(hits[0].region.values[sig].AsDouble(), max_signal);
}

TEST(RegionSearchTest, OverlapFeatureUsesReference) {
  Dataset ds = Peaks();
  // Reference = sample 0's own regions; its regions overlap themselves.
  RegionSearch search(ds.sample(0).regions);
  EXPECT_EQ(search.reference_size(), ds.sample(0).regions.size());
  std::vector<FeatureWeight> weights = {
      {RegionFeature::kOverlapCount, 1.0, ""}};
  auto hits = search.TopK(ds, weights, 5).ValueOrDie();
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(hits[0].features[0], 1.0);
}

TEST(RegionSearchTest, UnknownAttrErrors) {
  Dataset ds = Peaks();
  RegionSearch search({});
  std::vector<FeatureWeight> weights = {
      {RegionFeature::kAttrValue, 1.0, "ghost"}};
  EXPECT_FALSE(search.TopK(ds, weights, 5).ok());
}

TEST(NormalizerTest, RewritesSynonymsAndMaterializesClosure) {
  Ontology ontology = Ontology::BuiltinBio();
  Dataset ds = Peaks();
  MetadataNormalizer normalizer(&ontology);
  NormalizeStats stats = normalizer.Normalize(&ds);
  EXPECT_EQ(stats.samples, ds.num_samples());
  EXPECT_GT(stats.values_rewritten, 0u);
  EXPECT_GT(stats.terms_added, 0u);
  for (const auto& s : ds.samples()) {
    // "ChipSeq" became the canonical term.
    EXPECT_EQ(s.metadata.FirstValue("dataType"), "chip_seq");
    // Closure terms materialized under _term.
    EXPECT_TRUE(s.metadata.HasPair("_term", "sequencing_assay"));
    EXPECT_TRUE(s.metadata.HasPair("_term", "chip_seq"));
  }
}

TEST(NormalizerTest, EnablesCrossRepositoryJoinby) {
  // Two datasets spelling the assay differently become joinable after
  // normalization (the Section 4.3 "compatible metadata" goal).
  Ontology ontology = Ontology::BuiltinBio();
  Dataset a = Peaks(1);
  Dataset b = Peaks(2);
  b.mutable_sample(0)->metadata.RemoveAttr("dataType");
  b.mutable_sample(0)->metadata.Add("dataType", "ChiaPet");  // different assay
  MetadataNormalizer normalizer(&ontology);
  normalizer.Normalize(&a);
  normalizer.Normalize(&b);
  // Every a-sample matches b-samples on _term sequencing_assay.
  EXPECT_TRUE(core::Operators::JoinbyMatch({"_term"}, a.sample(0).metadata,
                                           b.sample(0).metadata));
  // But on dataType, the ChiaPet sample no longer matches.
  EXPECT_FALSE(core::Operators::JoinbyMatch({"dataType"}, a.sample(0).metadata,
                                            b.sample(0).metadata));
}

TEST(NormalizerTest, UnresolvableValuesPassThrough) {
  Ontology ontology = Ontology::BuiltinBio();
  Dataset ds("D", gdm::RegionSchema{});
  gdm::Sample s(1);
  s.metadata.Add("note", "some free text");
  ds.AddSample(std::move(s));
  MetadataNormalizer normalizer(&ontology);
  NormalizeStats stats = normalizer.Normalize(&ds);
  EXPECT_EQ(stats.values_rewritten, 0u);
  EXPECT_TRUE(ds.sample(0).metadata.HasPair("note", "some free text"));
}

class IogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    host1_ = std::make_unique<iog::Host>("polimi");
    host2_ = std::make_unique<iog::Host>("broad");
    gdm::Metadata m1;
    m1.Add("dataType", "ChipSeq");
    m1.Add("cell", "K562");
    url1_ = host1_->Publish(Peaks(1), m1);
    gdm::Metadata m2;
    m2.Add("dataType", "ChipSeq");
    m2.Add("cell", "GM12878");
    url2_ = host2_->Publish(Peaks(2), m2);
    gdm::Metadata secret;
    secret.Add("dataType", "ChipSeq");
    host2_->Publish(Peaks(3), secret, /*is_public=*/false);
    service_.AddHost(host1_.get());
    service_.AddHost(host2_.get());
  }

  std::unique_ptr<iog::Host> host1_;
  std::unique_ptr<iog::Host> host2_;
  std::string url1_;
  std::string url2_;
  iog::SearchService service_;
};

TEST_F(IogTest, CrawlIndexesOnlyPublicEntries) {
  auto stats = service_.Crawl().ValueOrDie();
  EXPECT_EQ(stats.hosts_visited, 2u);
  EXPECT_EQ(stats.entries_indexed, 2u);  // private entry skipped
  EXPECT_EQ(stats.datasets_cached, 0u);  // no cache budget
  EXPECT_GT(stats.metadata_bytes, 0u);
  EXPECT_EQ(service_.num_indexed(), 2u);
}

TEST_F(IogTest, CrawlWithBudgetCachesDatasets) {
  auto stats = service_.Crawl(100 << 20).ValueOrDie();
  EXPECT_EQ(stats.datasets_cached, 2u);
  EXPECT_GT(stats.dataset_bytes, 0u);
  EXPECT_EQ(service_.num_cached(), 2u);
}

TEST_F(IogTest, SearchReturnsSnippetsWithCacheFlag) {
  (void)service_.Crawl().ValueOrDie();
  auto snippets = service_.Search("K562");
  ASSERT_EQ(snippets.size(), 1u);
  EXPECT_EQ(snippets[0].url, url1_);
  EXPECT_EQ(snippets[0].host, "polimi");
  EXPECT_FALSE(snippets[0].cached);
  (void)service_.Crawl(100 << 20).ValueOrDie();
  snippets = service_.Search("K562");
  ASSERT_EQ(snippets.size(), 1u);
  EXPECT_TRUE(snippets[0].cached);
}

TEST_F(IogTest, OntologyExpandedSearch) {
  (void)service_.Crawl().ValueOrDie();
  // "cancer_cell_line" should match the K562 entry via the ontology even
  // though the string never appears in its metadata.
  auto snippets = service_.Search("cancer_cell_line");
  ASSERT_EQ(snippets.size(), 1u);
  EXPECT_EQ(snippets[0].url, url1_);
  // "cell_line" matches both.
  EXPECT_EQ(service_.Search("cell_line").size(), 2u);
}

TEST_F(IogTest, FetchCountsTransfersAndServesCacheFree) {
  (void)service_.Crawl().ValueOrDie();
  uint64_t bytes = 0;
  Dataset ds = service_.FetchDataset(url1_, &bytes).ValueOrDie();
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(ds.num_samples(), 6u);
  // After a caching crawl the same fetch is free.
  (void)service_.Crawl(100 << 20).ValueOrDie();
  uint64_t bytes2 = 0;
  (void)service_.FetchDataset(url1_, &bytes2).ValueOrDie();
  EXPECT_EQ(bytes2, 0u);
  // Unknown URL errors.
  EXPECT_FALSE(service_.FetchDataset("gdm://nowhere/x", &bytes).ok());
}

}  // namespace
}  // namespace gdms::search
