// End-to-end integration: synthetic workloads -> GMQL across every operator
// -> serialization -> federation -> search -> analysis, with cross-layer
// consistency assertions. This is the "downstream user" scenario: one test
// driving the whole public API the way the examples do, with checks.

#include <gtest/gtest.h>

#include "analysis/enrichment.h"
#include "analysis/genome_space.h"
#include "analysis/network.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "io/gdm_format.h"
#include "repo/federation.h"
#include "search/internet_of_genomes.h"
#include "search/metadata_index.h"
#include "sim/generators.h"

namespace gdms {
namespace {

using gdm::Dataset;
using gdm::GenomeAssembly;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genome_ = GenomeAssembly::HumanLike(6, 40000000);
    sim::PeakDatasetOptions popt;
    popt.num_samples = 6;
    popt.peaks_per_sample = 1200;
    encode_ = sim::GeneratePeakDataset(genome_, popt, 99);
    catalog_ = sim::GenerateGenes(genome_, 400, 99);
    annotations_ = sim::GenerateAnnotations(genome_, catalog_, {}, 99);
  }

  GenomeAssembly genome_;
  Dataset encode_;
  sim::GeneCatalog catalog_;
  Dataset annotations_;
};

TEST_F(IntegrationTest, EveryOperatorInOnePipeline) {
  core::QueryRunner runner;
  runner.RegisterDataset(encode_);
  runner.RegisterDataset(annotations_);
  auto results = runner.Run(
      // All unary operators.
      "PEAKS = SELECT(dataType == 'ChipSeq'; region: signal >= 2) ENCODE;\n"
      "SLIM = PROJECT(signal, p_value; reg_len AS right - left; meta: "
      "antibody, cell) PEAKS;\n"
      "RICH = EXTEND(n AS COUNT, top AS MAX(signal)) SLIM;\n"
      "RANKED = ORDER(top DESC; TOP 4; region: signal DESC TOP 200) RICH;\n"
      "BYCELL = GROUP(cell; total AS SUM(signal)) RANKED;\n"
      "ONE = MERGE() BYCELL;\n"
      // Binary operators.
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
      "BOTH = UNION() PROMS GENES;\n"
      "CLEAN = DIFFERENCE() PROMS ONE;\n"
      "NEAR = JOIN(DLE(10000) AND MD(2); CAT) PROMS ONE;\n"
      "COUNTS = MAP(n AS COUNT, avg AS AVG(signal)) PROMS RANKED;\n"
      "CONS = HISTOGRAM(1, ALL) RANKED;\n"
      "MATERIALIZE ONE; MATERIALIZE BOTH; MATERIALIZE CLEAN;\n"
      "MATERIALIZE NEAR; MATERIALIZE COUNTS; MATERIALIZE CONS;\n");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (const auto& [name, ds] : results.value()) {
    EXPECT_TRUE(ds.Validate().ok()) << name;
  }
  const auto& r = results.value();
  EXPECT_EQ(r.at("ONE").num_samples(), 1u);
  EXPECT_EQ(r.at("BOTH").num_samples(), 2u);
  // RANKED kept 4 samples of <= 200 regions each.
  EXPECT_LE(r.at("COUNTS").num_samples(), 4u);
  // CLEAN (promoters minus merged peaks) has fewer regions than PROMS.
  EXPECT_LT(r.at("CLEAN").TotalRegions(), catalog_.genes.size());
  EXPECT_GT(r.at("CONS").TotalRegions(), 0u);
}

TEST_F(IntegrationTest, ParallelAndSequentialAgreeOnThePipeline) {
  const char* query =
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "COUNTS = MAP(n AS COUNT) PROMS PEAKS;\n"
      "CONS = COVER(2, ANY) PEAKS;\n"
      "MATERIALIZE COUNTS; MATERIALIZE CONS;\n";
  core::QueryRunner seq;
  seq.RegisterDataset(encode_);
  seq.RegisterDataset(annotations_);
  auto a = seq.Run(query).ValueOrDie();
  engine::EngineOptions options;
  options.threads = 4;
  engine::ParallelExecutor executor(options);
  core::QueryRunner par(&executor);
  par.RegisterDataset(encode_);
  par.RegisterDataset(annotations_);
  auto b = par.Run(query).ValueOrDie();
  for (const auto& [name, ds] : a) {
    EXPECT_EQ(b.at(name).TotalRegions(), ds.TotalRegions()) << name;
    EXPECT_EQ(b.at(name).num_samples(), ds.num_samples()) << name;
  }
}

TEST_F(IntegrationTest, FederationServesTheSameAnswerAsLocal) {
  const char* query =
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "COUNTS = MAP(n AS COUNT) PROMS ENCODE;\n"
      "MATERIALIZE COUNTS;\n";
  core::QueryRunner local;
  local.RegisterDataset(encode_);
  local.RegisterDataset(annotations_);
  Dataset local_result = local.Run(query).ValueOrDie().at("COUNTS");

  repo::FederatedNode node("node");
  node.catalog()->Put(encode_);
  node.catalog()->Put(annotations_);
  node.set_chunk_bytes(4096);  // many FETCH round trips
  repo::Coordinator coordinator;
  coordinator.AddNode(&node);
  Dataset remote_result =
      coordinator.RunRemote("node", query).ValueOrDie().at("COUNTS");

  ASSERT_EQ(remote_result.num_samples(), local_result.num_samples());
  EXPECT_EQ(remote_result.TotalRegions(), local_result.TotalRegions());
  // Spot-check a value survived serialization + staging + reassembly.
  size_t n_idx = *local_result.schema().IndexOf("n");
  const auto& ls = local_result.sample(0);
  const auto* rs = remote_result.FindSample(ls.id);
  ASSERT_NE(rs, nullptr);
  for (size_t i = 0; i < ls.regions.size(); i += 37) {
    EXPECT_EQ(rs->regions[i].values[n_idx].AsInt(),
              ls.regions[i].values[n_idx].AsInt());
  }
}

TEST_F(IntegrationTest, SearchFindsWhatTheQueryUsed) {
  search::MetadataIndex index;
  index.AddDataset(encode_);
  // Every sample selected by the GMQL metadata predicate is findable.
  core::QueryRunner runner;
  runner.RegisterDataset(encode_);
  Dataset ctcf =
      runner.Run("X = SELECT(antibody == 'CTCF') ENCODE;\nMATERIALIZE X;\n")
          .ValueOrDie()
          .at("X");
  auto hits = index.Search("CTCF", 100);
  std::set<gdm::SampleId> found;
  for (const auto& h : hits) found.insert(h.ref.sample);
  for (const auto& s : ctcf.samples()) {
    EXPECT_TRUE(found.count(s.id)) << s.id;
  }
}

TEST_F(IntegrationTest, GenomeSpaceNetworkAndEnrichmentFromOneMap) {
  core::QueryRunner runner;
  runner.RegisterDataset(encode_);
  runner.RegisterDataset(annotations_);
  Dataset mapped = runner
                       .Run("GENES = SELECT(annType == 'gene') ANNOTATIONS;\n"
                            "GS = MAP(n AS COUNT) GENES ENCODE;\n"
                            "MATERIALIZE GS;\n")
                       .ValueOrDie()
                       .at("GS");
  auto space = analysis::GenomeSpace::FromMapResult(mapped, "n").ValueOrDie();
  EXPECT_EQ(space.num_experiments(), encode_.num_samples());
  auto net = analysis::GeneNetwork::FromGenomeSpace(
      space, analysis::SimilarityKind::kJaccard, 0.5);
  auto stats = net.Stats();
  EXPECT_EQ(stats.nodes, space.num_regions());
  // Enrichment of peaks in genes is a meaningful, finite statistic.
  auto enrichment = analysis::BinomialEnrichment(
                        encode_.sample(0).regions,
                        annotations_.sample(0).regions, genome_.TotalLength())
                        .ValueOrDie();
  EXPECT_GT(enrichment.coverage_fraction, 0.0);
  EXPECT_LE(enrichment.p_value, 1.0);
  EXPECT_GE(enrichment.p_value, 0.0);
}

TEST_F(IntegrationTest, InternetOfGenomesServesQueryableDatasets) {
  search::iog::Host host("lab.example.org");
  gdm::Metadata meta;
  meta.Add("dataType", "ChipSeq");
  meta.Add("cell", "K562");
  std::string url = host.Publish(encode_, meta);
  search::iog::SearchService service;
  service.AddHost(&host);
  ASSERT_TRUE(service.Crawl().ok());
  auto snippets = service.Search("ChipSeq");
  ASSERT_FALSE(snippets.empty());
  uint64_t bytes = 0;
  Dataset fetched = service.FetchDataset(url, &bytes).ValueOrDie();
  EXPECT_GT(bytes, 0u);
  // The fetched dataset is immediately queryable.
  core::QueryRunner runner;
  runner.RegisterDataset(std::move(fetched));
  auto result = runner.Run(
      "X = SELECT(antibody == 'CTCF') ENCODE;\nMATERIALIZE X;\n");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().at("X").num_samples(), 0u);
}

}  // namespace
}  // namespace gdms
