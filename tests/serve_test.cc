// Tests for the src/serve session layer: query normalization, plan-cache
// hit/rebind result equivalence, result-cache invalidation on dataset
// publish (bit-identical to an uncached run), admission control that sheds
// instead of blocking, queue deadlines, and — the TSan target — concurrent
// sessions hammering the caches while a writer bumps dataset versions.

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/runner.h"
#include "io/gdm_format.h"
#include "serve/plan_cache.h"
#include "serve/serve_catalog.h"
#include "serve/session_manager.h"
#include "sim/generators.h"

namespace gdms::serve {
namespace {

gdm::GenomeAssembly TestGenome() {
  return gdm::GenomeAssembly::HumanLike(4, 40000000);
}

gdm::Dataset Encode(uint64_t seed) {
  sim::PeakDatasetOptions popt;
  popt.num_samples = 2;
  popt.peaks_per_sample = 500;
  return sim::GeneratePeakDataset(TestGenome(), popt, seed);
}

gdm::Dataset Annotations() {
  sim::GeneCatalog genes = sim::GenerateGenes(TestGenome(), 200, 21);
  return sim::GenerateAnnotations(TestGenome(), genes, {}, 21);
}

const char* kCoverQuery =
    "MARKED = SELECT(dataType == 'ChipSeq') ENCODE;\n"
    "ACTIVE = COVER(2, ANY) MARKED;\n"
    "MATERIALIZE ACTIVE;\n";

std::string MapQuery(const std::string& antibody) {
  return "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
         "PEAKS = SELECT(antibody == '" +
         antibody +
         "') ENCODE;\n"
         "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
         "MATERIALIZE R;\n";
}

/// Reference run with a plain (uncached, unserved) QueryRunner over the
/// given datasets: the ground truth served results must be bit-identical to.
std::map<std::string, std::string> UncachedRun(
    const std::vector<gdm::Dataset>& datasets, const std::string& gmql) {
  core::QueryRunner runner;
  for (const auto& ds : datasets) runner.RegisterDataset(ds);
  auto results = runner.Run(gmql);
  std::map<std::string, std::string> out;
  for (const auto& [name, ds] : results.ValueOrDie()) {
    out[name] = io::WriteGdmString(ds);
  }
  return out;
}

std::map<std::string, std::string> Serialize(const ResultCache::Results& r) {
  std::map<std::string, std::string> out;
  EXPECT_NE(r, nullptr);
  if (r == nullptr) return out;
  for (const auto& [name, ds] : *r) out[name] = io::WriteGdmString(ds);
  return out;
}

TEST(NormalizeGmql, SameShapeDifferentLiterals) {
  auto a = NormalizeGmql(MapQuery("CTCF")).ValueOrDie();
  auto b = NormalizeGmql(MapQuery("EP300")).ValueOrDie();
  EXPECT_EQ(a.key, b.key);
  ASSERT_EQ(a.literals.size(), b.literals.size());
  EXPECT_EQ(a.literals[1], "'CTCF'");
  EXPECT_EQ(b.literals[1], "'EP300'");
  auto c = NormalizeGmql(kCoverQuery).ValueOrDie();
  EXPECT_NE(a.key, c.key);
}

TEST(SessionManager, PlanHitAndRebindReturnCorrectResults) {
  ServeCatalog catalog;
  catalog.Publish(Encode(7));
  catalog.Publish(Annotations());
  ServeOptions opts;
  opts.workers = 2;
  SessionManager manager(&catalog, opts);

  ServeResponse first = manager.Execute(MapQuery("CTCF"));
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  EXPECT_STREQ(first.plan_cache, "miss");

  // Same shape, new literal: a rebind, and its results must match an
  // uncached run with that literal (not the first binding's results).
  ServeResponse rebound = manager.Execute(MapQuery("EP300"));
  ASSERT_TRUE(rebound.status.ok()) << rebound.status.message();
  EXPECT_STREQ(rebound.plan_cache, "rebind");
  EXPECT_EQ(Serialize(rebound.results),
            UncachedRun({Encode(7), Annotations()}, MapQuery("EP300")));

  // Exact repeat: plan hit, identical bytes.
  ServeResponse repeat = manager.Execute(MapQuery("EP300"));
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_STREQ(repeat.plan_cache, "hit");
  EXPECT_TRUE(repeat.result_cache_hit);
  EXPECT_EQ(Serialize(repeat.results), Serialize(rebound.results));
}

TEST(SessionManager, ResultCacheInvalidationServesFreshBytes) {
  ServeCatalog catalog;
  catalog.Publish(Encode(7));
  ServeOptions opts;
  opts.workers = 1;
  SessionManager manager(&catalog, opts);

  ServeResponse v1 = manager.Execute(kCoverQuery);
  ASSERT_TRUE(v1.status.ok()) << v1.status.message();
  EXPECT_FALSE(v1.result_cache_hit);
  EXPECT_EQ(Serialize(v1.results), UncachedRun({Encode(7)}, kCoverQuery));

  ServeResponse cached = manager.Execute(kCoverQuery);
  ASSERT_TRUE(cached.status.ok());
  EXPECT_TRUE(cached.result_cache_hit);

  // Republish ENCODE with different data: the cached entry must become
  // unreachable and the re-query must match an uncached run on the new
  // version, bit for bit.
  catalog.Publish(Encode(99));
  ServeResponse v2 = manager.Execute(kCoverQuery);
  ASSERT_TRUE(v2.status.ok()) << v2.status.message();
  EXPECT_FALSE(v2.result_cache_hit);
  EXPECT_STREQ(v2.plan_cache, "hit");  // the plan survives, the result doesn't
  EXPECT_EQ(Serialize(v2.results), UncachedRun({Encode(99)}, kCoverQuery));
  EXPECT_NE(Serialize(v2.results), Serialize(v1.results));
  EXPECT_GE(manager.result_cache().stats().invalidations, 1u);
}

TEST(SessionManager, AdmissionShedsInsteadOfBlocking) {
  ServeCatalog catalog;
  catalog.Publish(Encode(7));
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_limit = 4;
  opts.result_cache_bytes = 0;  // every admitted query costs real work
  SessionManager manager(&catalog, opts);
  manager.Execute(kCoverQuery);  // warm the plan cache

  std::mutex mu;
  std::map<uint64_t, int> responses;
  std::vector<uint64_t> admitted;
  uint64_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto id = manager.Submit(kCoverQuery, [&](const ServeResponse& resp) {
      std::lock_guard<std::mutex> lock(mu);
      ++responses[resp.id];
    });
    if (id.ok()) {
      admitted.push_back(id.ValueOrDie());
    } else {
      EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  manager.Drain();  // must return: every admitted query answers
  EXPECT_GT(rejected, 0u) << "queue of 4 absorbed a 64-query burst";
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(responses.size(), admitted.size());
  for (uint64_t id : admitted) {
    EXPECT_EQ(responses[id], 1) << "query " << id << " answered != once";
  }
}

TEST(SessionManager, QueueDeadlineShedsWithoutExecuting) {
  ServeCatalog catalog;
  catalog.Publish(Encode(7));
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_limit = 64;
  opts.result_cache_bytes = 0;
  SessionManager manager(&catalog, opts);
  manager.Execute(kCoverQuery);

  // Fill the single worker's pipeline with no-deadline work, then submit a
  // query whose deadline will certainly pass while it waits in the queue.
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        manager.Submit(kCoverQuery, [&](const ServeResponse&) { ++done; })
            .ok());
  }
  ServeResponse late = manager.Execute(kCoverQuery, /*deadline_ms=*/0.01);
  EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.results, nullptr);
  manager.Drain();
  EXPECT_EQ(done.load(), 8);
  EXPECT_GE(manager.stats().deadline_exceeded, 1u);
}

// The TSan workhorse: concurrent submitters hammer the plan and result
// caches while a writer republishes ENCODE. Pinned snapshots mean every
// query must still succeed and answer exactly once.
TEST(SessionManager, ConcurrentSessionsSurviveVersionBumps) {
  ServeCatalog catalog;
  catalog.Publish(Encode(7));
  catalog.Publish(Annotations());
  ServeOptions opts;
  opts.workers = 4;
  opts.queue_limit = 512;
  SessionManager manager(&catalog, opts);

  const std::string queries[] = {MapQuery("CTCF"), MapQuery("EP300"),
                                 std::string(kCoverQuery)};
  std::mutex mu;
  std::map<uint64_t, int> responses;
  std::vector<uint64_t> admitted;
  std::atomic<uint64_t> errors{0};

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = manager.Submit(queries[(t + i) % 3],
                                 [&](const ServeResponse& resp) {
                                   if (!resp.status.ok()) ++errors;
                                   std::lock_guard<std::mutex> lock(mu);
                                   ++responses[resp.id];
                                 });
        if (id.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          admitted.push_back(id.ValueOrDie());
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      catalog.Publish(Encode(i % 2 == 0 ? 7 : 99));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : threads) t.join();
  writer.join();
  manager.Drain();

  EXPECT_EQ(errors.load(), 0u);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(admitted.size(),
            static_cast<size_t>(kSubmitters) * kPerThread);
  EXPECT_EQ(responses.size(), admitted.size());
  for (uint64_t id : admitted) EXPECT_EQ(responses.at(id), 1);
  EXPECT_GE(catalog.Version("ENCODE"), 11u);
}

}  // namespace
}  // namespace gdms::serve
