#include <gtest/gtest.h>

#include "analysis/enrichment.h"
#include "common/rng.h"
#include "core/operators.h"
#include "core/runner.h"
#include "io/track_render.h"
#include "sim/generators.h"

namespace gdms {
namespace {

using core::Operators;
using core::SemijoinParams;
using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

Dataset TwoSampleDataset(const char* name) {
  RegionSchema schema;
  Dataset ds(name, schema);
  Sample s1(1);
  s1.metadata.Add("cell", "K562");
  s1.metadata.Add("antibody", "CTCF");
  s1.regions = {{InternChrom("chr1"), 10, 20, Strand::kNone, {}}};
  Sample s2(2);
  s2.metadata.Add("cell", "HeLa");
  s2.metadata.Add("antibody", "CTCF");
  s2.regions = {{InternChrom("chr1"), 30, 40, Strand::kNone, {}}};
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  return ds;
}

// ------------------------------------------------------------- semijoin ---

TEST(SemijoinTest, KeepsMatchingSamples) {
  Dataset left = TwoSampleDataset("L");
  Dataset right("R", RegionSchema{});
  Sample r1(1);
  r1.metadata.Add("cell", "K562");
  right.AddSample(std::move(r1));
  SemijoinParams params;
  params.attrs = {"cell"};
  Dataset out = Operators::Semijoin(params, left, right).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).id, 1u);
  // Regions and metadata pass through untouched.
  EXPECT_EQ(out.sample(0).regions.size(), 1u);
  EXPECT_TRUE(out.sample(0).metadata.HasPair("antibody", "CTCF"));
}

TEST(SemijoinTest, NegatedKeepsNonMatching) {
  Dataset left = TwoSampleDataset("L");
  Dataset right("R", RegionSchema{});
  Sample r1(1);
  r1.metadata.Add("cell", "K562");
  right.AddSample(std::move(r1));
  SemijoinParams params;
  params.attrs = {"cell"};
  params.negated = true;
  Dataset out = Operators::Semijoin(params, left, right).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).id, 2u);
}

TEST(SemijoinTest, AllAttrsMustMatch) {
  Dataset left = TwoSampleDataset("L");
  Dataset right("R", RegionSchema{});
  Sample r1(1);
  r1.metadata.Add("cell", "K562");
  r1.metadata.Add("antibody", "POLR2A");  // antibody differs
  right.AddSample(std::move(r1));
  SemijoinParams params;
  params.attrs = {"cell", "antibody"};
  Dataset out = Operators::Semijoin(params, left, right).ValueOrDie();
  EXPECT_EQ(out.num_samples(), 0u);
}

TEST(SemijoinTest, RequiresAttributes) {
  Dataset left = TwoSampleDataset("L");
  Dataset right = TwoSampleDataset("R");
  EXPECT_FALSE(Operators::Semijoin(SemijoinParams{}, left, right).ok());
}

TEST(SemijoinTest, ParsesAndRunsEndToEnd) {
  core::QueryRunner runner;
  runner.RegisterDataset(TwoSampleDataset("A"));
  Dataset pilot("PILOT", RegionSchema{});
  Sample p(1);
  p.metadata.Add("cell", "HeLa");
  pilot.AddSample(std::move(p));
  runner.RegisterDataset(std::move(pilot));
  auto results =
      runner.Run("X = SEMIJOIN(cell) A PILOT;\nMATERIALIZE X;\n").ValueOrDie();
  ASSERT_EQ(results.at("X").num_samples(), 1u);
  EXPECT_EQ(results.at("X").sample(0).id, 2u);
  auto negated =
      runner.Run("X = SEMIJOIN(cell; NOT) A PILOT;\nMATERIALIZE X;\n")
          .ValueOrDie();
  ASSERT_EQ(negated.at("X").num_samples(), 1u);
  EXPECT_EQ(negated.at("X").sample(0).id, 1u);
}

// ----------------------------------------------------------- enrichment ---

TEST(BinomialTailTest, KnownValues) {
  using analysis::BinomialUpperTail;
  // P(X >= 0) = 1 always.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(0, 10, 0.3), 1.0);
  // P(X >= 1) = 1 - (1-p)^n.
  EXPECT_NEAR(BinomialUpperTail(1, 10, 0.3), 1.0 - std::pow(0.7, 10), 1e-12);
  // P(X >= n) = p^n.
  EXPECT_NEAR(BinomialUpperTail(10, 10, 0.3), std::pow(0.3, 10), 1e-15);
  // Symmetric fair coin: P(X >= 6 of 10) known = 0.376953125.
  EXPECT_NEAR(BinomialUpperTail(6, 10, 0.5), 0.376953125, 1e-12);
  // Degenerate probabilities.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(3, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(11, 10, 0.5), 0.0);
}

TEST(BinomialTailTest, LargeNStable) {
  double p = analysis::BinomialUpperTail(600, 100000, 0.005);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-3);  // 600 observed vs 500 expected is significant
}

TEST(EnrichmentTest, DetectsPlantedOverlap) {
  // Annotation covers 1% of a 10 Mb genome; query regions placed INSIDE it.
  std::vector<GenomicRegion> annotation;
  for (int i = 0; i < 10; ++i) {
    annotation.emplace_back(InternChrom("chr1"), i * 1000000,
                            i * 1000000 + 10000);
  }
  std::vector<GenomicRegion> query;
  for (int i = 0; i < 50; ++i) {
    query.emplace_back(InternChrom("chr1"), (i % 10) * 1000000 + 100 + i,
                       (i % 10) * 1000000 + 200 + i);
  }
  gdm::SortRegions(&query);
  auto result =
      analysis::BinomialEnrichment(query, annotation, 10000000).ValueOrDie();
  EXPECT_EQ(result.hits, 50u);
  EXPECT_NEAR(result.coverage_fraction, 0.01, 1e-9);
  EXPECT_GT(result.fold_enrichment, 50.0);
  EXPECT_LT(result.p_value, 1e-20);
  EXPECT_GT(result.log10_p, 20.0);
}

TEST(EnrichmentTest, NegativeControlNotSignificant) {
  // Random-ish uniform query vs 10% annotation: hits near expectation.
  Rng rng(5);
  std::vector<GenomicRegion> annotation;
  for (int i = 0; i < 10; ++i) {
    annotation.emplace_back(InternChrom("chr1"), i * 1000000,
                            i * 1000000 + 100000);
  }
  std::vector<GenomicRegion> query;
  for (int i = 0; i < 300; ++i) {
    int64_t pos = rng.Uniform(0, 9999000);
    query.emplace_back(InternChrom("chr1"), pos, pos + 100);
  }
  gdm::SortRegions(&query);
  auto result =
      analysis::BinomialEnrichment(query, annotation, 10000000).ValueOrDie();
  EXPECT_NEAR(result.fold_enrichment, 1.0, 0.35);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(EnrichmentTest, OverlappingAnnotationFlattened) {
  std::vector<GenomicRegion> annotation = {
      {InternChrom("chr1"), 0, 1000, Strand::kNone, {}},
      {InternChrom("chr1"), 500, 1500, Strand::kNone, {}}};
  std::vector<GenomicRegion> query = {
      {InternChrom("chr1"), 100, 200, Strand::kNone, {}}};
  auto result =
      analysis::BinomialEnrichment(query, annotation, 15000).ValueOrDie();
  EXPECT_NEAR(result.coverage_fraction, 1500.0 / 15000.0, 1e-12);
}

TEST(EnrichmentTest, RejectsBadGenomeSize) {
  EXPECT_FALSE(analysis::BinomialEnrichment({}, {}, 0).ok());
}

// ---------------------------------------------------------- track render --

TEST(TrackRenderTest, RendersRegionsInWindow) {
  std::vector<GenomicRegion> regions = {
      {InternChrom("chr1"), 100, 200, Strand::kNone, {}},
      {InternChrom("chr1"), 150, 300, Strand::kNone, {}},
      {InternChrom("chr2"), 100, 200, Strand::kNone, {}},  // other chrom
  };
  io::TrackWindow window{InternChrom("chr1"), 0, 400, 40};
  io::TrackRenderer renderer(window);
  renderer.AddTrack("peaks", regions);
  std::string out = renderer.Render().ValueOrDie();
  EXPECT_NE(out.find("chr1:0-400"), std::string::npos);
  EXPECT_NE(out.find("peaks"), std::string::npos);
  EXPECT_NE(out.find("="), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);  // depth-2 columns
}

TEST(TrackRenderTest, StrandGlyphs) {
  std::vector<GenomicRegion> regions = {
      {InternChrom("chr1"), 0, 100, Strand::kPlus, {}},
      {InternChrom("chr1"), 200, 300, Strand::kMinus, {}}};
  io::TrackWindow window{InternChrom("chr1"), 0, 400, 40};
  io::TrackRenderer renderer(window);
  renderer.AddTrack("genes", regions);
  std::string out = renderer.Render().ValueOrDie();
  EXPECT_NE(out.find(">"), std::string::npos);
  EXPECT_NE(out.find("<"), std::string::npos);
}

TEST(TrackRenderTest, EmptyWindowRejected) {
  io::TrackRenderer renderer({InternChrom("chr1"), 100, 100, 40});
  EXPECT_FALSE(renderer.Render().ok());
  io::TrackRenderer zero_width({InternChrom("chr1"), 0, 100, 0});
  EXPECT_FALSE(zero_width.Render().ok());
}

TEST(TrackRenderTest, RegionsOutsideWindowIgnored) {
  std::vector<GenomicRegion> regions = {
      {InternChrom("chr1"), 1000, 2000, Strand::kNone, {}}};
  io::TrackWindow window{InternChrom("chr1"), 0, 400, 40};
  io::TrackRenderer renderer(window);
  renderer.AddTrack("t", regions);
  std::string out = renderer.Render().ValueOrDie();
  // Row is all dots.
  EXPECT_EQ(out.find('='), std::string::npos);
}

}  // namespace
}  // namespace gdms
