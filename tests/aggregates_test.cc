// Direct unit tests of the aggregate machinery (MAP/EXTEND/GROUP/COVER all
// share it): every function's definition, NULL handling, and input
// resolution.

#include <cmath>

#include <gtest/gtest.h>

#include "core/aggregates.h"

namespace gdms::core {
namespace {

using gdm::AttrType;
using gdm::Value;

Value RunAgg(AggFunc func, const std::vector<Value>& inputs) {
  AggAccumulator acc(func);
  for (const auto& v : inputs) acc.Add(v);
  return acc.Finish();
}

TEST(AggFuncTest, NamesRoundTrip) {
  for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax, AggFunc::kMedian,
                    AggFunc::kStd, AggFunc::kBag}) {
    EXPECT_EQ(ParseAggFunc(AggFuncName(f)).ValueOrDie(), f);
  }
  EXPECT_EQ(ParseAggFunc("mean").ValueOrDie(), AggFunc::kAvg);
  EXPECT_EQ(ParseAggFunc("stddev").ValueOrDie(), AggFunc::kStd);
  EXPECT_FALSE(ParseAggFunc("mode").ok());
}

TEST(AggFuncTest, OutputTypes) {
  EXPECT_EQ(AggOutputType(AggFunc::kCount), AttrType::kInt);
  EXPECT_EQ(AggOutputType(AggFunc::kBag), AttrType::kString);
  EXPECT_EQ(AggOutputType(AggFunc::kAvg), AttrType::kDouble);
  EXPECT_EQ(AggOutputType(AggFunc::kStd), AttrType::kDouble);
}

TEST(AccumulatorTest, CountCountsEverythingIncludingNulls) {
  EXPECT_EQ(
      RunAgg(AggFunc::kCount, {Value(1.0), Value::Null(), Value("x")}).AsInt(),
      3);
  EXPECT_EQ(RunAgg(AggFunc::kCount, {}).AsInt(), 0);
  // AddRegion path (COUNT without attribute resolution).
  AggAccumulator acc(AggFunc::kCount);
  acc.AddRegion();
  acc.AddRegion();
  EXPECT_EQ(acc.Finish().AsInt(), 2);
}

TEST(AccumulatorTest, SumAvgSkipNulls) {
  std::vector<Value> values = {Value(1.0), Value::Null(), Value(3.0)};
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kSum, values).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kAvg, values).AsDouble(), 2.0);
  // All-NULL input yields NULL, not zero.
  EXPECT_TRUE(RunAgg(AggFunc::kSum, {Value::Null()}).is_null());
  EXPECT_TRUE(RunAgg(AggFunc::kAvg, {}).is_null());
}

TEST(AccumulatorTest, MinMaxTrackExtremes) {
  std::vector<Value> values = {Value(5.0), Value(-2.0), Value(3.0)};
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kMin, values).AsDouble(), -2.0);
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kMax, values).AsDouble(), 5.0);
  // Single value.
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kMin, {Value(7.0)}).AsDouble(), 7.0);
  // Ints convert.
  EXPECT_DOUBLE_EQ(
      RunAgg(AggFunc::kMax, {Value(int64_t{9}), Value(2.5)}).AsDouble(), 9.0);
}

TEST(AccumulatorTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(
      RunAgg(AggFunc::kMedian, {Value(3.0), Value(1.0), Value(2.0)}).AsDouble(),
      2.0);
  EXPECT_DOUBLE_EQ(
      RunAgg(AggFunc::kMedian, {Value(4.0), Value(1.0), Value(2.0), Value(3.0)})
          .AsDouble(),
      2.5);
  EXPECT_TRUE(RunAgg(AggFunc::kMedian, {}).is_null());
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kMedian, {Value(5.0)}).AsDouble(), 5.0);
}

TEST(AccumulatorTest, StdIsSampleStddev) {
  // Values 2, 4, 4, 4, 5, 5, 7, 9: sample stddev = sqrt(32/7).
  std::vector<Value> values;
  for (double v : {2, 4, 4, 4, 5, 5, 7, 9}) values.push_back(Value(v));
  EXPECT_NEAR(RunAgg(AggFunc::kStd, values).AsDouble(), std::sqrt(32.0 / 7.0),
              1e-12);
  // N < 2 degenerates to 0 (or NULL when empty).
  EXPECT_DOUBLE_EQ(RunAgg(AggFunc::kStd, {Value(3.0)}).AsDouble(), 0.0);
  EXPECT_TRUE(RunAgg(AggFunc::kStd, {}).is_null());
}

TEST(AccumulatorTest, BagSortsAndDeduplicates) {
  EXPECT_EQ(
      RunAgg(AggFunc::kBag, {Value("b"), Value("a"), Value("b")}).AsString(),
      "a b");
  // Numeric values render through ToString.
  EXPECT_EQ(RunAgg(AggFunc::kBag, {Value(int64_t{2}), Value(int64_t{10})})
                .AsString(),
            "10 2");  // lexicographic over rendered strings
  EXPECT_TRUE(RunAgg(AggFunc::kBag, {Value::Null()}).is_null());
}

TEST(AccumulatorTest, NumericAggsIgnoreNonNumericStrings) {
  // A string fed into SUM is skipped rather than corrupting the total.
  EXPECT_DOUBLE_EQ(
      RunAgg(AggFunc::kSum, {Value(1.0), Value("oops")}).AsDouble(), 1.0);
}

TEST(ResolveAggInputsTest, ResolvesAndValidates) {
  gdm::RegionSchema schema;
  ASSERT_TRUE(schema.AddAttr("score", AttrType::kDouble).ok());
  std::vector<AggregateSpec> specs = {{"n", AggFunc::kCount, ""},
                                      {"s", AggFunc::kSum, "score"}};
  auto inputs = ResolveAggInputs(specs, schema).ValueOrDie();
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0], SIZE_MAX);  // COUNT needs no attribute
  EXPECT_EQ(inputs[1], 0u);
  specs.push_back({"x", AggFunc::kMax, "ghost"});
  EXPECT_FALSE(ResolveAggInputs(specs, schema).ok());
}

TEST(EvaluateAggregatesTest, SelectsRegionSubset) {
  gdm::RegionSchema schema;
  ASSERT_TRUE(schema.AddAttr("v", AttrType::kDouble).ok());
  std::vector<gdm::GenomicRegion> regions;
  for (int i = 0; i < 5; ++i) {
    gdm::GenomicRegion r(gdm::InternChrom("chr1"), i * 10, i * 10 + 5);
    r.values.push_back(Value(static_cast<double>(i)));
    regions.push_back(std::move(r));
  }
  std::vector<AggregateSpec> specs = {{"n", AggFunc::kCount, ""},
                                      {"s", AggFunc::kSum, "v"}};
  auto inputs = ResolveAggInputs(specs, schema).ValueOrDie();
  // Only regions 1 and 3 selected.
  auto out = EvaluateAggregates(specs, inputs, regions, {1, 3});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].AsInt(), 2);
  EXPECT_DOUBLE_EQ(out[1].AsDouble(), 4.0);
  // Empty selection.
  auto empty = EvaluateAggregates(specs, inputs, regions, {});
  EXPECT_EQ(empty[0].AsInt(), 0);
  EXPECT_TRUE(empty[1].is_null());
}

TEST(AggregateSpecTest, ToStringRendering) {
  AggregateSpec spec{"avg_p", AggFunc::kAvg, "p_value"};
  EXPECT_EQ(spec.ToString(), "avg_p AS AVG(p_value)");
  AggregateSpec count{"n", AggFunc::kCount, ""};
  EXPECT_EQ(count.ToString(), "n AS COUNT");
}

}  // namespace
}  // namespace gdms::core
