#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace gdms {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::ParseError("x"); };
  auto outer = [&]() -> Result<int> {
    GDMS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kParseError);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a   b \t c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, JoinAndCase) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("chr12", "chr"));
  EXPECT_TRUE(EndsWith("x.bed", ".bed"));
  EXPECT_FALSE(EndsWith("bed", "x.bed"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("123").ValueOrDie(), 123);
  EXPECT_EQ(ParseInt64(" -5 ").ValueOrDie(), -5);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").ValueOrDie(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("1e-3").ValueOrDie(), 1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtilTest, HumanBytesAndThousands) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(WithThousands(83899526), "83,899,526");
  EXPECT_EQ(WithThousands(7), "7");
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(3);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(4);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    counts[v]++;
  }
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // With more outer items than workers, every worker can be inside an outer
  // body when the inner ParallelFor starts; completion must not depend on a
  // queued helper task ever running (the caller drains its own batch).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.ParallelFor(16, [&](size_t i) {
    pool.ParallelFor(16, [&](size_t j) { hits[i * 16 + j].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForManyMoreItemsThanThreads) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10000, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), uint64_t{10000} * 9999 / 2);
}

TEST(FirstErrorTest, KeepsFirstFailureOnly) {
  FirstError err;
  EXPECT_FALSE(err.failed());
  EXPECT_TRUE(err.status().ok());
  err.Capture(Status::OK());
  EXPECT_FALSE(err.failed());
  err.Capture(Status::InvalidArgument("first"));
  err.Capture(Status::Internal("second"));
  EXPECT_TRUE(err.failed());
  EXPECT_EQ(err.status().message(), "first");
}

TEST(FirstErrorTest, ConcurrentCaptureIsSingleWinner) {
  ThreadPool pool(4);
  FirstError err;
  pool.ParallelFor(200, [&](size_t i) {
    err.Capture(Status::Internal("e" + std::to_string(i)));
  });
  EXPECT_TRUE(err.failed());
  // Exactly one of the captured statuses won; all racers see a failure.
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
  EXPECT_EQ(err.status().message().rfind("e", 0), 0u);
}

}  // namespace
}  // namespace gdms
