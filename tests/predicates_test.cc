// Direct unit tests of the predicate and expression trees used by SELECT
// and PROJECT: comparison semantics, composition, binding, and cloning.

#include <gtest/gtest.h>

#include "core/predicates.h"

namespace gdms::core {
namespace {

using gdm::AttrType;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::Metadata;
using gdm::RegionSchema;
using gdm::Strand;
using gdm::Value;

// -------------------------------------------------------- MetaPredicate ---

TEST(MetaPredicateTest, NumericAwareComparison) {
  Metadata meta;
  meta.Add("quality", "9");
  // "9" vs "10": numeric comparison says 9 < 10 (string would say "9" > "10").
  EXPECT_TRUE(MetaPredicate::Compare("quality", CmpOp::kLt, "10")->Eval(meta));
  EXPECT_FALSE(MetaPredicate::Compare("quality", CmpOp::kGt, "10")->Eval(meta));
  // Non-numeric falls back to string ordering.
  Metadata text;
  text.Add("cell", "K562");
  EXPECT_TRUE(MetaPredicate::Compare("cell", CmpOp::kGt, "A549")->Eval(text));
}

TEST(MetaPredicateTest, MultiValuedAnySemantics) {
  Metadata meta;
  meta.Add("antibody", "CTCF");
  meta.Add("antibody", "POLR2A");
  // Equality holds if ANY value matches.
  EXPECT_TRUE(
      MetaPredicate::Compare("antibody", CmpOp::kEq, "POLR2A")->Eval(meta));
  // != also holds if ANY value differs -- the GMQL existential reading.
  EXPECT_TRUE(
      MetaPredicate::Compare("antibody", CmpOp::kNe, "CTCF")->Eval(meta));
  // Missing attribute: no value satisfies anything.
  EXPECT_FALSE(MetaPredicate::Compare("ghost", CmpOp::kEq, "x")->Eval(meta));
  EXPECT_FALSE(MetaPredicate::Compare("ghost", CmpOp::kNe, "x")->Eval(meta));
}

TEST(MetaPredicateTest, Composition) {
  Metadata meta;
  meta.Add("a", "1");
  meta.Add("b", "2");
  auto a1 = MetaPredicate::Compare("a", CmpOp::kEq, "1");
  auto b3 = MetaPredicate::Compare("b", CmpOp::kEq, "3");
  EXPECT_FALSE(MetaPredicate::And(a1, b3)->Eval(meta));
  EXPECT_TRUE(MetaPredicate::Or(a1, b3)->Eval(meta));
  EXPECT_TRUE(MetaPredicate::Not(b3)->Eval(meta));
  EXPECT_TRUE(MetaPredicate::Exists("b")->Eval(meta));
  EXPECT_FALSE(MetaPredicate::Exists("c")->Eval(meta));
  EXPECT_TRUE(MetaPredicate::True()->Eval(meta));
}

TEST(MetaPredicateTest, CanonicalRendering) {
  auto p = MetaPredicate::And(MetaPredicate::Compare("a", CmpOp::kLe, "5"),
                              MetaPredicate::Not(MetaPredicate::Exists("b")));
  EXPECT_EQ(p->ToString(), "(a <= '5' AND NOT exists(b))");
}

// ------------------------------------------------------ RegionPredicate ---

RegionSchema ScoreSchema() {
  RegionSchema s;
  EXPECT_TRUE(s.AddAttr("score", AttrType::kDouble).ok());
  EXPECT_TRUE(s.AddAttr("tag", AttrType::kString).ok());
  return s;
}

GenomicRegion TestRegion() {
  GenomicRegion r(InternChrom("chr2"), 100, 250, Strand::kMinus);
  r.values = {Value(7.5), Value("enhancer")};
  return r;
}

TEST(RegionPredicateTest, FixedAttributes) {
  RegionSchema schema = ScoreSchema();
  GenomicRegion r = TestRegion();
  auto check = [&](RegionPredicate::Ptr p) {
    EXPECT_TRUE(p->Bind(schema).ok());
    return p->Eval(r);
  };
  EXPECT_TRUE(
      check(RegionPredicate::Compare("chr", CmpOp::kEq, Value("chr2"))));
  EXPECT_FALSE(
      check(RegionPredicate::Compare("chr", CmpOp::kEq, Value("chr1"))));
  EXPECT_TRUE(check(
      RegionPredicate::Compare("left", CmpOp::kGe, Value(int64_t{100}))));
  EXPECT_TRUE(check(
      RegionPredicate::Compare("right", CmpOp::kLt, Value(int64_t{251}))));
  EXPECT_TRUE(
      check(RegionPredicate::Compare("strand", CmpOp::kEq, Value("-"))));
  // Aliases start/stop.
  EXPECT_TRUE(check(
      RegionPredicate::Compare("start", CmpOp::kEq, Value(int64_t{100}))));
  EXPECT_TRUE(check(
      RegionPredicate::Compare("stop", CmpOp::kEq, Value(int64_t{250}))));
}

TEST(RegionPredicateTest, VariableAttributesAndNulls) {
  RegionSchema schema = ScoreSchema();
  GenomicRegion r = TestRegion();
  auto p = RegionPredicate::Compare("score", CmpOp::kGt, Value(5.0));
  ASSERT_TRUE(p->Bind(schema).ok());
  EXPECT_TRUE(p->Eval(r));
  // NULL attribute makes every comparison false (SQL semantics).
  r.values[0] = Value::Null();
  EXPECT_FALSE(p->Eval(r));
  auto ne = RegionPredicate::Compare("score", CmpOp::kNe, Value(5.0));
  ASSERT_TRUE(ne->Bind(schema).ok());
  EXPECT_FALSE(ne->Eval(r));
}

TEST(RegionPredicateTest, BindFailsOnUnknownAttr) {
  auto p = RegionPredicate::Compare("ghost", CmpOp::kEq, Value(1.0));
  EXPECT_FALSE(p->Bind(ScoreSchema()).ok());
}

TEST(RegionPredicateTest, CloneIsolatesBindingState) {
  // Two schemas place "score" at different indexes; clones bound to each
  // must evaluate against their own schema.
  RegionSchema schema_a;
  ASSERT_TRUE(schema_a.AddAttr("score", AttrType::kDouble).ok());
  RegionSchema schema_b;
  ASSERT_TRUE(schema_b.AddAttr("other", AttrType::kString).ok());
  ASSERT_TRUE(schema_b.AddAttr("score", AttrType::kDouble).ok());
  auto base = RegionPredicate::Compare("score", CmpOp::kGt, Value(5.0));
  auto clone_a = base->Clone();
  auto clone_b = base->Clone();
  ASSERT_TRUE(clone_a->Bind(schema_a).ok());
  ASSERT_TRUE(clone_b->Bind(schema_b).ok());
  GenomicRegion ra(InternChrom("chr1"), 0, 1);
  ra.values = {Value(9.0)};
  GenomicRegion rb(InternChrom("chr1"), 0, 1);
  rb.values = {Value("x"), Value(9.0)};
  EXPECT_TRUE(clone_a->Eval(ra));
  EXPECT_TRUE(clone_b->Eval(rb));
}

TEST(RegionPredicateTest, BooleanComposition) {
  RegionSchema schema = ScoreSchema();
  GenomicRegion r = TestRegion();
  auto p = RegionPredicate::And(
      RegionPredicate::Compare("score", CmpOp::kGt, Value(5.0)),
      RegionPredicate::Not(
          RegionPredicate::Compare("tag", CmpOp::kEq, Value("promoter"))));
  ASSERT_TRUE(p->Bind(schema).ok());
  EXPECT_TRUE(p->Eval(r));
  auto q = RegionPredicate::Or(
      RegionPredicate::Compare("score", CmpOp::kLt, Value(0.0)),
      RegionPredicate::Compare("tag", CmpOp::kEq, Value("enhancer")));
  ASSERT_TRUE(q->Bind(schema).ok());
  EXPECT_TRUE(q->Eval(r));
}

// ------------------------------------------------------------ RegionExpr --

TEST(RegionExprTest, DerivedAttributes) {
  RegionSchema schema = ScoreSchema();
  GenomicRegion r = TestRegion();
  auto eval = [&](RegionExpr::Ptr e) {
    EXPECT_TRUE(e->Bind(schema).ok());
    return e->Eval(r);
  };
  EXPECT_EQ(eval(RegionExpr::Attr("left")).AsInt(), 100);
  EXPECT_EQ(eval(RegionExpr::Attr("right")).AsInt(), 250);
  EXPECT_EQ(eval(RegionExpr::Attr("len")).AsInt(), 150);
  EXPECT_EQ(eval(RegionExpr::Attr("strand")).AsString(), "-");
  EXPECT_EQ(eval(RegionExpr::Attr("chr")).AsString(), "chr2");
  EXPECT_DOUBLE_EQ(eval(RegionExpr::Attr("score")).AsDouble(), 7.5);
}

TEST(RegionExprTest, ArithmeticAndTypes) {
  RegionSchema schema = ScoreSchema();
  GenomicRegion r = TestRegion();
  auto mid = RegionExpr::Binary(
      '/',
      RegionExpr::Binary('+', RegionExpr::Attr("left"),
                         RegionExpr::Attr("right")),
      RegionExpr::Constant(Value(2.0)));
  ASSERT_TRUE(mid->Bind(schema).ok());
  EXPECT_DOUBLE_EQ(mid->Eval(r).AsDouble(), 175.0);
  EXPECT_EQ(mid->OutputType(schema), AttrType::kDouble);
  EXPECT_EQ(RegionExpr::Attr("len")->OutputType(schema), AttrType::kInt);
  EXPECT_EQ(RegionExpr::Attr("score")->OutputType(schema), AttrType::kDouble);
  // Arithmetic over a string operand yields NULL, not a crash.
  auto bad = RegionExpr::Binary('*', RegionExpr::Attr("tag"),
                                RegionExpr::Constant(Value(2.0)));
  ASSERT_TRUE(bad->Bind(schema).ok());
  EXPECT_TRUE(bad->Eval(r).is_null());
}

TEST(RegionExprTest, CloneThenBindIndependently) {
  auto base = RegionExpr::Binary('-', RegionExpr::Attr("right"),
                                 RegionExpr::Attr("left"));
  auto clone = base->Clone();
  RegionSchema schema = ScoreSchema();
  ASSERT_TRUE(clone->Bind(schema).ok());
  GenomicRegion r = TestRegion();
  EXPECT_DOUBLE_EQ(clone->Eval(r).AsDouble(), 150.0);
  EXPECT_EQ(clone->ToString(), "(right - left)");
}

}  // namespace
}  // namespace gdms::core
