#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/parser.h"
#include "core/runner.h"
#include "gdm/dataset.h"
#include "sim/generators.h"

namespace gdms::core {
namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

Dataset TinyEncode() {
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("p_value", AttrType::kDouble).ok());
  Dataset ds("ENCODE", schema);
  int32_t c1 = InternChrom("chr1");
  Sample s1(1);
  s1.metadata.Add("dataType", "ChipSeq");
  s1.metadata.Add("antibody", "CTCF");
  s1.regions = {{c1, 100, 300, Strand::kNone, {Value(1e-5)}},
                {c1, 1000, 1300, Strand::kNone, {Value(1e-6)}}};
  Sample s2(2);
  s2.metadata.Add("dataType", "ChipSeq");
  s2.metadata.Add("antibody", "POLR2A");
  s2.regions = {{c1, 150, 250, Strand::kNone, {Value(1e-3)}}};
  Sample s3(3);
  s3.metadata.Add("dataType", "DnaSeq");
  s3.regions = {{c1, 0, 5000, Strand::kNone, {Value(0.5)}}};
  for (auto* s : {&s1, &s2, &s3}) s->SortNow();
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  ds.AddSample(std::move(s3));
  return ds;
}

Dataset TinyAnnotations() {
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("name", AttrType::kString).ok());
  Dataset ds("ANNOTATIONS", schema);
  int32_t c1 = InternChrom("chr1");
  Sample proms(11);
  proms.metadata.Add("annType", "promoter");
  proms.regions = {{c1, 50, 350, Strand::kNone, {Value("p1")}},
                   {c1, 900, 1100, Strand::kNone, {Value("p2")}}};
  Sample genes(12);
  genes.metadata.Add("annType", "gene");
  genes.regions = {{c1, 350, 900, Strand::kPlus, {Value("g1")}}};
  proms.SortNow();
  genes.SortNow();
  ds.AddSample(std::move(proms));
  ds.AddSample(std::move(genes));
  return ds;
}

QueryRunner MakeRunner() {
  QueryRunner runner;
  runner.RegisterDataset(TinyEncode());
  runner.RegisterDataset(TinyAnnotations());
  return runner;
}

// ---------------------------------------------------------------- parser --

TEST(ParserTest, Section2QueryParses) {
  auto program = Parser::Parse(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "MATERIALIZE RESULT;\n");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().sinks.size(), 1u);
  const auto& sink = *program.value().sinks[0];
  EXPECT_EQ(sink.kind, OpKind::kMaterialize);
  EXPECT_EQ(sink.name, "RESULT");
  EXPECT_EQ(sink.children[0]->kind, OpKind::kMap);
}

TEST(ParserTest, ImplicitMaterializeOfLastVariable) {
  auto program =
      Parser::Parse("X = SELECT(a == 'b') D;").ValueOrDie();
  ASSERT_EQ(program.sinks.size(), 1u);
  EXPECT_EQ(program.sinks[0]->name, "X");
}

TEST(ParserTest, CommentsAndCaseInsensitiveKeywords) {
  auto program = Parser::Parse(
      "# full pipeline\n"
      "x = select(a == 'b') D;  # trailing\n"
      "materialize x;\n");
  EXPECT_TRUE(program.ok());
}

TEST(ParserTest, RegionPredicateClause) {
  auto program = Parser::Parse(
      "X = SELECT(dataType == 'ChipSeq'; region: p_value <= 0.001 AND chr == "
      "'chr1') ENCODE;").ValueOrDie();
  const auto& sel = program.sinks[0]->children[0];
  EXPECT_EQ(sel->kind, OpKind::kSelect);
  EXPECT_NE(sel->select.region->ToString(), "true");
}

TEST(ParserTest, RegionOnlySelect) {
  auto program =
      Parser::Parse("X = SELECT(region: left >= 1000) ENCODE;").ValueOrDie();
  EXPECT_EQ(program.sinks[0]->children[0]->select.meta->ToString(), "true");
}

TEST(ParserTest, JoinGrammar) {
  auto program = Parser::Parse(
      "X = JOIN(DLE(10000) AND DGE(100) AND UP; LEFT; joinby: cell) A B;")
      .ValueOrDie();
  const auto& j = program.sinks[0]->children[0];
  ASSERT_EQ(j->kind, OpKind::kJoin);
  EXPECT_EQ(j->join.predicate.max_dist, 10000);
  EXPECT_EQ(j->join.predicate.min_dist, 100);
  EXPECT_TRUE(j->join.predicate.upstream);
  EXPECT_EQ(j->join.output, JoinOutput::kLeft);
  ASSERT_EQ(j->join.joinby.size(), 1u);
}

TEST(ParserTest, JoinMdAndStrictAtoms) {
  auto program =
      Parser::Parse("X = JOIN(MD(3) AND DLT(500) AND DGT(0); INT) A B;")
          .ValueOrDie();
  const auto& j = program.sinks[0]->children[0];
  EXPECT_EQ(j->join.predicate.md_k, 3);
  EXPECT_EQ(j->join.predicate.max_dist, 499);  // DLT exclusive
  EXPECT_EQ(j->join.predicate.min_dist, 1);    // DGT exclusive
  EXPECT_EQ(j->join.output, JoinOutput::kIntersection);
}

TEST(ParserTest, CoverBounds) {
  auto program =
      Parser::Parse("X = COVER(2, ANY) D; Y = HISTOGRAM(1, ALL) D; "
                    "MATERIALIZE X; MATERIALIZE Y;")
          .ValueOrDie();
  ASSERT_EQ(program.sinks.size(), 2u);
  EXPECT_EQ(program.sinks[0]->children[0]->cover.min_acc, 2);
  EXPECT_EQ(program.sinks[0]->children[0]->cover.max_acc, -1);
  EXPECT_EQ(program.sinks[1]->children[0]->cover.variant,
            CoverVariant::kHistogram);
  EXPECT_EQ(program.sinks[1]->children[0]->cover.max_acc, -2);
}

TEST(ParserTest, ProjectGrammar) {
  auto program = Parser::Parse(
      "X = PROJECT(p_value; reg_len AS right - left, half AS p_value / 2) "
      "ENCODE;").ValueOrDie();
  const auto& p = program.sinks[0]->children[0];
  ASSERT_EQ(p->kind, OpKind::kProject);
  ASSERT_EQ(p->project.keep_attrs.size(), 1u);
  ASSERT_EQ(p->project.new_attrs.size(), 2u);
}

TEST(ParserTest, ProjectMetaClause) {
  auto program = Parser::Parse("X = PROJECT(*; meta: cell, antibody) ENCODE;")
                     .ValueOrDie();
  const auto& p = program.sinks[0]->children[0];
  EXPECT_FALSE(p->project.meta_all);
  ASSERT_EQ(p->project.keep_meta.size(), 2u);
  EXPECT_EQ(p->project.keep_meta[1], "antibody");
}

TEST(ParserTest, OrderRegionClause) {
  auto program = Parser::Parse(
      "X = ORDER(quality DESC; TOP 3; region: p_value; TOP 10) D;");
  EXPECT_FALSE(program.ok());  // region TOP belongs inside the clause
  auto good = Parser::Parse(
      "X = ORDER(quality DESC; TOP 3; region: p_value TOP 10) D;").ValueOrDie();
  const auto& o = good.sinks[0]->children[0];
  EXPECT_EQ(o->order.top, 3u);
  EXPECT_EQ(o->order.region_attr, "p_value");
  EXPECT_EQ(o->order.region_top, 10u);
  EXPECT_FALSE(o->order.region_descending);
}

TEST(RunnerTest, ProjectMetaClauseFiltersMetadata) {
  QueryRunner runner = MakeRunner();
  auto results = runner.Run(
      "X = PROJECT(*; meta: antibody) ENCODE;\nMATERIALIZE X;\n").ValueOrDie();
  const Dataset& x = results.at("X");
  for (const auto& s : x.samples()) {
    for (const auto& e : s.metadata.entries()) {
      EXPECT_EQ(e.attr, "antibody");
    }
  }
  // Sample 1 and 2 carry antibody; sample 3 (DnaSeq) does not.
  EXPECT_FALSE(x.sample(0).metadata.empty());
}

TEST(RunnerTest, OrderRegionTopKeepsBestRegions) {
  QueryRunner runner = MakeRunner();
  auto results = runner.Run(
      "X = ORDER(dataType; region: p_value TOP 1) ENCODE;\n"
      "MATERIALIZE X;\n").ValueOrDie();
  const Dataset& x = results.at("X");
  ASSERT_EQ(x.num_samples(), 3u);
  size_t pv = *x.schema().IndexOf("p_value");
  // Each sample keeps exactly its single smallest-p region.
  for (const auto& s : x.samples()) {
    ASSERT_LE(s.regions.size(), 1u);
  }
  // Sample 1's regions had p-values 1e-5 and 1e-6; the kept one is 1e-6.
  const auto* s1 = x.FindSample(1);
  ASSERT_NE(s1, nullptr);
  ASSERT_EQ(s1->regions.size(), 1u);
  EXPECT_DOUBLE_EQ(s1->regions[0].values[pv].AsDouble(), 1e-6);
}

TEST(ParserTest, ExtendOrderGroupMergeUnionDifference) {
  auto program = Parser::Parse(
      "A = EXTEND(n AS COUNT, m AS MAX(p_value)) ENCODE;\n"
      "B = ORDER(n DESC; TOP 5) A;\n"
      "C = GROUP(antibody; total AS SUM(p_value)) B;\n"
      "D = MERGE(groupby: cell) C;\n"
      "E = UNION() D A;\n"
      "F = DIFFERENCE(joinby: cell) E A;\n"
      "MATERIALIZE F;\n").ValueOrDie();
  EXPECT_EQ(program.sinks.size(), 1u);
  const PlanNode* n = program.sinks[0].get();
  EXPECT_EQ(n->children[0]->kind, OpKind::kDifference);
}

TEST(ParserTest, VariableReuseSharesSubtree) {
  auto program = Parser::Parse(
      "X = SELECT(a == 'b') D;\n"
      "Y = MAP() X E;\n"
      "Z = MAP() X F;\n"
      "MATERIALIZE Y; MATERIALIZE Z;\n").ValueOrDie();
  EXPECT_EQ(program.sinks[0]->children[0]->children[0].get(),
            program.sinks[1]->children[0]->children[0].get());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parser::Parse("X = BOGUS() D;").ok());
  EXPECT_FALSE(Parser::Parse("X = SELECT(a == 'b') D").ok());  // no ';'
  EXPECT_FALSE(Parser::Parse("MATERIALIZE NOWHERE;").ok());
  // A lower-bound-only join parses fine; it is rejected at execution time.
  EXPECT_TRUE(Parser::Parse("X = JOIN(DGE(5); LEFT) A B;").ok());
  EXPECT_FALSE(Parser::Parse("X = MAP(n AS SUM) A B;").ok());  // SUM needs attr
  EXPECT_FALSE(Parser::Parse("X = COVER(2) D;").ok());         // missing max
  EXPECT_FALSE(Parser::Parse("X = SELECT(a == ) D;").ok());
  EXPECT_FALSE(Parser::Parse("X = SELECT(a == 'unterminated) D;").ok());
}

// ------------------------------------------------------------- optimizer --

TEST(OptimizerTest, FusesConsecutiveSelects) {
  auto program = Parser::Parse(
      "A = SELECT(x == '1') D;\n"
      "B = SELECT(y == '2') A;\n"
      "MATERIALIZE B;\n").ValueOrDie();
  auto stats = Optimizer::Optimize(&program);
  EXPECT_EQ(stats.selects_fused, 1u);
  const auto& sel = program.sinks[0]->children[0];
  EXPECT_EQ(sel->kind, OpKind::kSelect);
  EXPECT_EQ(sel->children[0]->kind, OpKind::kSource);
}

TEST(OptimizerTest, TripleSelectFusionKeepsAllPredicates) {
  // Regression: fusing three stacked SELECTs once resurrected a stale memo
  // entry (freed node address reuse) and dropped the outermost predicate.
  auto program = Parser::Parse(
      "A = SELECT(x == '1') D;\n"
      "B = SELECT(y == '2') A;\n"
      "C = SELECT(region: left > 5) B;\n"
      "MATERIALIZE C;\n").ValueOrDie();
  auto stats = Optimizer::Optimize(&program);
  EXPECT_EQ(stats.selects_fused, 2u);
  const auto& fused = program.sinks[0]->children[0];
  ASSERT_EQ(fused->kind, OpKind::kSelect);
  EXPECT_EQ(fused->children[0]->kind, OpKind::kSource);
  std::string sig = fused->Signature();
  EXPECT_NE(sig.find("x == '1'"), std::string::npos);
  EXPECT_NE(sig.find("y == '2'"), std::string::npos);
  EXPECT_NE(sig.find("left > 5"), std::string::npos);
}

TEST(OptimizerTest, PushesMetaSelectThroughUnion) {
  auto program = Parser::Parse(
      "U = UNION() A B;\n"
      "S = SELECT(x == '1') U;\n"
      "MATERIALIZE S;\n").ValueOrDie();
  auto stats = Optimizer::Optimize(&program);
  EXPECT_EQ(stats.selects_pushed_through_union, 1u);
  const auto& u = program.sinks[0]->children[0];
  EXPECT_EQ(u->kind, OpKind::kUnion);
  EXPECT_EQ(u->children[0]->kind, OpKind::kSelect);
}

TEST(OptimizerTest, RegionSelectNotPushed) {
  auto program = Parser::Parse(
      "U = UNION() A B;\n"
      "S = SELECT(region: left > 5) U;\n"
      "MATERIALIZE S;\n").ValueOrDie();
  auto stats = Optimizer::Optimize(&program);
  EXPECT_EQ(stats.selects_pushed_through_union, 0u);
}

TEST(OptimizerTest, CseCollapsesIdenticalSubplans) {
  auto program = Parser::Parse(
      "A = SELECT(x == '1') D;\n"
      "B = SELECT(x == '1') D;\n"
      "M = MAP() A E;\n"
      "N = MAP() B E;\n"
      "MATERIALIZE M; MATERIALIZE N;\n").ValueOrDie();
  auto stats = Optimizer::Optimize(&program);
  EXPECT_GE(stats.nodes_deduplicated, 1u);
  EXPECT_EQ(program.sinks[0]->children[0]->children[0].get(),
            program.sinks[1]->children[0]->children[0].get());
}

// ---------------------------------------------------------------- runner --

TEST(RunnerTest, Section2QueryEndToEnd) {
  QueryRunner runner = MakeRunner();
  auto results = runner.Run(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "MATERIALIZE RESULT;\n").ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  const Dataset& result = results.at("RESULT");
  // 1 promoter sample x 2 ChipSeq samples.
  ASSERT_EQ(result.num_samples(), 2u);
  ASSERT_TRUE(result.schema().Contains("peak_count"));
  size_t pc = *result.schema().IndexOf("peak_count");
  // Sample vs CTCF (regions 100-300, 1000-1300): p1 (50-350) count 1,
  // p2 (900-1100) count 1. Vs POLR2A (150-250): p1 count 1, p2 count 0.
  const auto& s1 = result.sample(0);
  ASSERT_EQ(s1.regions.size(), 2u);
  EXPECT_EQ(s1.regions[0].values[pc + 0].AsInt() +
                s1.regions[1].values[pc].AsInt(),
            2);
  const auto& s2 = result.sample(1);
  EXPECT_EQ(s2.regions[0].values[pc].AsInt() + s2.regions[1].values[pc].AsInt(),
            1);
  EXPECT_TRUE(result.Validate().ok());
}

TEST(RunnerTest, UnknownDatasetErrors) {
  QueryRunner runner = MakeRunner();
  auto r = runner.Run("X = SELECT(a == 'b') GHOST;");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RunnerTest, MemoizationCountsCacheHits) {
  QueryRunner runner = MakeRunner();
  runner.set_optimize(true);
  auto results = runner.Run(
      "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "X = MAP() A A;\n"
      "MATERIALIZE X;\n").ValueOrDie();
  (void)results;
  // The optimizer collapses the two A references; the second evaluation is
  // a cache hit.
  EXPECT_GE(runner.last_stats().cache_hits, 1u);
}

TEST(RunnerTest, OptimizeOffStillCorrect) {
  QueryRunner on = MakeRunner();
  QueryRunner off = MakeRunner();
  off.set_optimize(false);
  const char* query =
      "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "B = SELECT(antibody == 'CTCF') A;\n"
      "MATERIALIZE B;\n";
  Dataset a = on.Run(query).ValueOrDie().at("B");
  Dataset b = off.Run(query).ValueOrDie().at("B");
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_samples(), 1u);
  EXPECT_EQ(a.TotalRegions(), b.TotalRegions());
}

TEST(RunnerTest, MultipleSinks) {
  QueryRunner runner = MakeRunner();
  auto results = runner.Run(
      "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "C = COVER(1, ANY) A;\n"
      "MATERIALIZE A; MATERIALIZE C;\n").ValueOrDie();
  EXPECT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.count("A"));
  EXPECT_TRUE(results.count("C"));
}

TEST(RunnerTest, MaterializeInto) {
  QueryRunner runner = MakeRunner();
  auto results = runner.Run(
      "A = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "MATERIALIZE A INTO chipseq_only;\n").ValueOrDie();
  EXPECT_TRUE(results.count("chipseq_only"));
  EXPECT_EQ(results.at("chipseq_only").name(), "chipseq_only");
}

TEST(RunnerTest, FullPipelineOnSyntheticData) {
  // End-to-end over generator output: select, cover, map, order.
  auto genome = gdm::GenomeAssembly::HumanLike(4, 50000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 6;
  popt.peaks_per_sample = 500;
  QueryRunner runner;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 42));
  auto catalog = sim::GenerateGenes(genome, 300, 42);
  runner.RegisterDataset(
      sim::GenerateAnnotations(genome, catalog, {}, 42));
  auto results = runner.Run(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "CONSENSUS = COVER(2, ANY) PEAKS;\n"
      "MAPPED = MAP(n AS COUNT, avg_sig AS AVG(signal)) PROMS PEAKS;\n"
      "RANKED = ORDER(antibody; TOP 3) MAPPED;\n"
      "MATERIALIZE CONSENSUS; MATERIALIZE RANKED;\n").ValueOrDie();
  const Dataset& consensus = results.at("CONSENSUS");
  ASSERT_EQ(consensus.num_samples(), 1u);
  EXPECT_GT(consensus.sample(0).regions.size(), 0u);
  const Dataset& ranked = results.at("RANKED");
  EXPECT_EQ(ranked.num_samples(), 3u);
  EXPECT_TRUE(ranked.Validate().ok());
  EXPECT_TRUE(consensus.Validate().ok());
}

}  // namespace
}  // namespace gdms::core
