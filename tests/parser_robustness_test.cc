// Robustness of the GMQL parser: malformed inputs must produce ParseError
// statuses — never crashes, hangs, or silent acceptance — including
// pseudo-random token soup.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/parser.h"

namespace gdms::core {
namespace {

void ExpectRejected(const std::string& text) {
  auto result = Parser::Parse(text);
  EXPECT_FALSE(result.ok()) << "accepted: " << text;
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
  }
}

TEST(ParserRobustnessTest, StructurallyBrokenStatements) {
  ExpectRejected("X =");
  ExpectRejected("= SELECT(a == 'b') D;");
  ExpectRejected("X = SELECT(a == 'b' D;");
  ExpectRejected("X = SELECT a == 'b') D;");
  ExpectRejected("X = SELECT(a == 'b') ;");
  ExpectRejected("X = SELECT(a == 'b') D E F;");  // stray extra operand
  ExpectRejected("X == SELECT(a == 'b') D;");
  ExpectRejected(";");
  ExpectRejected("X = ;");
  ExpectRejected("MATERIALIZE;");
}

TEST(ParserRobustnessTest, PredicateGarbage) {
  ExpectRejected("X = SELECT(== 'b') D;");
  ExpectRejected("X = SELECT(a ==) D;");
  ExpectRejected("X = SELECT(a == 'b' AND) D;");
  ExpectRejected("X = SELECT(a == 'b' OR OR c == 'd') D;");
  ExpectRejected("X = SELECT(NOT) D;");
  ExpectRejected("X = SELECT((a == 'b') D;");
  ExpectRejected("X = SELECT(region: left >=) D;");
  ExpectRejected("X = SELECT(region: ) D;");
}

TEST(ParserRobustnessTest, OperatorParameterGarbage) {
  ExpectRejected("X = MAP(n AS) A B;");
  ExpectRejected("X = MAP(n COUNT) A B;");
  ExpectRejected("X = MAP(n AS BOGUSFUNC) A B;");
  ExpectRejected("X = JOIN(; LEFT) A B;");
  ExpectRejected("X = JOIN(DLE(); LEFT) A B;");
  ExpectRejected("X = JOIN(DLE(5); SIDEWAYS) A B;");
  ExpectRejected("X = JOIN(MD(0); LEFT) A B;");
  ExpectRejected("X = COVER(ANY) D;");
  ExpectRejected("X = COVER(1, 2, 3) D;");
  ExpectRejected("X = ORDER(; TOP 3) D;");
  ExpectRejected("X = ORDER(a; TOP -3) D;");
  ExpectRejected("X = ORDER(a; region: b TOP 0) D;");
  ExpectRejected("X = PROJECT(a; b) D;");  // new attr without AS
  ExpectRejected("X = SEMIJOIN() A B;");
  ExpectRejected("X = EXTEND() D;");
  ExpectRejected("X = GROUP() D;");
}

TEST(ParserRobustnessTest, LexicalGarbage) {
  ExpectRejected("X = SELECT(a == 'unterminated) D;");
  ExpectRejected("X = SELECT(a == $) D;");
  ExpectRejected("@#%");
  ExpectRejected("X = SELECT(a == 'b') D; trailing tokens");
}

TEST(ParserRobustnessTest, EmptyAndCommentOnlyPrograms) {
  // An empty program has nothing to materialize -- accepted with no sinks.
  auto empty = Parser::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().sinks.empty());
  auto comments = Parser::Parse("# just a comment\n# another\n");
  ASSERT_TRUE(comments.ok());
  EXPECT_TRUE(comments.value().sinks.empty());
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "SELECT",  "MAP",    "JOIN",   "(",       ")",    ";",   "==",
      "'x'",     "AND",    "OR",     "NOT",     "DLE",  "MD",  "123",
      "-5",      "TOP",    "AS",     "COUNT",   ",",    "=",   "region",
      ":",       "D",      "COVER",  "ANY",     "ALL",  "*",   "+",
      "joinby",  "<",      ">=",     "left",    "\"y\"", ".",  "_v",
      "MATERIALIZE", "INTO",
  };
  Rng rng(2024);
  for (int round = 0; round < 500; ++round) {
    std::string program;
    size_t tokens = 1 + rng.Next() % 30;
    for (size_t t = 0; t < tokens; ++t) {
      program += kFragments[rng.Next() % (sizeof(kFragments) / sizeof(char*))];
      program += " ";
    }
    // Must terminate and return either ok or a ParseError -- never crash.
    auto result = Parser::Parse(program);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << program;
    }
  }
}

TEST(ParserRobustnessTest, DeeplyNestedPredicates) {
  std::string pred = "a == 'b'";
  for (int i = 0; i < 200; ++i) pred = "(" + pred + " AND c == 'd')";
  auto result = Parser::Parse("X = SELECT(" + pred + ") D;");
  EXPECT_TRUE(result.ok());
}

TEST(ParserRobustnessTest, LongPrograms) {
  std::string program;
  for (int i = 0; i < 500; ++i) {
    program += "V" + std::to_string(i) + " = SELECT(a == '" +
               std::to_string(i) + "') D;\n";
  }
  program += "MATERIALIZE V499;\n";
  auto result = Parser::Parse(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().sinks.size(), 1u);
}

}  // namespace
}  // namespace gdms::core
