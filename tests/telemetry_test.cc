// Tests for the continuous-telemetry pipeline: TimeSeries ring buffer,
// Sampler-derived rate/quantile series, Prometheus-style exposition and the
// structured JSONL query log. Labelled `tsan` in CMake — the concurrency
// tests (sampler vs. mutators, ring writer vs. readers) are what the
// thread-sanitized CI job exists to check.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/generators.h"

namespace gdms::obs {
namespace {

/// Turns the global tracer on for one test and leaves it clean afterwards.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  ~ScopedTracing() {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }
};

// ---------------------------------------------------------- time series ---

TEST(TimeSeriesTest, PushAndSnapshotInOrder) {
  TimeSeries ts(8);
  for (int i = 0; i < 5; ++i) ts.Push(i * 10, i * 1.5);
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.total_pushed(), 5u);
  EXPECT_DOUBLE_EQ(ts.last(), 6.0);
  auto points = ts.Snapshot();
  ASSERT_EQ(points.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(points[i].t_ns, i * 10);
    EXPECT_DOUBLE_EQ(points[i].value, i * 1.5);
  }
}

TEST(TimeSeriesTest, WrapAroundKeepsNewestPoints) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.Push(i, i);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.capacity(), 4u);
  EXPECT_EQ(ts.total_pushed(), 10u);
  auto points = ts.Snapshot();
  ASSERT_EQ(points.size(), 4u);
  // Oldest-to-newest suffix: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(points[i].t_ns, 6 + i);
    EXPECT_DOUBLE_EQ(points[i].value, 6.0 + i);
  }
  EXPECT_DOUBLE_EQ(ts.last(), 9.0);
}

TEST(TimeSeriesTest, EmptyAndZeroCapacity) {
  TimeSeries empty(8);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.Snapshot().empty());
  EXPECT_DOUBLE_EQ(empty.last(), 0.0);
  TimeSeries tiny(0);  // clamps to one slot
  tiny.Push(1, 42.0);
  tiny.Push(2, 43.0);
  EXPECT_EQ(tiny.capacity(), 1u);
  EXPECT_DOUBLE_EQ(tiny.last(), 43.0);
}

TEST(TimeSeriesTest, ConcurrentWriterAndReadersStayConsistent) {
  // One writer wrapping the ring continuously; readers must only ever see
  // points where value == t_ns (no torn pairs) forming an increasing
  // timestamp sequence.
  TimeSeries ts(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t i = 1;
    while (!stop.load()) {
      ts.Push(i, static_cast<double>(i));
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    auto points = ts.Snapshot();
    int64_t prev = 0;
    for (const auto& point : points) {
      EXPECT_DOUBLE_EQ(point.value, static_cast<double>(point.t_ns));
      EXPECT_GT(point.t_ns, prev);
      prev = point.t_ns;
    }
  }
  stop.store(true);
  writer.join();
}

// -------------------------------------------------------------- sampler ---

TEST(SamplerTest, CounterRateAndValueSeries) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("gdms_test_ops_total");
  Sampler sampler(&registry);
  c->Add(100);
  sampler.SampleOnceAt(0);
  c->Add(50);
  sampler.SampleOnceAt(1000000000);  // +1 s
  const TimeSeries* value = sampler.Find("gdms_test_ops_total");
  const TimeSeries* rate = sampler.Find("gdms_test_ops_total:rate");
  ASSERT_NE(value, nullptr);
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(value->last(), 150.0);
  EXPECT_DOUBLE_EQ(rate->last(), 50.0);
  c->Add(25);
  sampler.SampleOnceAt(1500000000);  // +0.5 s
  EXPECT_DOUBLE_EQ(rate->last(), 50.0);  // 25 ops in 0.5 s
  EXPECT_EQ(sampler.ticks(), 3u);
}

TEST(SamplerTest, CounterResetClampsRateToZero) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("gdms_test_ops_total");
  Sampler sampler(&registry);
  c->Add(100);
  sampler.SampleOnceAt(0);
  registry.ResetAll();
  sampler.SampleOnceAt(1000000000);
  EXPECT_DOUBLE_EQ(sampler.Find("gdms_test_ops_total:rate")->last(), 0.0);
}

TEST(SamplerTest, GaugeSeriesTracksValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("gdms_test_depth");
  Sampler sampler(&registry);
  g->Set(7);
  sampler.SampleOnceAt(0);
  g->Set(-3);
  sampler.SampleOnceAt(1000000000);
  auto points = sampler.Find("gdms_test_depth")->Snapshot();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 7.0);
  EXPECT_DOUBLE_EQ(points[1].value, -3.0);
}

TEST(SamplerTest, WindowedQuantilesTrackTheRecentWindow) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("gdms_test_latency_us");
  Sampler sampler(&registry);
  SamplerOptions opt;
  opt.window = 1;  // quantiles over the delta since the previous sample only
  sampler.Configure(opt);

  // 100 values of 10 before the first sample.
  for (int i = 0; i < 100; ++i) h->Record(10);
  sampler.SampleOnceAt(0);

  // 100 values of ~1000 between samples 1 and 2: the windowed p50 must land
  // in the [512, 1024] bucket even though the since-start aggregate is an
  // even mixture of 10s and 1000s.
  for (int i = 0; i < 100; ++i) h->Record(1000);
  sampler.SampleOnceAt(1000000000);
  const TimeSeries* p50 = sampler.Find("gdms_test_latency_us:p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_GE(p50->last(), 512.0);
  EXPECT_LE(p50->last(), 1024.0);
  // Aggregate p50 over all 200 samples sits at the 10s/1000s boundary —
  // distinctly below the windowed figure.
  EXPECT_LT(h->Quantile(0.5), 512.0);

  // Next window: 100 values of 12. Windowed p50 drops back to [8, 16].
  for (int i = 0; i < 100; ++i) h->Record(12);
  sampler.SampleOnceAt(2000000000);
  EXPECT_GE(p50->last(), 8.0);
  EXPECT_LE(p50->last(), 16.0);

  // Histogram sample rate: 100 new recordings over 1 s.
  EXPECT_DOUBLE_EQ(sampler.Find("gdms_test_latency_us:rate")->last(), 100.0);
}

TEST(HistogramTest, QuantileFromBucketDeltasHandComputed) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);
  auto before = h.SnapshotBuckets();
  for (int i = 0; i < 100; ++i) h.Record(1000);
  auto after = h.SnapshotBuckets();
  std::array<uint64_t, Histogram::kBuckets> delta;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    delta[b] = after[b] - before[b];
  }
  // The delta contains exactly the 100 values of 1000 (bucket [512, 1024)).
  double p50 = Histogram::QuantileFromBuckets(delta, 0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  std::array<uint64_t, Histogram::kBuckets> zero = {};
  EXPECT_DOUBLE_EQ(Histogram::QuantileFromBuckets(zero, 0.5), 0.0);
}

TEST(SamplerTest, BackgroundThreadTicksAndInvokesOnTick) {
  MetricsRegistry registry;
  registry.GetCounter("gdms_test_ops_total")->Add(1);
  Sampler sampler(&registry);
  std::atomic<uint64_t> callbacks{0};
  SamplerOptions opt;
  opt.period_ms = 2;
  opt.on_tick = [&](uint64_t) { callbacks.fetch_add(1); };
  sampler.Start(opt);
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 500 && sampler.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 3u);
  EXPECT_GE(callbacks.load(), 3u);
  uint64_t ticks_after_stop = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(sampler.ticks(), ticks_after_stop);
}

TEST(SamplerTest, ConcurrentSamplerVsMutators) {
  // The TSan scenario: mutator threads hammer the instruments while the
  // sampler thread snapshots them and readers walk the derived series.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("gdms_test_ops_total");
  Gauge* g = registry.GetGauge("gdms_test_depth");
  Histogram* h = registry.GetHistogram("gdms_test_latency_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&, t] {
      uint64_t i = 1;
      while (!stop.load()) {
        c->Add(1);
        g->Set(static_cast<int64_t>(i % 100));
        h->Record(i % 4096 + 1);
        ++i;
        (void)t;
      }
    });
  }
  Sampler sampler(&registry);
  SamplerOptions opt;
  opt.period_ms = 1;
  sampler.Start(opt);
  // Concurrent reader: series lookups and snapshots while both sides run.
  for (int round = 0; round < 100; ++round) {
    const TimeSeries* rate = sampler.Find("gdms_test_ops_total:rate");
    if (rate != nullptr) {
      for (const auto& point : rate->Snapshot()) {
        EXPECT_GE(point.value, 0.0);
      }
    }
    const TimeSeries* value = sampler.Find("gdms_test_ops_total");
    if (value != nullptr) {
      auto points = value->Snapshot();
      for (size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].value, points[i - 1].value);  // monotone counter
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  sampler.Stop();
  stop.store(true);
  for (auto& m : mutators) m.join();
  EXPECT_GE(sampler.ticks(), 1u);
  EXPECT_GT(c->value(), 0u);
}

// ----------------------------------------------------------- exposition ---

TEST(ExpositionTest, RendersTypesUnitsAndValues) {
  MetricsRegistry registry;
  registry.GetCounter("gdms_test_bytes_total")->Add(7);
  registry.GetGauge("gdms_test_depth")->Set(-2);
  Histogram* h = registry.GetHistogram("gdms_test_latency_us");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  std::string text = RenderExposition(registry);
  EXPECT_NE(text.find("# TYPE gdms_test_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT gdms_test_bytes_total bytes"),
            std::string::npos);
  EXPECT_NE(text.find("gdms_test_bytes_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gdms_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("gdms_test_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gdms_test_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("gdms_test_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gdms_test_latency_us_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("gdms_test_latency_us_count 100\n"),
            std::string::npos);
}

TEST(ExpositionTest, ParseRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("gdms_test_bytes_total")->Add(1234);
  registry.GetGauge("gdms_fed_staged_bytes{node=\"site_a\"}")->Set(42);
  registry.GetGauge("gdms_fed_staged_bytes{node=\"site_b\"}")->Set(0);
  Histogram* h = registry.GetHistogram("gdms_test_latency_us");
  h->Record(100);
  ScrapedExposition scrape = ParseExposition(RenderExposition(registry));
  EXPECT_DOUBLE_EQ(scrape.samples.at("gdms_test_bytes_total"), 1234.0);
  EXPECT_DOUBLE_EQ(
      scrape.samples.at("gdms_fed_staged_bytes{node=\"site_a\"}"), 42.0);
  EXPECT_DOUBLE_EQ(
      scrape.samples.at("gdms_fed_staged_bytes{node=\"site_b\"}"), 0.0);
  EXPECT_DOUBLE_EQ(scrape.samples.at("gdms_test_latency_us_count"), 1.0);
  EXPECT_EQ(scrape.types.at("gdms_test_bytes_total"), "counter");
  EXPECT_EQ(scrape.types.at("gdms_fed_staged_bytes"), "gauge");
  EXPECT_EQ(scrape.types.at("gdms_test_latency_us"), "summary");
  EXPECT_EQ(scrape.units.at("gdms_test_bytes_total"), "bytes");
}

TEST(ExpositionTest, WriteFileIsAtomicAndReadable) {
  MetricsRegistry registry;
  registry.GetCounter("gdms_test_ops_total")->Add(3);
  std::string path = ::testing::TempDir() + "telemetry_expo_test.prom";
  ASSERT_TRUE(WriteExpositionFile(registry, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  ScrapedExposition scrape = ParseExposition(buf.str());
  EXPECT_DOUBLE_EQ(scrape.samples.at("gdms_test_ops_total"), 3.0);
  // The temp file used for atomicity must not linger.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
  EXPECT_FALSE(WriteExpositionFile(registry, "/nonexistent-dir/x.prom"));
}

TEST(ExpositionTest, MetricUnitScheme) {
  EXPECT_STREQ(MetricUnit("gdms_engine_queue_wait_ns"), "ns");
  EXPECT_STREQ(MetricUnit("gdms_runner_query_latency_us"), "us");
  EXPECT_STREQ(MetricUnit("gdms_fed_staged_bytes{node=\"a\"}"), "bytes");
  EXPECT_STREQ(MetricUnit("gdms_fed_bytes_shipped_total"), "bytes");
  EXPECT_STREQ(MetricUnit("gdms_engine_tasks_total"), "count");
  EXPECT_STREQ(MetricUnit("gdms_wall_seconds"), "s");
  EXPECT_STREQ(MetricUnit("mystery"), "");
}

TEST(MetricsTest, JsonEscapeControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
  EXPECT_EQ(JsonEscape("x{node=\"site_a\"}"), "x{node=\\\"site_a\\\"}");
}

// ------------------------------------------------------------ query log ---

/// Runs one traced query through the parallel engine and returns its
/// filled-in log entry (profile attached).
QueryLogEntry TracedEntry(const std::string& gmql) {
  engine::EngineOptions options;
  options.threads = 2;
  engine::ParallelExecutor executor(options);
  core::QueryRunner runner(&executor);
  auto genome = gdm::GenomeAssembly::HumanLike(4, 10000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 4;
  popt.peaks_per_sample = 500;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 3));
  auto catalog = sim::GenerateGenes(genome, 100, 3);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 3));
  auto results = runner.Run(gmql);
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return core::MakeQueryLogEntry(gmql, runner.last_stats());
}

TEST(QueryLogTest, FormatEntryCarriesEveryFigure) {
  QueryLogEntry entry;
  entry.query = "R = MAP(n AS COUNT) A B; MATERIALIZE R;";
  entry.wall_ms = 12.5;
  entry.operators = 3;
  entry.cache_hits = 1;
  entry.intermediate_datasets = 2;
  entry.fused_chains = 1;
  entry.tasks = 96;
  entry.partitions = 24;
  entry.shuffle_bytes = 4096;
  entry.stage_barriers = 4;
  entry.fed_requests = 2;
  entry.fed_bytes_shipped = 100;
  entry.fed_bytes_received = 5000;
  QueryLogOptions opt;  // no path: format-only
  QueryLog log(opt);
  std::string line = log.FormatEntry(entry, 3);
  EXPECT_NE(line.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"wall_ms\":12.5"), std::string::npos);
  EXPECT_NE(line.find("\"operators\":3"), std::string::npos);
  EXPECT_NE(line.find("\"tasks\":96"), std::string::npos);
  EXPECT_NE(line.find("\"shuffle_bytes\":4096"), std::string::npos);
  EXPECT_NE(line.find("\"fed\":{\"requests\":2,\"bytes_shipped\":100,"
                      "\"bytes_received\":5000}"),
            std::string::npos);
  EXPECT_NE(line.find("\"slow\":false"), std::string::npos);
  EXPECT_EQ(line.find("\"explain\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per entry
}

TEST(QueryLogTest, FailedEntryCarriesError) {
  QueryLogEntry entry;
  entry.query = "BROKEN";
  entry.ok = false;
  entry.error = "ParseError: expected '=' near \"BROKEN\"";
  QueryLogOptions opt;
  QueryLog log(opt);
  std::string line = log.FormatEntry(entry, 1);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  // The error text's quotes must arrive escaped.
  EXPECT_NE(line.find("near \\\"BROKEN\\\""), std::string::npos);
}

TEST(QueryLogTest, SlowEntryEmbedsExplainAnalyze) {
  ScopedTracing tracing;
  QueryLogEntry entry = TracedEntry(
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "R = MAP(n AS COUNT) PROMS ENCODE;\nMATERIALIZE R;\n");
  ASSERT_NE(entry.profile, nullptr);
  EXPECT_GT(entry.operators, 0u);
  EXPECT_GT(entry.tasks, 0u);

  QueryLogOptions slow_all;
  slow_all.slow_ms = 0;  // escalate everything
  QueryLog log(slow_all);
  std::string line = log.FormatEntry(entry, 1);
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(line.find("\"explain\":\""), std::string::npos);
  // The embedded tree names the operators and stays on the one JSONL line.
  EXPECT_NE(line.find("MATERIALIZE R"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // Per-operator self-times surfaced from the profile.
  EXPECT_NE(line.find("\"ops\":["), std::string::npos);
  EXPECT_NE(line.find("\"self_ms\":"), std::string::npos);
  // Scheduler figures derived from stage spans.
  EXPECT_NE(line.find("\"queue_wait_mean_us\":"), std::string::npos);

  QueryLogOptions fast;
  fast.slow_ms = 1e9;  // nothing is slow
  QueryLog fast_log(fast);
  std::string fast_line = fast_log.FormatEntry(entry, 1);
  EXPECT_NE(fast_line.find("\"slow\":false"), std::string::npos);
  EXPECT_EQ(fast_line.find("\"explain\""), std::string::npos);
}

TEST(QueryLogTest, WritesOneFlushedLinePerEntry) {
  std::string path = ::testing::TempDir() + "telemetry_query_log_test.jsonl";
  std::remove(path.c_str());
  QueryLogOptions opt;
  opt.path = path;
  opt.slow_ms = 5000;
  QueryLog log(opt);
  ASSERT_TRUE(log.ok());
  QueryLogEntry entry;
  entry.query = "Q";
  entry.wall_ms = 1;
  log.Record(entry);
  entry.wall_ms = 9999;  // slow
  log.Record(entry);
  EXPECT_EQ(log.entries(), 2u);
  EXPECT_EQ(log.slow_entries(), 1u);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"slow\":true"), std::string::npos);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  std::remove(path.c_str());
}

TEST(QueryLogTest, TruncatesOversizedQueryText) {
  QueryLogOptions opt;
  opt.max_query_chars = 8;
  QueryLog log(opt);
  QueryLogEntry entry;
  entry.query = std::string(100, 'Q');
  std::string line = log.FormatEntry(entry, 1);
  EXPECT_EQ(line.find(std::string(9, 'Q')), std::string::npos);
  EXPECT_NE(line.find("QQQQQQQQ"), std::string::npos);
}

}  // namespace
}  // namespace gdms::obs
