#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/generators.h"

namespace gdms::obs {
namespace {

using core::QueryRunner;
using engine::EngineOptions;
using engine::ParallelExecutor;

/// Turns the global tracer on for one test and leaves it clean afterwards
/// (disabled, buffer drained) so tests stay order-independent.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  ~ScopedTracing() {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }
};

// ------------------------------------------------------------- metrics ---

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
  g.Set(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(MetricsTest, HistogramCountSumMeanAndQuantiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Power-of-two buckets: the median sample (50) lives in [32, 64); the
  // interpolated quantile must land inside that bucket.
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 128.0);
  EXPECT_LE(h.Quantile(0.0), p50);
  EXPECT_GE(h.Quantile(1.0), p99);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistryHandsOutStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test.stable");
  Counter* b = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(a, b);
  // A name is bound to one kind: the mismatched request still returns a
  // usable (scratch) instrument, never nullptr.
  Histogram* h = reg.GetHistogram("obs_test.stable");
  ASSERT_NE(h, nullptr);
  h->Record(1);

  a->Add(3);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("obs_test.stable"), std::string::npos);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, ResetAllZeroesEveryInstrument) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.reset_me");
  Histogram* h = reg.GetHistogram("obs_test.reset_me_h");
  c->Add(5);
  h->Record(100);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

// -------------------------------------------------------------- tracer ---

TEST(TracerTest, DisabledSpansAreInactiveAndFree) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  size_t before = tracer.pending();
  {
    Span s = tracer.StartSpan("noop", "stage", 0);
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.id(), 0u);
    s.AddAttr("ignored", 1.0);
  }
  EXPECT_EQ(tracer.pending(), before);
}

TEST(TracerTest, CollectCopiesOnlyTheRootedSubtree) {
  ScopedTracing tracing;
  Tracer& tracer = Tracer::Global();
  Span root = tracer.StartSpan("root", "query", 0);
  uint64_t root_id = root.id();
  ASSERT_NE(root_id, 0u);
  {
    Span child = tracer.StartSpan("child", "operator", root_id);
    Span grandchild = tracer.StartSpan("grand", "stage", child.id());
    grandchild.End();
    child.End();
  }
  Span stranger = tracer.StartSpan("stranger", "query", 0);
  stranger.End();
  root.End();

  std::vector<SpanRecord> subtree = tracer.Collect(root_id);
  EXPECT_EQ(subtree.size(), 3u);
  for (const auto& rec : subtree) EXPECT_NE(rec.name, "stranger");
  // Collect is non-destructive; TakeAll drains everything.
  EXPECT_EQ(tracer.pending(), 4u);
  EXPECT_EQ(tracer.TakeAll().size(), 4u);
  EXPECT_EQ(tracer.pending(), 0u);
}

TEST(TracerTest, ExchangeCurrentParentRoundTrips) {
  Tracer& tracer = Tracer::Global();
  uint64_t prev = tracer.ExchangeCurrentParent(17);
  EXPECT_EQ(tracer.current_parent(), 17u);
  EXPECT_EQ(tracer.ExchangeCurrentParent(prev), 17u);
}

TEST(TracerTest, ComputeSkewMatchesHandComputedValues) {
  SkewStats s = ComputeSkew({5000, 0, 1000});
  EXPECT_EQ(s.min_ns, 0);
  EXPECT_EQ(s.median_ns, 1000);
  EXPECT_EQ(s.max_ns, 5000);
  EXPECT_DOUBLE_EQ(s.mean_ns, 2000.0);

  // The giant-and-empty-partition fixture: one 9 ms task, one empty task.
  SkewStats skew = ComputeSkew({9000000, 0});
  EXPECT_EQ(skew.min_ns, 0);
  EXPECT_EQ(skew.max_ns, 9000000);
  EXPECT_EQ(skew.median_ns, 9000000);
  EXPECT_DOUBLE_EQ(skew.mean_ns, 4500000.0);

  SkewStats empty = ComputeSkew({});
  EXPECT_EQ(empty.min_ns, 0);
  EXPECT_EQ(empty.max_ns, 0);
  EXPECT_DOUBLE_EQ(empty.mean_ns, 0.0);
}

TEST(TracerTest, ConcurrentSpanEmissionIsRaceFree) {
  ScopedTracing tracing;
  Tracer& tracer = Tracer::Global();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s = tracer.StartSpan("worker", "stage", tracer.current_parent());
        s.AddAttr("thread", static_cast<double>(t));
        s.AddAttr("i", static_cast<double>(i));
        s.End();
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<SpanRecord> all = tracer.TakeAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  std::set<uint64_t> ids;
  for (const auto& rec : all) ids.insert(rec.id);
  EXPECT_EQ(ids.size(), all.size());
}

// ------------------------------------------------------------- profile ---

std::vector<SpanRecord> HandBuiltSpans() {
  // root(100us) -> a(30us, fully covered by its own child) + b(50us).
  SpanRecord root{1, 0, "root", "query", 0, 100000, {}};
  SpanRecord a{2, 1, "a", "operator", 10000, 30000, {}};
  SpanRecord a_child{4, 2, "a:stage", "stage", 10000, 30000, {}};
  SpanRecord b{3, 1, "b", "operator", 50000, 50000, {}};
  return {a_child, a, b, root};
}

TEST(ProfileTest, SelfTimesTelescopeToRootDuration) {
  Profile profile(HandBuiltSpans());
  ASSERT_EQ(profile.roots().size(), 1u);
  EXPECT_EQ(profile.total_ns(), 100000);
  int64_t self_sum = 0;
  for (const auto& node : profile.nodes()) self_sum += node.self_ns;
  EXPECT_EQ(self_sum, profile.total_ns());

  // Exact hand-computed self times.
  for (const auto& node : profile.nodes()) {
    if (node.rec->name == "root") {
      EXPECT_EQ(node.self_ns, 20000);
    } else if (node.rec->name == "a") {
      EXPECT_EQ(node.self_ns, 0);
    } else if (node.rec->name == "a:stage") {
      EXPECT_EQ(node.self_ns, 30000);
    } else if (node.rec->name == "b") {
      EXPECT_EQ(node.self_ns, 50000);
    }
  }
}

TEST(ProfileTest, RenderTreeShowsNestingAndAttrs) {
  std::vector<SpanRecord> spans = HandBuiltSpans();
  spans[1].attrs.emplace_back("tasks", 4.0);
  Profile profile(std::move(spans));
  std::string tree = profile.RenderTree();
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("├─ a"), std::string::npos);
  EXPECT_NE(tree.find("└─ b"), std::string::npos);
  EXPECT_NE(tree.find("a:stage [stage]"), std::string::npos);
  EXPECT_NE(tree.find("tasks=4"), std::string::npos);
}

TEST(ProfileTest, ChromeTraceHasCompleteEventsForEverySpan) {
  Profile profile(HandBuiltSpans());
  std::string json = profile.RenderChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  size_t events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\": \"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, profile.spans().size());
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

// -------------------------------------------------- runner integration ---

QueryRunner MakeSimRunner(core::Executor* executor) {
  QueryRunner runner = executor ? QueryRunner(executor) : QueryRunner();
  auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 3;
  popt.peaks_per_sample = 400;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 21));
  auto catalog = sim::GenerateGenes(genome, 150, 21);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 21));
  return runner;
}

const char* kMapQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "R = MAP(n AS COUNT) PROMS ENCODE;\n"
    "MATERIALIZE R;\n";

const Profile::Node* FindNode(const Profile& profile, const std::string& name) {
  for (const auto& node : profile.nodes()) {
    if (node.rec->name == name) return &node;
  }
  return nullptr;
}

TEST(RunnerProfileTest, SpanTreeMatchesPlanDag) {
  ScopedTracing tracing;
  EngineOptions options;
  options.threads = 2;
  ParallelExecutor executor(options);
  QueryRunner runner = MakeSimRunner(&executor);
  ASSERT_TRUE(runner.Run(kMapQuery).ok());

  std::shared_ptr<const Profile> profile = runner.last_stats().profile;
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->roots().size(), 1u);
  const Profile::Node& root = profile->nodes()[profile->roots()[0]];
  EXPECT_EQ(root.rec->category, "query");

  // The plan DAG: MATERIALIZE R -> MAP -> SELECT (sources get no span).
  const Profile::Node* mat = FindNode(*profile, "MATERIALIZE R");
  const Profile::Node* map = FindNode(*profile, "MAP");
  const Profile::Node* select = FindNode(*profile, "SELECT");
  ASSERT_NE(mat, nullptr);
  ASSERT_NE(map, nullptr);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(mat->rec->parent, root.rec->id);
  EXPECT_EQ(map->rec->parent, mat->rec->id);
  EXPECT_EQ(select->rec->parent, map->rec->id);

  // Engine stage spans nest under the operator that ran them — in id and
  // in time.
  size_t stage_spans = 0;
  for (const auto& node : profile->nodes()) {
    if (node.rec->category != "stage") continue;
    ++stage_spans;
    const Profile::Node* parent = nullptr;
    for (const auto& cand : profile->nodes()) {
      if (cand.rec->id == node.rec->parent) parent = &cand;
    }
    ASSERT_NE(parent, nullptr) << node.rec->name;
    EXPECT_EQ(parent->rec->category, "operator") << node.rec->name;
    EXPECT_GE(node.rec->start_ns, parent->rec->start_ns);
    EXPECT_LE(node.rec->start_ns + node.rec->duration_ns,
              parent->rec->start_ns + parent->rec->duration_ns);
  }
  EXPECT_GT(stage_spans, 0u);

  // The acceptance bar: per-node self times telescope to the query wall.
  int64_t self_sum = 0;
  for (const auto& node : profile->nodes()) self_sum += node.self_ns;
  EXPECT_EQ(self_sum, profile->total_ns());
}

TEST(RunnerProfileTest, StageSkewAttrsOnGiantAndEmptyPartition) {
  ScopedTracing tracing;
  EngineOptions options;
  options.threads = 2;
  ParallelExecutor executor(options);
  QueryRunner runner(&executor);

  gdm::RegionSchema schema;
  gdm::Dataset ds("DS", schema);
  gdm::Sample giant(1);
  for (int i = 0; i < 20000; ++i) {
    giant.regions.emplace_back(gdm::InternChrom("chr1"), i * 10, i * 10 + 5,
                               gdm::Strand::kNone);
  }
  giant.metadata.Add("kind", "giant");
  ds.AddSample(std::move(giant));
  gdm::Sample empty(2);
  empty.metadata.Add("kind", "empty");
  ds.AddSample(std::move(empty));
  runner.RegisterDataset(std::move(ds));

  ASSERT_TRUE(runner.Run("R = SELECT(region: left >= 0) DS;\n"
                         "MATERIALIZE R;\n")
                  .ok());
  std::shared_ptr<const Profile> profile = runner.last_stats().profile;
  ASSERT_NE(profile, nullptr);
  const Profile::Node* stage = FindNode(*profile, "select:samples");
  ASSERT_NE(stage, nullptr);

  double tasks = -1, min_us = -1, median_us = -1, max_us = -1;
  for (const auto& [key, value] : stage->rec->attrs) {
    if (key == "tasks") tasks = value;
    if (key == "part_min_us") min_us = value;
    if (key == "part_median_us") median_us = value;
    if (key == "part_max_us") max_us = value;
  }
  EXPECT_DOUBLE_EQ(tasks, 2.0);
  ASSERT_GE(min_us, 0.0);
  // One giant and one empty partition: the ordering min <= median <= max
  // must hold, and the spread must be visible (the giant partition filters
  // 20k regions while the empty one does nothing).
  EXPECT_LE(min_us, median_us);
  EXPECT_LE(median_us, max_us);
  EXPECT_GT(max_us, min_us);
  // With two tasks the sorted-median convention picks the larger one.
  EXPECT_DOUBLE_EQ(median_us, max_us);
}

TEST(RunnerProfileTest, BackToBackRunsDoNotAccumulateTelemetry) {
  EngineOptions options;
  options.threads = 2;
  ParallelExecutor executor(options);
  QueryRunner runner = MakeSimRunner(&executor);

  ASSERT_TRUE(runner.Run(kMapQuery).ok());
  core::RunStats first = runner.last_stats();
  EXPECT_EQ(first.profile, nullptr);  // tracing disabled -> no profile
  ASSERT_TRUE(runner.Run(kMapQuery).ok());
  core::RunStats second = runner.last_stats();

  // Same program, same data: the per-run figures must match exactly — any
  // drift means counters leaked across Run() calls.
  EXPECT_EQ(first.operators_evaluated, second.operators_evaluated);
  EXPECT_EQ(first.cache_hits, second.cache_hits);
  EXPECT_EQ(first.executor.tasks, second.executor.tasks);
  EXPECT_EQ(first.executor.partitions, second.executor.partitions);
  EXPECT_EQ(first.executor.shuffle_bytes, second.executor.shuffle_bytes);
  EXPECT_GT(second.executor.tasks, 0u);

  // And with tracing on, each run yields a fresh profile of the same shape.
  {
    ScopedTracing tracing;
    ASSERT_TRUE(runner.Run(kMapQuery).ok());
    std::shared_ptr<const Profile> p1 = runner.last_stats().profile;
    ASSERT_TRUE(runner.Run(kMapQuery).ok());
    std::shared_ptr<const Profile> p2 = runner.last_stats().profile;
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(p1->spans().size(), p2->spans().size());
    EXPECT_EQ(p1->roots().size(), 1u);
    EXPECT_EQ(p2->roots().size(), 1u);
  }
}

}  // namespace
}  // namespace gdms::obs
