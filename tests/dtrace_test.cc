// End-to-end distributed tracing: context codecs, SimClock stitching of
// coordinator + remote spans, critical-path attribution, hedge-loser
// tagging, the serve-path trace (including minimal shed traces), and the
// exemplar ring. Federation faults are seeded, so the determinism
// expectations here are bit-exact, not statistical.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/dtrace.h"
#include "obs/profile.h"
#include "repo/federation.h"
#include "repo/transport.h"
#include "serve/serve_catalog.h"
#include "serve/session_manager.h"
#include "sim/generators.h"

namespace gdms {
namespace {

using repo::Coordinator;
using repo::FederatedNode;
using repo::FedPolicies;
using repo::LinkProfile;
using repo::MessageKind;
using repo::MessageKindBit;

constexpr const char* kQuery =
    "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
    "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
    "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
    "MATERIALIZE R;\n";

void Populate(FederatedNode* node, uint64_t seed = 1) {
  auto genome = gdm::GenomeAssembly::HumanLike(3, 20000000);
  sim::PeakDatasetOptions opt;
  opt.num_samples = 3;
  opt.peaks_per_sample = 150;
  node->catalog()->Put(sim::GeneratePeakDataset(genome, opt, seed));
  auto catalog = sim::GenerateGenes(genome, 100, seed);
  node->catalog()->Put(sim::GenerateAnnotations(genome, catalog, {}, seed));
}

// -- ids and codecs -------------------------------------------------------

TEST(TraceId, MintIsDeterministicNonZeroAndSeedSensitive) {
  obs::TraceId a = obs::MintTraceId(1, 2);
  obs::TraceId b = obs::MintTraceId(1, 2);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.ToHex(), b.ToHex());
  // Either seed changing moves BOTH halves, so hex prefixes (what `.trace`
  // matches on) never collide between namespaces sharing a counter.
  obs::TraceId c = obs::MintTraceId(2, 2);
  obs::TraceId d = obs::MintTraceId(1, 3);
  EXPECT_NE(a.hi, c.hi);
  EXPECT_NE(a.lo, c.lo);
  EXPECT_NE(a.hi, d.hi);
  EXPECT_NE(a.lo, d.lo);
  EXPECT_EQ(a.ToHex().size(), 32u);
  EXPECT_EQ(obs::TraceId::FromHex(a.ToHex()).ToHex(), a.ToHex());
}

TEST(TraceContextCodec, RoundTripsAndRejectsGarbage) {
  obs::TraceContext ctx;
  ctx.id = obs::MintTraceId(42, 99);
  ctx.parent_span = 1234567;
  ctx.arrival_us = 987654321;
  obs::TraceContext back;
  ASSERT_TRUE(obs::DecodeTraceContext(obs::EncodeTraceContext(ctx), &back));
  EXPECT_EQ(back.id.ToHex(), ctx.id.ToHex());
  EXPECT_EQ(back.parent_span, ctx.parent_span);
  EXPECT_EQ(back.arrival_us, ctx.arrival_us);
  obs::TraceContext junk;
  EXPECT_FALSE(obs::DecodeTraceContext("not-a-context", &junk));
  EXPECT_FALSE(obs::DecodeTraceContext("", &junk));
}

TEST(DistSpanCodec, RoundTripsSpansWithAttrs) {
  std::vector<obs::DistSpan> spans(2);
  spans[0].origin = "milan";
  spans[0].id = 7;
  spans[0].parent_origin = "";
  spans[0].parent = 3;
  spans[0].name = "remote:FETCH";
  spans[0].segment = "wire.fetch";
  spans[0].start_us = 1000;
  spans[0].duration_us = 250;
  spans[0].attrs = {{"chunk", 2.0}, {"bytes", 4096.0}};
  spans[1].origin = "milan";
  spans[1].id = 8;
  spans[1].parent_origin = "milan";
  spans[1].parent = 7;
  spans[1].name = "remote:engine";
  spans[1].wasted = true;
  std::vector<obs::DistSpan> back =
      obs::DecodeDistSpans(obs::EncodeDistSpans(spans));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].origin, "milan");
  EXPECT_EQ(back[0].parent, 3u);
  EXPECT_EQ(back[0].segment, "wire.fetch");
  ASSERT_EQ(back[0].attrs.size(), 2u);
  EXPECT_EQ(back[0].attrs[1].first, "bytes");
  EXPECT_DOUBLE_EQ(back[0].attrs[1].second, 4096.0);
  EXPECT_TRUE(back[1].wasted);
  EXPECT_EQ(back[1].parent_origin, "milan");
}

// -- critical path --------------------------------------------------------

TEST(CriticalPath, SegmentsSumExactlyToRootWithSelfRemainder) {
  std::vector<obs::DistSpan> spans(4);
  spans[0].id = 1;
  spans[0].name = "root";
  spans[0].start_us = 0;
  spans[0].duration_us = 1000;
  spans[1].id = 2;
  spans[1].parent = 1;
  spans[1].name = "a";
  spans[1].segment = "plan.prepare";
  spans[1].start_us = 100;
  spans[1].duration_us = 200;
  // Overlaps the tail of "a": only the uncovered part may be claimed.
  spans[2].id = 3;
  spans[2].parent = 1;
  spans[2].name = "b";
  spans[2].segment = "engine";
  spans[2].start_us = 250;
  spans[2].duration_us = 500;
  // Wasted spans are never on the critical path.
  spans[3].id = 4;
  spans[3].parent = 1;
  spans[3].name = "hedge";
  spans[3].segment = "wire.fetch";
  spans[3].start_us = 0;
  spans[3].duration_us = 1000;
  spans[3].wasted = true;
  obs::DistTrace trace = obs::StitchTrace(obs::MintTraceId(1, 1), spans);
  std::vector<obs::PathSegment> path = obs::CriticalPath(trace);
  std::map<std::string, uint64_t> by_label;
  uint64_t sum = 0;
  for (const obs::PathSegment& seg : path) {
    by_label[seg.label] += seg.us;
    sum += seg.us;
  }
  EXPECT_EQ(sum, 1000u);
  EXPECT_EQ(by_label["plan.prepare"], 200u);  // 100..300
  EXPECT_EQ(by_label["engine"], 450u);        // 300..750 (250..300 was a's)
  EXPECT_EQ(by_label["self"], 350u);          // 0..100 and 750..1000
  EXPECT_EQ(by_label.count("wire.fetch"), 0u);
}

TEST(Stitch, DedupsFirstWinsAcrossOrigins) {
  std::vector<obs::DistSpan> spans(3);
  spans[0].id = 1;
  spans[0].name = "root";
  spans[0].duration_us = 10;
  spans[1].origin = "a";
  spans[1].id = 1;  // same bare id, different origin: distinct span
  spans[1].parent_origin = "";
  spans[1].parent = 1;
  spans[1].name = "remote";
  spans[2].origin = "a";
  spans[2].id = 1;  // exact duplicate (re-shipped buffer): dropped
  spans[2].parent_origin = "";
  spans[2].parent = 1;
  spans[2].name = "remote-dup";
  obs::DistTrace trace = obs::StitchTrace(obs::MintTraceId(1, 1), spans);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].name, "remote");
}

// -- wall-profile origin namespacing (obs::Profile) -----------------------

TEST(ProfileOrigins, CollidingSpanIdsKeepBothSubtrees) {
  // Two tracers minted the same ids (1, 2) from their own counters; the
  // origin tag keeps the merged tree from cross-linking them.
  std::vector<obs::SpanRecord> spans(4);
  spans[0].id = 1;
  spans[0].name = "root_a";
  spans[0].category = "query";
  spans[0].duration_ns = 1000;
  spans[0].origin = 0;
  spans[1].id = 2;
  spans[1].parent = 1;
  spans[1].name = "child_a";
  spans[1].category = "operator";
  spans[1].duration_ns = 500;
  spans[1].origin = 0;
  spans[2].id = 1;
  spans[2].name = "root_b";
  spans[2].category = "query";
  spans[2].duration_ns = 800;
  spans[2].origin = 7;
  spans[3].id = 2;
  spans[3].parent = 1;
  spans[3].name = "child_b";
  spans[3].category = "operator";
  spans[3].duration_ns = 400;
  spans[3].origin = 7;
  obs::Profile profile(spans);
  ASSERT_EQ(profile.roots().size(), 2u);
  for (size_t root : profile.roots()) {
    const obs::Profile::Node& node = profile.nodes()[root];
    ASSERT_EQ(node.children.size(), 1u);
    const obs::Profile::Node& child = profile.nodes()[node.children[0]];
    // Each child landed under the root from its own origin.
    EXPECT_EQ(child.rec->origin, node.rec->origin);
  }
}

// -- federation: determinism, hedges --------------------------------------

obs::DistTrace RunFaultedFederation(uint64_t seed) {
  FederatedNode milan("milan");
  FederatedNode geneva("geneva");
  Populate(&milan);
  Populate(&geneva);
  Coordinator coordinator;
  coordinator.AddNode(&milan);
  coordinator.AddNode(&geneva);
  LinkProfile lossy;
  lossy.drop_rate = 0.3;
  lossy.latency_us = 2000;
  lossy.seed = seed;
  coordinator.transport()->SetLinkProfile("milan", lossy);
  lossy.seed = seed + 1;
  coordinator.transport()->SetLinkProfile("geneva", lossy);
  coordinator.BeginTrace(obs::MintTraceId(1, seed));
  auto result = coordinator.RunEverywhere(kQuery);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return coordinator.FinishTrace("test");
}

TEST(FederationTrace, SameSeedProducesBitIdenticalStitchedTraces) {
  obs::DistTrace a = RunFaultedFederation(11);
  obs::DistTrace b = RunFaultedFederation(11);
  obs::DistTrace c = RunFaultedFederation(12);
  // Virtual-time spans + deterministic faults: byte-for-byte equal.
  EXPECT_EQ(a.RenderJson(), b.RenderJson());
  EXPECT_NE(a.RenderJson(), c.RenderJson());
  std::vector<obs::PathSegment> pa = obs::CriticalPath(a);
  std::vector<obs::PathSegment> pb = obs::CriticalPath(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].label, pb[i].label);
    EXPECT_EQ(pa[i].us, pb[i].us);
  }
}

TEST(FederationTrace, StitchedTraceHasRemoteSpansWithResolvedParents) {
  obs::DistTrace trace = RunFaultedFederation(11);
  ASSERT_FALSE(trace.spans.empty());
  std::map<std::pair<std::string, uint64_t>, size_t> ids;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    ids[{trace.spans[i].origin, trace.spans[i].id}] = i;
  }
  size_t remote = 0;
  size_t roots = 0;
  for (const obs::DistSpan& s : trace.spans) {
    if (!s.origin.empty()) ++remote;
    if (s.parent == 0) {
      ++roots;
      continue;
    }
    EXPECT_TRUE(ids.count({s.parent_origin, s.parent}))
        << s.origin << "/" << s.id << " -> " << s.parent_origin << "/"
        << s.parent;
  }
  EXPECT_GT(remote, 0u);
  EXPECT_EQ(roots, 1u);
  // Critical path covers the whole root window, exactly.
  uint64_t sum = 0;
  for (const obs::PathSegment& seg : obs::CriticalPath(trace)) sum += seg.us;
  EXPECT_EQ(sum, trace.total_us());
}

TEST(FederationTrace, HedgeLoserSpanRetainedAndTaggedWasted) {
  FederatedNode milan("milan");
  Populate(&milan);
  Coordinator coordinator;
  coordinator.AddNode(&milan);
  FedPolicies policies;
  policies.hedge.min_observations = 4;
  coordinator.set_policies(policies);
  milan.set_chunk_bytes(256);  // several FETCHes per run -> p95 warms fast
  LinkProfile fast;
  fast.latency_us = 1000;
  coordinator.transport()->SetLinkProfile("milan", fast);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(coordinator.RunRemote("milan", kQuery).ok());
  }
  LinkProfile slow = fast;
  slow.stall_rate = 1.0;
  slow.stall_us = 400'000;
  slow.fault_kinds = MessageKindBit(MessageKind::kFetch);
  coordinator.transport()->SetLinkProfile("milan", slow);
  coordinator.BeginTrace(obs::MintTraceId(7, 7));
  auto result = coordinator.RunRemote("milan", kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  obs::DistTrace trace = coordinator.FinishTrace("hedged");
  ASSERT_GT(coordinator.fed_stats().hedges, 0u);
  size_t hedge_spans = 0;
  size_t wasted = 0;
  for (const obs::DistSpan& s : trace.spans) {
    if (s.name.find(":hedge@") != std::string::npos) ++hedge_spans;
    if (!s.wasted) continue;
    ++wasted;
    // Losers are pure detail: no segment, so the race's wait is never
    // double-counted on the critical path.
    EXPECT_TRUE(s.segment.empty()) << s.name;
  }
  EXPECT_GT(hedge_spans, 0u);
  EXPECT_GT(wasted, 0u);
  uint64_t sum = 0;
  for (const obs::PathSegment& seg : obs::CriticalPath(trace)) sum += seg.us;
  EXPECT_EQ(sum, trace.total_us());
}

TEST(FederationTrace, UntracedWireIsByteIdentical) {
  // Tracing is opt-in on the wire: an untraced coordinator must ship the
  // exact bytes a pre-tracing build shipped (bench_e8's baselines).
  auto run = [](bool traced) {
    FederatedNode milan("milan");
    Populate(&milan);
    Coordinator coordinator;
    coordinator.AddNode(&milan);
    if (traced) coordinator.BeginTrace(obs::MintTraceId(1, 1));
    auto result = coordinator.RunRemote("milan", kQuery);
    EXPECT_TRUE(result.ok());
    if (traced) coordinator.FinishTrace();
    return coordinator.counters().bytes_sent;
  };
  uint64_t untraced = run(false);
  uint64_t traced = run(true);
  EXPECT_LT(untraced, traced);  // the @trace headers are the only delta
}

// -- serve path -----------------------------------------------------------

gdm::Dataset ServePeaks() {
  sim::PeakDatasetOptions opt;
  opt.num_samples = 3;
  opt.peaks_per_sample = 300;
  return sim::GeneratePeakDataset(gdm::GenomeAssembly::HumanLike(3, 20000000),
                                  opt, 1);
}

TEST(ServeTrace, AdmittedQueryCarriesTraceWithExactCriticalPath) {
  serve::ServeCatalog catalog;
  catalog.Publish(ServePeaks());
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::SessionManager manager(&catalog, opt);
  serve::ServeResponse resp = manager.Execute(
      "R = SELECT(dataType == 'ChipSeq') ENCODE; MATERIALIZE R;");
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  ASSERT_NE(resp.trace, nullptr);
  EXPECT_TRUE(resp.trace->id.valid());
  EXPECT_EQ(resp.stats.trace_id.ToHex(), resp.trace->id.ToHex());
  // Root, queue, plan and exec spans at minimum.
  EXPECT_GE(resp.trace->spans.size(), 4u);
  std::map<std::string, int> segments;
  for (const obs::DistSpan& s : resp.trace->spans) {
    if (!s.segment.empty()) ++segments[s.segment];
  }
  EXPECT_EQ(segments.count("admit.queue"), 1u);
  EXPECT_EQ(segments.count("plan.prepare"), 1u);
  EXPECT_EQ(segments.count("engine"), 1u);
  uint64_t sum = 0;
  for (const obs::PathSegment& seg : obs::CriticalPath(*resp.trace)) {
    sum += seg.us;
  }
  EXPECT_EQ(sum, resp.trace->total_us());
}

TEST(ServeTrace, ShedQueryEmitsMinimalTraceWithQueueSegment) {
  serve::ServeCatalog catalog;
  catalog.Publish(ServePeaks());
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::SessionManager manager(&catalog, opt);
  // Occupy the single worker so the deadlined query expires in the queue
  // (COVER over the generated peaks takes well over 10us).
  auto id = manager.Submit("C = COVER(2, ANY) ENCODE; MATERIALIZE C;",
                           [](const serve::ServeResponse&) {});
  ASSERT_TRUE(id.ok());
  serve::ServeResponse resp = manager.Execute(
      "R = SELECT(dataType == 'ChipSeq') ENCODE; MATERIALIZE R;",
      /*deadline_ms=*/0.01);
  ASSERT_FALSE(resp.status.ok());
  ASSERT_NE(resp.trace, nullptr);
  EXPECT_EQ(resp.trace->reason, "shed");
  ASSERT_EQ(resp.trace->spans.size(), 2u);
  EXPECT_EQ(resp.trace->spans[1].segment, "admit.queue");
  // The queue wait IS the query: it spans the whole trace.
  EXPECT_EQ(resp.trace->spans[1].duration_us, resp.trace->total_us());
}

// -- exemplar ring --------------------------------------------------------

TEST(TraceExemplars, RingKeepsNewestFirstAndFindsByPrefix) {
  obs::TraceExemplars ring;
  ring.set_capacity(2);
  for (uint64_t i = 1; i <= 3; ++i) {
    auto trace = std::make_shared<obs::DistTrace>();
    trace->id = obs::MintTraceId(i, 500);
    trace->reason = "slow";
    obs::DistSpan root;
    root.id = 1;
    root.duration_us = i * 1000;
    trace->spans.push_back(root);
    ring.Keep(trace);
  }
  auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // capacity evicted the oldest
  EXPECT_EQ(snapshot[0]->id.ToHex(), obs::MintTraceId(3, 500).ToHex());
  EXPECT_EQ(snapshot[1]->id.ToHex(), obs::MintTraceId(2, 500).ToHex());
  EXPECT_EQ(ring.Find("last")->id.ToHex(), snapshot[0]->id.ToHex());
  std::string prefix = snapshot[1]->id.ToHex().substr(0, 8);
  ASSERT_NE(ring.Find(prefix), nullptr);
  EXPECT_EQ(ring.Find(prefix)->id.ToHex(), snapshot[1]->id.ToHex());
  EXPECT_EQ(ring.Find("ffffffffffffffff0000"), nullptr);
}

}  // namespace
}  // namespace gdms
