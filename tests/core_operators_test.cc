#include <gtest/gtest.h>

#include "core/operators.h"
#include "gdm/dataset.h"

namespace gdms::core {
namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

/// Two-sample peak dataset used across operator tests.
Dataset Peaks() {
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("p_value", AttrType::kDouble).ok());
  Dataset ds("PEAKS", schema);
  int32_t c1 = InternChrom("chr1");
  int32_t c2 = InternChrom("chr2");
  Sample s1(1);
  s1.metadata.Add("antibody", "CTCF");
  s1.metadata.Add("karyotype", "cancer");
  s1.regions = {{c1, 100, 300, Strand::kPlus, {Value(0.00001)}},
                {c1, 500, 800, Strand::kMinus, {Value(0.0002)}},
                {c2, 100, 250, Strand::kPlus, {Value(0.000003)}}};
  Sample s2(2);
  s2.metadata.Add("antibody", "POLR2A");
  s2.metadata.Add("sex", "female");
  s2.regions = {{c1, 150, 350, Strand::kNone, {Value(0.005)}},
                {c1, 700, 900, Strand::kNone, {Value(0.02)}},
                {c2, 300, 500, Strand::kNone, {Value(0.01)}},
                {c2, 450, 600, Strand::kNone, {Value(0.001)}}};
  s1.SortNow();
  s2.SortNow();
  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  EXPECT_TRUE(ds.Validate().ok());
  return ds;
}

/// Single-sample reference regions (promoter-like).
Dataset Refs() {
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("name", AttrType::kString).ok());
  Dataset ds("REFS", schema);
  int32_t c1 = InternChrom("chr1");
  int32_t c2 = InternChrom("chr2");
  Sample s(10);
  s.metadata.Add("annType", "promoter");
  s.regions = {{c1, 0, 200, Strand::kNone, {Value("r1")}},
               {c1, 600, 1000, Strand::kNone, {Value("r2")}},
               {c2, 0, 1000, Strand::kNone, {Value("r3")}}};
  s.SortNow();
  ds.AddSample(std::move(s));
  return ds;
}

TEST(SelectTest, MetaPredicateFiltersSamples) {
  SelectParams params;
  params.meta = MetaPredicate::Compare("antibody", CmpOp::kEq, "CTCF");
  Dataset out = Operators::Select(params, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).id, 1u);
  EXPECT_EQ(out.sample(0).regions.size(), 3u);
}

TEST(SelectTest, RegionPredicateFiltersRegions) {
  SelectParams params;
  params.region =
      RegionPredicate::Compare("p_value", CmpOp::kLe, Value(0.001));
  Dataset out = Operators::Select(params, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 2u);
  EXPECT_EQ(out.sample(0).regions.size(), 3u);  // all of sample 1
  EXPECT_EQ(out.sample(1).regions.size(), 1u);  // only the 0.001 region
}

TEST(SelectTest, FixedAttributePredicates) {
  SelectParams params;
  params.region = RegionPredicate::And(
      RegionPredicate::Compare("chr", CmpOp::kEq, Value("chr1")),
      RegionPredicate::Compare("left", CmpOp::kGe, Value(int64_t{400})));
  Dataset out = Operators::Select(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).regions.size(), 1u);  // chr1:500-800
  EXPECT_EQ(out.sample(1).regions.size(), 1u);  // chr1:700-900
}

TEST(SelectTest, StrandPredicate) {
  SelectParams params;
  params.region = RegionPredicate::Compare("strand", CmpOp::kEq, Value("+"));
  Dataset out = Operators::Select(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).regions.size(), 2u);
  EXPECT_EQ(out.sample(1).regions.size(), 0u);
}

TEST(SelectTest, UnknownAttributeErrors) {
  SelectParams params;
  params.region = RegionPredicate::Compare("nope", CmpOp::kEq, Value(1.0));
  EXPECT_FALSE(Operators::Select(params, Peaks()).ok());
}

TEST(SelectTest, MetaAndOrNot) {
  SelectParams params;
  params.meta = MetaPredicate::Or(
      MetaPredicate::Compare("karyotype", CmpOp::kEq, "cancer"),
      MetaPredicate::Compare("sex", CmpOp::kEq, "female"));
  EXPECT_EQ(Operators::Select(params, Peaks()).ValueOrDie().num_samples(), 2u);
  params.meta = MetaPredicate::Not(MetaPredicate::Exists("sex"));
  Dataset out = Operators::Select(params, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).id, 1u);
}

TEST(ProjectTest, KeepSubsetOfAttrs) {
  ProjectParams params;
  params.keep_attrs = {};  // drop the only variable attribute
  Dataset out = Operators::Project(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.schema().size(), 0u);
  EXPECT_TRUE(out.sample(0).regions[0].values.empty());
  EXPECT_TRUE(out.Validate().ok());
}

TEST(ProjectTest, NewAttrFromExpression) {
  ProjectParams params;
  params.keep_all = true;
  params.new_attrs.push_back(
      {"reg_len", RegionExpr::Attr("len")});
  params.new_attrs.push_back(
      {"score10", RegionExpr::Binary('*', RegionExpr::Attr("p_value"),
                                     RegionExpr::Constant(Value(10.0)))});
  Dataset out = Operators::Project(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.schema().size(), 3u);
  const auto& r = out.sample(0).regions[0];
  EXPECT_EQ(r.values[1].AsInt(), r.right - r.left);
  EXPECT_TRUE(out.Validate().ok());
}

TEST(ProjectTest, UnknownKeepErrors) {
  ProjectParams params;
  params.keep_attrs = {"ghost"};
  EXPECT_FALSE(Operators::Project(params, Peaks()).ok());
}

TEST(ProjectTest, DivisionByZeroYieldsNull) {
  ProjectParams params;
  params.new_attrs.push_back(
      {"bad", RegionExpr::Binary('/', RegionExpr::Attr("p_value"),
                                 RegionExpr::Constant(Value(0.0)))});
  Dataset out = Operators::Project(params, Peaks()).ValueOrDie();
  EXPECT_TRUE(out.sample(0).regions[0].values[0].is_null());
}

TEST(ExtendTest, AggregatesBecomeMetadata) {
  ExtendParams params;
  params.aggregates = {{"region_count", AggFunc::kCount, ""},
                       {"min_p", AggFunc::kMin, "p_value"}};
  Dataset out = Operators::Extend(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).metadata.FirstValue("region_count"), "3");
  EXPECT_EQ(out.sample(1).metadata.FirstValue("region_count"), "4");
  EXPECT_EQ(out.sample(0).metadata.FirstValue("min_p"), "3e-06");
}

TEST(ExtendTest, UnknownAttrErrors) {
  ExtendParams params;
  params.aggregates = {{"x", AggFunc::kSum, "ghost"}};
  EXPECT_FALSE(Operators::Extend(params, Peaks()).ok());
}

TEST(MergeTest, AllSamplesBecomeOne) {
  Dataset out = Operators::Merge(MergeParams{}, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).regions.size(), 7u);
  EXPECT_TRUE(out.sample(0).IsSorted());
  // Metadata union of both samples plus provenance.
  EXPECT_TRUE(out.sample(0).metadata.HasPair("antibody", "CTCF"));
  EXPECT_TRUE(out.sample(0).metadata.HasPair("antibody", "POLR2A"));
  EXPECT_TRUE(out.sample(0).metadata.Has("_provenance"));
}

TEST(MergeTest, GroupbySplitsByMetaValue) {
  MergeParams params;
  params.groupby = "antibody";
  Dataset out = Operators::Merge(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.num_samples(), 2u);
}

TEST(GroupTest, GroupsByAttributeWithAggregates) {
  GroupParams params;
  params.meta_attr = "antibody";
  params.aggregates = {{"n", AggFunc::kCount, ""}};
  Dataset out = Operators::Group(params, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 2u);
  // Each group holds one original sample here.
  EXPECT_EQ(out.sample(0).metadata.FirstValue("n"),
            std::to_string(out.sample(0).regions.size()));
}

TEST(GroupTest, RequiresAttribute) {
  EXPECT_FALSE(Operators::Group(GroupParams{}, Peaks()).ok());
}

TEST(GroupTest, DeduplicatesIdenticalRegions) {
  Dataset ds = Peaks();
  // Make both samples share one identical region and the same group key.
  ds.mutable_sample(0)->metadata.RemoveAttr("antibody");
  ds.mutable_sample(1)->metadata.RemoveAttr("antibody");
  ds.mutable_sample(0)->metadata.Add("antibody", "X");
  ds.mutable_sample(1)->metadata.Add("antibody", "X");
  GenomicRegion shared(InternChrom("chr1"), 42, 43, Strand::kNone,
                       {Value(1.0)});
  ds.mutable_sample(0)->regions.push_back(shared);
  ds.mutable_sample(1)->regions.push_back(shared);
  ds.mutable_sample(0)->SortNow();
  ds.mutable_sample(1)->SortNow();
  GroupParams params;
  params.meta_attr = "antibody";
  Dataset out = Operators::Group(params, ds).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).regions.size(), 8u);  // 3 + 4 + shared once
}

TEST(OrderTest, SortsByNumericMetaAndRanks) {
  Dataset ds = Peaks();
  ds.mutable_sample(0)->metadata.Add("quality", "7.5");
  ds.mutable_sample(1)->metadata.Add("quality", "12");
  OrderParams params;
  params.meta_attr = "quality";
  params.descending = true;
  Dataset out = Operators::Order(params, ds).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 2u);
  EXPECT_EQ(out.sample(0).id, 2u);  // 12 > 7.5 numerically
  EXPECT_EQ(out.sample(0).metadata.FirstValue("_rank"), "1");
}

TEST(OrderTest, TopLimitsAndMissingSortLast) {
  Dataset ds = Peaks();
  ds.mutable_sample(0)->metadata.Add("quality", "5");
  OrderParams params;
  params.meta_attr = "quality";
  params.top = 1;
  Dataset out = Operators::Order(params, ds).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  EXPECT_EQ(out.sample(0).id, 1u);  // sample 2 lacks quality -> last
}

TEST(UnionTest, MergesSchemasAndRemapsValues) {
  Dataset peaks = Peaks();
  Dataset refs = Refs();
  Dataset out = Operators::Union(peaks, refs).ValueOrDie();
  EXPECT_EQ(out.num_samples(), 3u);
  // Merged schema: p_value (left) + name (right).
  EXPECT_EQ(out.schema().size(), 2u);
  ASSERT_TRUE(out.schema().Contains("p_value"));
  ASSERT_TRUE(out.schema().Contains("name"));
  EXPECT_TRUE(out.Validate().ok());
  // Left samples: name is NULL; right samples: p_value is NULL.
  EXPECT_TRUE(out.sample(0).regions[0].values[1].is_null());
  EXPECT_TRUE(out.sample(2).regions[0].values[0].is_null());
  EXPECT_EQ(out.sample(2).regions[0].values[1].AsString(), "r1");
}

TEST(UnionTest, SharedAttributeAligns) {
  Dataset a = Refs();
  Dataset b = Refs();
  Dataset out = Operators::Union(a, b).ValueOrDie();
  EXPECT_EQ(out.schema().size(), 1u);  // name shared, not duplicated
  EXPECT_EQ(out.num_samples(), 2u);
  EXPECT_EQ(out.sample(1).regions[0].values[0].AsString(), "r1");
}

TEST(DifferenceTest, RemovesIntersectingRegions) {
  Dataset out =
      Operators::Difference(DifferenceParams{}, Refs(), Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  // r1 chr1:0-200 intersects peaks; r2 chr1:600-1000 intersects; r3
  // chr2:0-1000 intersects. All removed.
  EXPECT_EQ(out.sample(0).regions.size(), 0u);
}

TEST(DifferenceTest, KeepsNonIntersecting) {
  Dataset refs = Refs();
  // Shift r2 into a gap.
  refs.mutable_sample(0)->regions[1] =
      GenomicRegion(InternChrom("chr1"), 400, 450, Strand::kNone,
                    {Value("r2")});
  refs.mutable_sample(0)->SortNow();
  Dataset out =
      Operators::Difference(DifferenceParams{}, refs, Peaks()).ValueOrDie();
  ASSERT_EQ(out.sample(0).regions.size(), 1u);
  EXPECT_EQ(out.sample(0).regions[0].values[0].AsString(), "r2");
}

TEST(DifferenceTest, JoinbyRestrictsSubtrahend) {
  Dataset refs = Refs();
  refs.mutable_sample(0)->metadata.Add("antibody", "CTCF");
  DifferenceParams params;
  params.joinby = {"antibody"};
  // Only sample 1 (CTCF) of PEAKS participates; its regions cover r1 but a
  // gap remains at chr2 300-500 etc. r3 chr2:0-1000 still intersects sample1
  // chr2 region. r2 chr1:600-1000 intersects chr1:500-800. r1 intersects.
  Dataset out = Operators::Difference(params, refs, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).regions.size(), 0u);
  // With a non-matching joinby value nothing is subtracted.
  refs.mutable_sample(0)->metadata.RemoveAttr("antibody");
  refs.mutable_sample(0)->metadata.Add("antibody", "NONE");
  out = Operators::Difference(params, refs, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).regions.size(), 3u);
}

TEST(MapTest, DefaultCountPerRefRegion) {
  Dataset out = Operators::Map(MapParams{}, Refs(), Peaks()).ValueOrDie();
  // One output sample per (ref, exp) pair = 1 x 2.
  ASSERT_EQ(out.num_samples(), 2u);
  ASSERT_TRUE(out.schema().Contains("count"));
  // Sample for exp 1 (CTCF): r1 overlaps chr1:100-300 -> 1;
  // r2 (600-1000) overlaps 500-800 -> 1; r3 overlaps chr2:100-250 -> 1.
  const auto& s1 = out.sample(0);
  ASSERT_EQ(s1.regions.size(), 3u);
  EXPECT_EQ(s1.regions[0].values[1].AsInt(), 1);
  EXPECT_EQ(s1.regions[1].values[1].AsInt(), 1);
  EXPECT_EQ(s1.regions[2].values[1].AsInt(), 1);
  // Sample for exp 2: r1 overlaps 150-350 -> 1; r2 overlaps 700-900 -> 1;
  // r3 overlaps chr2 300-500 and 450-600 -> 2.
  const auto& s2 = out.sample(1);
  EXPECT_EQ(s2.regions[0].values[1].AsInt(), 1);
  EXPECT_EQ(s2.regions[1].values[1].AsInt(), 1);
  EXPECT_EQ(s2.regions[2].values[1].AsInt(), 2);
  EXPECT_TRUE(out.Validate().ok());
}

TEST(MapTest, CustomAggregates) {
  MapParams params;
  params.aggregates = {{"n", AggFunc::kCount, ""},
                       {"avg_p", AggFunc::kAvg, "p_value"},
                       {"max_p", AggFunc::kMax, "p_value"}};
  Dataset out = Operators::Map(params, Refs(), Peaks()).ValueOrDie();
  const auto& s2 = out.sample(1);
  // r3 maps peaks 0.01 and 0.001 of sample 2.
  EXPECT_EQ(s2.regions[2].values[1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(s2.regions[2].values[2].AsDouble(), (0.01 + 0.001) / 2);
  EXPECT_DOUBLE_EQ(s2.regions[2].values[3].AsDouble(), 0.01);
}

TEST(MapTest, EmptyRefRegionsGetZeroCountAndNullAvg) {
  Dataset refs = Refs();
  refs.mutable_sample(0)->regions = {
      GenomicRegion(InternChrom("chr1"), 5000, 6000, Strand::kNone,
                    {Value("far")})};
  MapParams params;
  params.aggregates = {{"n", AggFunc::kCount, ""},
                       {"avg_p", AggFunc::kAvg, "p_value"}};
  Dataset out = Operators::Map(params, refs, Peaks()).ValueOrDie();
  EXPECT_EQ(out.sample(0).regions[0].values[1].AsInt(), 0);
  EXPECT_TRUE(out.sample(0).regions[0].values[2].is_null());
}

TEST(MapTest, MetadataUnionAndProvenance) {
  Dataset out = Operators::Map(MapParams{}, Refs(), Peaks()).ValueOrDie();
  const auto& meta = out.sample(0).metadata;
  EXPECT_TRUE(meta.HasPair("annType", "promoter"));
  EXPECT_TRUE(meta.HasPair("antibody", "CTCF"));
  EXPECT_TRUE(meta.Has("_provenance"));
}

TEST(MapTest, JoinbyFiltersPairs) {
  Dataset refs = Refs();
  refs.mutable_sample(0)->metadata.Add("antibody", "CTCF");
  MapParams params;
  params.joinby = {"antibody"};
  Dataset out = Operators::Map(params, refs, Peaks()).ValueOrDie();
  EXPECT_EQ(out.num_samples(), 1u);
}

TEST(JoinTest, RequiresUpperBoundOrMd) {
  JoinParams params;  // no DLE/MD
  EXPECT_FALSE(Operators::Join(params, Refs(), Peaks()).ok());
}

TEST(JoinTest, DistanceWindowLeftOutput) {
  JoinParams params;
  params.predicate.max_dist = 250;
  params.predicate.has_upper = true;
  params.predicate.min_dist = 1;  // strictly non-overlapping
  Dataset out = Operators::Join(params, Refs(), Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 2u);
  // Schema is ref concat exp.
  EXPECT_EQ(out.schema().size(), 2u);
  // vs sample 1 every pair either overlaps (d < 1) or is 300 away: 0 pairs.
  // vs sample 2 exactly one pair is in [1, 250]: ref chr1:600-1000 against
  // peak chr1:150-350 at distance 250; the LEFT output keeps ref coords.
  EXPECT_EQ(out.sample(0).regions.size(), 0u);
  ASSERT_EQ(out.sample(1).regions.size(), 1u);
  EXPECT_EQ(out.sample(1).regions[0].left, 600);
  EXPECT_EQ(out.sample(1).regions[0].right, 1000);
}

TEST(JoinTest, OverlapWindowIntersectionOutput) {
  JoinParams params;
  params.predicate.max_dist = 0;
  params.predicate.has_upper = true;
  params.output = JoinOutput::kIntersection;
  Dataset out = Operators::Join(params, Refs(), Peaks()).ValueOrDie();
  // Intersections only for overlapping pairs.
  const auto& s1 = out.sample(0);
  ASSERT_EQ(s1.regions.size(), 3u);
  EXPECT_EQ(s1.regions[0].left, 100);   // r1 n chr1:100-300
  EXPECT_EQ(s1.regions[0].right, 200);
  EXPECT_TRUE(out.Validate().ok());
}

TEST(JoinTest, ContigOutputSpans) {
  JoinParams params;
  params.predicate.max_dist = 1000;
  params.predicate.has_upper = true;
  params.output = JoinOutput::kContig;
  Dataset out = Operators::Join(params, Refs(), Peaks()).ValueOrDie();
  for (const auto& s : out.samples()) {
    for (const auto& r : s.regions) {
      EXPECT_LE(r.left, r.right);
    }
  }
}

TEST(JoinTest, MdNearest) {
  JoinParams params;
  params.predicate.md_k = 1;
  Dataset out = Operators::Join(params, Refs(), Peaks()).ValueOrDie();
  // Each ref region joins exactly its nearest exp region per exp sample.
  EXPECT_EQ(out.sample(0).regions.size(), 3u);
  EXPECT_EQ(out.sample(1).regions.size(), 3u);
}

TEST(JoinTest, UpstreamFilter) {
  // Right regions must end before the (unstranded = plus-like) ref start.
  JoinParams params;
  params.predicate.max_dist = 100000;
  params.predicate.has_upper = true;
  params.predicate.upstream = true;
  Dataset out = Operators::Join(params, Refs(), Peaks()).ValueOrDie();
  for (const auto& s : out.samples()) {
    for (const auto& r : s.regions) {
      (void)r;
    }
  }
  // r2 (chr1:600-1000): upstream exps end <= 600: chr1:100-300 (s1),
  // chr1:500-800 overlaps so no; s2: 150-350 yes.
  ASSERT_GE(out.num_samples(), 2u);
  size_t upstream_pairs = out.sample(0).regions.size();
  EXPECT_EQ(upstream_pairs, 1u);  // only 100-300 upstream of r2 in s1
}

TEST(CoverTest, CoverCountsAcrossSamples) {
  CoverParams params;
  params.min_acc = 2;
  params.max_acc = -1;  // ANY
  Dataset out = Operators::Cover(params, Peaks()).ValueOrDie();
  ASSERT_EQ(out.num_samples(), 1u);
  // Overlaps between the two samples: chr1 150-300, chr1 700-800,
  // chr2 450-500 (the two chr2 regions of sample 2 overlap each other).
  ASSERT_EQ(out.sample(0).regions.size(), 3u);
  EXPECT_EQ(out.sample(0).regions[0].left, 150);
  EXPECT_EQ(out.sample(0).regions[0].right, 300);
  EXPECT_TRUE(out.Validate().ok());
}

TEST(CoverTest, HistogramCarriesAccIndex) {
  CoverParams params;
  params.variant = CoverVariant::kHistogram;
  params.min_acc = 1;
  params.max_acc = -1;
  Dataset out = Operators::Cover(params, Peaks()).ValueOrDie();
  ASSERT_TRUE(out.schema().Contains("acc_index"));
  int64_t max_acc = 0;
  for (const auto& r : out.sample(0).regions) {
    max_acc = std::max(max_acc, r.values[0].AsInt());
  }
  EXPECT_EQ(max_acc, 2);
}

TEST(CoverTest, AggregatesOverContributingRegions) {
  CoverParams params;
  params.min_acc = 2;
  params.max_acc = -1;
  params.aggregates = {{"n_inputs", AggFunc::kCount, ""},
                       {"avg_p", AggFunc::kAvg, "p_value"}};
  Dataset out = Operators::Cover(params, Peaks()).ValueOrDie();
  const auto& r0 = out.sample(0).regions[0];  // chr1:150-300
  EXPECT_EQ(r0.values[0].AsInt(), 2);         // two contributing peaks
  EXPECT_NEAR(r0.values[1].AsDouble(), (0.00001 + 0.005) / 2, 1e-12);
}

TEST(CoverTest, GroupbyProducesPerValueSamples) {
  CoverParams params;
  params.min_acc = 1;
  params.max_acc = -1;
  params.groupby = "antibody";
  Dataset out = Operators::Cover(params, Peaks()).ValueOrDie();
  EXPECT_EQ(out.num_samples(), 2u);
}

TEST(CoverTest, SummitAndFlatVariants) {
  CoverParams params;
  params.variant = CoverVariant::kSummit;
  params.min_acc = 1;
  params.max_acc = -1;
  Dataset summit = Operators::Cover(params, Peaks()).ValueOrDie();
  EXPECT_GT(summit.sample(0).regions.size(), 0u);
  params.variant = CoverVariant::kFlat;
  params.min_acc = 2;
  Dataset flat = Operators::Cover(params, Peaks()).ValueOrDie();
  // FLAT extends the chr1:150-300 cover to the full span of contributors.
  ASSERT_GE(flat.sample(0).regions.size(), 1u);
  EXPECT_EQ(flat.sample(0).regions[0].left, 100);
  EXPECT_EQ(flat.sample(0).regions[0].right, 350);
}

}  // namespace
}  // namespace gdms::core
