// Property-based sweeps over randomized datasets: algebraic invariants of
// the GMQL operators, round-trip identities of the codecs, and engine
// equivalence — each checked across many seeds with TEST_P.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/operators.h"
#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "engine/shuffle.h"
#include "interval/accumulation.h"
#include "interval/sweep.h"
#include "io/gdm_format.h"

namespace gdms {
namespace {

using core::Operators;
using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

/// A random dataset: `samples` samples of `regions` regions over 3 chroms,
/// with one double attribute and one (sometimes NULL) string attribute.
Dataset RandomDataset(uint64_t seed, size_t samples, size_t regions,
                      const char* name = "D") {
  Rng rng(seed);
  RegionSchema schema;
  EXPECT_TRUE(schema.AddAttr("score", AttrType::kDouble).ok());
  EXPECT_TRUE(schema.AddAttr("tag", AttrType::kString).ok());
  Dataset ds(name, schema);
  static const char* kChroms[] = {"chr1", "chr2", "chr3"};
  static const char* kCells[] = {"K562", "HeLa", "GM12878"};
  for (size_t s = 0; s < samples; ++s) {
    Sample sample(s + 1);
    sample.metadata.Add("cell", kCells[rng.Next() % 3]);
    sample.metadata.Add("rep", std::to_string(s % 2));
    for (size_t r = 0; r < regions; ++r) {
      int64_t left = rng.Uniform(0, 100000);
      GenomicRegion region(InternChrom(kChroms[rng.Next() % 3]), left,
                           left + rng.Uniform(1, 2000));
      region.strand = static_cast<Strand>(rng.Next() % 3);
      region.values.push_back(Value(rng.Normal(5.0, 2.0)));
      region.values.push_back(
          rng.Bernoulli(0.2) ? Value::Null()
                             : Value("t" + std::to_string(rng.Next() % 5)));
      sample.regions.push_back(std::move(region));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  EXPECT_TRUE(ds.Validate().ok());
  return ds;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --------------------------------------------------------- COVER family ---

TEST_P(PropertyTest, CoverOneAnyEqualsMergeTouching) {
  Dataset ds = RandomDataset(GetParam(), 3, 120);
  core::CoverParams params;
  params.min_acc = 1;
  params.max_acc = -1;
  Dataset cover = Operators::Cover(params, ds).ValueOrDie();
  // Pool all regions and merge-touching: identical intervals.
  std::vector<GenomicRegion> pooled;
  for (const auto& s : ds.samples()) {
    pooled.insert(pooled.end(), s.regions.begin(), s.regions.end());
  }
  gdm::SortRegions(&pooled);
  auto merged = interval::MergeTouching(pooled);
  const auto& got = cover.sample(0).regions;
  ASSERT_EQ(got.size(), merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(got[i].chrom, merged[i].chrom);
    EXPECT_EQ(got[i].left, merged[i].left);
    EXPECT_EQ(got[i].right, merged[i].right);
  }
}

TEST_P(PropertyTest, CoverRegionsDisjointSortedWithinBounds) {
  Dataset ds = RandomDataset(GetParam(), 4, 100);
  core::CoverParams params;
  params.min_acc = 2;
  params.max_acc = 3;
  Dataset cover = Operators::Cover(params, ds).ValueOrDie();
  const auto& regions = cover.sample(0).regions;
  EXPECT_TRUE(gdm::RegionsSorted(regions));
  for (size_t i = 1; i < regions.size(); ++i) {
    if (regions[i].chrom == regions[i - 1].chrom) {
      EXPECT_GE(regions[i].left, regions[i - 1].right);  // disjoint
    }
  }
}

TEST_P(PropertyTest, HistogramPartitionsCoverExactly) {
  // HISTOGRAM(1, ANY) segments tile exactly the COVER(1, ANY) area, and
  // their count-weighted length equals the total input base count.
  Dataset ds = RandomDataset(GetParam(), 3, 80);
  core::CoverParams hist;
  hist.variant = core::CoverVariant::kHistogram;
  hist.min_acc = 1;
  hist.max_acc = -1;
  Dataset histogram = Operators::Cover(hist, ds).ValueOrDie();
  size_t acc_idx = *histogram.schema().IndexOf("acc_index");
  int64_t weighted = 0;
  for (const auto& r : histogram.sample(0).regions) {
    weighted += r.length() * r.values[acc_idx].AsInt();
  }
  int64_t input_bases = 0;
  for (const auto& s : ds.samples()) {
    for (const auto& r : s.regions) input_bases += r.length();
  }
  EXPECT_EQ(weighted, input_bases);
}

TEST_P(PropertyTest, SummitsAreHistogramLocalMaxima) {
  Dataset ds = RandomDataset(GetParam(), 4, 60);
  core::CoverParams params;
  params.variant = core::CoverVariant::kSummit;
  params.min_acc = 1;
  params.max_acc = -1;
  Dataset summits = Operators::Cover(params, ds).ValueOrDie();
  params.variant = core::CoverVariant::kHistogram;
  Dataset histogram = Operators::Cover(params, ds).ValueOrDie();
  // Every summit coincides with a histogram segment.
  std::set<std::tuple<int32_t, int64_t, int64_t>> segments;
  for (const auto& r : histogram.sample(0).regions) {
    segments.insert({r.chrom, r.left, r.right});
  }
  for (const auto& r : summits.sample(0).regions) {
    EXPECT_TRUE(segments.count({r.chrom, r.left, r.right}))
        << r.CoordString();
  }
  EXPECT_LE(summits.sample(0).regions.size(),
            histogram.sample(0).regions.size());
}

// ------------------------------------------------------------------ MAP ---

TEST_P(PropertyTest, MapCountEqualsBruteForceOverlaps) {
  Dataset refs = RandomDataset(GetParam() * 31 + 1, 1, 50, "REFS");
  Dataset exps = RandomDataset(GetParam() * 31 + 2, 2, 70, "EXPS");
  Dataset mapped = Operators::Map(core::MapParams{}, refs, exps).ValueOrDie();
  size_t count_idx = *mapped.schema().IndexOf("count");
  ASSERT_EQ(mapped.num_samples(), 2u);
  for (size_t e = 0; e < 2; ++e) {
    const auto& out = mapped.sample(e);
    const auto& ref_regions = refs.sample(0).regions;
    ASSERT_EQ(out.regions.size(), ref_regions.size());
    for (size_t i = 0; i < ref_regions.size(); ++i) {
      int64_t brute = 0;
      for (const auto& er : exps.sample(e).regions) {
        if (ref_regions[i].Overlaps(er)) ++brute;
      }
      EXPECT_EQ(out.regions[i].values[count_idx].AsInt(), brute)
          << "ref " << i << " exp " << e;
    }
  }
}

TEST_P(PropertyTest, MapAggregatesMatchBruteForce) {
  Dataset refs = RandomDataset(GetParam() * 17 + 3, 1, 40, "REFS");
  Dataset exps = RandomDataset(GetParam() * 17 + 4, 1, 60, "EXPS");
  core::MapParams params;
  params.aggregates = {{"s", core::AggFunc::kSum, "score"},
                       {"mx", core::AggFunc::kMax, "score"},
                       {"bag", core::AggFunc::kBag, "tag"}};
  Dataset mapped = Operators::Map(params, refs, exps).ValueOrDie();
  size_t s_idx = *mapped.schema().IndexOf("s");
  size_t mx_idx = *mapped.schema().IndexOf("mx");
  const auto& out = mapped.sample(0);
  for (size_t i = 0; i < refs.sample(0).regions.size(); ++i) {
    const auto& rr = refs.sample(0).regions[i];
    double sum = 0;
    double mx = -1e300;
    size_t n = 0;
    for (const auto& er : exps.sample(0).regions) {
      if (!rr.Overlaps(er)) continue;
      ++n;
      double v = er.values[0].AsDouble();
      sum += v;
      mx = std::max(mx, v);
    }
    if (n == 0) {
      EXPECT_TRUE(out.regions[i].values[s_idx].is_null());
      EXPECT_TRUE(out.regions[i].values[mx_idx].is_null());
    } else {
      EXPECT_NEAR(out.regions[i].values[s_idx].AsDouble(), sum, 1e-9);
      EXPECT_NEAR(out.regions[i].values[mx_idx].AsDouble(), mx, 1e-12);
    }
  }
}

// ----------------------------------------------------------- DIFFERENCE ---

TEST_P(PropertyTest, DifferencePartitionsLeftRegions) {
  Dataset left = RandomDataset(GetParam() * 7 + 5, 2, 60, "L");
  Dataset right = RandomDataset(GetParam() * 7 + 6, 2, 60, "R");
  Dataset kept =
      Operators::Difference(core::DifferenceParams{}, left, right).ValueOrDie();
  // Pool right regions.
  std::vector<GenomicRegion> negatives;
  for (const auto& s : right.samples()) {
    negatives.insert(negatives.end(), s.regions.begin(), s.regions.end());
  }
  gdm::SortRegions(&negatives);
  for (size_t si = 0; si < left.num_samples(); ++si) {
    const auto& orig = left.sample(si).regions;
    const auto& now = kept.sample(si).regions;
    // Every kept region is original and overlap-free; every dropped one
    // overlaps some negative.
    EXPECT_LE(now.size(), orig.size());
    auto flags = interval::ExistsOverlap(orig, negatives);
    size_t expected_kept = 0;
    for (size_t i = 0; i < orig.size(); ++i) {
      if (!flags[i]) ++expected_kept;
    }
    EXPECT_EQ(now.size(), expected_kept);
    for (const auto& r : now) {
      for (const auto& neg : negatives) {
        EXPECT_FALSE(r.Overlaps(neg)) << r.CoordString();
      }
    }
  }
}

// ---------------------------------------------------------------- UNION ---

TEST_P(PropertyTest, UnionPreservesRegionsAndValidates) {
  Dataset a = RandomDataset(GetParam() * 3 + 7, 2, 40, "A");
  Dataset b = RandomDataset(GetParam() * 3 + 8, 3, 30, "B");
  Dataset u = Operators::Union(a, b).ValueOrDie();
  EXPECT_EQ(u.num_samples(), a.num_samples() + b.num_samples());
  EXPECT_EQ(u.TotalRegions(), a.TotalRegions() + b.TotalRegions());
  EXPECT_TRUE(u.Validate().ok());
  // Same schemas share attributes: merged width equals the originals'.
  EXPECT_EQ(u.schema().size(), a.schema().size());
}

// ----------------------------------------------------------------- JOIN ---

TEST_P(PropertyTest, JoinLeftOutputCoordsComeFromLeft) {
  Dataset left = RandomDataset(GetParam() * 11 + 9, 1, 30, "L");
  Dataset right = RandomDataset(GetParam() * 11 + 10, 1, 50, "R");
  core::JoinParams params;
  params.predicate.max_dist = 5000;
  params.predicate.has_upper = true;
  Dataset joined = Operators::Join(params, left, right).ValueOrDie();
  std::set<std::tuple<int32_t, int64_t, int64_t>> left_coords;
  for (const auto& r : left.sample(0).regions) {
    left_coords.insert({r.chrom, r.left, r.right});
  }
  for (const auto& r : joined.sample(0).regions) {
    EXPECT_TRUE(left_coords.count({r.chrom, r.left, r.right}))
        << r.CoordString();
  }
}

TEST_P(PropertyTest, JoinPairCountMatchesBruteForce) {
  Dataset left = RandomDataset(GetParam() * 13 + 11, 1, 30, "L");
  Dataset right = RandomDataset(GetParam() * 13 + 12, 1, 40, "R");
  core::JoinParams params;
  params.predicate.min_dist = 10;
  params.predicate.max_dist = 3000;
  params.predicate.has_upper = true;
  Dataset joined = Operators::Join(params, left, right).ValueOrDie();
  size_t brute = 0;
  for (const auto& lr : left.sample(0).regions) {
    for (const auto& rr : right.sample(0).regions) {
      int64_t d = lr.DistanceTo(rr);
      if (d >= 10 && d <= 3000) ++brute;
    }
  }
  EXPECT_EQ(joined.sample(0).regions.size(), brute);
}

// --------------------------------------------------------------- codecs ---

TEST_P(PropertyTest, GdmFormatRoundTrip) {
  Dataset ds = RandomDataset(GetParam() * 19 + 13, 3, 40, "RT");
  std::string once = io::WriteGdmString(ds);
  Dataset back = io::ReadGdmString(once).ValueOrDie();
  EXPECT_EQ(io::WriteGdmString(back), once);
  EXPECT_EQ(back.TotalRegions(), ds.TotalRegions());
  EXPECT_EQ(back.TotalMetadata(), ds.TotalMetadata());
}

TEST_P(PropertyTest, RegionCodecRoundTrip) {
  Dataset ds = RandomDataset(GetParam() * 23 + 14, 1, 60, "RC");
  const auto& regions = ds.sample(0).regions;
  std::string buf;
  engine::RegionCodec::Encode(regions, 0, regions.size(), &buf);
  auto back = engine::RegionCodec::Decode(buf).ValueOrDie();
  ASSERT_EQ(back.size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ(back[i].left, regions[i].left);
    EXPECT_EQ(back[i].strand, regions[i].strand);
    ASSERT_EQ(back[i].values.size(), regions[i].values.size());
    for (size_t v = 0; v < back[i].values.size(); ++v) {
      EXPECT_EQ(back[i].values[v].Compare(regions[i].values[v]), 0);
    }
  }
}

// --------------------------------------------------- engine equivalence ---

TEST_P(PropertyTest, ParallelEnginesMatchReferenceOnRandomData) {
  const char* query =
      "S = SELECT(cell == 'K562'; region: score >= 4) D;\n"
      "M = MAP(n AS COUNT, avg AS AVG(score)) REFS D;\n"
      "C = COVER(2, ANY) D;\n"
      "J = JOIN(DLE(2000); INT) REFS D;\n"
      "MATERIALIZE S; MATERIALIZE M; MATERIALIZE C; MATERIALIZE J;\n";
  auto run = [&](core::Executor* executor) {
    core::QueryRunner runner =
        executor ? core::QueryRunner(executor) : core::QueryRunner();
    runner.RegisterDataset(RandomDataset(GetParam() * 29 + 15, 3, 80, "D"));
    runner.RegisterDataset(RandomDataset(GetParam() * 29 + 16, 1, 40, "REFS"));
    return runner.Run(query).ValueOrDie();
  };
  auto reference = run(nullptr);
  for (auto backend :
       {engine::BackendKind::kPipelined, engine::BackendKind::kMaterialized}) {
    engine::EngineOptions options;
    options.backend = backend;
    options.threads = 3;
    options.bin_size = 20000;
    engine::ParallelExecutor executor(options);
    auto parallel = run(&executor);
    ASSERT_EQ(parallel.size(), reference.size());
    for (const auto& [name, ds] : reference) {
      const Dataset& other = parallel.at(name);
      ASSERT_EQ(other.num_samples(), ds.num_samples()) << name;
      EXPECT_EQ(other.TotalRegions(), ds.TotalRegions()) << name;
      for (const auto& s : ds.samples()) {
        const Sample* os = other.FindSample(s.id);
        ASSERT_NE(os, nullptr);
        ASSERT_EQ(os->regions.size(), s.regions.size()) << name;
        for (size_t i = 0; i < s.regions.size(); ++i) {
          EXPECT_EQ(os->regions[i].left, s.regions[i].left);
          for (size_t v = 0; v < s.regions[i].values.size(); ++v) {
            EXPECT_EQ(os->regions[i].values[v].Compare(s.regions[i].values[v]),
                      0)
                << name;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------ optimizer ---

TEST_P(PropertyTest, OptimizerNeverChangesResults) {
  const char* query =
      "A = SELECT(cell == 'K562') D;\n"
      "B = SELECT(rep == '0') A;\n"
      "U = UNION() D E;\n"
      "F = SELECT(cell == 'HeLa') U;\n"
      "M1 = MAP(n AS COUNT) B D;\n"
      "M2 = MAP(n AS COUNT) B D;\n"
      "MATERIALIZE F; MATERIALIZE M1; MATERIALIZE M2;\n";
  auto run = [&](bool optimize) {
    core::QueryRunner runner;
    runner.set_optimize(optimize);
    runner.RegisterDataset(RandomDataset(GetParam() * 37 + 17, 4, 50, "D"));
    runner.RegisterDataset(RandomDataset(GetParam() * 37 + 18, 3, 50, "E"));
    return runner.Run(query).ValueOrDie();
  };
  auto off = run(false);
  auto on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (const auto& [name, ds] : off) {
    EXPECT_EQ(on.at(name).TotalRegions(), ds.TotalRegions()) << name;
    EXPECT_EQ(on.at(name).num_samples(), ds.num_samples()) << name;
  }
}

}  // namespace
}  // namespace gdms
