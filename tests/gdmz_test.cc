// .gdmz binary format tests: round-trip fidelity against the text format,
// rejection of truncated and corrupted documents (exercised under
// ASan/UBSan in CI), framing of concatenated documents, and the file
// reader. The fidelity contract is "text-equivalent": a dataset that has
// been through one text round-trip (the decimal-6 double grid) must survive
// a .gdmz round-trip byte-exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "sim/generators.h"

namespace gdms::io {
namespace {

/// A mixed-type dataset snapped to the text format's value grid, so both
/// serializations are exact round-trips of it.
gdm::Dataset TextStableDataset() {
  auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 4;
  popt.peaks_per_sample = 600;
  gdm::Dataset raw = sim::GeneratePeakDataset(genome, popt, 11);
  auto round = ReadGdmString(WriteGdmString(raw));
  EXPECT_TRUE(round.ok()) << round.status().ToString();
  return round.value();
}

TEST(GdmzTest, RoundTripMatchesTextFormat) {
  gdm::Dataset base = TextStableDataset();
  std::string text = WriteGdmString(base);
  std::string blob = WriteGdmzString(base);
  ASSERT_TRUE(LooksLikeGdmz(blob));
  auto framed = GdmzFramedSize(blob);
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed.value(), blob.size());

  auto back = ReadGdmzString(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(WriteGdmString(back.value()), text);
  EXPECT_EQ(back.value().name(), base.name());
}

TEST(GdmzTest, CompressesVersusText) {
  gdm::Dataset base = TextStableDataset();
  std::string text = WriteGdmString(base);
  std::string blob = WriteGdmzString(base);
  // The headline claim is measured on the E7 corpus in EXPERIMENTS.md; this
  // guards against encoding regressions on worst-case random-double data.
  EXPECT_LT(blob.size() * 2, text.size());
}

TEST(GdmzTest, EmptyAndEdgeDatasets) {
  // Empty dataset.
  gdm::RegionSchema schema;
  gdm::Dataset empty("EMPTY", schema);
  auto back = ReadGdmzString(WriteGdmzString(empty));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().num_samples(), 0u);

  // Sample with no regions, metadata only; plus wide coordinates and nulls.
  ASSERT_TRUE(schema.AddAttr("v", gdm::AttrType::kDouble).ok());
  ASSERT_TRUE(schema.AddAttr("t", gdm::AttrType::kString).ok());
  gdm::Dataset edge("EDGE", schema);
  gdm::Sample meta_only(1);
  meta_only.metadata.Add("k", "v with spaces");
  edge.AddSample(std::move(meta_only));
  gdm::Sample wide(2);
  wide.metadata.Add("k", "v2");
  gdm::GenomicRegion r(gdm::InternChrom("chr1"), 100, int64_t{1} << 34,
                       gdm::Strand::kMinus);
  r.values = {gdm::Value::Null(), gdm::Value("tag")};
  wide.regions.push_back(r);
  wide.SortNow();
  edge.AddSample(std::move(wide));
  ASSERT_TRUE(edge.Validate().ok());

  auto back2 = ReadGdmzString(WriteGdmzString(edge));
  ASSERT_TRUE(back2.ok()) << back2.status().ToString();
  EXPECT_EQ(WriteGdmString(back2.value()), WriteGdmString(edge));
  EXPECT_EQ(back2.value().samples()[1].regions[0].right, int64_t{1} << 34);
}

TEST(GdmzTest, TruncationIsRejectedEverywhere) {
  gdm::Dataset base = TextStableDataset();
  std::string blob = WriteGdmzString(base);
  // Every prefix must fail cleanly: exhaustive near the header, sampled
  // beyond it.
  for (size_t cut = 0; cut < blob.size(); cut = cut < 64 ? cut + 1 : cut + 97) {
    auto r = ReadGdmzBytes(std::string_view(blob.data(), cut));
    EXPECT_FALSE(r.ok()) << "truncation to " << cut << " bytes accepted";
  }
}

TEST(GdmzTest, HeaderCorruptionIsRejectedOrSafe) {
  gdm::Dataset base = TextStableDataset();
  std::string blob = WriteGdmzString(base);
  std::string text = WriteGdmString(base);
  // Flip each header byte: the reader must either reject the document or
  // (for don't-care bits) still decode the original — never crash or read
  // out of bounds.
  for (size_t i = 0; i < kGdmzHeaderSize; ++i) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string bad = blob;
      bad[i] = static_cast<char>(static_cast<uint8_t>(bad[i]) ^ bit);
      auto r = ReadGdmzBytes(bad);
      if (r.ok()) {
        EXPECT_EQ(WriteGdmString(r.value()), text)
            << "header byte " << i << " flip decoded to different data";
      }
    }
  }
}

TEST(GdmzTest, BodyCorruptionNeverCrashes) {
  gdm::Dataset base = TextStableDataset();
  std::string blob = WriteGdmzString(base);
  std::mt19937 rng(5);
  std::uniform_int_distribution<size_t> pos(kGdmzHeaderSize, blob.size() - 1);
  for (int round = 0; round < 200; ++round) {
    std::string bad = blob;
    bad[pos(rng)] ^= 0x5a;
    auto r = ReadGdmzBytes(bad);  // any Status is fine; no crash, no UB
    if (r.ok()) {
      r.value().Validate().ok();  // decoded data must at least be walkable
    }
  }
}

TEST(GdmzTest, ConcatenatedDocumentsFrameCleanly) {
  gdm::Dataset a = TextStableDataset();
  gdm::RegionSchema schema;
  gdm::Dataset b("SECOND", schema);
  gdm::Sample s(1);
  s.metadata.Add("x", "y");
  b.AddSample(std::move(s));

  std::string payload = WriteGdmzString(a) + WriteGdmzString(b);
  std::string_view rest = payload;
  auto framed = GdmzFramedSize(rest);
  ASSERT_TRUE(framed.ok());
  size_t first = static_cast<size_t>(framed.value());
  ASSERT_GT(first, size_t{0});
  ASSERT_LT(first, payload.size());
  auto da = ReadGdmzBytes(rest.substr(0, first));
  ASSERT_TRUE(da.ok());
  EXPECT_EQ(WriteGdmString(da.value()), WriteGdmString(a));
  auto db = ReadGdmzBytes(rest.substr(first));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().name(), "SECOND");
}

TEST(GdmzTest, FileRoundTripViaOpenGdmz) {
  gdm::Dataset base = TextStableDataset();
  std::string blob = WriteGdmzString(base);
  std::string path = ::testing::TempDir() + "gdmz_test_file.gdmz";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  auto ds = OpenGdmz(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(WriteGdmString(ds.value()), WriteGdmString(base));
  std::remove(path.c_str());

  EXPECT_FALSE(OpenGdmz(::testing::TempDir() + "no_such_file.gdmz").ok());
}

}  // namespace
}  // namespace gdms::io
