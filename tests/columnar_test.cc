// Columnar storage and batch-kernel tests: RegionColumns round-trips, the
// batch sweeps against their row-based references (identical matches, same
// emission order), engine-level columnar-vs-row equality, and the
// thread-safety of the lazy per-sample caches (run under `ctest -L tsan`).

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/runner.h"
#include "engine/parallel_executor.h"
#include "gdm/region_columns.h"
#include "interval/accumulation.h"
#include "interval/batch.h"
#include "interval/sweep.h"
#include "io/gdm_format.h"
#include "sim/generators.h"

namespace gdms {
namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::InternChrom;
using gdm::RegionColumns;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

std::vector<GenomicRegion> RandomRegions(std::mt19937* rng, size_t n,
                                         int chroms, int64_t span,
                                         int64_t max_len) {
  std::uniform_int_distribution<int> chrom_d(0, chroms - 1);
  std::uniform_int_distribution<int64_t> left_d(0, span);
  std::uniform_int_distribution<int64_t> len_d(0, max_len);
  std::vector<GenomicRegion> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string chrom = "chr" + std::to_string(chrom_d(*rng) + 1);
    int64_t left = left_d(*rng);
    out.emplace_back(InternChrom(chrom), left, left + len_d(*rng));
  }
  gdm::SortRegions(&out);
  return out;
}

interval::CoordView WholeView(const RegionColumns& cols) {
  return interval::CoordView::Of(cols, 0, cols.size());
}

// ----------------------------------------------------------- RegionColumns

TEST(RegionColumnsTest, RoundTripsAllValueTypes) {
  RegionSchema schema;
  ASSERT_TRUE(schema.AddAttr("i", AttrType::kInt).ok());
  ASSERT_TRUE(schema.AddAttr("d", AttrType::kDouble).ok());
  ASSERT_TRUE(schema.AddAttr("s", AttrType::kString).ok());
  ASSERT_TRUE(schema.AddAttr("b", AttrType::kBool).ok());

  std::vector<GenomicRegion> regions;
  GenomicRegion a(InternChrom("chr1"), 10, 20, Strand::kPlus);
  a.values = {Value(int64_t{42}), Value(2.5), Value("peak_a"), Value(true)};
  GenomicRegion b(InternChrom("chr1"), 15, 30, Strand::kMinus);
  b.values = {Value::Null(), Value(-1.25), Value::Null(), Value(false)};
  GenomicRegion c(InternChrom("chr2"), 5, 5, Strand::kNone);
  c.values = {Value(int64_t{-7}), Value::Null(), Value("peak_a"),
              Value::Null()};
  regions = {a, b, c};
  gdm::SortRegions(&regions);

  RegionColumns cols = RegionColumns::Build(regions, schema);
  EXPECT_TRUE(cols.narrow());
  EXPECT_EQ(cols.size(), 3u);
  ASSERT_EQ(cols.chunks().size(), 2u);
  EXPECT_EQ(cols.chunks()[0].chrom, InternChrom("chr1"));
  EXPECT_EQ(cols.chunks()[0].end, 2u);
  EXPECT_EQ(cols.MaxLen(InternChrom("chr1")), 15);
  EXPECT_EQ(cols.MaxLen(InternChrom("chr2")), 0);
  // The shared string interns once in the dictionary.
  EXPECT_EQ(cols.attr(2).dict().size(), 1u);

  std::vector<GenomicRegion> back = cols.ToRegions();
  ASSERT_EQ(back.size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ(back[i].chrom, regions[i].chrom);
    EXPECT_EQ(back[i].left, regions[i].left);
    EXPECT_EQ(back[i].right, regions[i].right);
    EXPECT_EQ(back[i].strand, regions[i].strand);
    ASSERT_EQ(back[i].values.size(), regions[i].values.size());
    for (size_t v = 0; v < regions[i].values.size(); ++v) {
      EXPECT_EQ(back[i].values[v], regions[i].values[v])
          << "row " << i << " attr " << v;
    }
  }
}

TEST(RegionColumnsTest, WideCoordinatesEscapeToInt64) {
  RegionSchema schema;
  std::vector<GenomicRegion> regions;
  regions.emplace_back(InternChrom("chr1"), 100,
                       int64_t{1} << 33);  // beyond int32
  RegionColumns cols = RegionColumns::Build(regions, schema);
  EXPECT_FALSE(cols.narrow());
  EXPECT_EQ(cols.right(0), int64_t{1} << 33);
  auto back = cols.ToRegions();
  EXPECT_EQ(back[0].right, int64_t{1} << 33);
}

TEST(RegionColumnsTest, ChunkDirectoryMatchesChromIndex) {
  std::mt19937 rng(7);
  Sample s(1);
  s.regions = RandomRegions(&rng, 500, 5, 1000000, 5000);
  RegionSchema schema;
  const RegionColumns& cols = s.columns(schema);
  const auto& slices = s.chrom_index().slices();
  ASSERT_EQ(cols.chunks().size(), slices.size());
  for (size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(cols.chunks()[i].chrom, slices[i].chrom);
    EXPECT_EQ(cols.chunks()[i].begin, slices[i].begin);
    EXPECT_EQ(cols.chunks()[i].end, slices[i].end);
    EXPECT_EQ(cols.chunks()[i].max_len, s.chrom_index().MaxLen(slices[i].chrom));
  }
}

TEST(RegionColumnsTest, CacheInvalidatesOnMutation) {
  Sample s(1);
  s.regions.emplace_back(InternChrom("chr1"), 0, 10);
  RegionSchema schema;
  const RegionColumns* first = &s.columns(schema);
  EXPECT_EQ(first, &s.columns(schema));  // cached
  s.regions.emplace_back(InternChrom("chr1"), 5, 15);
  s.SortNow();
  const RegionColumns& rebuilt = s.columns(schema);
  EXPECT_EQ(rebuilt.size(), 2u);
}

// ------------------------------------------------------------ batch kernels

TEST(BatchKernelTest, CollectOverlapsMatchesRowJoinOrder) {
  std::mt19937 rng(11);
  for (int round = 0; round < 20; ++round) {
    auto all_refs = RandomRegions(&rng, 200, 3, 100000, 3000);
    auto all_exps = RandomRegions(&rng, 300, 3, 100000, 3000);
    RegionSchema schema;
    RegionColumns rcols = RegionColumns::Build(all_refs, schema);
    RegionColumns ecols = RegionColumns::Build(all_exps, schema);

    // Row reference, chunk by chromosome like the engine does.
    for (const auto& rc : rcols.chunks()) {
      const gdm::ColumnChunk* ec = ecols.FindChunk(rc.chrom);
      size_t eb = ec == nullptr ? 0 : ec->begin;
      size_t ee = ec == nullptr ? 0 : ec->end;
      std::vector<GenomicRegion> refs(all_refs.begin() + rc.begin,
                                      all_refs.begin() + rc.end);
      std::vector<GenomicRegion> exps(all_exps.begin() + eb,
                                      all_exps.begin() + ee);
      std::vector<std::pair<size_t, size_t>> row_pairs;
      interval::OverlapJoin(refs, exps, [&](size_t i, size_t a) {
        row_pairs.emplace_back(i, a);
      });

      std::vector<interval::MatchPair> batch;
      interval::CollectOverlaps(
          interval::CoordView::Of(rcols, rc.begin, rc.end),
          interval::CoordView::Of(ecols, eb, ee), &batch);
      ASSERT_EQ(batch.size(), row_pairs.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].ref, row_pairs[i].first);
        EXPECT_EQ(batch[i].exp, row_pairs[i].second);
      }
    }
  }
}

TEST(BatchKernelTest, ExistsOverlapMatchesRowKernel) {
  std::mt19937 rng(13);
  for (int round = 0; round < 20; ++round) {
    auto refs = RandomRegions(&rng, 150, 1, 50000, 2000);
    auto exps = RandomRegions(&rng, 100, 1, 50000, 2000);
    RegionSchema schema;
    RegionColumns rcols = RegionColumns::Build(refs, schema);
    RegionColumns ecols = RegionColumns::Build(exps, schema);
    auto row_flags = interval::ExistsOverlap(refs, exps);
    std::vector<char> batch_flags(refs.size(), 0);
    interval::ExistsOverlapInto(WholeView(rcols), WholeView(ecols), 0,
                                &batch_flags);
    for (size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(static_cast<bool>(batch_flags[i]),
                static_cast<bool>(row_flags[i]))
          << "ref " << i;
    }
  }
}

TEST(BatchKernelTest, ProfileFromCoordsMatchesRowProfile) {
  std::mt19937 rng(17);
  for (int round = 0; round < 20; ++round) {
    auto regions = RandomRegions(&rng, 200, 1, 20000, 500);
    auto row_profile = interval::AccumulationProfile(regions);
    std::vector<int64_t> lefts, rights;
    for (const auto& r : regions) {
      lefts.push_back(r.left);
      rights.push_back(r.right);
    }
    std::vector<interval::AccSegment> batch_profile;
    interval::ProfileFromCoords(regions.empty() ? 0 : regions[0].chrom,
                                lefts.data(), rights.data(), lefts.size(),
                                &batch_profile);
    ASSERT_EQ(batch_profile.size(), row_profile.size());
    for (size_t i = 0; i < row_profile.size(); ++i) {
      EXPECT_EQ(batch_profile[i].chrom, row_profile[i].chrom);
      EXPECT_EQ(batch_profile[i].left, row_profile[i].left);
      EXPECT_EQ(batch_profile[i].right, row_profile[i].right);
      EXPECT_EQ(batch_profile[i].count, row_profile[i].count);
    }
  }
}

TEST(BatchKernelTest, NearestKViewMatchesRowKernel) {
  std::mt19937 rng(19);
  for (int round = 0; round < 10; ++round) {
    auto refs = RandomRegions(&rng, 80, 1, 200000, 1000);
    auto exps = RandomRegions(&rng, 120, 1, 200000, 1000);
    RegionSchema schema;
    RegionColumns rcols = RegionColumns::Build(refs, schema);
    RegionColumns ecols = RegionColumns::Build(exps, schema);
    for (size_t k : {1u, 3u}) {
      std::vector<std::pair<size_t, size_t>> row_pairs, batch_pairs;
      interval::NearestK(refs, exps, k, [&](size_t i, size_t a) {
        row_pairs.emplace_back(i, a);
      });
      interval::NearestKView(WholeView(rcols), WholeView(ecols), k,
                             [&](size_t i, size_t a) {
                               batch_pairs.emplace_back(i, a);
                             });
      EXPECT_EQ(batch_pairs, row_pairs);
    }
  }
}

// --------------------------------------------------- engine equivalence ---

/// Runs one GMQL program columnar and row-wise on the same sources and
/// expects byte-identical text serializations of every output.
void ExpectColumnarEquals(const std::string& gmql,
                          const std::vector<Dataset>& sources,
                          size_t threads = 3) {
  std::map<std::string, std::string> texts[2];
  for (int columnar = 0; columnar < 2; ++columnar) {
    engine::EngineOptions opt;
    opt.threads = threads;
    engine::ParallelExecutor exec(opt);
    core::QueryRunner runner(&exec);
    runner.set_columnar(columnar == 1);
    for (const auto& ds : sources) runner.RegisterDataset(ds);
    auto results = runner.Run(gmql);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    for (const auto& [name, ds] : results.value()) {
      texts[columnar][name] = io::WriteGdmString(ds);
    }
    if (columnar == 1) {
      EXPECT_GT(exec.trace().columnar_tasks.load(), 0u)
          << "columnar path not taken for: " << gmql;
    }
  }
  EXPECT_EQ(texts[0], texts[1]) << gmql;
}

std::vector<Dataset> SimSources() {
  auto genome = gdm::GenomeAssembly::HumanLike(4, 20000000);
  sim::PeakDatasetOptions popt;
  popt.num_samples = 5;
  popt.peaks_per_sample = 800;
  std::vector<Dataset> out;
  out.push_back(sim::GeneratePeakDataset(genome, popt, 3));
  auto catalog = sim::GenerateGenes(genome, 200, 3);
  out.push_back(sim::GenerateAnnotations(genome, catalog, {}, 3));
  return out;
}

TEST(ColumnarEngineTest, MapEquivalence) {
  ExpectColumnarEquals(
      "R = MAP(n AS COUNT, avg_s AS AVG(signal), mx AS MAX(signal), "
      "sd AS STD(signal), sm AS SUM(score), mn AS MIN(p_value), "
      "nn AS COUNT(name)) ANNOTATIONS ENCODE; MATERIALIZE R;",
      SimSources());
}

TEST(ColumnarEngineTest, MapStringAggregateEquivalence) {
  // MIN/MAX over a STRING column: non-null counting without numerics.
  ExpectColumnarEquals(
      "R = MAP(m AS MIN(name), s AS SUM(name)) ANNOTATIONS ENCODE; "
      "MATERIALIZE R;",
      SimSources());
}

TEST(ColumnarEngineTest, DifferenceEquivalence) {
  ExpectColumnarEquals(
      "D = DIFFERENCE() ANNOTATIONS ENCODE; MATERIALIZE D;", SimSources());
}

TEST(ColumnarEngineTest, CoverVariantsEquivalence) {
  ExpectColumnarEquals("C = COVER(2, ANY) ENCODE; MATERIALIZE C;",
                       SimSources());
  ExpectColumnarEquals("H = HISTOGRAM(1, ANY) ENCODE; MATERIALIZE H;",
                       SimSources());
  ExpectColumnarEquals("S = SUMMIT(2, 5) ENCODE; MATERIALIZE S;",
                       SimSources());
}

TEST(ColumnarEngineTest, MedianFallsBackToRowPath) {
  engine::EngineOptions opt;
  opt.threads = 2;
  engine::ParallelExecutor exec(opt);
  core::QueryRunner runner(&exec);
  for (const auto& ds : SimSources()) runner.RegisterDataset(ds);
  auto results = runner.Run(
      "R = MAP(md AS MEDIAN(signal)) ANNOTATIONS ENCODE; MATERIALIZE R;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(exec.trace().columnar_tasks.load(), 0u);
}

TEST(ColumnarEngineTest, NullValuesEquivalence) {
  // Hand-built exp dataset with NULL-heavy columns.
  RegionSchema schema;
  ASSERT_TRUE(schema.AddAttr("v", AttrType::kDouble).ok());
  ASSERT_TRUE(schema.AddAttr("tag", AttrType::kString).ok());
  Dataset exp("EXP", schema);
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> val(0, 100);
  for (int s = 0; s < 3; ++s) {
    Sample smp(s + 1);
    smp.metadata.Add("k", "v");
    auto regions = RandomRegions(&rng, 150, 2, 50000, 1500);
    for (size_t i = 0; i < regions.size(); ++i) {
      regions[i].values = {
          i % 3 == 0 ? Value::Null() : Value(val(rng)),
          i % 4 == 0 ? Value::Null() : Value("t" + std::to_string(i % 5))};
    }
    smp.regions = std::move(regions);
    smp.SortNow();
    exp.AddSample(std::move(smp));
  }
  ASSERT_TRUE(exp.Validate().ok());

  RegionSchema ref_schema;
  Dataset ref("REF", ref_schema);
  Sample rs(1);
  rs.metadata.Add("k", "v");
  rs.regions = RandomRegions(&rng, 100, 2, 50000, 3000);
  rs.SortNow();
  ref.AddSample(std::move(rs));
  ASSERT_TRUE(ref.Validate().ok());

  ExpectColumnarEquals(
      "R = MAP(n AS COUNT, a AS AVG(v), sd AS STD(v), nv AS COUNT(v), "
      "nt AS COUNT(tag)) REF EXP; MATERIALIZE R;",
      {ref, exp});
}

// ------------------------------------------------------- cache thread-safety

// Exercises the lazy ChromIndex / RegionColumns publication under
// concurrent first access (the regression the engine's pre-touch loops used
// to paper over). Run under `ctest -L tsan` to verify with ThreadSanitizer.
TEST(ColumnarCacheTest, ConcurrentLazyBuildIsSafe) {
  std::mt19937 rng(29);
  RegionSchema schema;
  ASSERT_TRUE(schema.AddAttr("x", AttrType::kInt).ok());
  for (int round = 0; round < 5; ++round) {
    Sample s(1);
    s.regions = RandomRegions(&rng, 400, 4, 500000, 2000);
    for (auto& r : s.regions) r.values = {Value(int64_t{1})};
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    std::vector<size_t> index_sizes(kThreads), column_sizes(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }
        // Half the threads race the index, half the columns, all then read.
        if (t % 2 == 0) {
          index_sizes[t] = s.chrom_index().slices().size();
          column_sizes[t] = s.columns(schema).size();
        } else {
          column_sizes[t] = s.columns(schema).size();
          index_sizes[t] = s.chrom_index().slices().size();
        }
      });
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(column_sizes[t], s.regions.size());
      EXPECT_EQ(index_sizes[t], s.chrom_index().slices().size());
    }
  }
}

}  // namespace
}  // namespace gdms
