#ifndef GDMS_ENGINE_TASK_GRAPH_H_
#define GDMS_ENGINE_TASK_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "gdm/chrom_index.h"
#include "gdm/dataset.h"

namespace gdms::engine {

/// \brief Builders of the flat (sample-pair x genomic-partition) task graph.
///
/// The scheduler's dominant parallelism axis at paper scale is the sample
/// pair (Section 2: thousands of ENCODE samples against one reference), so
/// the engine emits ONE flat task list spanning every pair x partition and
/// runs it through a single ParallelFor instead of looping pairs
/// sequentially. These helpers build that list cheaply: pair enumeration is
/// hash-grouped on the joinby key (O(S) expected instead of the O(S^2)
/// nested metadata scan) and per-pair partitioning reuses bin chunks of the
/// shared ref sample plus the exp sample's cached ChromIndex.

/// One (ref-chunk, exp-range) partition: the unit of the flat task list.
struct TaskPartition {
  size_t ref_begin = 0;
  size_t ref_end = 0;
  size_t exp_begin = 0;
  size_t exp_end = 0;
};

/// A contiguous (chromosome, bin-range) chunk of a sorted ref region list.
/// Chunks depend only on (ref regions, bin_size), so one chunk list is
/// shared by every pair with the same ref sample.
struct RefChunk {
  size_t begin = 0;
  size_t end = 0;
  int32_t chrom = 0;
  int64_t span_start = 0;  ///< left of the first region in the chunk
  int64_t max_right = 0;   ///< max right coordinate within the chunk
};

/// Splits a sorted region list into (chromosome, bin)-granularity chunks.
std::vector<RefChunk> MakeRefChunks(
    const std::vector<gdm::GenomicRegion>& refs, int64_t bin_size);

/// Attaches to every ref chunk the exp range that can reach it: exps whose
/// span widened by `slack` may touch [span_start, max_right). Uses the exp
/// sample's ChromIndex for the chromosome's max region length and O(log)
/// range lookup within its slice, instead of rescanning every exp region.
std::vector<TaskPartition> BindPartitions(
    const std::vector<RefChunk>& chunks,
    const std::vector<gdm::GenomicRegion>& exps,
    const gdm::ChromIndex& exp_index, int64_t slack);

/// Enumerates (left, right) sample-index pairs matching on the joinby
/// attributes, in the same (left-major) order as the reference executor's
/// nested loop. Samples are hash-grouped on their joinby key tuples; pairs
/// with multi-valued attributes enumerate the value cross-product (capped —
/// pathological samples fall back to the direct metadata scan), so the
/// result is exactly the set accepted by Operators::JoinbyMatch.
std::vector<std::pair<size_t, size_t>> MatchJoinbyPairs(
    const gdm::Dataset& left, const gdm::Dataset& right,
    const std::vector<std::string>& joinby);

}  // namespace gdms::engine

#endif  // GDMS_ENGINE_TASK_GRAPH_H_
