#ifndef GDMS_ENGINE_PARALLEL_EXECUTOR_H_
#define GDMS_ENGINE_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/operators.h"
#include "engine/task_graph.h"

namespace gdms::engine {

/// Execution style of the data-parallel operators (paper Section 4.2 /
/// ref. [10]: the Flink-vs-Spark comparison).
enum class BackendKind {
  /// Spark-like: stage barriers; partitions are serialized through a
  /// shuffle codec between the partitioning stage and the compute stage.
  kMaterialized,
  /// Flink-like: per-partition work streams straight from the input with
  /// no intermediate materialization and no global barrier.
  kPipelined,
};

const char* BackendKindName(BackendKind kind);

/// Task-graph shape of the data-parallel operators.
enum class SchedulingMode {
  /// One flat task list spanning ALL sample pairs/groups x genomic
  /// partitions, run through a single ParallelFor (one barrier per stage
  /// for the materialized backend). The pair axis — dominant at paper scale
  /// (Section 2: 2,423 samples) — parallelizes fully.
  kFlat,
  /// The seed scheduler: a sequential outer loop over sample pairs with a
  /// ParallelFor per pair. Kept for before/after benchmarking (E7).
  kPerPair,
};

const char* SchedulingModeName(SchedulingMode mode);

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t threads = 0;
  /// Genomic bin width for range-partitioning within a chromosome.
  int64_t bin_size = 5000000;
  BackendKind backend = BackendKind::kPipelined;
  SchedulingMode scheduling = SchedulingMode::kFlat;
  /// Columnar fast path: under the flat pipelined scheduler, MAP /
  /// DIFFERENCE / COVER kernels sweep each sample's cached RegionColumns
  /// (gdm/region_columns.h) instead of the row-structured region vectors,
  /// restoring rows only at assembly. Results are identical to the row
  /// path (the engine tests assert bit-exact equality); disable to A/B the
  /// row baseline (shell flag --no-columnar).
  bool columnar = true;
};

/// Accumulated execution accounting (reset per Execute call chain via
/// ResetTrace). Counters are incremented with relaxed atomics: they are
/// independent tallies read after the pool has quiesced, so no ordering is
/// required.
///
/// EngineTrace is the executor-local shard of the process-wide telemetry:
/// Execute() publishes each operator's counter deltas into the
/// obs::MetricsRegistry ("engine.tasks" etc.), so registry readers see
/// process totals while per-run readers (benches, RunStats) keep exact
/// per-executor figures through stats()/ResetStats().
struct EngineTrace {
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> partitions{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> stage_barriers{0};
  /// Compute tasks that ran through a columnar batch kernel instead of the
  /// row sweep (EngineOptions::columnar; flat pipelined MAP / DIFFERENCE /
  /// COVER only).
  std::atomic<uint64_t> columnar_tasks{0};

  void Reset() {
    tasks.store(0, std::memory_order_relaxed);
    partitions.store(0, std::memory_order_relaxed);
    shuffle_bytes.store(0, std::memory_order_relaxed);
    stage_barriers.store(0, std::memory_order_relaxed);
    columnar_tasks.store(0, std::memory_order_relaxed);
  }
};

/// \brief Data-parallel GMQL executor over a thread pool.
///
/// SELECT, MAP, JOIN, DIFFERENCE and COVER are parallelized by
/// (sample-pair x genomic partition); every other operator delegates to the
/// sequential reference implementation (they are metadata-bound and cheap).
/// Under SchedulingMode::kFlat the full pair x partition cross product is
/// one flat task list, and fused plan nodes (kFused) pipe each finished
/// sample straight through the chain's consumer stages (SELECT / PROJECT /
/// EXTEND) inside the producer's assembly tasks — the intermediate dataset
/// between the logical operators is never allocated. Under kPerPair a fused
/// node decomposes back into its stages (the seed scheduler stays an
/// untouched baseline). Results are sample-for-sample equal to the
/// ReferenceExecutor — the engine tests assert exactly that.
class ParallelExecutor : public core::Executor {
 public:
  explicit ParallelExecutor(EngineOptions options = {});

  Result<gdm::Dataset> Execute(
      const core::PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs) override;

  const EngineTrace& trace() const { return trace_; }
  void ResetTrace() { trace_.Reset(); }

  core::ExecutorStats stats() const override {
    return {trace_.tasks.load(std::memory_order_relaxed),
            trace_.partitions.load(std::memory_order_relaxed),
            trace_.shuffle_bytes.load(std::memory_order_relaxed),
            trace_.stage_barriers.load(std::memory_order_relaxed)};
  }
  void ResetStats() override { trace_.Reset(); }

  void set_columnar(bool on) override { options_.columnar = on; }
  bool columnar() const override { return options_.columnar; }

  const EngineOptions& options() const { return options_; }

 private:
  using Partition = TaskPartition;

  /// Operator dispatch (the switch); Execute wraps it to publish counter
  /// deltas into the metrics registry.
  Result<gdm::Dataset> ExecuteOp(
      const core::PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs);

  /// Runs one parallel stage: counts `n` tasks into the trace and, when the
  /// global tracer is enabled, wraps the loop in a "stage" span carrying
  /// task count, mean queue wait, and per-partition min/median/max duration
  /// (the skew figures). Disabled-tracer fast path is one relaxed load.
  void RunStage(const char* name, size_t n,
                const std::function<void(size_t)>& fn);

  /// The seed partitioner (SchedulingMode::kPerPair): splits a sorted ref
  /// list into (chrom, bin-range) chunks and attaches the matching exp
  /// range widened by `slack`, rescanning exps for max lengths every call.
  std::vector<Partition> MakePartitions(
      const std::vector<gdm::GenomicRegion>& refs,
      const std::vector<gdm::GenomicRegion>& exps, int64_t slack) const;

  /// Fused-chain dispatch: under kFlat the producer's Parallel* overload
  /// runs with the chain's consumer stages bound as a FusedTail; under
  /// kPerPair the chain decomposes into its stages (producer through the
  /// parallel dispatch, consumers through the sequential fallback).
  Result<gdm::Dataset> ExecuteFused(
      const core::PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs);

  /// The `fused` parameter, when non-null, is the kFused plan node whose
  /// tail stages must be applied to every finished output sample; each
  /// operator binds the tail against its own output schema.
  Result<gdm::Dataset> ParallelSelect(const core::SelectParams& params,
                                      const gdm::Dataset& in,
                                      const core::PlanNode* fused = nullptr);
  Result<gdm::Dataset> ParallelDifference(
      const core::DifferenceParams& params, const gdm::Dataset& left,
      const gdm::Dataset& right, const core::PlanNode* fused = nullptr);
  Result<gdm::Dataset> ParallelMap(const core::MapParams& params,
                                   const gdm::Dataset& ref,
                                   const gdm::Dataset& exp,
                                   const core::PlanNode* fused = nullptr);
  Result<gdm::Dataset> ParallelJoin(const core::JoinParams& params,
                                    const gdm::Dataset& left,
                                    const gdm::Dataset& right,
                                    const core::PlanNode* fused = nullptr);
  Result<gdm::Dataset> ParallelCover(const core::CoverParams& params,
                                     const gdm::Dataset& in,
                                     const core::PlanNode* fused = nullptr);

  EngineOptions options_;
  ThreadPool pool_;
  core::ReferenceExecutor fallback_;
  EngineTrace trace_;
};

}  // namespace gdms::engine

#endif  // GDMS_ENGINE_PARALLEL_EXECUTOR_H_
