#ifndef GDMS_ENGINE_PARALLEL_EXECUTOR_H_
#define GDMS_ENGINE_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/operators.h"

namespace gdms::engine {

/// Execution style of the data-parallel operators (paper Section 4.2 /
/// ref. [10]: the Flink-vs-Spark comparison).
enum class BackendKind {
  /// Spark-like: stage barriers; partitions are serialized through a
  /// shuffle codec between the partitioning stage and the compute stage.
  kMaterialized,
  /// Flink-like: per-partition work streams straight from the input with
  /// no intermediate materialization and no global barrier.
  kPipelined,
};

const char* BackendKindName(BackendKind kind);

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t threads = 0;
  /// Genomic bin width for range-partitioning within a chromosome.
  int64_t bin_size = 5000000;
  BackendKind backend = BackendKind::kPipelined;
};

/// Accumulated execution accounting (reset per Execute call chain via
/// ResetTrace).
struct EngineTrace {
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> partitions{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> stage_barriers{0};

  void Reset() {
    tasks = 0;
    partitions = 0;
    shuffle_bytes = 0;
    stage_barriers = 0;
  }
};

/// \brief Data-parallel GMQL executor over a thread pool.
///
/// SELECT, MAP, JOIN and COVER are parallelized by (sample-pair x genomic
/// partition); every other operator delegates to the sequential reference
/// implementation (they are metadata-bound and cheap). Results are
/// sample-for-sample equal to the ReferenceExecutor — the engine tests
/// assert exactly that.
class ParallelExecutor : public core::Executor {
 public:
  explicit ParallelExecutor(EngineOptions options = {});

  Result<gdm::Dataset> Execute(
      const core::PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs) override;

  const EngineTrace& trace() const { return trace_; }
  void ResetTrace() { trace_.Reset(); }

  const EngineOptions& options() const { return options_; }

 private:
  struct Partition {
    size_t ref_begin;
    size_t ref_end;
    size_t exp_begin;
    size_t exp_end;
  };

  /// Splits a sorted ref list into contiguous (chrom, bin-range) chunks and
  /// attaches the matching exp range widened by `slack`.
  std::vector<Partition> MakePartitions(
      const std::vector<gdm::GenomicRegion>& refs,
      const std::vector<gdm::GenomicRegion>& exps, int64_t slack) const;

  Result<gdm::Dataset> ParallelSelect(const core::SelectParams& params,
                                      const gdm::Dataset& in);
  Result<gdm::Dataset> ParallelDifference(const core::DifferenceParams& params,
                                          const gdm::Dataset& left,
                                          const gdm::Dataset& right);
  Result<gdm::Dataset> ParallelMap(const core::MapParams& params,
                                   const gdm::Dataset& ref,
                                   const gdm::Dataset& exp);
  Result<gdm::Dataset> ParallelJoin(const core::JoinParams& params,
                                    const gdm::Dataset& left,
                                    const gdm::Dataset& right);
  Result<gdm::Dataset> ParallelCover(const core::CoverParams& params,
                                     const gdm::Dataset& in);

  EngineOptions options_;
  ThreadPool pool_;
  core::ReferenceExecutor fallback_;
  EngineTrace trace_;
};

}  // namespace gdms::engine

#endif  // GDMS_ENGINE_PARALLEL_EXECUTOR_H_
