#include "engine/parallel_executor.h"

#include <algorithm>
#include <map>

#include "engine/shuffle.h"
#include "interval/accumulation.h"
#include "interval/sweep.h"

namespace gdms::engine {

namespace {

using core::AggAccumulator;
using core::AggregateSpec;
using core::OpKind;
using core::Operators;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;

/// Overlap sweep over single-chromosome slices (both sorted by left).
/// `window` > 0 turns it into a distance-window sweep.
template <typename Sink>
void SliceSweep(const std::vector<GenomicRegion>& refs, size_t rb, size_t re,
                const std::vector<GenomicRegion>& exps, size_t eb, size_t ee,
                int64_t window, Sink&& sink) {
  size_t j = eb;
  std::vector<size_t> active;
  for (size_t i = rb; i < re; ++i) {
    const GenomicRegion& r = refs[i];
    while (j < ee && exps[j].left < r.right + window) {
      active.push_back(j);
      ++j;
    }
    size_t keep = 0;
    for (size_t a : active) {
      if (exps[a].right > r.left - window) active[keep++] = a;
    }
    active.resize(keep);
    for (size_t a : active) {
      if (exps[a].left < r.right + window && exps[a].right > r.left - window) {
        sink(i, a);
      }
    }
  }
}

/// Max region length per chromosome of a sorted region list.
std::map<int32_t, int64_t> MaxLenByChrom(
    const std::vector<GenomicRegion>& regions) {
  std::map<int32_t, int64_t> out;
  for (const auto& r : regions) {
    auto& m = out[r.chrom];
    m = std::max(m, r.length());
  }
  return out;
}

uint64_t SliceBytes(const std::vector<GenomicRegion>& regions, size_t begin,
                    size_t end, std::string* buffer) {
  size_t before = buffer->size();
  RegionCodec::Encode(regions, begin, end, buffer);
  return buffer->size() - before;
}

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaterialized:
      return "materialized";
    case BackendKind::kPipelined:
      return "pipelined";
  }
  return "?";
}

ParallelExecutor::ParallelExecutor(EngineOptions options)
    : options_(options), pool_(options.threads) {}

std::vector<ParallelExecutor::Partition> ParallelExecutor::MakePartitions(
    const std::vector<GenomicRegion>& refs,
    const std::vector<GenomicRegion>& exps, int64_t slack) const {
  std::vector<Partition> out;
  if (refs.empty()) return out;
  auto max_len = MaxLenByChrom(exps);
  size_t i = 0;
  while (i < refs.size()) {
    size_t begin = i;
    int32_t chrom = refs[i].chrom;
    int64_t span_start = refs[i].left;
    int64_t max_right = refs[i].right;
    ++i;
    while (i < refs.size() && refs[i].chrom == chrom &&
           refs[i].left < span_start + options_.bin_size) {
      max_right = std::max(max_right, refs[i].right);
      ++i;
    }
    // Matching exp range: regions whose span (widened by slack) can reach
    // any ref in [begin, i). Exps are sorted by (chrom, left); use the
    // chromosome's max exp length to bound how far left to reach.
    int64_t reach = slack;
    auto ml = max_len.find(chrom);
    int64_t exp_len = ml == max_len.end() ? 0 : ml->second;
    int64_t lo_pos = span_start - reach - exp_len;
    int64_t hi_pos = max_right + reach;
    auto lower = std::lower_bound(
        exps.begin(), exps.end(), std::make_pair(chrom, lo_pos),
        [](const GenomicRegion& r, const std::pair<int32_t, int64_t>& key) {
          if (r.chrom != key.first) return r.chrom < key.first;
          return r.left < key.second;
        });
    auto upper = std::lower_bound(
        exps.begin(), exps.end(), std::make_pair(chrom, hi_pos),
        [](const GenomicRegion& r, const std::pair<int32_t, int64_t>& key) {
          if (r.chrom != key.first) return r.chrom < key.first;
          return r.left < key.second;
        });
    out.push_back({begin, i, static_cast<size_t>(lower - exps.begin()),
                   static_cast<size_t>(upper - exps.begin())});
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::Execute(
    const core::PlanNode& node, const std::vector<const Dataset*>& inputs) {
  switch (node.kind) {
    case OpKind::kSelect:
      return ParallelSelect(node.select, *inputs[0]);
    case OpKind::kMap:
      return ParallelMap(node.map, *inputs[0], *inputs[1]);
    case OpKind::kJoin:
      return ParallelJoin(node.join, *inputs[0], *inputs[1]);
    case OpKind::kCover:
      return ParallelCover(node.cover, *inputs[0]);
    case OpKind::kDifference:
      return ParallelDifference(node.difference, *inputs[0], *inputs[1]);
    default:
      return fallback_.Execute(node, inputs);
  }
}

Result<gdm::Dataset> ParallelExecutor::ParallelSelect(
    const core::SelectParams& params, const Dataset& in) {
  Dataset out("SELECT", in.schema());
  core::RegionPredicate::Ptr pred = params.region->Clone();
  GDMS_RETURN_NOT_OK(pred->Bind(in.schema()));
  // Metadata pass is cheap and sequential ("meta-first" evaluation).
  std::vector<const Sample*> kept;
  for (const auto& s : in.samples()) {
    if (params.meta->Eval(s.metadata)) kept.push_back(&s);
  }
  std::vector<Sample> results(kept.size());
  pool_.ParallelFor(kept.size(), [&](size_t si) {
    trace_.tasks.fetch_add(1);
    const Sample& s = *kept[si];
    Sample ns(s.id);
    ns.metadata = s.metadata;
    ns.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      if (pred->Eval(r)) ns.regions.push_back(r);
    }
    results[si] = std::move(ns);
  });
  for (auto& s : results) out.AddSample(std::move(s));
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelDifference(
    const core::DifferenceParams& params, const Dataset& left,
    const Dataset& right) {
  Dataset out("DIFFERENCE", left.schema());
  std::vector<Sample> results(left.num_samples());
  pool_.ParallelFor(left.num_samples(), [&](size_t si) {
    trace_.tasks.fetch_add(1);
    const Sample& ls = left.sample(si);
    std::vector<GenomicRegion> negatives;
    for (const auto& rs : right.samples()) {
      if (Operators::JoinbyMatch(params.joinby, ls.metadata, rs.metadata)) {
        negatives.insert(negatives.end(), rs.regions.begin(),
                         rs.regions.end());
      }
    }
    Sample ns(ls.id);
    ns.metadata = ls.metadata;
    if (negatives.empty()) {
      ns.regions = ls.regions;
    } else {
      gdm::SortRegions(&negatives);
      auto flags = interval::ExistsOverlap(ls.regions, negatives);
      for (size_t i = 0; i < ls.regions.size(); ++i) {
        if (!flags[i]) ns.regions.push_back(ls.regions[i]);
      }
    }
    results[si] = std::move(ns);
  });
  for (auto& s : results) out.AddSample(std::move(s));
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelMap(
    const core::MapParams& params, const Dataset& ref, const Dataset& exp) {
  auto specs = Operators::EffectiveMapAggregates(params);
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> agg_inputs,
                        core::ResolveAggInputs(specs, exp.schema()));
  GDMS_ASSIGN_OR_RETURN(RegionSchema schema,
                        Operators::MapOutputSchema(params, ref.schema()));
  Dataset out("MAP", schema);

  struct PairTask {
    const Sample* ref;
    const Sample* exp;
  };
  std::vector<PairTask> pairs;
  for (const auto& rs : ref.samples()) {
    for (const auto& es : exp.samples()) {
      if (Operators::JoinbyMatch(params.joinby, rs.metadata, es.metadata)) {
        pairs.push_back({&rs, &es});
      }
    }
  }
  std::vector<Sample> results(pairs.size());

  for (size_t p = 0; p < pairs.size(); ++p) {
    const Sample& rs = *pairs[p].ref;
    const Sample& es = *pairs[p].exp;
    Sample ns = Operators::DerivedSample("MAP", rs, es, false);
    auto partitions = MakePartitions(rs.regions, es.regions, 0);
    trace_.partitions.fetch_add(partitions.size());

    // agg_values[ri] = finished aggregate values for ref region ri; rows are
    // disjoint across partitions.
    std::vector<std::vector<Value>> agg_values(rs.regions.size());

    auto compute = [&](const Partition& part,
                       const std::vector<GenomicRegion>& refs, size_t rb,
                       size_t re, const std::vector<GenomicRegion>& exps,
                       size_t eb, size_t ee) {
      std::vector<std::vector<AggAccumulator>> accs(re - rb);
      for (auto& row : accs) {
        row.reserve(specs.size());
        for (const auto& spec : specs) row.emplace_back(spec.func);
      }
      SliceSweep(refs, rb, re, exps, eb, ee, 0, [&](size_t i, size_t a) {
        if (!refs[i].Overlaps(exps[a])) return;
        auto& row = accs[i - rb];
        for (size_t x = 0; x < specs.size(); ++x) {
          if (agg_inputs[x] == SIZE_MAX) {
            row[x].AddRegion();
          } else {
            row[x].Add(exps[a].values[agg_inputs[x]]);
          }
        }
      });
      for (size_t i = 0; i < accs.size(); ++i) {
        std::vector<Value> vals;
        vals.reserve(specs.size());
        for (auto& acc : accs[i]) vals.push_back(acc.Finish());
        agg_values[part.ref_begin + i] = std::move(vals);
      }
    };

    if (options_.backend == BackendKind::kMaterialized) {
      // Stage 1: serialize every partition (the shuffle write).
      std::vector<std::string> ref_buffers(partitions.size());
      std::vector<std::string> exp_buffers(partitions.size());
      pool_.ParallelFor(partitions.size(), [&](size_t pi) {
        trace_.tasks.fetch_add(1);
        const Partition& part = partitions[pi];
        trace_.shuffle_bytes.fetch_add(SliceBytes(
            rs.regions, part.ref_begin, part.ref_end, &ref_buffers[pi]));
        trace_.shuffle_bytes.fetch_add(SliceBytes(
            es.regions, part.exp_begin, part.exp_end, &exp_buffers[pi]));
      });
      trace_.stage_barriers.fetch_add(1);
      // Stage 2: deserialize (the shuffle read) and compute.
      Status failure = Status::OK();
      std::mutex failure_mu;
      pool_.ParallelFor(partitions.size(), [&](size_t pi) {
        trace_.tasks.fetch_add(1);
        const Partition& part = partitions[pi];
        auto refs = RegionCodec::Decode(ref_buffers[pi]);
        auto exps = RegionCodec::Decode(exp_buffers[pi]);
        if (!refs.ok() || !exps.ok()) {
          std::lock_guard<std::mutex> lk(failure_mu);
          failure = refs.ok() ? exps.status() : refs.status();
          return;
        }
        const auto& rv = refs.value();
        const auto& ev = exps.value();
        Partition local = part;
        compute(local, rv, 0, rv.size(), ev, 0, ev.size());
      });
      GDMS_RETURN_NOT_OK(failure);
    } else {
      // Pipelined: one pass, zero-copy slice views.
      pool_.ParallelFor(partitions.size(), [&](size_t pi) {
        trace_.tasks.fetch_add(1);
        const Partition& part = partitions[pi];
        compute(part, rs.regions, part.ref_begin, part.ref_end, es.regions,
                part.exp_begin, part.exp_end);
      });
    }

    ns.regions.reserve(rs.regions.size());
    for (size_t ri = 0; ri < rs.regions.size(); ++ri) {
      GenomicRegion nr = rs.regions[ri];
      if (agg_values[ri].empty()) {
        // Ref region fell into a partition with no exps; finish empty accs.
        for (const auto& spec : specs) {
          nr.values.push_back(AggAccumulator(spec.func).Finish());
        }
      } else {
        for (auto& v : agg_values[ri]) nr.values.push_back(std::move(v));
      }
      ns.regions.push_back(std::move(nr));
    }
    results[p] = std::move(ns);
  }
  for (auto& s : results) out.AddSample(std::move(s));
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelJoin(
    const core::JoinParams& params, const Dataset& left,
    const Dataset& right) {
  if (!params.predicate.has_upper && params.predicate.md_k == 0) {
    return Status::InvalidArgument(
        "genometric JOIN requires an upper distance bound (DLE/DLT) or MD(k)");
  }
  Dataset out("JOIN",
              Operators::JoinOutputSchema(left.schema(), right.schema()));
  struct PairTask {
    const Sample* l;
    const Sample* r;
  };
  std::vector<PairTask> pairs;
  for (const auto& ls : left.samples()) {
    for (const auto& rsamp : right.samples()) {
      if (Operators::JoinbyMatch(params.joinby, ls.metadata, rsamp.metadata)) {
        pairs.push_back({&ls, &rsamp});
      }
    }
  }
  std::vector<Sample> results(pairs.size());

  if (params.predicate.md_k > 0) {
    // MD(k) crosses partition boundaries; parallelize over pairs only.
    pool_.ParallelFor(pairs.size(), [&](size_t p) {
      trace_.tasks.fetch_add(1);
      results[p] = Operators::JoinPair(params, *pairs[p].l, *pairs[p].r);
    });
  } else {
    int64_t window = std::max<int64_t>(0, params.predicate.max_dist) + 1;
    for (size_t p = 0; p < pairs.size(); ++p) {
      const Sample& ls = *pairs[p].l;
      const Sample& rsamp = *pairs[p].r;
      Sample ns = Operators::DerivedSample("JOIN", ls, rsamp, true);
      auto partitions = MakePartitions(ls.regions, rsamp.regions, window);
      trace_.partitions.fetch_add(partitions.size());
      std::vector<std::vector<GenomicRegion>> chunk_out(partitions.size());

      if (options_.backend == BackendKind::kMaterialized) {
        std::vector<std::string> lbuf(partitions.size());
        std::vector<std::string> rbuf(partitions.size());
        pool_.ParallelFor(partitions.size(), [&](size_t pi) {
          trace_.tasks.fetch_add(1);
          const Partition& part = partitions[pi];
          trace_.shuffle_bytes.fetch_add(
              SliceBytes(ls.regions, part.ref_begin, part.ref_end, &lbuf[pi]));
          trace_.shuffle_bytes.fetch_add(SliceBytes(
              rsamp.regions, part.exp_begin, part.exp_end, &rbuf[pi]));
        });
        trace_.stage_barriers.fetch_add(1);
        Status failure = Status::OK();
        std::mutex failure_mu;
        pool_.ParallelFor(partitions.size(), [&](size_t pi) {
          trace_.tasks.fetch_add(1);
          auto lr = RegionCodec::Decode(lbuf[pi]);
          auto rr = RegionCodec::Decode(rbuf[pi]);
          if (!lr.ok() || !rr.ok()) {
            std::lock_guard<std::mutex> lk(failure_mu);
            failure = lr.ok() ? rr.status() : lr.status();
            return;
          }
          const auto& lv = lr.value();
          const auto& rv = rr.value();
          SliceSweep(lv, 0, lv.size(), rv, 0, rv.size(), window,
                     [&](size_t i, size_t a) {
                       Operators::JoinEmit(params, lv[i], rv[a],
                                           &chunk_out[pi]);
                     });
        });
        GDMS_RETURN_NOT_OK(failure);
      } else {
        pool_.ParallelFor(partitions.size(), [&](size_t pi) {
          trace_.tasks.fetch_add(1);
          const Partition& part = partitions[pi];
          SliceSweep(ls.regions, part.ref_begin, part.ref_end, rsamp.regions,
                     part.exp_begin, part.exp_end, window,
                     [&](size_t i, size_t a) {
                       Operators::JoinEmit(params, ls.regions[i],
                                           rsamp.regions[a], &chunk_out[pi]);
                     });
        });
      }
      for (auto& chunk : chunk_out) {
        ns.regions.insert(ns.regions.end(),
                          std::make_move_iterator(chunk.begin()),
                          std::make_move_iterator(chunk.end()));
      }
      ns.SortNow();
      results[p] = std::move(ns);
    }
  }
  for (auto& s : results) out.AddSample(std::move(s));
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelCover(
    const core::CoverParams& params, const Dataset& in) {
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> agg_inputs,
                        core::ResolveAggInputs(params.aggregates, in.schema()));
  RegionSchema schema;
  bool with_acc = params.variant == core::CoverVariant::kHistogram ||
                  params.variant == core::CoverVariant::kSummit;
  if (with_acc) (void)schema.AddAttr("acc_index", gdm::AttrType::kInt);
  for (const auto& spec : params.aggregates) {
    std::string name = spec.output_name;
    int suffix = 1;
    while (schema.Contains(name)) {
      name = spec.output_name + "_" + std::to_string(suffix++);
    }
    (void)schema.AddAttr(name, core::AggOutputType(spec.func));
  }
  Dataset out(core::CoverVariantName(params.variant), schema);

  std::map<std::string, std::vector<const Sample*>> groups;
  for (const auto& s : in.samples()) {
    std::string key =
        params.groupby.empty() ? "" : s.metadata.FirstValue(params.groupby);
    groups[key].push_back(&s);
  }

  for (const auto& [key, members] : groups) {
    // Pool and sort member regions.
    std::vector<GenomicRegion> pooled;
    size_t total = 0;
    for (const auto* m : members) total += m->regions.size();
    pooled.reserve(total);
    for (const auto* m : members) {
      pooled.insert(pooled.end(), m->regions.begin(), m->regions.end());
    }
    gdm::SortRegions(&pooled);

    // Chromosome segments of the pooled regions.
    struct Segment {
      size_t begin;
      size_t end;
    };
    std::vector<Segment> segments;
    size_t i = 0;
    while (i < pooled.size()) {
      size_t j = i;
      while (j < pooled.size() && pooled[j].chrom == pooled[i].chrom) ++j;
      segments.push_back({i, j});
      i = j;
    }
    trace_.partitions.fetch_add(segments.size());

    // Per-segment accumulation profiles (optionally through the shuffle
    // codec for the materialized backend).
    std::vector<std::vector<interval::AccSegment>> profiles(segments.size());
    std::vector<std::vector<GenomicRegion>> seg_inputs(segments.size());
    Status failure = Status::OK();
    std::mutex failure_mu;
    pool_.ParallelFor(segments.size(), [&](size_t si) {
      trace_.tasks.fetch_add(1);
      const Segment& seg = segments[si];
      if (options_.backend == BackendKind::kMaterialized) {
        std::string buf;
        trace_.shuffle_bytes.fetch_add(
            SliceBytes(pooled, seg.begin, seg.end, &buf));
        auto decoded = RegionCodec::Decode(buf);
        if (!decoded.ok()) {
          std::lock_guard<std::mutex> lk(failure_mu);
          failure = decoded.status();
          return;
        }
        seg_inputs[si] = std::move(decoded).value();
      } else {
        seg_inputs[si].assign(pooled.begin() + seg.begin,
                              pooled.begin() + seg.end);
      }
      profiles[si] = interval::AccumulationProfile(seg_inputs[si]);
    });
    GDMS_RETURN_NOT_OK(failure);
    if (options_.backend == BackendKind::kMaterialized) {
      trace_.stage_barriers.fetch_add(1);
    }

    // Resolve ANY/ALL against the global maximum accumulation.
    int64_t global_max = 0;
    for (const auto& prof : profiles) {
      global_max = std::max(global_max, interval::MaxAccumulation(prof));
    }
    interval::CoverBounds bounds{params.min_acc, params.max_acc};
    if (bounds.min_acc == interval::CoverBounds::kAll) bounds.min_acc = global_max;
    if (bounds.max_acc == interval::CoverBounds::kAll) bounds.max_acc = global_max;
    if (bounds.min_acc == interval::CoverBounds::kAny) bounds.min_acc = 1;

    // Per-segment variant computation + aggregates.
    std::vector<std::vector<GenomicRegion>> seg_regions(segments.size());
    std::vector<std::vector<int64_t>> seg_counts(segments.size());
    std::vector<std::vector<std::vector<Value>>> seg_aggs(segments.size());
    pool_.ParallelFor(segments.size(), [&](size_t si) {
      trace_.tasks.fetch_add(1);
      const auto& profile = profiles[si];
      std::vector<GenomicRegion> regions;
      std::vector<int64_t> counts;
      switch (params.variant) {
        case core::CoverVariant::kCover:
          regions = interval::Cover(profile, bounds);
          break;
        case core::CoverVariant::kFlat:
          regions = interval::Flat(profile, bounds, seg_inputs[si]);
          break;
        case core::CoverVariant::kHistogram:
          regions = interval::Histogram(profile, bounds, &counts);
          break;
        case core::CoverVariant::kSummit:
          regions = interval::Summit(profile, bounds, &counts);
          break;
      }
      if (!params.aggregates.empty()) {
        std::vector<std::vector<AggAccumulator>> accs(regions.size());
        for (auto& row : accs) {
          row.reserve(params.aggregates.size());
          for (const auto& spec : params.aggregates) {
            row.emplace_back(spec.func);
          }
        }
        interval::OverlapJoin(regions, seg_inputs[si], [&](size_t oi, size_t ii) {
          auto& row = accs[oi];
          for (size_t a = 0; a < params.aggregates.size(); ++a) {
            if (agg_inputs[a] == SIZE_MAX) {
              row[a].AddRegion();
            } else {
              row[a].Add(seg_inputs[si][ii].values[agg_inputs[a]]);
            }
          }
        });
        seg_aggs[si].resize(regions.size());
        for (size_t oi = 0; oi < regions.size(); ++oi) {
          for (auto& acc : accs[oi]) seg_aggs[si][oi].push_back(acc.Finish());
        }
      }
      seg_regions[si] = std::move(regions);
      seg_counts[si] = std::move(counts);
    });

    Sample ns = Operators::DerivedGroupSample(
        core::CoverVariantName(params.variant), members);
    if (!params.groupby.empty()) ns.metadata.Add(params.groupby, key);
    for (size_t si = 0; si < segments.size(); ++si) {
      for (size_t oi = 0; oi < seg_regions[si].size(); ++oi) {
        GenomicRegion nr = seg_regions[si][oi];
        if (with_acc) nr.values.push_back(Value(seg_counts[si][oi]));
        if (!params.aggregates.empty()) {
          for (auto& v : seg_aggs[si][oi]) nr.values.push_back(std::move(v));
        }
        ns.regions.push_back(std::move(nr));
      }
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

}  // namespace gdms::engine
