#include "engine/parallel_executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "core/fused.h"
#include "engine/shuffle.h"
#include "interval/accumulation.h"
#include "interval/batch.h"
#include "interval/sweep.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace gdms::engine {

namespace {

using core::AggAccumulator;
using core::AggFunc;
using core::AggregateSpec;
using core::FusedTail;
using core::OpKind;
using core::Operators;
using gdm::ChromIndex;
using gdm::ColumnChunk;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::RegionColumns;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Total bytes held by a materialized-backend shuffle buffer pair, charged
/// to the active query's current operator for the shuffle's lifetime (the
/// stage barrier means the runner thread is still inside that operator).
uint64_t ShuffleBufferBytes(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  uint64_t total = 0;
  for (const auto& s : a) total += s.size();
  for (const auto& s : b) total += s.size();
  return total;
}

/// Overlap sweep over single-chromosome slices (both sorted by left).
/// `window` > 0 turns it into a distance-window sweep.
template <typename Sink>
void SliceSweep(const std::vector<GenomicRegion>& refs, size_t rb, size_t re,
                const std::vector<GenomicRegion>& exps, size_t eb, size_t ee,
                int64_t window, Sink&& sink) {
  size_t j = eb;
  std::vector<size_t> active;
  for (size_t i = rb; i < re; ++i) {
    const GenomicRegion& r = refs[i];
    while (j < ee && exps[j].left < r.right + window) {
      active.push_back(j);
      ++j;
    }
    size_t keep = 0;
    for (size_t a : active) {
      if (exps[a].right > r.left - window) active[keep++] = a;
    }
    active.resize(keep);
    for (size_t a : active) {
      if (exps[a].left < r.right + window && exps[a].right > r.left - window) {
        sink(i, a);
      }
    }
  }
}

/// Max region length per chromosome of a sorted region list. Only the seed
/// (kPerPair) partitioner uses this O(|exp|)-per-pair rescan; the flat
/// scheduler reads the same figures from the sample's cached ChromIndex.
std::map<int32_t, int64_t> MaxLenByChrom(
    const std::vector<GenomicRegion>& regions) {
  std::map<int32_t, int64_t> out;
  for (const auto& r : regions) {
    auto& m = out[r.chrom];
    m = std::max(m, r.length());
  }
  return out;
}

uint64_t SliceBytes(const std::vector<GenomicRegion>& regions, size_t begin,
                    size_t end, std::string* buffer) {
  size_t before = buffer->size();
  RegionCodec::Encode(regions, begin, end, buffer);
  return buffer->size() - before;
}

/// Ref-side bin chunks, computed once per distinct ref sample and shared by
/// every pair that reuses the sample (the dominant case: one reference
/// against thousands of experiment samples).
class RefChunkCache {
 public:
  explicit RefChunkCache(int64_t bin_size) : bin_size_(bin_size) {}

  const std::vector<RefChunk>& ChunksFor(const Sample& sample) {
    auto it = cache_.find(&sample);
    if (it == cache_.end()) {
      it = cache_.emplace(&sample, MakeRefChunks(sample.regions, bin_size_))
               .first;
    }
    return it->second;
  }

 private:
  int64_t bin_size_;
  std::unordered_map<const Sample*, std::vector<RefChunk>> cache_;
};

/// True when every MAP aggregate is finishable from streaming moment sums
/// (count / sum / sum-of-squares / min / max); kMedian and kBag need the
/// full value multiset, so they keep the row path.
bool ColumnarMapEligible(const std::vector<AggregateSpec>& specs) {
  for (const auto& spec : specs) {
    if (spec.func == AggFunc::kMedian || spec.func == AggFunc::kBag) {
      return false;
    }
  }
  return true;
}

/// Per-(spec x ref-row) streaming moments of the columnar MAP kernel; the
/// update and finish steps replay AggAccumulator::Add / ::Finish operation
/// for operation, so results are bit-identical to the row path.
struct SpecMoments {
  std::vector<int64_t> nn;  // non-null matched values per ref row
  std::vector<double> sum, sumsq, minv, maxv;

  void Init(size_t rows) {
    nn.assign(rows, 0);
    sum.assign(rows, 0.0);
    sumsq.assign(rows, 0.0);
    minv.assign(rows, 0.0);
    maxv.assign(rows, 0.0);
  }

  void Update(size_t ri, double x) {
    int64_t n = ++nn[ri];
    sum[ri] += x;
    sumsq[ri] += x * x;
    if (n == 1) {
      minv[ri] = maxv[ri] = x;
    } else {
      minv[ri] = std::min(minv[ri], x);
      maxv[ri] = std::max(maxv[ri], x);
    }
  }

  /// AggAccumulator::Finish over the row's moments (`matches` stands in for
  /// region_count_).
  Value Finish(AggFunc func, size_t ri, int64_t matches) const {
    switch (func) {
      case AggFunc::kCount:
        return Value(matches);
      case AggFunc::kSum:
        return nn[ri] == 0 ? Value::Null() : Value(sum[ri]);
      case AggFunc::kAvg:
        return nn[ri] == 0
                   ? Value::Null()
                   : Value(sum[ri] / static_cast<double>(nn[ri]));
      case AggFunc::kMin:
        return nn[ri] == 0 ? Value::Null() : Value(minv[ri]);
      case AggFunc::kMax:
        return nn[ri] == 0 ? Value::Null() : Value(maxv[ri]);
      case AggFunc::kStd: {
        if (nn[ri] < 2) return nn[ri] == 0 ? Value::Null() : Value(0.0);
        double n = static_cast<double>(nn[ri]);
        double var = (sumsq[ri] - sum[ri] * sum[ri] / n) / (n - 1.0);
        if (var < 0) var = 0;  // numeric noise
        return Value(std::sqrt(var));
      }
      default:
        return Value::Null();  // unreachable: gated by ColumnarMapEligible
    }
  }
};

/// Accumulates one partition's overlap matches into the pair's moments,
/// fetching each matched aggregate input from the row store (late
/// materialization: matches are sparse relative to the exp row count, so
/// random value fetches beat building a dense value column first; only the
/// scanned coordinates are columnar). Mirrors AggAccumulator::Add: NULLs
/// are skipped entirely, string values count toward non-null but contribute
/// no numerics (their moments stay at the zero initializer, exactly like
/// the row accumulator's min_/max_/sum_).
void AccumulateColumnarMatches(const std::vector<interval::MatchPair>& matches,
                               const std::vector<GenomicRegion>& exp_regions,
                               size_t attr_index, size_t ref_offset,
                               size_t exp_offset, SpecMoments* m) {
  for (const auto& mp : matches) {
    const GenomicRegion& er = exp_regions[exp_offset + mp.exp];
    if (attr_index >= er.values.size()) continue;
    const Value& v = er.values[attr_index];
    if (v.is_null()) continue;
    size_t ri = ref_offset + mp.ref;
    if (v.is_double()) {
      m->Update(ri, v.AsDouble());
    } else if (v.is_int()) {
      m->Update(ri, static_cast<double>(v.AsInt()));
    } else if (v.is_bool()) {
      m->Update(ri, v.AsBool() ? 1.0 : 0.0);
    } else {
      ++m->nn[ri];  // non-numeric: ToNumeric fails after non_null_ counted
    }
  }
}

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaterialized:
      return "materialized";
    case BackendKind::kPipelined:
      return "pipelined";
  }
  return "?";
}

const char* SchedulingModeName(SchedulingMode mode) {
  switch (mode) {
    case SchedulingMode::kFlat:
      return "flat";
    case SchedulingMode::kPerPair:
      return "per-pair";
  }
  return "?";
}

ParallelExecutor::ParallelExecutor(EngineOptions options)
    : options_(options), pool_(options.threads) {}

std::vector<ParallelExecutor::Partition> ParallelExecutor::MakePartitions(
    const std::vector<GenomicRegion>& refs,
    const std::vector<GenomicRegion>& exps, int64_t slack) const {
  std::vector<Partition> out;
  if (refs.empty()) return out;
  auto max_len = MaxLenByChrom(exps);
  size_t i = 0;
  while (i < refs.size()) {
    size_t begin = i;
    int32_t chrom = refs[i].chrom;
    int64_t span_start = refs[i].left;
    int64_t max_right = refs[i].right;
    ++i;
    while (i < refs.size() && refs[i].chrom == chrom &&
           refs[i].left < span_start + options_.bin_size) {
      max_right = std::max(max_right, refs[i].right);
      ++i;
    }
    // Matching exp range: regions whose span (widened by slack) can reach
    // any ref in [begin, i). Exps are sorted by (chrom, left); use the
    // chromosome's max exp length to bound how far left to reach.
    int64_t reach = slack;
    auto ml = max_len.find(chrom);
    int64_t exp_len = ml == max_len.end() ? 0 : ml->second;
    int64_t lo_pos = span_start - reach - exp_len;
    int64_t hi_pos = max_right + reach;
    auto lower = std::lower_bound(
        exps.begin(), exps.end(), std::make_pair(chrom, lo_pos),
        [](const GenomicRegion& r, const std::pair<int32_t, int64_t>& key) {
          if (r.chrom != key.first) return r.chrom < key.first;
          return r.left < key.second;
        });
    auto upper = std::lower_bound(
        exps.begin(), exps.end(), std::make_pair(chrom, hi_pos),
        [](const GenomicRegion& r, const std::pair<int32_t, int64_t>& key) {
          if (r.chrom != key.first) return r.chrom < key.first;
          return r.left < key.second;
        });
    out.push_back({begin, i, static_cast<size_t>(lower - exps.begin()),
                   static_cast<size_t>(upper - exps.begin())});
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::Execute(
    const core::PlanNode& node, const std::vector<const Dataset*>& inputs) {
  // Publish this operator's EngineTrace deltas into the process-wide
  // registry (once per operator, not per task): the per-executor atomics
  // stay the single hot-path increment site.
  core::ExecutorStats before = stats();
  uint64_t columnar_before = trace_.columnar_tasks.load(kRelaxed);
  Result<gdm::Dataset> result = ExecuteOp(node, inputs);
  core::ExecutorStats after = stats();
  static obs::Counter* tasks =
      obs::MetricsRegistry::Global().GetCounter("gdms_engine_tasks_total");
  static obs::Counter* partitions =
      obs::MetricsRegistry::Global().GetCounter("gdms_engine_partitions_total");
  static obs::Counter* shuffle_bytes =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_engine_shuffle_bytes_total");
  static obs::Counter* stage_barriers =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_engine_stage_barriers_total");
  static obs::Counter* columnar_tasks =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_engine_columnar_tasks_total");
  tasks->Add(after.tasks - before.tasks);
  partitions->Add(after.partitions - before.partitions);
  shuffle_bytes->Add(after.shuffle_bytes - before.shuffle_bytes);
  stage_barriers->Add(after.stage_barriers - before.stage_barriers);
  columnar_tasks->Add(trace_.columnar_tasks.load(kRelaxed) - columnar_before);
  return result;
}

void ParallelExecutor::RunStage(const char* name, size_t n,
                                const std::function<void(size_t)>& fn) {
  trace_.tasks.fetch_add(n, kRelaxed);
  if (n == 0) return;
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!tracer.enabled()) {
    pool_.ParallelFor(n, fn);
    return;
  }
  obs::Span span = tracer.StartSpan(name, "stage", tracer.current_parent());
  std::vector<int64_t> starts(n);
  std::vector<int64_t> durations(n);
  int64_t stage_start = tracer.NowNs();
  pool_.ParallelFor(n, [&](size_t i) {
    int64_t t0 = tracer.NowNs();
    fn(i);
    int64_t t1 = tracer.NowNs();
    starts[i] = t0 - stage_start;
    durations[i] = t1 - t0;
  });
  double wait_sum = 0;
  for (int64_t s : starts) wait_sum += static_cast<double>(s);
  obs::SkewStats skew = obs::ComputeSkew(std::move(durations));
  span.AddAttr("tasks", static_cast<double>(n));
  span.AddAttr("queue_wait_mean_us",
               wait_sum / static_cast<double>(n) / 1e3);
  span.AddAttr("part_min_us", static_cast<double>(skew.min_ns) / 1e3);
  span.AddAttr("part_median_us", static_cast<double>(skew.median_ns) / 1e3);
  span.AddAttr("part_max_us", static_cast<double>(skew.max_ns) / 1e3);
}

Result<gdm::Dataset> ParallelExecutor::ExecuteOp(
    const core::PlanNode& node, const std::vector<const Dataset*>& inputs) {
  switch (node.kind) {
    case OpKind::kSelect:
      return ParallelSelect(node.select, *inputs[0]);
    case OpKind::kMap:
      return ParallelMap(node.map, *inputs[0], *inputs[1]);
    case OpKind::kJoin:
      return ParallelJoin(node.join, *inputs[0], *inputs[1]);
    case OpKind::kCover:
      return ParallelCover(node.cover, *inputs[0]);
    case OpKind::kDifference:
      return ParallelDifference(node.difference, *inputs[0], *inputs[1]);
    case OpKind::kFused:
      return ExecuteFused(node, inputs);
    default:
      return fallback_.Execute(node, inputs);
  }
}

Result<gdm::Dataset> ParallelExecutor::ExecuteFused(
    const core::PlanNode& node, const std::vector<const Dataset*>& inputs) {
  if (node.fused_stages.empty()) {
    return Status::Internal("fused node with no stages");
  }
  const core::PlanNode& producer = *node.fused_stages[0];
  if (options_.scheduling == SchedulingMode::kFlat) {
    static obs::Counter* fused_chains =
        obs::MetricsRegistry::Global().GetCounter(
            "gdms_engine_fused_chains_total");
    fused_chains->Add();
    switch (producer.kind) {
      case OpKind::kSelect:
        return ParallelSelect(producer.select, *inputs[0], &node);
      case OpKind::kMap:
        return ParallelMap(producer.map, *inputs[0], *inputs[1], &node);
      case OpKind::kJoin:
        return ParallelJoin(producer.join, *inputs[0], *inputs[1], &node);
      case OpKind::kDifference:
        return ParallelDifference(producer.difference, *inputs[0], *inputs[1],
                                  &node);
      case OpKind::kCover:
        return ParallelCover(producer.cover, *inputs[0], &node);
      default:
        break;
    }
  }
  // kPerPair baseline (the seed scheduler stays untouched for A/B runs):
  // decompose the chain — producer through the parallel dispatch, consumer
  // stages through the sequential fallback.
  GDMS_ASSIGN_OR_RETURN(gdm::Dataset current, ExecuteOp(producer, inputs));
  for (size_t i = 1; i < node.fused_stages.size(); ++i) {
    std::vector<const Dataset*> stage_inputs = {&current};
    GDMS_ASSIGN_OR_RETURN(
        current, fallback_.Execute(*node.fused_stages[i], stage_inputs));
  }
  return current;
}

Result<gdm::Dataset> ParallelExecutor::ParallelSelect(
    const core::SelectParams& params, const Dataset& in,
    const core::PlanNode* fused) {
  FusedTail tail;
  if (fused != nullptr) {
    GDMS_ASSIGN_OR_RETURN(tail, FusedTail::Bind(*fused, in.schema()));
  }
  Dataset out(fused != nullptr ? tail.output_name() : "SELECT",
              fused != nullptr ? tail.output_schema() : in.schema());
  core::RegionPredicate::Ptr pred = params.region->Clone();
  GDMS_RETURN_NOT_OK(pred->Bind(in.schema()));
  // Metadata pass is cheap and sequential ("meta-first" evaluation).
  std::vector<const Sample*> kept;
  for (const auto& s : in.samples()) {
    if (params.meta->Eval(s.metadata)) kept.push_back(&s);
  }
  std::vector<Sample> results(kept.size());
  std::vector<char> emit(kept.size(), 1);
  RunStage("select:samples", kept.size(), [&](size_t si) {
    const Sample& s = *kept[si];
    Sample ns(s.id);
    ns.metadata = s.metadata;
    ns.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      if (pred->Eval(r)) ns.regions.push_back(r);
    }
    if (fused != nullptr && !tail.ApplySample(&ns)) emit[si] = 0;
    results[si] = std::move(ns);
  });
  for (size_t si = 0; si < results.size(); ++si) {
    if (emit[si]) out.AddSample(std::move(results[si]));
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelDifference(
    const core::DifferenceParams& params, const Dataset& left,
    const Dataset& right, const core::PlanNode* fused) {
  FusedTail tail;
  if (fused != nullptr) {
    GDMS_ASSIGN_OR_RETURN(tail, FusedTail::Bind(*fused, left.schema()));
  }
  Dataset out(fused != nullptr ? tail.output_name() : "DIFFERENCE",
              fused != nullptr ? tail.output_schema() : left.schema());

  if (options_.scheduling == SchedulingMode::kPerPair) {
    // Seed scheduler: one task per left sample, right side rescanned with
    // the O(S^2) joinby loop and negatives re-sorted whole per sample.
    std::vector<Sample> results(left.num_samples());
    RunStage("difference:samples", left.num_samples(), [&](size_t si) {
      const Sample& ls = left.sample(si);
      std::vector<GenomicRegion> negatives;
      for (const auto& rs : right.samples()) {
        if (Operators::JoinbyMatch(params.joinby, ls.metadata, rs.metadata)) {
          negatives.insert(negatives.end(), rs.regions.begin(),
                           rs.regions.end());
        }
      }
      Sample ns(ls.id);
      ns.metadata = ls.metadata;
      if (negatives.empty()) {
        ns.regions = ls.regions;
      } else {
        gdm::SortRegions(&negatives);
        auto flags = interval::ExistsOverlap(ls.regions, negatives);
        for (size_t i = 0; i < ls.regions.size(); ++i) {
          if (!flags[i]) ns.regions.push_back(ls.regions[i]);
        }
      }
      results[si] = std::move(ns);
    });
    for (auto& s : results) out.AddSample(std::move(s));
    return out;
  }

  // Flat scheduler: tasks span (left sample x chromosome). Negatives are
  // gathered per chromosome through each matched right sample's cached
  // index, so only same-chromosome slices are merged and sorted — overlap
  // never crosses chromosomes, so per-chromosome difference equals the
  // whole-sample difference.
  auto pair_idx = MatchJoinbyPairs(left, right, params.joinby);
  std::vector<std::vector<const Sample*>> matched(left.num_samples());
  for (const auto& [l, r] : pair_idx) matched[l].push_back(&right.sample(r));

  // Columnar fast path: negatives are gathered as bare coordinate pairs out
  // of each matched right sample's columns (no Value payload copies), and
  // the exists-sweep runs over packed coordinate arrays. The caches build
  // lazily and thread-safely; this stage only pre-builds them in parallel so
  // overlapping tasks don't duplicate the work.
  bool use_columnar = options_.columnar;
  if (use_columnar) {
    std::vector<std::pair<const Sample*, const Dataset*>> to_build;
    to_build.reserve(left.num_samples());
    for (const auto& s : left.samples()) to_build.emplace_back(&s, &left);
    std::unordered_map<const Sample*, char> seen;
    for (const auto& per_left : matched) {
      for (const Sample* rs : per_left) {
        if (seen.emplace(rs, 1).second) to_build.emplace_back(rs, &right);
      }
    }
    RunStage("difference:columnarize", to_build.size(), [&](size_t i) {
      (void)to_build[i].first->columns(to_build[i].second->schema());
    });
  }

  struct DiffTask {
    size_t sample;
    int32_t chrom;
    size_t begin;
    size_t end;
  };
  std::vector<DiffTask> tasks;
  std::vector<std::pair<size_t, size_t>> task_range(left.num_samples());
  for (size_t si = 0; si < left.num_samples(); ++si) {
    task_range[si].first = tasks.size();
    if (use_columnar) {
      // The columns' chunk directory subsumes ChromIndex here.
      for (const auto& c : left.sample(si).columns(left.schema()).chunks()) {
        tasks.push_back({si, c.chrom, c.begin, c.end});
      }
    } else {
      for (const auto& slice : left.sample(si).chrom_index().slices()) {
        tasks.push_back({si, slice.chrom, slice.begin, slice.end});
      }
    }
    task_range[si].second = tasks.size();
  }
  trace_.partitions.fetch_add(tasks.size(), kRelaxed);

  std::vector<std::vector<GenomicRegion>> kept(tasks.size());
  RunStage("difference:partitions", tasks.size(), [&](size_t ti) {
    const DiffTask& t = tasks[ti];
    const Sample& ls = left.sample(t.sample);
    if (use_columnar) {
      trace_.columnar_tasks.fetch_add(1, kRelaxed);
      std::vector<std::pair<int64_t, int64_t>> negs;
      for (const Sample* rs : matched[t.sample]) {
        const RegionColumns& rc = rs->columns(right.schema());
        const ColumnChunk* ch = rc.FindChunk(t.chrom);
        if (ch == nullptr) continue;
        negs.reserve(negs.size() + (ch->end - ch->begin));
        for (size_t i = ch->begin; i < ch->end; ++i) {
          negs.emplace_back(rc.left(i), rc.right(i));
        }
      }
      size_t n = t.end - t.begin;
      if (negs.empty()) {
        kept[ti].assign(ls.regions.begin() + t.begin,
                        ls.regions.begin() + t.end);
        return;
      }
      std::sort(negs.begin(), negs.end());
      std::vector<int64_t> neg_l(negs.size()), neg_r(negs.size());
      for (size_t i = 0; i < negs.size(); ++i) {
        neg_l[i] = negs[i].first;
        neg_r[i] = negs[i].second;
      }
      interval::CoordView nview;
      nview.l64 = neg_l.data();
      nview.r64 = neg_r.data();
      nview.size = negs.size();
      const RegionColumns& lcols = ls.columns(left.schema());
      interval::CoordView rview = interval::CoordView::Of(lcols, t.begin,
                                                          t.end);
      std::vector<char> flags(n, 0);
      interval::ExistsOverlapInto(rview, nview, 0, &flags);
      for (size_t i = 0; i < n; ++i) {
        if (!flags[i]) kept[ti].push_back(ls.regions[t.begin + i]);
      }
      return;
    }
    std::vector<GenomicRegion> negatives;
    for (const Sample* rs : matched[t.sample]) {
      const ChromIndex::Slice* slice = rs->chrom_index().FindSlice(t.chrom);
      if (slice != nullptr) {
        negatives.insert(negatives.end(), rs->regions.begin() + slice->begin,
                         rs->regions.begin() + slice->end);
      }
    }
    std::vector<GenomicRegion> refs(ls.regions.begin() + t.begin,
                                    ls.regions.begin() + t.end);
    if (negatives.empty()) {
      kept[ti] = std::move(refs);
      return;
    }
    gdm::SortRegions(&negatives);
    auto flags = interval::ExistsOverlap(refs, negatives);
    for (size_t i = 0; i < refs.size(); ++i) {
      if (!flags[i]) kept[ti].push_back(std::move(refs[i]));
    }
  });

  std::vector<Sample> results(left.num_samples());
  std::vector<char> emit(left.num_samples(), 1);
  RunStage("difference:assemble", left.num_samples(), [&](size_t si) {
    const Sample& ls = left.sample(si);
    Sample ns(ls.id);
    ns.metadata = ls.metadata;
    for (size_t ti = task_range[si].first; ti < task_range[si].second; ++ti) {
      ns.regions.insert(ns.regions.end(),
                        std::make_move_iterator(kept[ti].begin()),
                        std::make_move_iterator(kept[ti].end()));
    }
    if (fused != nullptr && !tail.ApplySample(&ns)) emit[si] = 0;
    results[si] = std::move(ns);
  });
  for (size_t si = 0; si < results.size(); ++si) {
    if (emit[si]) out.AddSample(std::move(results[si]));
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelMap(
    const core::MapParams& params, const Dataset& ref, const Dataset& exp,
    const core::PlanNode* fused) {
  auto specs = Operators::EffectiveMapAggregates(params);
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> agg_inputs,
                        core::ResolveAggInputs(specs, exp.schema()));
  GDMS_ASSIGN_OR_RETURN(RegionSchema schema,
                        Operators::MapOutputSchema(params, ref.schema()));
  FusedTail tail;
  if (fused != nullptr) {
    GDMS_ASSIGN_OR_RETURN(tail, FusedTail::Bind(*fused, schema));
  }
  Dataset out(fused != nullptr ? tail.output_name() : "MAP",
              fused != nullptr ? tail.output_schema() : schema);

  auto pair_idx = MatchJoinbyPairs(ref, exp, params.joinby);
  std::vector<Sample> results(pair_idx.size());

  // Runs one partition's aggregation, writing finished values into the
  // pair's agg_values rows (rows are disjoint across partitions). `rb` is 0
  // with `part.ref_begin` as the output offset when refs were rehydrated
  // from the shuffle codec.
  auto compute = [&](std::vector<std::vector<Value>>& agg_values,
                     const Partition& part,
                     const std::vector<GenomicRegion>& refs, size_t rb,
                     size_t re, const std::vector<GenomicRegion>& exps,
                     size_t eb, size_t ee) {
    std::vector<std::vector<AggAccumulator>> accs(re - rb);
    for (auto& row : accs) {
      row.reserve(specs.size());
      for (const auto& spec : specs) row.emplace_back(spec.func);
    }
    SliceSweep(refs, rb, re, exps, eb, ee, 0, [&](size_t i, size_t a) {
      if (!refs[i].Overlaps(exps[a])) return;
      auto& row = accs[i - rb];
      for (size_t x = 0; x < specs.size(); ++x) {
        if (agg_inputs[x] == SIZE_MAX) {
          row[x].AddRegion();
        } else {
          row[x].Add(exps[a].values[agg_inputs[x]]);
        }
      }
    });
    for (size_t i = 0; i < accs.size(); ++i) {
      std::vector<Value> vals;
      vals.reserve(specs.size());
      for (auto& acc : accs[i]) vals.push_back(acc.Finish());
      agg_values[part.ref_begin + i] = std::move(vals);
    }
  };

  // Builds the output sample for one pair from its finished agg rows.
  auto assemble = [&](const Sample& rs, const Sample& es,
                      std::vector<std::vector<Value>>& agg_values) {
    Sample ns = Operators::DerivedSample("MAP", rs, es, false);
    ns.regions.reserve(rs.regions.size());
    for (size_t ri = 0; ri < rs.regions.size(); ++ri) {
      GenomicRegion nr = rs.regions[ri];
      if (agg_values[ri].empty()) {
        // Ref region fell into a partition with no exps; finish empty accs.
        for (const auto& spec : specs) {
          nr.values.push_back(AggAccumulator(spec.func).Finish());
        }
      } else {
        for (auto& v : agg_values[ri]) nr.values.push_back(std::move(v));
      }
      ns.regions.push_back(std::move(nr));
    }
    return ns;
  };

  if (options_.scheduling == SchedulingMode::kPerPair) {
    // Seed scheduler: sequential outer loop, one ParallelFor per pair (a
    // stage barrier per pair for the materialized backend).
    for (size_t p = 0; p < pair_idx.size(); ++p) {
      const Sample& rs = ref.sample(pair_idx[p].first);
      const Sample& es = exp.sample(pair_idx[p].second);
      auto partitions = MakePartitions(rs.regions, es.regions, 0);
      trace_.partitions.fetch_add(partitions.size(), kRelaxed);
      std::vector<std::vector<Value>> agg_values(rs.regions.size());

      if (options_.backend == BackendKind::kMaterialized) {
        std::vector<std::string> ref_buffers(partitions.size());
        std::vector<std::string> exp_buffers(partitions.size());
        RunStage("map:shuffle-write", partitions.size(), [&](size_t pi) {
          const Partition& part = partitions[pi];
          trace_.shuffle_bytes.fetch_add(
              SliceBytes(rs.regions, part.ref_begin, part.ref_end,
                         &ref_buffers[pi]),
              kRelaxed);
          trace_.shuffle_bytes.fetch_add(
              SliceBytes(es.regions, part.exp_begin, part.exp_end,
                         &exp_buffers[pi]),
              kRelaxed);
        });
        trace_.stage_barriers.fetch_add(1, kRelaxed);
        obs::ScopedCharge shuffle_charge(
            ShuffleBufferBytes(ref_buffers, exp_buffers));
        FirstError errors;
        RunStage("map:compute", partitions.size(), [&](size_t pi) {
          if (errors.failed()) return;
          auto refs = RegionCodec::Decode(ref_buffers[pi]);
          auto exps = RegionCodec::Decode(exp_buffers[pi]);
          if (!refs.ok() || !exps.ok()) {
            errors.Capture(refs.ok() ? exps.status() : refs.status());
            return;
          }
          const auto& rv = refs.value();
          const auto& ev = exps.value();
          compute(agg_values, partitions[pi], rv, 0, rv.size(), ev, 0,
                  ev.size());
        });
        GDMS_RETURN_NOT_OK(errors.status());
      } else {
        RunStage("map:compute", partitions.size(), [&](size_t pi) {
          const Partition& part = partitions[pi];
          compute(agg_values, part, rs.regions, part.ref_begin, part.ref_end,
                  es.regions, part.exp_begin, part.exp_end);
        });
      }
      results[p] = assemble(rs, es, agg_values);
    }
    for (auto& s : results) out.AddSample(std::move(s));
    return out;
  }

  // Flat scheduler: ONE task list spanning every pair x partition. Ref
  // chunks are computed once per distinct ref sample; exp ranges come from
  // the exp sample's cached ChromIndex — or, on the columnar fast path, from
  // the sample's RegionColumns chunk directory (built here, on the calling
  // thread; both caches are also safe to build concurrently).
  //
  // Columnar fast path: the compute stage sweeps the packed coordinate
  // columns (no Value payloads in the cache lines), buffers the match list,
  // and folds each aggregate's input column over it into per-ref-row moment
  // arrays; rows are only touched again at assembly. Match emission order
  // equals the row sweep's, so double accumulation is bit-identical.
  bool use_columnar = options_.columnar &&
                      options_.backend == BackendKind::kPipelined &&
                      ColumnarMapEligible(specs);
  struct PairState {
    const Sample* rs;
    const Sample* es;
    const RegionColumns* rcols = nullptr;
    const RegionColumns* ecols = nullptr;
    size_t part_begin;
    size_t part_end;
    std::vector<std::vector<Value>> agg_values;  // row path
    std::vector<int64_t> match_count;            // columnar path
    std::vector<SpecMoments> moments;            // columnar path, per spec
  };
  std::vector<PairState> pairs;
  pairs.reserve(pair_idx.size());
  std::vector<Partition> parts;
  std::vector<size_t> owner;  // parts[i] belongs to pairs[owner[i]]
  RefChunkCache chunks(options_.bin_size);
  for (const auto& [l, r] : pair_idx) {
    PairState ps;
    ps.rs = &ref.sample(l);
    ps.es = &exp.sample(r);
    std::vector<Partition> bound;
    if (use_columnar) {
      ps.rcols = &ps.rs->columns(ref.schema());
      ps.ecols = &ps.es->columns(exp.schema());
      // Chunk-aligned partitions: one task per ref chromosome present on
      // both sides, straight from the chunk directories. This skips the bin
      // partitioner (RefChunkCache scan + per-bin lower-bound searches)
      // entirely and removes the duplicated exp boundary rows that bin
      // slack re-scans; chromosomes with no exp rows contribute no task —
      // their refs still assemble below with zero matches.
      for (const ColumnChunk& rc : ps.rcols->chunks()) {
        const ColumnChunk* ec = ps.ecols->FindChunk(rc.chrom);
        if (ec == nullptr) continue;
        Partition part;
        part.ref_begin = rc.begin;
        part.ref_end = rc.end;
        part.exp_begin = ec->begin;
        part.exp_end = ec->end;
        bound.push_back(part);
      }
      ps.match_count.assign(ps.rs->regions.size(), 0);
      ps.moments.resize(specs.size());
      for (size_t x = 0; x < specs.size(); ++x) {
        if (specs[x].func != AggFunc::kCount) {
          ps.moments[x].Init(ps.rs->regions.size());
        }
      }
    } else {
      bound = BindPartitions(chunks.ChunksFor(*ps.rs), ps.es->regions,
                             ps.es->chrom_index(), 0);
      ps.agg_values.resize(ps.rs->regions.size());
    }
    ps.part_begin = parts.size();
    parts.insert(parts.end(), bound.begin(), bound.end());
    ps.part_end = parts.size();
    owner.resize(parts.size(), pairs.size());
    pairs.push_back(std::move(ps));
  }
  trace_.partitions.fetch_add(parts.size(), kRelaxed);

  if (options_.backend == BackendKind::kMaterialized) {
    // Stage 1: serialize every partition of every pair (the shuffle write);
    // ONE global barrier; stage 2: deserialize and compute.
    std::vector<std::string> ref_buffers(parts.size());
    std::vector<std::string> exp_buffers(parts.size());
    RunStage("map:shuffle-write", parts.size(), [&](size_t pi) {
      const PairState& ps = pairs[owner[pi]];
      const Partition& part = parts[pi];
      trace_.shuffle_bytes.fetch_add(
          SliceBytes(ps.rs->regions, part.ref_begin, part.ref_end,
                     &ref_buffers[pi]),
          kRelaxed);
      trace_.shuffle_bytes.fetch_add(
          SliceBytes(ps.es->regions, part.exp_begin, part.exp_end,
                     &exp_buffers[pi]),
          kRelaxed);
    });
    trace_.stage_barriers.fetch_add(1, kRelaxed);
    obs::ScopedCharge shuffle_charge(
        ShuffleBufferBytes(ref_buffers, exp_buffers));
    FirstError errors;
    RunStage("map:compute", parts.size(), [&](size_t pi) {
      if (errors.failed()) return;
      auto refs = RegionCodec::Decode(ref_buffers[pi]);
      auto exps = RegionCodec::Decode(exp_buffers[pi]);
      if (!refs.ok() || !exps.ok()) {
        errors.Capture(refs.ok() ? exps.status() : refs.status());
        return;
      }
      const auto& rv = refs.value();
      const auto& ev = exps.value();
      compute(pairs[owner[pi]].agg_values, parts[pi], rv, 0, rv.size(), ev, 0,
              ev.size());
    });
    GDMS_RETURN_NOT_OK(errors.status());
  } else if (use_columnar) {
    RunStage("map:compute", parts.size(), [&](size_t pi) {
      PairState& ps = pairs[owner[pi]];
      const Partition& part = parts[pi];
      trace_.columnar_tasks.fetch_add(1, kRelaxed);
      interval::CoordView rview =
          interval::CoordView::Of(*ps.rcols, part.ref_begin, part.ref_end);
      interval::CoordView eview =
          interval::CoordView::Of(*ps.ecols, part.exp_begin, part.exp_end);
      std::vector<interval::MatchPair> matches;
      interval::CollectOverlaps(rview, eview, &matches);
      if (matches.empty()) return;
      // Ref rows are disjoint across partitions, so the per-pair arrays
      // need no synchronization.
      for (const auto& mp : matches) {
        ++ps.match_count[part.ref_begin + mp.ref];
      }
      for (size_t x = 0; x < specs.size(); ++x) {
        if (specs[x].func == AggFunc::kCount) continue;
        if (agg_inputs[x] == SIZE_MAX) continue;
        AccumulateColumnarMatches(matches, ps.es->regions, agg_inputs[x],
                                  part.ref_begin, part.exp_begin,
                                  &ps.moments[x]);
      }
    });
  } else {
    RunStage("map:compute", parts.size(), [&](size_t pi) {
      PairState& ps = pairs[owner[pi]];
      const Partition& part = parts[pi];
      compute(ps.agg_values, part, ps.rs->regions, part.ref_begin,
              part.ref_end, ps.es->regions, part.exp_begin, part.exp_end);
    });
  }

  std::vector<char> emit(pairs.size(), 1);
  RunStage("map:assemble", pairs.size(), [&](size_t p) {
    PairState& ps = pairs[p];
    Sample ns;
    if (use_columnar) {
      ns = Operators::DerivedSample("MAP", *ps.rs, *ps.es, false);
      ns.regions.reserve(ps.rs->regions.size());
      for (size_t ri = 0; ri < ps.rs->regions.size(); ++ri) {
        const GenomicRegion& src = ps.rs->regions[ri];
        GenomicRegion nr(src.chrom, src.left, src.right, src.strand);
        nr.values.reserve(src.values.size() + specs.size());
        nr.values.insert(nr.values.end(), src.values.begin(),
                         src.values.end());
        for (size_t x = 0; x < specs.size(); ++x) {
          nr.values.push_back(
              ps.moments[x].Finish(specs[x].func, ri, ps.match_count[ri]));
        }
        ns.regions.push_back(std::move(nr));
      }
    } else {
      ns = assemble(*ps.rs, *ps.es, ps.agg_values);
    }
    if (fused != nullptr && !tail.ApplySample(&ns)) emit[p] = 0;
    results[p] = std::move(ns);
  });
  for (size_t p = 0; p < results.size(); ++p) {
    if (emit[p]) out.AddSample(std::move(results[p]));
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelJoin(
    const core::JoinParams& params, const Dataset& left, const Dataset& right,
    const core::PlanNode* fused) {
  if (!params.predicate.has_upper && params.predicate.md_k == 0) {
    return Status::InvalidArgument(
        "genometric JOIN requires an upper distance bound (DLE/DLT) or MD(k)");
  }
  RegionSchema schema =
      Operators::JoinOutputSchema(left.schema(), right.schema());
  FusedTail tail;
  if (fused != nullptr) {
    GDMS_ASSIGN_OR_RETURN(tail, FusedTail::Bind(*fused, schema));
  }
  Dataset out(fused != nullptr ? tail.output_name() : "JOIN",
              fused != nullptr ? tail.output_schema() : schema);
  auto pair_idx = MatchJoinbyPairs(left, right, params.joinby);
  std::vector<Sample> results(pair_idx.size());

  if (params.predicate.md_k > 0) {
    // MD(k) crosses partition boundaries; parallelize over pairs only.
    std::vector<char> emit(pair_idx.size(), 1);
    RunStage("join:md-pairs", pair_idx.size(), [&](size_t p) {
      Sample ns = Operators::JoinPair(params, left.sample(pair_idx[p].first),
                                      right.sample(pair_idx[p].second));
      if (fused != nullptr && !tail.ApplySample(&ns)) emit[p] = 0;
      results[p] = std::move(ns);
    });
    for (size_t p = 0; p < results.size(); ++p) {
      if (emit[p]) out.AddSample(std::move(results[p]));
    }
    return out;
  }

  int64_t window = std::max<int64_t>(0, params.predicate.max_dist) + 1;

  if (options_.scheduling == SchedulingMode::kPerPair) {
    for (size_t p = 0; p < pair_idx.size(); ++p) {
      const Sample& ls = left.sample(pair_idx[p].first);
      const Sample& rsamp = right.sample(pair_idx[p].second);
      Sample ns = Operators::DerivedSample("JOIN", ls, rsamp, true);
      auto partitions = MakePartitions(ls.regions, rsamp.regions, window);
      trace_.partitions.fetch_add(partitions.size(), kRelaxed);
      std::vector<std::vector<GenomicRegion>> chunk_out(partitions.size());

      if (options_.backend == BackendKind::kMaterialized) {
        std::vector<std::string> lbuf(partitions.size());
        std::vector<std::string> rbuf(partitions.size());
        RunStage("join:shuffle-write", partitions.size(), [&](size_t pi) {
          const Partition& part = partitions[pi];
          trace_.shuffle_bytes.fetch_add(
              SliceBytes(ls.regions, part.ref_begin, part.ref_end, &lbuf[pi]),
              kRelaxed);
          trace_.shuffle_bytes.fetch_add(
              SliceBytes(rsamp.regions, part.exp_begin, part.exp_end,
                         &rbuf[pi]),
              kRelaxed);
        });
        trace_.stage_barriers.fetch_add(1, kRelaxed);
        obs::ScopedCharge shuffle_charge(ShuffleBufferBytes(lbuf, rbuf));
        FirstError errors;
        RunStage("join:compute", partitions.size(), [&](size_t pi) {
          if (errors.failed()) return;
          auto lr = RegionCodec::Decode(lbuf[pi]);
          auto rr = RegionCodec::Decode(rbuf[pi]);
          if (!lr.ok() || !rr.ok()) {
            errors.Capture(lr.ok() ? rr.status() : lr.status());
            return;
          }
          const auto& lv = lr.value();
          const auto& rv = rr.value();
          SliceSweep(lv, 0, lv.size(), rv, 0, rv.size(), window,
                     [&](size_t i, size_t a) {
                       Operators::JoinEmit(params, lv[i], rv[a],
                                           &chunk_out[pi]);
                     });
        });
        GDMS_RETURN_NOT_OK(errors.status());
      } else {
        RunStage("join:compute", partitions.size(), [&](size_t pi) {
          const Partition& part = partitions[pi];
          SliceSweep(ls.regions, part.ref_begin, part.ref_end, rsamp.regions,
                     part.exp_begin, part.exp_end, window,
                     [&](size_t i, size_t a) {
                       Operators::JoinEmit(params, ls.regions[i],
                                           rsamp.regions[a], &chunk_out[pi]);
                     });
        });
      }
      for (auto& chunk : chunk_out) {
        ns.regions.insert(ns.regions.end(),
                          std::make_move_iterator(chunk.begin()),
                          std::make_move_iterator(chunk.end()));
      }
      ns.SortNow();
      results[p] = std::move(ns);
    }
    for (auto& s : results) out.AddSample(std::move(s));
    return out;
  }

  // Flat scheduler: one task list over all pairs x partitions, then a
  // parallel per-pair assembly (concatenate + sort).
  struct PairState {
    const Sample* ls;
    const Sample* rs;
    size_t part_begin;
    size_t part_end;
  };
  std::vector<PairState> pairs;
  pairs.reserve(pair_idx.size());
  std::vector<Partition> parts;
  std::vector<size_t> owner;
  RefChunkCache chunks(options_.bin_size);
  for (const auto& [l, r] : pair_idx) {
    PairState ps;
    ps.ls = &left.sample(l);
    ps.rs = &right.sample(r);
    auto bound = BindPartitions(chunks.ChunksFor(*ps.ls), ps.rs->regions,
                                ps.rs->chrom_index(), window);
    ps.part_begin = parts.size();
    parts.insert(parts.end(), bound.begin(), bound.end());
    ps.part_end = parts.size();
    owner.resize(parts.size(), pairs.size());
    pairs.push_back(ps);
  }
  trace_.partitions.fetch_add(parts.size(), kRelaxed);

  std::vector<std::vector<GenomicRegion>> chunk_out(parts.size());
  if (options_.backend == BackendKind::kMaterialized) {
    std::vector<std::string> lbuf(parts.size());
    std::vector<std::string> rbuf(parts.size());
    RunStage("join:shuffle-write", parts.size(), [&](size_t pi) {
      const PairState& ps = pairs[owner[pi]];
      const Partition& part = parts[pi];
      trace_.shuffle_bytes.fetch_add(
          SliceBytes(ps.ls->regions, part.ref_begin, part.ref_end, &lbuf[pi]),
          kRelaxed);
      trace_.shuffle_bytes.fetch_add(
          SliceBytes(ps.rs->regions, part.exp_begin, part.exp_end, &rbuf[pi]),
          kRelaxed);
    });
    trace_.stage_barriers.fetch_add(1, kRelaxed);
    obs::ScopedCharge shuffle_charge(ShuffleBufferBytes(lbuf, rbuf));
    FirstError errors;
    RunStage("join:compute", parts.size(), [&](size_t pi) {
      if (errors.failed()) return;
      auto lr = RegionCodec::Decode(lbuf[pi]);
      auto rr = RegionCodec::Decode(rbuf[pi]);
      if (!lr.ok() || !rr.ok()) {
        errors.Capture(lr.ok() ? rr.status() : lr.status());
        return;
      }
      const auto& lv = lr.value();
      const auto& rv = rr.value();
      SliceSweep(lv, 0, lv.size(), rv, 0, rv.size(), window,
                 [&](size_t i, size_t a) {
                   Operators::JoinEmit(params, lv[i], rv[a], &chunk_out[pi]);
                 });
    });
    GDMS_RETURN_NOT_OK(errors.status());
  } else {
    RunStage("join:compute", parts.size(), [&](size_t pi) {
      const PairState& ps = pairs[owner[pi]];
      const Partition& part = parts[pi];
      SliceSweep(ps.ls->regions, part.ref_begin, part.ref_end, ps.rs->regions,
                 part.exp_begin, part.exp_end, window,
                 [&](size_t i, size_t a) {
                   Operators::JoinEmit(params, ps.ls->regions[i],
                                       ps.rs->regions[a], &chunk_out[pi]);
                 });
    });
  }

  std::vector<char> emit(pairs.size(), 1);
  RunStage("join:assemble", pairs.size(), [&](size_t p) {
    const PairState& ps = pairs[p];
    Sample ns = Operators::DerivedSample("JOIN", *ps.ls, *ps.rs, true);
    for (size_t pi = ps.part_begin; pi < ps.part_end; ++pi) {
      ns.regions.insert(ns.regions.end(),
                        std::make_move_iterator(chunk_out[pi].begin()),
                        std::make_move_iterator(chunk_out[pi].end()));
    }
    ns.SortNow();
    if (fused != nullptr && !tail.ApplySample(&ns)) emit[p] = 0;
    results[p] = std::move(ns);
  });
  for (size_t p = 0; p < results.size(); ++p) {
    if (emit[p]) out.AddSample(std::move(results[p]));
  }
  return out;
}

Result<gdm::Dataset> ParallelExecutor::ParallelCover(
    const core::CoverParams& params, const Dataset& in,
    const core::PlanNode* fused) {
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> agg_inputs,
                        core::ResolveAggInputs(params.aggregates, in.schema()));
  RegionSchema schema;
  bool with_acc = params.variant == core::CoverVariant::kHistogram ||
                  params.variant == core::CoverVariant::kSummit;
  if (with_acc) (void)schema.AddAttr("acc_index", gdm::AttrType::kInt);
  for (const auto& spec : params.aggregates) {
    std::string name = spec.output_name;
    int suffix = 1;
    while (schema.Contains(name)) {
      name = spec.output_name + "_" + std::to_string(suffix++);
    }
    (void)schema.AddAttr(name, core::AggOutputType(spec.func));
  }
  FusedTail tail;
  if (fused != nullptr) {
    GDMS_ASSIGN_OR_RETURN(tail, FusedTail::Bind(*fused, schema));
  }
  Dataset out(
      fused != nullptr ? tail.output_name()
                       : core::CoverVariantName(params.variant),
      fused != nullptr ? tail.output_schema() : schema);

  std::map<std::string, std::vector<const Sample*>> group_map;
  for (const auto& s : in.samples()) {
    std::string key =
        params.groupby.empty() ? "" : s.metadata.FirstValue(params.groupby);
    group_map[key].push_back(&s);
  }

  struct Seg {
    size_t begin;
    size_t end;
  };
  struct GroupWork {
    std::string key;
    std::vector<const Sample*> members;
    std::vector<GenomicRegion> pooled;
    std::vector<Seg> segs;
    size_t seg_offset = 0;  // first segment in the flat per-segment arrays
    interval::CoverBounds bounds{0, 0};
    // Columnar pooling (flat pipelined, no aggregates): one entry per
    // segment — the chromosome and its merged, sorted coordinate pairs,
    // gathered from the members' columns without touching Value payloads.
    // `segs` then holds placeholder ranges purely to keep the counts that
    // drive the flat per-segment arrays.
    std::vector<int32_t> seg_chroms;
    std::vector<std::vector<int64_t>> seg_l, seg_r;
  };
  std::vector<GroupWork> groups;
  groups.reserve(group_map.size());
  for (auto& [key, members] : group_map) {
    GroupWork g;
    g.key = key;
    g.members = std::move(members);
    groups.push_back(std::move(g));
  }

  // Columnar pooling needs only the coordinate profile, so it is eligible
  // exactly when no stage rematerializes rows: COVER/HISTOGRAM/SUMMIT with
  // no aggregates (FLAT and aggregate rows read the pooled inputs back) and
  // the pipelined backend (materialized ships row slices through the
  // shuffle codec).
  bool use_columnar = options_.columnar &&
                      options_.backend == BackendKind::kPipelined &&
                      params.variant != core::CoverVariant::kFlat &&
                      params.aggregates.empty();

  auto pool_group_columnar = [&](GroupWork* g) {
    std::map<int32_t, std::vector<std::pair<int64_t, int64_t>>> by_chrom;
    for (const auto* m : g->members) {
      const RegionColumns& mc = m->columns(in.schema());
      for (const auto& c : mc.chunks()) {
        auto& coords = by_chrom[c.chrom];
        coords.reserve(coords.size() + (c.end - c.begin));
        for (size_t i = c.begin; i < c.end; ++i) {
          coords.emplace_back(mc.left(i), mc.right(i));
        }
      }
    }
    for (auto& [chrom, coords] : by_chrom) {
      std::sort(coords.begin(), coords.end());
      std::vector<int64_t> l(coords.size()), r(coords.size());
      for (size_t i = 0; i < coords.size(); ++i) {
        l[i] = coords[i].first;
        r[i] = coords[i].second;
      }
      g->seg_chroms.push_back(chrom);
      g->seg_l.push_back(std::move(l));
      g->seg_r.push_back(std::move(r));
      g->segs.push_back({0, 0});  // placeholder; see GroupWork
    }
  };

  // Pool and sort member regions, then find the chromosome segments of the
  // pooled list. Under the flat scheduler this runs per-group in parallel.
  auto pool_group = [](GroupWork* g) {
    size_t total = 0;
    for (const auto* m : g->members) total += m->regions.size();
    g->pooled.reserve(total);
    for (const auto* m : g->members) {
      g->pooled.insert(g->pooled.end(), m->regions.begin(),
                       m->regions.end());
    }
    gdm::SortRegions(&g->pooled);
    size_t i = 0;
    while (i < g->pooled.size()) {
      size_t j = i;
      while (j < g->pooled.size() &&
             g->pooled[j].chrom == g->pooled[i].chrom) {
        ++j;
      }
      g->segs.push_back({i, j});
      i = j;
    }
  };

  // Phase bodies shared by both schedulers; all flat arrays are indexed by
  // g.seg_offset + local segment index.
  struct SegState {
    std::vector<interval::AccSegment> profile;
    std::vector<GenomicRegion> inputs;
    std::vector<GenomicRegion> regions;
    std::vector<int64_t> counts;
    std::vector<std::vector<Value>> aggs;
  };

  // Accumulation profile of one segment, optionally through the shuffle
  // codec for the materialized backend.
  auto profile_segment = [&](const GroupWork& g, size_t si, SegState* state,
                             FirstError* errors) {
    const Seg& seg = g.segs[si];
    if (options_.backend == BackendKind::kMaterialized) {
      std::string buf;
      trace_.shuffle_bytes.fetch_add(
          SliceBytes(g.pooled, seg.begin, seg.end, &buf), kRelaxed);
      auto decoded = RegionCodec::Decode(buf);
      if (!decoded.ok()) {
        errors->Capture(decoded.status());
        return;
      }
      state->inputs = std::move(decoded).value();
    } else {
      state->inputs.assign(g.pooled.begin() + seg.begin,
                           g.pooled.begin() + seg.end);
    }
    state->profile = interval::AccumulationProfile(state->inputs);
  };

  // Resolves ANY/ALL against the group's global maximum accumulation.
  auto resolve_bounds = [&](GroupWork* g, const std::vector<SegState>& states) {
    int64_t global_max = 0;
    for (size_t si = 0; si < g->segs.size(); ++si) {
      global_max = std::max(
          global_max,
          interval::MaxAccumulation(states[g->seg_offset + si].profile));
    }
    interval::CoverBounds bounds{params.min_acc, params.max_acc};
    if (bounds.min_acc == interval::CoverBounds::kAll) {
      bounds.min_acc = global_max;
    }
    if (bounds.max_acc == interval::CoverBounds::kAll) {
      bounds.max_acc = global_max;
    }
    if (bounds.min_acc == interval::CoverBounds::kAny) bounds.min_acc = 1;
    g->bounds = bounds;
  };

  // Variant computation + aggregates of one segment.
  auto compute_segment = [&](const GroupWork& g, SegState* state) {
    std::vector<GenomicRegion> regions;
    std::vector<int64_t> counts;
    switch (params.variant) {
      case core::CoverVariant::kCover:
        regions = interval::Cover(state->profile, g.bounds);
        break;
      case core::CoverVariant::kFlat:
        regions = interval::Flat(state->profile, g.bounds, state->inputs);
        break;
      case core::CoverVariant::kHistogram:
        regions = interval::Histogram(state->profile, g.bounds, &counts);
        break;
      case core::CoverVariant::kSummit:
        regions = interval::Summit(state->profile, g.bounds, &counts);
        break;
    }
    if (!params.aggregates.empty()) {
      std::vector<std::vector<AggAccumulator>> accs(regions.size());
      for (auto& row : accs) {
        row.reserve(params.aggregates.size());
        for (const auto& spec : params.aggregates) {
          row.emplace_back(spec.func);
        }
      }
      interval::OverlapJoin(regions, state->inputs, [&](size_t oi, size_t ii) {
        auto& row = accs[oi];
        for (size_t a = 0; a < params.aggregates.size(); ++a) {
          if (agg_inputs[a] == SIZE_MAX) {
            row[a].AddRegion();
          } else {
            row[a].Add(state->inputs[ii].values[agg_inputs[a]]);
          }
        }
      });
      state->aggs.resize(regions.size());
      for (size_t oi = 0; oi < regions.size(); ++oi) {
        for (auto& acc : accs[oi]) state->aggs[oi].push_back(acc.Finish());
      }
    }
    state->regions = std::move(regions);
    state->counts = std::move(counts);
  };

  // Builds the group's output sample from its finished segments.
  auto assemble = [&](const GroupWork& g, std::vector<SegState>& states) {
    Sample ns = Operators::DerivedGroupSample(
        core::CoverVariantName(params.variant), g.members);
    if (!params.groupby.empty()) ns.metadata.Add(params.groupby, g.key);
    for (size_t si = 0; si < g.segs.size(); ++si) {
      SegState& state = states[g.seg_offset + si];
      for (size_t oi = 0; oi < state.regions.size(); ++oi) {
        GenomicRegion nr = state.regions[oi];
        if (with_acc) nr.values.push_back(Value(state.counts[oi]));
        if (!params.aggregates.empty()) {
          for (auto& v : state.aggs[oi]) nr.values.push_back(std::move(v));
        }
        ns.regions.push_back(std::move(nr));
      }
    }
    return ns;
  };

  if (options_.scheduling == SchedulingMode::kPerPair) {
    // Seed scheduler: sequential loop over groups, segment parallelism
    // within each group only (a stage barrier per group when materialized).
    for (auto& g : groups) {
      pool_group(&g);
      trace_.partitions.fetch_add(g.segs.size(), kRelaxed);
      std::vector<SegState> states(g.segs.size());
      FirstError errors;
      RunStage("cover:profile", g.segs.size(), [&](size_t si) {
        profile_segment(g, si, &states[si], &errors);
      });
      GDMS_RETURN_NOT_OK(errors.status());
      if (options_.backend == BackendKind::kMaterialized) {
        trace_.stage_barriers.fetch_add(1, kRelaxed);
      }
      resolve_bounds(&g, states);
      RunStage("cover:compute", g.segs.size(), [&](size_t si) {
        compute_segment(g, &states[si]);
      });
      out.AddSample(assemble(g, states));
    }
    return out;
  }

  // Flat scheduler: pool every group in parallel, then run ONE task list
  // over all (group x segment) pairs per phase.
  RunStage("cover:pool", groups.size(), [&](size_t gi) {
    if (use_columnar) {
      pool_group_columnar(&groups[gi]);
    } else {
      pool_group(&groups[gi]);
    }
  });
  size_t total_segs = 0;
  std::vector<size_t> seg_group;  // flat segment -> owning group
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    groups[gi].seg_offset = total_segs;
    total_segs += groups[gi].segs.size();
    seg_group.resize(total_segs, gi);
  }
  trace_.partitions.fetch_add(total_segs, kRelaxed);

  std::vector<SegState> states(total_segs);
  FirstError errors;
  RunStage("cover:profile", total_segs, [&](size_t fi) {
    if (errors.failed()) return;
    const GroupWork& g = groups[seg_group[fi]];
    size_t si = fi - g.seg_offset;
    if (use_columnar) {
      trace_.columnar_tasks.fetch_add(1, kRelaxed);
      interval::ProfileFromCoords(g.seg_chroms[si], g.seg_l[si].data(),
                                  g.seg_r[si].data(), g.seg_l[si].size(),
                                  &states[fi].profile);
      return;
    }
    profile_segment(g, si, &states[fi], &errors);
  });
  GDMS_RETURN_NOT_OK(errors.status());
  if (options_.backend == BackendKind::kMaterialized) {
    trace_.stage_barriers.fetch_add(1, kRelaxed);
  }

  for (auto& g : groups) resolve_bounds(&g, states);

  RunStage("cover:compute", total_segs, [&](size_t fi) {
    compute_segment(groups[seg_group[fi]], &states[fi]);
  });

  std::vector<Sample> results(groups.size());
  std::vector<char> emit(groups.size(), 1);
  RunStage("cover:assemble", groups.size(), [&](size_t gi) {
    Sample ns = assemble(groups[gi], states);
    if (fused != nullptr && !tail.ApplySample(&ns)) emit[gi] = 0;
    results[gi] = std::move(ns);
  });
  for (size_t gi = 0; gi < results.size(); ++gi) {
    if (emit[gi]) out.AddSample(std::move(results[gi]));
  }
  return out;
}

}  // namespace gdms::engine
