#include "engine/shuffle.h"

#include <cstring>

namespace gdms::engine {

namespace {

using gdm::GenomicRegion;
using gdm::Value;

void PutRaw(const void* data, size_t n, std::string* out) {
  out->append(reinterpret_cast<const char*>(data), n);
}

template <typename T>
void Put(T v, std::string* out) {
  PutRaw(&v, sizeof(T), out);
}

template <typename T>
bool Get(const std::string& buf, size_t* pos, T* v) {
  if (*pos + sizeof(T) > buf.size()) return false;
  std::memcpy(v, buf.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void RegionCodec::Encode(const std::vector<GenomicRegion>& regions,
                         size_t begin, size_t end, std::string* out) {
  for (size_t i = begin; i < end; ++i) {
    const GenomicRegion& r = regions[i];
    Put<int32_t>(r.chrom, out);
    Put<int64_t>(r.left, out);
    Put<int64_t>(r.right, out);
    Put<uint8_t>(static_cast<uint8_t>(r.strand), out);
    Put<uint32_t>(static_cast<uint32_t>(r.values.size()), out);
    for (const Value& v : r.values) {
      Put<uint8_t>(static_cast<uint8_t>(v.type()), out);
      switch (v.type()) {
        case gdm::AttrType::kNull:
          break;
        case gdm::AttrType::kInt:
          Put<int64_t>(v.AsInt(), out);
          break;
        case gdm::AttrType::kDouble:
          Put<double>(v.AsDouble(), out);
          break;
        case gdm::AttrType::kBool:
          Put<uint8_t>(v.AsBool() ? 1 : 0, out);
          break;
        case gdm::AttrType::kString: {
          const std::string& s = v.AsString();
          Put<uint32_t>(static_cast<uint32_t>(s.size()), out);
          PutRaw(s.data(), s.size(), out);
          break;
        }
      }
    }
  }
}

Result<std::vector<gdm::GenomicRegion>> RegionCodec::Decode(
    const std::string& buffer) {
  std::vector<GenomicRegion> out;
  size_t pos = 0;
  while (pos < buffer.size()) {
    GenomicRegion r;
    uint8_t strand = 0;
    uint32_t arity = 0;
    if (!Get(buffer, &pos, &r.chrom) || !Get(buffer, &pos, &r.left) ||
        !Get(buffer, &pos, &r.right) || !Get(buffer, &pos, &strand) ||
        !Get(buffer, &pos, &arity)) {
      return Status::ParseError("truncated shuffle buffer (header)");
    }
    r.strand = static_cast<gdm::Strand>(strand);
    r.values.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      uint8_t tag = 0;
      if (!Get(buffer, &pos, &tag)) {
        return Status::ParseError("truncated shuffle buffer (value tag)");
      }
      switch (static_cast<gdm::AttrType>(tag)) {
        case gdm::AttrType::kNull:
          r.values.push_back(Value::Null());
          break;
        case gdm::AttrType::kInt: {
          int64_t v = 0;
          if (!Get(buffer, &pos, &v)) {
            return Status::ParseError("truncated shuffle buffer (int)");
          }
          r.values.push_back(Value(v));
          break;
        }
        case gdm::AttrType::kDouble: {
          double v = 0;
          if (!Get(buffer, &pos, &v)) {
            return Status::ParseError("truncated shuffle buffer (double)");
          }
          r.values.push_back(Value(v));
          break;
        }
        case gdm::AttrType::kBool: {
          uint8_t v = 0;
          if (!Get(buffer, &pos, &v)) {
            return Status::ParseError("truncated shuffle buffer (bool)");
          }
          r.values.push_back(Value(v != 0));
          break;
        }
        case gdm::AttrType::kString: {
          uint32_t len = 0;
          if (!Get(buffer, &pos, &len) || pos + len > buffer.size()) {
            return Status::ParseError("truncated shuffle buffer (string)");
          }
          r.values.push_back(Value(buffer.substr(pos, len)));
          pos += len;
          break;
        }
        default:
          return Status::ParseError("bad value tag in shuffle buffer");
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace gdms::engine
