#ifndef GDMS_ENGINE_SHUFFLE_H_
#define GDMS_ENGINE_SHUFFLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/region.h"

namespace gdms::engine {

/// \brief Binary region codec used by the materialized (Spark-like) backend.
///
/// Spark-style stage boundaries serialize partitions to shuffle storage and
/// deserialize them in the next stage; this codec reproduces that cost
/// honestly in-process. The pipelined (Flink-like) backend never calls it —
/// that asymmetry is exactly what experiment E6 measures.
class RegionCodec {
 public:
  /// Appends the encoding of `regions[begin, end)` to `out`.
  static void Encode(const std::vector<gdm::GenomicRegion>& regions,
                     size_t begin, size_t end, std::string* out);

  /// Decodes an entire buffer produced by Encode.
  static Result<std::vector<gdm::GenomicRegion>> Decode(
      const std::string& buffer);
};

}  // namespace gdms::engine

#endif  // GDMS_ENGINE_SHUFFLE_H_
