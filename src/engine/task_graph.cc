#include "engine/task_graph.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/operators.h"
#include "obs/metrics.h"

namespace gdms::engine {

namespace {

/// Cross-product cap above which a sample's joinby keys are not enumerated
/// and the sample falls back to the direct O(S) metadata scan.
constexpr size_t kMaxKeysPerSample = 64;

/// Length-prefixed concatenation of one value tuple; unambiguous for
/// arbitrary metadata values.
std::string EncodeKey(const std::vector<const std::string*>& tuple) {
  std::string key;
  for (const std::string* v : tuple) {
    key += std::to_string(v->size());
    key += ':';
    key += *v;
  }
  return key;
}

/// All joinby key tuples of one sample: the cross-product of its value sets
/// over the joinby attributes. Empty result means "matches nothing" (some
/// attribute has no value) — unless `overflow` is set, in which case the
/// cross-product exceeded the cap and the caller must fall back to scanning.
std::vector<std::string> SampleKeys(const gdm::Metadata& meta,
                                    const std::vector<std::string>& joinby,
                                    bool* overflow) {
  *overflow = false;
  std::vector<std::vector<std::string>> values(joinby.size());
  size_t product = 1;
  for (size_t a = 0; a < joinby.size(); ++a) {
    values[a] = meta.ValuesOf(joinby[a]);
    if (values[a].empty()) return {};
    product *= values[a].size();
    if (product > kMaxKeysPerSample) {
      *overflow = true;
      return {};
    }
  }
  std::vector<std::string> keys;
  keys.reserve(product);
  std::vector<size_t> odometer(joinby.size(), 0);
  std::vector<const std::string*> tuple(joinby.size());
  while (true) {
    for (size_t a = 0; a < joinby.size(); ++a) {
      tuple[a] = &values[a][odometer[a]];
    }
    keys.push_back(EncodeKey(tuple));
    size_t a = joinby.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < values[a].size()) break;
      odometer[a] = 0;
      if (a == 0) return keys;
    }
  }
}

}  // namespace

std::vector<RefChunk> MakeRefChunks(
    const std::vector<gdm::GenomicRegion>& refs, int64_t bin_size) {
  std::vector<RefChunk> out;
  size_t i = 0;
  while (i < refs.size()) {
    RefChunk chunk;
    chunk.begin = i;
    chunk.chrom = refs[i].chrom;
    chunk.span_start = refs[i].left;
    chunk.max_right = refs[i].right;
    ++i;
    while (i < refs.size() && refs[i].chrom == chunk.chrom &&
           refs[i].left < chunk.span_start + bin_size) {
      chunk.max_right = std::max(chunk.max_right, refs[i].right);
      ++i;
    }
    chunk.end = i;
    out.push_back(chunk);
  }
  static obs::Counter* chunks =
      obs::MetricsRegistry::Global().GetCounter("gdms_engine_ref_chunks_total");
  chunks->Add(out.size());
  return out;
}

std::vector<TaskPartition> BindPartitions(
    const std::vector<RefChunk>& chunks,
    const std::vector<gdm::GenomicRegion>& exps,
    const gdm::ChromIndex& exp_index, int64_t slack) {
  std::vector<TaskPartition> out;
  out.reserve(chunks.size());
  for (const RefChunk& chunk : chunks) {
    TaskPartition part;
    part.ref_begin = chunk.begin;
    part.ref_end = chunk.end;
    int64_t exp_len = exp_index.MaxLen(chunk.chrom);
    part.exp_begin = exp_index.LowerBoundLeft(
        exps, chunk.chrom, chunk.span_start - slack - exp_len);
    part.exp_end =
        exp_index.LowerBoundLeft(exps, chunk.chrom, chunk.max_right + slack);
    out.push_back(part);
  }
  return out;
}

std::vector<std::pair<size_t, size_t>> MatchJoinbyPairs(
    const gdm::Dataset& left, const gdm::Dataset& right,
    const std::vector<std::string>& joinby) {
  static obs::Counter* matched = obs::MetricsRegistry::Global().GetCounter(
      "gdms_engine_joinby_pairs_total");
  std::vector<std::pair<size_t, size_t>> pairs;
  if (joinby.empty()) {
    pairs.reserve(left.num_samples() * right.num_samples());
    for (size_t l = 0; l < left.num_samples(); ++l) {
      for (size_t r = 0; r < right.num_samples(); ++r) {
        pairs.emplace_back(l, r);
      }
    }
    matched->Add(pairs.size());
    return pairs;
  }

  // Group right samples by key tuple; cross-product overflows go to the
  // scan list and are checked directly per left sample.
  std::unordered_map<std::string, std::vector<size_t>> by_key;
  std::vector<size_t> scan_right;
  for (size_t r = 0; r < right.num_samples(); ++r) {
    bool overflow = false;
    auto keys = SampleKeys(right.sample(r).metadata, joinby, &overflow);
    if (overflow) {
      scan_right.push_back(r);
      continue;
    }
    for (auto& key : keys) by_key[std::move(key)].push_back(r);
  }

  // A key-tuple collision IS a match: sharing one tuple means sharing a
  // value on every attribute, which is exactly JoinbyMatch. Dedup via
  // stamps (a pair can collide on several tuples).
  std::vector<size_t> stamp(right.num_samples(), SIZE_MAX);
  std::vector<size_t> candidates;
  for (size_t l = 0; l < left.num_samples(); ++l) {
    const gdm::Sample& ls = left.sample(l);
    candidates.clear();
    bool overflow = false;
    auto keys = SampleKeys(ls.metadata, joinby, &overflow);
    if (overflow) {
      for (size_t r = 0; r < right.num_samples(); ++r) {
        if (core::Operators::JoinbyMatch(joinby, ls.metadata,
                                         right.sample(r).metadata)) {
          candidates.push_back(r);
        }
      }
    } else {
      for (const auto& key : keys) {
        auto it = by_key.find(key);
        if (it == by_key.end()) continue;
        for (size_t r : it->second) {
          if (stamp[r] != l) {
            stamp[r] = l;
            candidates.push_back(r);
          }
        }
      }
      for (size_t r : scan_right) {
        if (core::Operators::JoinbyMatch(joinby, ls.metadata,
                                         right.sample(r).metadata)) {
          candidates.push_back(r);
        }
      }
      std::sort(candidates.begin(), candidates.end());
    }
    for (size_t r : candidates) pairs.emplace_back(l, r);
  }
  matched->Add(pairs.size());
  return pairs;
}

}  // namespace gdms::engine
