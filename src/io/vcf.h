#ifndef GDMS_IO_VCF_H_
#define GDMS_IO_VCF_H_

#include <istream>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// Schema produced by the VCF reader: id, ref, alt, qual, filter, info
/// (qual:DOUBLE, others STRING). Mutations/variants are the "DNA features"
/// the paper's tertiary analysis integrates.
gdm::RegionSchema VcfSchema();

/// \brief Reads one VCF sample (site-level; genotype columns are ignored).
///
/// VCF POS is 1-based; a variant becomes the 0-based half-open region
/// [POS-1, POS-1+len(REF)). '##' headers and the '#CHROM' line are skipped.
Result<gdm::Sample> ReadVcfSample(std::istream& in, gdm::SampleId id);

}  // namespace gdms::io

#endif  // GDMS_IO_VCF_H_
