#include "io/gtf.h"

#include <map>

#include "common/string_util.h"

namespace gdms::io {

namespace {

using gdm::AttrType;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;

/// Parses `gene_id "X"; tx "Y";` into a key->value map.
std::map<std::string, std::string> ParseAttrColumn(const std::string& col) {
  std::map<std::string, std::string> out;
  size_t i = 0;
  while (i < col.size()) {
    while (i < col.size() && (col[i] == ' ' || col[i] == ';')) ++i;
    size_t key_start = i;
    while (i < col.size() && col[i] != ' ' && col[i] != ';') ++i;
    if (i >= col.size() || key_start == i) break;
    std::string key = col.substr(key_start, i - key_start);
    while (i < col.size() && col[i] == ' ') ++i;
    std::string value;
    if (i < col.size() && col[i] == '"') {
      ++i;
      size_t val_start = i;
      while (i < col.size() && col[i] != '"') ++i;
      value = col.substr(val_start, i - val_start);
      if (i < col.size()) ++i;  // closing quote
    } else {
      size_t val_start = i;
      while (i < col.size() && col[i] != ';') ++i;
      value = std::string(Trim(col.substr(val_start, i - val_start)));
    }
    out.emplace(std::move(key), std::move(value));
  }
  return out;
}

}  // namespace

gdm::RegionSchema GtfSchema(const std::vector<std::string>& attr_keys) {
  RegionSchema s;
  (void)s.AddAttr("source", AttrType::kString);
  (void)s.AddAttr("feature", AttrType::kString);
  (void)s.AddAttr("score", AttrType::kDouble);
  (void)s.AddAttr("frame", AttrType::kString);
  for (const auto& k : attr_keys) (void)s.AddAttr(k, AttrType::kString);
  return s;
}

Result<gdm::Sample> ReadGtfSample(std::istream& in, gdm::SampleId id,
                                  const std::vector<std::string>& attr_keys) {
  Sample sample(id);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = Split(std::string(trimmed), '\t');
    if (fields.size() < 8) {
      return Status::ParseError("GTF line " + std::to_string(line_no) +
                                " has fewer than 8 columns");
    }
    GDMS_ASSIGN_OR_RETURN(int64_t start1, ParseInt64(fields[3]));
    GDMS_ASSIGN_OR_RETURN(int64_t end1, ParseInt64(fields[4]));
    if (start1 < 1 || end1 < start1) {
      return Status::ParseError("GTF line " + std::to_string(line_no) +
                                " has invalid coordinates");
    }
    GenomicRegion r(gdm::InternChrom(fields[0]), start1 - 1, end1);
    if (!fields[6].empty()) r.strand = gdm::StrandFromChar(fields[6][0]);
    r.values.push_back(Value(fields[1]));
    r.values.push_back(Value(fields[2]));
    if (fields[5] == ".") {
      r.values.push_back(Value::Null());
    } else {
      GDMS_ASSIGN_OR_RETURN(Value score,
                            Value::Parse(fields[5], AttrType::kDouble));
      r.values.push_back(std::move(score));
    }
    r.values.push_back(fields[7] == "." ? Value::Null() : Value(fields[7]));
    auto attrs = fields.size() >= 9 ? ParseAttrColumn(fields[8])
                                    : std::map<std::string, std::string>{};
    for (const auto& key : attr_keys) {
      auto it = attrs.find(key);
      r.values.push_back(it == attrs.end() ? Value::Null() : Value(it->second));
    }
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  return sample;
}

void WriteGtfSample(const gdm::Sample& sample, const gdm::RegionSchema& schema,
                    std::ostream& out) {
  auto source_idx = schema.IndexOf("source");
  auto feature_idx = schema.IndexOf("feature");
  auto score_idx = schema.IndexOf("score");
  auto frame_idx = schema.IndexOf("frame");
  for (const auto& r : sample.regions) {
    auto field = [&](std::optional<size_t> idx, const char* fallback) {
      if (!idx || r.values[*idx].is_null()) return std::string(fallback);
      return r.values[*idx].ToString();
    };
    out << gdm::ChromName(r.chrom) << '\t' << field(source_idx, "gdms") << '\t'
        << field(feature_idx, "region") << '\t' << (r.left + 1) << '\t'
        << r.right << '\t' << field(score_idx, ".") << '\t'
        << gdm::StrandChar(r.strand) << '\t' << field(frame_idx, ".") << '\t';
    bool first = true;
    for (size_t i = 0; i < schema.size(); ++i) {
      if ((source_idx && i == *source_idx) ||
          (feature_idx && i == *feature_idx) ||
          (score_idx && i == *score_idx) || (frame_idx && i == *frame_idx)) {
        continue;
      }
      if (!first) out << ' ';
      first = false;
      out << schema.attr(i).name << " \"" << r.values[i].ToString() << "\";";
    }
    out << '\n';
  }
}

}  // namespace gdms::io
