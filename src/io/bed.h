#ifndef GDMS_IO_BED_H_
#define GDMS_IO_BED_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// \brief BED family readers.
///
/// GDM's purpose (paper, Section 2) is to mediate "technology-driven
/// formats" behind one model; the BED reader maps the ubiquitous
/// tab-separated track format onto GDM regions. Coordinates are 0-based
/// half-open, exactly GDM's convention.

/// Schema produced for a BED file with `columns` columns (3..6):
/// 4+ adds name:STRING, 5+ adds score:DOUBLE (column 6, strand, is fixed).
gdm::RegionSchema BedSchema(int columns);

/// Schema of the ENCODE narrowPeak format (BED6 + signal_value:DOUBLE,
/// p_value:DOUBLE, q_value:DOUBLE, peak:INT).
gdm::RegionSchema NarrowPeakSchema();

/// Schema of the ENCODE broadPeak format (narrowPeak without the peak
/// column).
gdm::RegionSchema BroadPeakSchema();

/// Reads one BED sample. Lines beginning with '#', "track" or "browser"
/// are skipped. Column count is taken from the first data line and must be
/// consistent. Output regions are coordinate-sorted.
Result<gdm::Sample> ReadBedSample(std::istream& in, gdm::SampleId id);

/// Reads one narrowPeak sample (exactly 10 columns).
Result<gdm::Sample> ReadNarrowPeakSample(std::istream& in, gdm::SampleId id);

/// Reads one broadPeak sample (exactly 9 columns).
Result<gdm::Sample> ReadBroadPeakSample(std::istream& in, gdm::SampleId id);

/// Number of variable columns the BED sample carries (0..2), recoverable
/// from the sample's region arity; needed to pick the write layout.
void WriteBedSample(const gdm::Sample& sample, const gdm::RegionSchema& schema,
                    std::ostream& out);

}  // namespace gdms::io

#endif  // GDMS_IO_BED_H_
