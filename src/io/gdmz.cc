#include "io/gdmz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <unordered_map>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "gdm/region_columns.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace gdms::io {

namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::RegionColumns;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

// ---------------------------------------------------------------------------
// Byte-level primitives
// ---------------------------------------------------------------------------

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutByte(uint8_t b) { out_->push_back(static_cast<char>(b)); }

  void PutFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutByte(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutByte(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutByte(static_cast<uint8_t>(v));
  }

  void PutZigzag(int64_t v) { PutVarint(ZigzagEncode(v)); }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    out_->append(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked sequential reader; every accessor reports failure instead
/// of reading past the end, which is what makes corrupt-input rejection
/// sanitizer-clean.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t GetByte() {
    if (pos_ >= size_) return Fail();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetFixed32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetByte()) << (8 * i);
    return v;
  }

  uint64_t GetFixed64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetByte()) << (8 * i);
    return v;
  }

  uint64_t GetVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b = GetByte();
      if (!ok_) return 0;
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    Fail();
    return 0;
  }

  int64_t GetZigzag() { return ZigzagDecode(GetVarint()); }

  /// Returns a view of the next `n` bytes (empty view + failure when short).
  std::string_view GetSpan(size_t n) {
    if (n > remaining()) {
      Fail();
      return {};
    }
    std::string_view s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  std::string GetString() {
    uint64_t n = GetVarint();
    if (!ok_ || n > remaining()) {
      Fail();
      return {};
    }
    return std::string(GetSpan(static_cast<size_t>(n)));
  }

 private:
  uint8_t Fail() {
    ok_ = false;
    return 0;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Decimal double encoding (6 significant digits, matching "%.6g")
// ---------------------------------------------------------------------------

/// Exponent sentinel marking an escaped raw 8-byte double.
constexpr int64_t kRawEscapeExp = 1000;

/// Splits Quantize6(v) into decimal mantissa (|m| <= 999999) and power-of-ten
/// exponent; false when the value must be stored raw (non-finite, -0.0).
bool DecimalSplit(double v, int64_t* mant, int64_t* exp) {
  if (!std::isfinite(v)) return false;
  if (v == 0.0) {
    if (std::signbit(v)) return false;  // preserve -0.0 bit-exactly via raw
    *mant = 0;
    *exp = 0;
    return true;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  int64_t m = 0;
  int64_t frac_digits = 0;
  int64_t e10 = 0;
  bool neg = false, in_frac = false;
  const char* p = buf;
  if (*p == '-') {
    neg = true;
    ++p;
  }
  for (; *p != '\0'; ++p) {
    char c = *p;
    if (c >= '0' && c <= '9') {
      m = m * 10 + (c - '0');
      if (in_frac) ++frac_digits;
    } else if (c == '.') {
      in_frac = true;
    } else if (c == 'e' || c == 'E') {
      e10 = std::strtol(p + 1, nullptr, 10);
      break;
    } else {
      return false;  // unexpected rendering (shouldn't happen for finite v)
    }
  }
  int64_t e = e10 - frac_digits;
  while (m != 0 && m % 10 == 0) {
    m /= 10;
    ++e;
  }
  *mant = neg ? -m : m;
  *exp = (m == 0) ? 0 : e;
  return true;
}

/// Reconstructs the double a decimal (mant, exp) pair denotes — identical to
/// strtod of the "%.6g" text, i.e. the correctly rounded decimal value.
double DecimalJoin(int64_t mant, int64_t exp) {
  static const double kPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                                  1e12, 1e13, 1e14, 1e15, 1e16, 1e17,
                                  1e18, 1e19, 1e20, 1e21, 1e22};
  // Mantissa (<= 999999) and |exp| <= 22 powers are exact in binary64, so a
  // single multiply/divide performs the one correctly-rounded step.
  if (exp >= 0 && exp <= 22) return static_cast<double>(mant) * kPow10[exp];
  if (exp < 0 && exp >= -22) return static_cast<double>(mant) / kPow10[-exp];
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llde%lld", static_cast<long long>(mant),
                static_cast<long long>(exp));
  return std::strtod(buf, nullptr);
}

// ---------------------------------------------------------------------------
// Column encoders
// ---------------------------------------------------------------------------

/// Appends a length-prefixed sub-stream built by `fill`.
template <typename Fn>
void PutStream(ByteWriter* w, const Fn& fill) {
  std::string tmp;
  ByteWriter sub(&tmp);
  fill(&sub);
  w->PutVarint(tmp.size());
  w->PutRaw(tmp.data(), tmp.size());
}

// ---------------------------------------------------------------------------
// Packed integer streams
// ---------------------------------------------------------------------------
//
// A generic container for a sequence of unsigned values (signed callers
// zigzag first). The writer computes the exact size of three layouts and
// emits the smallest, tagged with a mode byte:
//   varint  one varint per value — mixed magnitudes
//   rle     (run-length, value) varint pairs — long constant runs
//   packed  fixed bit-width, LSB-first — narrow uniform ranges (decimal
//           mantissas and exponents, dictionary codes)
// The choice is per stream, so e.g. a saturated score column picks rle
// while a noisy p-value column's exponents pick packed.

constexpr uint8_t kIntStreamVarint = 0;
constexpr uint8_t kIntStreamRle = 1;
constexpr uint8_t kIntStreamPacked = 2;

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void PutIntStreamBody(ByteWriter* w, const std::vector<uint64_t>& vals) {
  size_t varint_sz = 0;
  uint64_t all_bits = 0;
  for (uint64_t v : vals) {
    varint_sz += VarintLen(v);
    all_bits |= v;
  }
  size_t rle_sz = 0;
  for (size_t i = 0; i < vals.size();) {
    size_t run = i + 1;
    while (run < vals.size() && vals[run] == vals[i]) ++run;
    rle_sz += VarintLen(run - i) + VarintLen(vals[i]);
    i = run;
  }
  int width = 64 - __builtin_clzll(all_bits | 1);
  size_t packed_sz = 1 + (vals.size() * static_cast<size_t>(width) + 7) / 8;

  if (rle_sz <= varint_sz && rle_sz <= packed_sz) {
    w->PutByte(kIntStreamRle);
    for (size_t i = 0; i < vals.size();) {
      size_t run = i + 1;
      while (run < vals.size() && vals[run] == vals[i]) ++run;
      w->PutVarint(run - i);
      w->PutVarint(vals[i]);
      i = run;
    }
  } else if (packed_sz < varint_sz) {
    w->PutByte(kIntStreamPacked);
    w->PutByte(static_cast<uint8_t>(width));
    std::vector<uint8_t> bytes((vals.size() * static_cast<size_t>(width) + 7) / 8,
                               0);
    size_t bit = 0;
    for (uint64_t v : vals) {
      for (int b = 0; b < width; ++b, ++bit) {
        if ((v >> b) & 1) {
          bytes[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
        }
      }
    }
    w->PutRaw(bytes.data(), bytes.size());
  } else {
    w->PutByte(kIntStreamVarint);
    for (uint64_t v : vals) w->PutVarint(v);
  }
}

/// Reads a packed integer stream of exactly `count` values; the caller
/// still owns the enclosing sub-stream and checks it was fully consumed.
bool GetIntStreamBody(ByteReader* r, size_t count,
                      std::vector<uint64_t>* out) {
  uint8_t mode = r->GetByte();
  if (!r->ok()) return false;
  out->clear();
  out->reserve(count);
  switch (mode) {
    case kIntStreamVarint:
      for (size_t i = 0; i < count; ++i) {
        uint64_t v = r->GetVarint();
        if (!r->ok()) return false;
        out->push_back(v);
      }
      return true;
    case kIntStreamRle:
      while (out->size() < count) {
        uint64_t run = r->GetVarint();
        uint64_t v = r->GetVarint();
        if (!r->ok() || run == 0 || run > count - out->size()) return false;
        out->insert(out->end(), static_cast<size_t>(run), v);
      }
      return true;
    case kIntStreamPacked: {
      uint8_t width = r->GetByte();
      if (!r->ok() || width == 0 || width > 64) return false;
      size_t need = (count * static_cast<size_t>(width) + 7) / 8;
      std::string_view bytes = r->GetSpan(need);
      if (!r->ok()) return false;
      size_t bit = 0;
      for (size_t i = 0; i < count; ++i) {
        uint64_t v = 0;
        for (int b = 0; b < width; ++b, ++bit) {
          if ((static_cast<uint8_t>(bytes[bit >> 3]) >> (bit & 7)) & 1) {
            v |= uint64_t{1} << b;
          }
        }
        out->push_back(v);
      }
      return true;
    }
    default:
      return false;
  }
}

std::vector<uint64_t> ZigzagAll(const std::vector<int64_t>& vals) {
  std::vector<uint64_t> out;
  out.reserve(vals.size());
  for (int64_t v : vals) out.push_back(ZigzagEncode(v));
  return out;
}

struct MetaDict {
  std::unordered_map<std::string, uint32_t> index;
  std::vector<const std::string*> entries;

  uint32_t Intern(const std::string& s) {
    auto [it, inserted] =
        index.emplace(s, static_cast<uint32_t>(entries.size()));
    if (inserted) entries.push_back(&it->first);
    return it->second;
  }
};

constexpr uint8_t kValidityAllValid = 0;
constexpr uint8_t kValidityBitmap = 1;
constexpr uint8_t kValidityAllNull = 2;

constexpr uint8_t kStrandUniform = 0;
constexpr uint8_t kStrandPacked = 1;

constexpr uint8_t kDoubleDecimal = 0;  // only encoding emitted; raw escapes
                                       // ride in the escape stream

constexpr uint8_t kStringDict = 0;
constexpr uint8_t kStringFront = 1;

void EncodeValueColumn(ByteWriter* w, const gdm::ValueColumn& col) {
  const size_t n = col.size();
  w->PutByte(static_cast<uint8_t>(col.type()));
  size_t non_null = 0;
  for (size_t i = 0; i < n; ++i) {
    if (col.IsValid(i)) ++non_null;
  }
  if (col.type() == AttrType::kNull || non_null == 0) {
    w->PutByte(kValidityAllNull);
    return;
  }
  if (non_null == n) {
    w->PutByte(kValidityAllValid);
  } else {
    w->PutByte(kValidityBitmap);
    PutStream(w, [&](ByteWriter* s) {
      std::vector<uint8_t> bits((n + 7) / 8, 0);
      for (size_t i = 0; i < n; ++i) {
        if (col.IsValid(i)) bits[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
      }
      s->PutRaw(bits.data(), bits.size());
    });
  }
  switch (col.type()) {
    case AttrType::kInt: {
      std::vector<int64_t> vals;
      vals.reserve(non_null);
      for (size_t i = 0; i < n; ++i) {
        if (col.IsValid(i)) vals.push_back(col.ints()[i]);
      }
      PutStream(w,
                [&](ByteWriter* s) { PutIntStreamBody(s, ZigzagAll(vals)); });
      break;
    }
    case AttrType::kBool:
      PutStream(w, [&](ByteWriter* s) {
        std::vector<uint8_t> bits((non_null + 7) / 8, 0);
        size_t k = 0;
        for (size_t i = 0; i < n; ++i) {
          if (!col.IsValid(i)) continue;
          if (col.bools()[i]) bits[k >> 3] |= static_cast<uint8_t>(1u << (k & 7));
          ++k;
        }
        s->PutRaw(bits.data(), bits.size());
      });
      break;
    case AttrType::kDouble: {
      w->PutByte(kDoubleDecimal);
      // Three parallel streams over the non-null values: run-length-encoded
      // exponents, zigzag mantissas, and raw escapes for entries whose
      // exponent is the sentinel.
      std::vector<int64_t> mants, exps;
      std::vector<double> escapes;
      mants.reserve(non_null);
      exps.reserve(non_null);
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsValid(i)) continue;
        int64_t m = 0, e = 0;
        if (DecimalSplit(col.doubles()[i], &m, &e)) {
          mants.push_back(m);
          exps.push_back(e);
        } else {
          mants.push_back(0);
          exps.push_back(kRawEscapeExp);
          escapes.push_back(col.doubles()[i]);
        }
      }
      PutStream(w,
                [&](ByteWriter* s) { PutIntStreamBody(s, ZigzagAll(exps)); });
      PutStream(w,
                [&](ByteWriter* s) { PutIntStreamBody(s, ZigzagAll(mants)); });
      PutStream(w, [&](ByteWriter* s) {
        for (double d : escapes) {
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          s->PutFixed64(bits);
        }
      });
      break;
    }
    case AttrType::kString: {
      const size_t distinct = col.dict().size();
      bool use_dict = distinct <= std::max<size_t>(16, non_null / 4);
      w->PutByte(use_dict ? kStringDict : kStringFront);
      if (use_dict) {
        w->PutVarint(distinct);
        for (const auto& s : col.dict()) w->PutString(s);
        std::vector<uint64_t> codes;
        codes.reserve(non_null);
        for (size_t i = 0; i < n; ++i) {
          if (col.IsValid(i)) codes.push_back(col.codes()[i]);
        }
        PutStream(w, [&](ByteWriter* s) { PutIntStreamBody(s, codes); });
      } else {
        // Front coding: each value stores the length of the prefix it shares
        // with the previous non-null value plus its suffix. Sorted-ish
        // generated names ("peak_3_17") share long prefixes.
        PutStream(w, [&](ByteWriter* s) {
          const std::string* prev = nullptr;
          for (size_t i = 0; i < n; ++i) {
            if (!col.IsValid(i)) continue;
            const std::string& cur = col.dict()[col.codes()[i]];
            size_t shared = 0;
            if (prev != nullptr) {
              size_t lim = std::min(prev->size(), cur.size());
              while (shared < lim && (*prev)[shared] == cur[shared]) ++shared;
            }
            s->PutVarint(shared);
            s->PutString(std::string_view(cur).substr(shared));
            prev = &cur;
          }
        });
      }
      break;
    }
    case AttrType::kNull:
      break;
  }
}

void EncodeSampleBlob(ByteWriter* w, const Sample& sample,
                      const RegionColumns& cols,
                      const std::map<int32_t, uint32_t>& chrom_table) {
  const size_t n = cols.size();
  w->PutVarint(n);
  w->PutVarint(cols.chunks().size());
  for (const auto& c : cols.chunks()) {
    w->PutVarint(chrom_table.at(c.chrom));
    w->PutVarint(c.end - c.begin);
    w->PutVarint(static_cast<uint64_t>(c.max_len));
  }
  w->PutByte(cols.narrow() ? 4 : 8);
  // Left coordinates: per chunk, zigzag first value then plain varint deltas
  // (sorted order makes in-chunk deltas non-negative).
  PutStream(w, [&](ByteWriter* s) {
    for (const auto& c : cols.chunks()) {
      int64_t prev = 0;
      for (size_t i = c.begin; i < c.end; ++i) {
        int64_t l = cols.left(i);
        if (i == c.begin) {
          s->PutZigzag(l);
        } else {
          s->PutVarint(static_cast<uint64_t>(l - prev));
        }
        prev = l;
      }
    }
  });
  // Region lengths (right - left >= 0 by the GDM validity constraint).
  PutStream(w, [&](ByteWriter* s) {
    for (size_t i = 0; i < n; ++i) {
      s->PutVarint(static_cast<uint64_t>(cols.right(i) - cols.left(i)));
    }
  });
  // Strand column.
  bool uniform = true;
  for (size_t i = 1; i < n && uniform; ++i) {
    uniform = cols.strands()[i] == cols.strands()[0];
  }
  if (uniform) {
    w->PutByte(kStrandUniform);
    w->PutByte(n == 0 ? static_cast<uint8_t>(Strand::kNone)
                      : cols.strands()[0]);
  } else {
    w->PutByte(kStrandPacked);
    PutStream(w, [&](ByteWriter* s) {
      std::vector<uint8_t> packed((n + 3) / 4, 0);
      for (size_t i = 0; i < n; ++i) {
        packed[i >> 2] |= static_cast<uint8_t>((cols.strands()[i] & 3)
                                               << ((i & 3) * 2));
      }
      s->PutRaw(packed.data(), packed.size());
    });
  }
  for (size_t a = 0; a < cols.num_attrs(); ++a) {
    EncodeValueColumn(w, cols.attr(a));
  }
  (void)sample;
}

// ---------------------------------------------------------------------------
// Column decoders
// ---------------------------------------------------------------------------

struct DecodedColumn {
  AttrType type = AttrType::kNull;
  std::vector<Value> values;  // one per row (NULL included)
};

bool DecodeValueColumn(ByteReader* r, size_t n, AttrType schema_type,
                       DecodedColumn* out) {
  out->type = static_cast<AttrType>(r->GetByte());
  if (!r->ok()) return false;
  if (out->type != AttrType::kNull && out->type != schema_type) return false;
  uint8_t validity_mode = r->GetByte();
  if (!r->ok()) return false;
  out->values.assign(n, Value::Null());
  if (out->type == AttrType::kNull || validity_mode == kValidityAllNull) {
    return validity_mode == kValidityAllNull || out->type == AttrType::kNull;
  }
  std::vector<char> valid(n, 1);
  size_t non_null = n;
  if (validity_mode == kValidityBitmap) {
    uint64_t len = r->GetVarint();
    std::string_view bits = r->GetSpan(static_cast<size_t>(len));
    if (!r->ok() || bits.size() != (n + 7) / 8) return false;
    non_null = 0;
    for (size_t i = 0; i < n; ++i) {
      valid[i] = (static_cast<uint8_t>(bits[i >> 3]) >> (i & 7)) & 1;
      non_null += valid[i];
    }
  } else if (validity_mode != kValidityAllValid) {
    return false;
  }
  switch (out->type) {
    case AttrType::kInt: {
      uint64_t len = r->GetVarint();
      std::string_view payload = r->GetSpan(static_cast<size_t>(len));
      if (!r->ok()) return false;
      ByteReader s(payload.data(), payload.size());
      std::vector<uint64_t> vals;
      if (!GetIntStreamBody(&s, non_null, &vals) || s.remaining() != 0) {
        return false;
      }
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) continue;
        out->values[i] = Value(ZigzagDecode(vals[k++]));
      }
      return true;
    }
    case AttrType::kBool: {
      uint64_t len = r->GetVarint();
      std::string_view payload = r->GetSpan(static_cast<size_t>(len));
      if (!r->ok() || payload.size() != (non_null + 7) / 8) return false;
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) continue;
        bool b = (static_cast<uint8_t>(payload[k >> 3]) >> (k & 7)) & 1;
        out->values[i] = Value(b);
        ++k;
      }
      return true;
    }
    case AttrType::kDouble: {
      uint8_t enc = r->GetByte();
      if (!r->ok() || enc != kDoubleDecimal) return false;
      uint64_t elen = r->GetVarint();
      std::string_view epayload = r->GetSpan(static_cast<size_t>(elen));
      if (!r->ok()) return false;
      std::vector<uint64_t> exps;
      {
        ByteReader s(epayload.data(), epayload.size());
        if (!GetIntStreamBody(&s, non_null, &exps) || s.remaining() != 0) {
          return false;
        }
      }
      uint64_t mlen = r->GetVarint();
      std::string_view mpayload = r->GetSpan(static_cast<size_t>(mlen));
      if (!r->ok()) return false;
      std::vector<uint64_t> mants;
      {
        ByteReader s(mpayload.data(), mpayload.size());
        if (!GetIntStreamBody(&s, non_null, &mants) || s.remaining() != 0) {
          return false;
        }
      }
      uint64_t rlen = r->GetVarint();
      std::string_view rpayload = r->GetSpan(static_cast<size_t>(rlen));
      if (!r->ok()) return false;
      ByteReader rs(rpayload.data(), rpayload.size());
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) continue;
        int64_t e = ZigzagDecode(exps[k]);
        int64_t m = ZigzagDecode(mants[k]);
        double v;
        if (e == kRawEscapeExp) {
          uint64_t bits = rs.GetFixed64();
          if (!rs.ok()) return false;
          std::memcpy(&v, &bits, sizeof(v));
        } else {
          if (std::llabs(m) > 999999999999LL || std::llabs(e) > 400) {
            return false;  // out of the encoder's envelope: corrupt
          }
          v = DecimalJoin(m, e);
        }
        out->values[i] = Value(v);
        ++k;
      }
      return rs.remaining() == 0;
    }
    case AttrType::kString: {
      uint8_t enc = r->GetByte();
      if (!r->ok()) return false;
      if (enc == kStringDict) {
        uint64_t distinct = r->GetVarint();
        if (!r->ok() || distinct > non_null) return false;
        std::vector<std::string> dict;
        dict.reserve(static_cast<size_t>(distinct));
        for (uint64_t d = 0; d < distinct; ++d) {
          dict.push_back(r->GetString());
          if (!r->ok()) return false;
        }
        uint64_t len = r->GetVarint();
        std::string_view payload = r->GetSpan(static_cast<size_t>(len));
        if (!r->ok()) return false;
        ByteReader s(payload.data(), payload.size());
        std::vector<uint64_t> codes;
        if (!GetIntStreamBody(&s, non_null, &codes) || s.remaining() != 0) {
          return false;
        }
        size_t k = 0;
        for (size_t i = 0; i < n; ++i) {
          if (!valid[i]) continue;
          uint64_t code = codes[k++];
          if (code >= dict.size()) return false;
          out->values[i] = Value(dict[static_cast<size_t>(code)]);
        }
        return true;
      }
      if (enc != kStringFront) return false;
      uint64_t len = r->GetVarint();
      std::string_view payload = r->GetSpan(static_cast<size_t>(len));
      if (!r->ok()) return false;
      ByteReader s(payload.data(), payload.size());
      std::string prev;
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) continue;
        uint64_t shared = s.GetVarint();
        if (!s.ok() || shared > prev.size()) return false;
        std::string suffix = s.GetString();
        if (!s.ok()) return false;
        std::string cur = prev.substr(0, static_cast<size_t>(shared)) + suffix;
        out->values[i] = Value(cur);
        prev = std::move(cur);
      }
      return s.remaining() == 0;
    }
    case AttrType::kNull:
      return true;
  }
  return false;
}

bool DecodeSampleBlob(ByteReader* r, const std::vector<int32_t>& chrom_ids,
                      const gdm::RegionSchema& schema, Sample* sample) {
  uint64_t n64 = r->GetVarint();
  if (!r->ok() || n64 > (1ULL << 40)) return false;
  const size_t n = static_cast<size_t>(n64);
  uint64_t nchunks = r->GetVarint();
  if (!r->ok() || nchunks > n64 + 1) return false;
  struct Chunk {
    int32_t chrom;
    size_t count;
  };
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<size_t>(nchunks));
  uint64_t total = 0;
  for (uint64_t c = 0; c < nchunks; ++c) {
    uint64_t ct = r->GetVarint();
    uint64_t count = r->GetVarint();
    (void)r->GetVarint();  // max_len: derivable, stored for future readers
    if (!r->ok() || ct >= chrom_ids.size() || count == 0) return false;
    total += count;
    if (total > n64) return false;
    chunks.push_back({chrom_ids[static_cast<size_t>(ct)],
                      static_cast<size_t>(count)});
  }
  if (total != n64) return false;
  uint8_t width = r->GetByte();
  if (!r->ok() || (width != 4 && width != 8)) return false;

  std::vector<int64_t> lefts(n), rights(n);
  {
    uint64_t len = r->GetVarint();
    std::string_view payload = r->GetSpan(static_cast<size_t>(len));
    if (!r->ok()) return false;
    ByteReader s(payload.data(), payload.size());
    size_t i = 0;
    for (const auto& c : chunks) {
      int64_t prev = 0;
      for (size_t k = 0; k < c.count; ++k, ++i) {
        int64_t l;
        if (k == 0) {
          l = s.GetZigzag();
        } else {
          uint64_t d = s.GetVarint();
          if (d > (1ULL << 62)) return false;
          l = prev + static_cast<int64_t>(d);
        }
        if (!s.ok()) return false;
        lefts[i] = l;
        prev = l;
      }
    }
    if (s.remaining() != 0) return false;
  }
  {
    uint64_t len = r->GetVarint();
    std::string_view payload = r->GetSpan(static_cast<size_t>(len));
    if (!r->ok()) return false;
    ByteReader s(payload.data(), payload.size());
    for (size_t i = 0; i < n; ++i) {
      uint64_t d = s.GetVarint();
      if (!s.ok() || d > (1ULL << 62)) return false;
      rights[i] = lefts[i] + static_cast<int64_t>(d);
    }
    if (s.remaining() != 0) return false;
  }

  std::vector<uint8_t> strands(n, static_cast<uint8_t>(Strand::kNone));
  uint8_t smode = r->GetByte();
  if (!r->ok()) return false;
  if (smode == kStrandUniform) {
    uint8_t v = r->GetByte();
    if (!r->ok() || v > 2) return false;
    std::fill(strands.begin(), strands.end(), v);
  } else if (smode == kStrandPacked) {
    uint64_t len = r->GetVarint();
    std::string_view payload = r->GetSpan(static_cast<size_t>(len));
    if (!r->ok() || payload.size() != (n + 3) / 4) return false;
    for (size_t i = 0; i < n; ++i) {
      uint8_t v =
          (static_cast<uint8_t>(payload[i >> 2]) >> ((i & 3) * 2)) & 3;
      if (v > 2) return false;
      strands[i] = v;
    }
  } else {
    return false;
  }

  std::vector<DecodedColumn> columns(schema.size());
  for (size_t a = 0; a < schema.size(); ++a) {
    if (!DecodeValueColumn(r, n, schema.attr(a).type, &columns[a])) {
      return false;
    }
  }

  sample->regions.resize(n);
  size_t i = 0;
  for (const auto& c : chunks) {
    for (size_t k = 0; k < c.count; ++k, ++i) {
      GenomicRegion& reg = sample->regions[i];
      reg.chrom = c.chrom;
      reg.left = lefts[i];
      reg.right = rights[i];
      reg.strand = static_cast<Strand>(strands[i]);
      if (!columns.empty()) {
        reg.values.reserve(columns.size());
        for (auto& col : columns) {
          reg.values.push_back(std::move(col.values[i]));
        }
      }
    }
  }
  return true;
}

}  // namespace

bool LooksLikeGdmz(std::string_view bytes) {
  return bytes.size() >= sizeof(kGdmzMagic) &&
         std::memcmp(bytes.data(), kGdmzMagic, sizeof(kGdmzMagic)) == 0;
}

Result<uint64_t> GdmzFramedSize(std::string_view bytes) {
  if (bytes.size() < kGdmzHeaderSize || !LooksLikeGdmz(bytes)) {
    return Status::ParseError("not a .gdmz document (missing GDMZ magic)");
  }
  ByteReader r(bytes.data(), bytes.size());
  (void)r.GetSpan(4);
  uint32_t version = r.GetFixed32();
  uint64_t total = r.GetFixed64();
  if (!r.ok() || version != kGdmzVersion) {
    return Status::ParseError(".gdmz version mismatch");
  }
  if (total < kGdmzHeaderSize || total > bytes.size()) {
    return Status::ParseError(".gdmz truncated: framed size " +
                              std::to_string(total) + " exceeds buffer " +
                              std::to_string(bytes.size()));
  }
  return total;
}

std::string WriteGdmzString(const gdm::Dataset& dataset) {
  // Chromosome name table over every chrom id in the dataset, in first-use
  // order; blobs reference table slots so ids stay process-local.
  std::map<int32_t, uint32_t> chrom_table;
  std::vector<int32_t> chrom_ids;
  for (const auto& s : dataset.samples()) {
    for (const auto& r : s.regions) {
      if (chrom_table.emplace(r.chrom, static_cast<uint32_t>(chrom_ids.size()))
              .second) {
        chrom_ids.push_back(r.chrom);
      }
    }
  }

  // Body: one column blob per sample, 64-byte aligned.
  std::string body;
  ByteWriter body_writer(&body);
  std::vector<std::pair<uint64_t, uint64_t>> blob_spans;  // offset, size
  std::vector<GenomicRegion> scratch;
  for (const auto& s : dataset.samples()) {
    while ((kGdmzHeaderSize + body.size()) % 64 != 0) body_writer.PutByte(0);
    uint64_t offset = kGdmzHeaderSize + body.size();
    const std::vector<GenomicRegion>* regions = &s.regions;
    if (!gdm::RegionsSorted(s.regions)) {
      scratch = s.regions;
      gdm::SortRegions(&scratch);
      regions = &scratch;
    }
    RegionColumns cols = RegionColumns::Build(*regions, dataset.schema());
    EncodeSampleBlob(&body_writer, s, cols, chrom_table);
    blob_spans.push_back({offset, kGdmzHeaderSize + body.size() - offset});
  }

  // Directory.
  std::string dir;
  ByteWriter dw(&dir);
  dw.PutString(dataset.name());
  dw.PutVarint(dataset.schema().size());
  for (const auto& a : dataset.schema().attrs()) {
    dw.PutString(a.name);
    dw.PutByte(static_cast<uint8_t>(a.type));
  }
  dw.PutVarint(chrom_ids.size());
  for (int32_t id : chrom_ids) dw.PutString(gdm::ChromName(id));
  MetaDict meta_dict;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> sample_meta;
  sample_meta.reserve(dataset.num_samples());
  for (const auto& s : dataset.samples()) {
    auto& entries = sample_meta.emplace_back();
    for (const auto& e : s.metadata.entries()) {
      entries.push_back({meta_dict.Intern(e.attr), meta_dict.Intern(e.value)});
    }
  }
  dw.PutVarint(meta_dict.entries.size());
  for (const std::string* s : meta_dict.entries) dw.PutString(*s);
  dw.PutVarint(dataset.num_samples());
  for (size_t si = 0; si < dataset.num_samples(); ++si) {
    dw.PutFixed64(dataset.sample(si).id);
    dw.PutVarint(sample_meta[si].size());
    for (const auto& [a, v] : sample_meta[si]) {
      dw.PutVarint(a);
      dw.PutVarint(v);
    }
    dw.PutVarint(blob_spans[si].first);
    dw.PutVarint(blob_spans[si].second);
  }

  std::string out;
  out.reserve(kGdmzHeaderSize + body.size() + dir.size());
  ByteWriter hw(&out);
  hw.PutRaw(kGdmzMagic, sizeof(kGdmzMagic));
  hw.PutFixed32(kGdmzVersion);
  hw.PutFixed64(kGdmzHeaderSize + body.size() + dir.size());  // total_size
  hw.PutFixed64(kGdmzHeaderSize + body.size());               // dir_offset
  hw.PutFixed64(dir.size());                                  // dir_size
  out.append(body);
  out.append(dir);
  return out;
}

Status WriteGdmz(const gdm::Dataset& dataset, const std::string& path) {
  std::string bytes = WriteGdmzString(dataset);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.close();
  if (!f) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<gdm::Dataset> ReadGdmzBytes(std::string_view bytes) {
  GDMS_ASSIGN_OR_RETURN(uint64_t total, GdmzFramedSize(bytes));
  ByteReader hr(bytes.data(), static_cast<size_t>(total));
  (void)hr.GetSpan(4);
  (void)hr.GetFixed32();
  (void)hr.GetFixed64();
  uint64_t dir_offset = hr.GetFixed64();
  uint64_t dir_size = hr.GetFixed64();
  if (!hr.ok() || dir_offset < kGdmzHeaderSize || dir_offset > total ||
      dir_size > total - dir_offset) {
    return Status::ParseError(".gdmz directory out of bounds");
  }

  ByteReader dr(bytes.data() + dir_offset, static_cast<size_t>(dir_size));
  Dataset ds;
  ds.set_name(dr.GetString());
  uint64_t nattrs = dr.GetVarint();
  if (!dr.ok() || nattrs > 4096) {
    return Status::ParseError(".gdmz directory corrupt (schema)");
  }
  gdm::RegionSchema schema;
  for (uint64_t a = 0; a < nattrs; ++a) {
    std::string name = dr.GetString();
    uint8_t type = dr.GetByte();
    if (!dr.ok() || type > static_cast<uint8_t>(AttrType::kBool)) {
      return Status::ParseError(".gdmz directory corrupt (attr type)");
    }
    GDMS_RETURN_NOT_OK(schema.AddAttr(name, static_cast<AttrType>(type)));
  }
  *ds.mutable_schema() = std::move(schema);

  uint64_t nchroms = dr.GetVarint();
  if (!dr.ok() || nchroms > (1 << 20)) {
    return Status::ParseError(".gdmz directory corrupt (chrom table)");
  }
  std::vector<int32_t> chrom_ids;
  chrom_ids.reserve(static_cast<size_t>(nchroms));
  for (uint64_t c = 0; c < nchroms; ++c) {
    std::string name = dr.GetString();
    if (!dr.ok() || name.empty()) {
      return Status::ParseError(".gdmz directory corrupt (chrom name)");
    }
    chrom_ids.push_back(gdm::InternChrom(name));
  }

  uint64_t ndict = dr.GetVarint();
  if (!dr.ok() || ndict > (1ULL << 32)) {
    return Status::ParseError(".gdmz directory corrupt (metadata dict)");
  }
  std::vector<std::string> meta_dict;
  meta_dict.reserve(static_cast<size_t>(ndict));
  for (uint64_t d = 0; d < ndict; ++d) {
    meta_dict.push_back(dr.GetString());
    if (!dr.ok()) {
      return Status::ParseError(".gdmz directory corrupt (metadata dict)");
    }
  }

  uint64_t nsamples = dr.GetVarint();
  if (!dr.ok() || nsamples > (1ULL << 32)) {
    return Status::ParseError(".gdmz directory corrupt (sample count)");
  }
  for (uint64_t si = 0; si < nsamples; ++si) {
    Sample sample(static_cast<gdm::SampleId>(dr.GetFixed64()));
    uint64_t nmeta = dr.GetVarint();
    if (!dr.ok() || nmeta > (1ULL << 32)) {
      return Status::ParseError(".gdmz directory corrupt (metadata count)");
    }
    for (uint64_t m = 0; m < nmeta; ++m) {
      uint64_t a = dr.GetVarint();
      uint64_t v = dr.GetVarint();
      if (!dr.ok() || a >= meta_dict.size() || v >= meta_dict.size()) {
        return Status::ParseError(".gdmz directory corrupt (metadata ref)");
      }
      sample.metadata.Add(meta_dict[static_cast<size_t>(a)],
                          meta_dict[static_cast<size_t>(v)]);
    }
    uint64_t blob_offset = dr.GetVarint();
    uint64_t blob_size = dr.GetVarint();
    if (!dr.ok() || blob_offset < kGdmzHeaderSize || blob_offset > total ||
        blob_size > total - blob_offset) {
      return Status::ParseError(".gdmz sample blob out of bounds");
    }
    ByteReader br(bytes.data() + blob_offset,
                  static_cast<size_t>(blob_size));
    if (!DecodeSampleBlob(&br, chrom_ids, ds.schema(), &sample) || !br.ok()) {
      return Status::ParseError(".gdmz sample blob corrupt (sample " +
                                std::to_string(sample.id) + ")");
    }
    ds.AddSample(std::move(sample));
  }

  for (auto& s : *ds.mutable_samples()) s.SortNow();
  GDMS_RETURN_NOT_OK(ds.Validate());
  return ds;
}

Result<gdm::Dataset> ReadGdmzString(const std::string& bytes) {
  return ReadGdmzBytes(std::string_view(bytes));
}

// ---------------------------------------------------------------------------
// MappedGdmz
// ---------------------------------------------------------------------------

namespace {

uint64_t PageBytes() {
#ifdef __unix__
  static const uint64_t page = [] {
    long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<uint64_t>(p) : 4096;
  }();
  return page;
#else
  return 4096;
#endif
}

// Little-endian u64 at `offset` of the image (0 when out of bounds); used
// to recover dir_offset/dir_size from the fixed header layout.
uint64_t HeaderU64(std::string_view bytes, size_t offset) {
  if (bytes.size() < offset + 8) return 0;
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

obs::Counter* GdmzDroppedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "gdms_storage_gdmz_dropped_bytes_total");
  return c;
}

#ifdef __unix__
/// Bytes of [addr, addr+length) present in this process's page tables,
/// read from /proc/self/pagemap (bit 63 of each entry; readable without
/// privilege — only the PFN field is masked). This is the figure that
/// tracks process RSS: MADV_DONTNEED on a private file mapping unmaps the
/// pages from the tables but leaves them in the page cache, so mincore —
/// which reports the cache — cannot see an eviction. Falls back to mincore
/// when pagemap is unavailable (non-Linux unix).
uint64_t ResidentBytesIn(const void* addr, size_t length) {
  if (length == 0) return 0;
  uint64_t page = PageBytes();
  uintptr_t base = reinterpret_cast<uintptr_t>(addr) / page * page;
  size_t npages = (reinterpret_cast<uintptr_t>(addr) + length - base +
                   page - 1) / page;
  int fd = ::open("/proc/self/pagemap", O_RDONLY);
  if (fd >= 0) {
    std::vector<uint64_t> entries(npages);
    ssize_t n = ::pread(fd, entries.data(), npages * sizeof(uint64_t),
                        static_cast<off_t>(base / page * sizeof(uint64_t)));
    ::close(fd);
    if (n >= 0) {
      uint64_t resident = 0;
      for (size_t i = 0; i < static_cast<size_t>(n) / sizeof(uint64_t); ++i) {
        resident += (entries[i] >> 63) & 1;
      }
      return resident * page;
    }
  }
  std::vector<unsigned char> vec(npages);
  if (::mincore(reinterpret_cast<void*>(base), npages * page, vec.data()) !=
      0) {
    return 0;
  }
  uint64_t resident = 0;
  for (unsigned char v : vec) resident += v & 1;
  return resident * page;
}
#endif

}  // namespace

MappedGdmz::~MappedGdmz() { Close(); }

void MappedGdmz::Close() {
  if (token_ != 0) {
    obs::ResourceTracker::Global().UnregisterStorage(token_);
    token_ = 0;
  }
#ifdef __unix__
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
  map_ = nullptr;
  size_ = 0;
  buffer_.clear();
}

MappedGdmz::MappedGdmz(MappedGdmz&& other) noexcept {
  *this = std::move(other);
}

MappedGdmz& MappedGdmz::operator=(MappedGdmz&& other) noexcept {
  if (this != &other) {
    Close();
    // The tracker's usage callback captures `this`, so a registration
    // cannot simply transfer: drop the source's and re-create it here.
    bool reregister = other.token_ != 0;
    if (reregister) {
      obs::ResourceTracker::Global().UnregisterStorage(other.token_);
      other.token_ = 0;
    }
    path_ = std::move(other.path_);
    map_ = other.map_;
    size_ = other.size_;
    buffer_ = std::move(other.buffer_);
    other.map_ = nullptr;
    other.size_ = 0;
    if (reregister) RegisterWithTracker();
  }
  return *this;
}

Result<MappedGdmz> MappedGdmz::Open(const std::string& path) {
  MappedGdmz m;
  m.path_ = path;
#ifdef __unix__
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      size_t size = static_cast<size_t>(st.st_size);
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        ::close(fd);
        m.map_ = map;
        m.size_ = size;
        return m;
      }
    }
    ::close(fd);
  }
#endif
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  m.buffer_.assign((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return m;
}

std::string_view MappedGdmz::bytes() const {
  if (map_ != nullptr) {
    return std::string_view(static_cast<const char*>(map_), size_);
  }
  return std::string_view(buffer_);
}

uint64_t MappedGdmz::map_length() const {
  return map_ != nullptr ? size_ : buffer_.size();
}

Result<gdm::Dataset> MappedGdmz::Parse() const {
  return ReadGdmzBytes(bytes());
}

uint64_t MappedGdmz::ResidentBytes() const {
#ifdef __unix__
  if (map_ != nullptr) return ResidentBytesIn(map_, size_);
#endif
  return buffer_.size();
}

void MappedGdmz::WillNeedPrefix() const {
#ifdef __unix__
  if (map_ == nullptr) return;
  char* base = static_cast<char*>(map_);
  uint64_t page = PageBytes();
  // Header plus the first sample blobs: cheap insurance against a cold
  // first query paying one major fault per decoded chunk.
  size_t prefix = std::min<size_t>(size_, 256 * 1024);
  (void)::madvise(base, prefix, MADV_WILLNEED);
  // The directory sits at the tail; every parse walks all of it.
  uint64_t dir_offset = HeaderU64(bytes(), 16);
  uint64_t dir_size = HeaderU64(bytes(), 24);
  if (dir_offset >= kGdmzHeaderSize && dir_offset < size_ &&
      dir_size <= size_ - dir_offset) {
    uint64_t begin = dir_offset / page * page;
    (void)::madvise(base + begin, dir_offset + dir_size - begin,
                    MADV_WILLNEED);
  }
#endif
}

uint64_t MappedGdmz::DropColdPages() {
#ifdef __unix__
  if (map_ == nullptr) return 0;
  uint64_t dir_offset = HeaderU64(bytes(), 16);
  if (dir_offset < kGdmzHeaderSize || dir_offset > size_) {
    dir_offset = size_;
  }
  uint64_t page = PageBytes();
  // Whole pages strictly inside the body [header end, directory start):
  // the header page and directory pages stay warm.
  uint64_t begin = (kGdmzHeaderSize + page - 1) / page * page;
  uint64_t end = dir_offset / page * page;
  if (end <= begin) return 0;
  char* body = static_cast<char*>(map_) + begin;
  uint64_t before = ResidentBytesIn(body, end - begin);
  if (::madvise(body, end - begin, MADV_DONTNEED) != 0) return 0;
  uint64_t after = ResidentBytesIn(body, end - begin);
  uint64_t freed = before > after ? before - after : 0;
  GdmzDroppedCounter()->Add(freed);
  return freed;
#else
  return 0;
#endif
}

void MappedGdmz::RegisterWithTracker() {
  if (token_ != 0) return;
  auto& tracker = obs::ResourceTracker::Global();
  token_ = tracker.RegisterStorage(
      "gdmz:" + BaseName(path_),
      [this] {
        obs::StorageUsage usage;
        usage.mapped_bytes = map_length();
        usage.mapped_resident_bytes = ResidentBytes();
        return usage;
      },
      [this](uint64_t want_bytes) {
        (void)want_bytes;  // all-or-nothing: the body is one cold range
        return DropColdPages();
      });
}

Result<gdm::Dataset> OpenGdmz(const std::string& path) {
  static obs::Counter* opens = obs::MetricsRegistry::Global().GetCounter(
      "gdms_storage_gdmz_opens_total");
  static obs::Gauge* open_map = obs::MetricsRegistry::Global().GetGauge(
      "gdms_storage_gdmz_open_map_bytes");
  auto opened = MappedGdmz::Open(path);
  if (!opened.ok()) return opened.status();
  MappedGdmz mapped = std::move(opened).value();
  opens->Add();
  open_map->Set(static_cast<int64_t>(mapped.map_length()));
  mapped.WillNeedPrefix();
  return mapped.Parse();
}

}  // namespace gdms::io
