#ifndef GDMS_IO_GDM_FORMAT_H_
#define GDMS_IO_GDM_FORMAT_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// \brief The native GDM text interchange format.
///
/// One stream carries a whole dataset — name, region schema, and per sample
/// its metadata triples and region table:
///
///     #GDMS v1
///     #NAME <dataset name>
///     #SCHEMA attr:TYPE <tab> attr:TYPE ...
///     #SAMPLE <id>
///     #META <attr> <tab> <value>
///     #REGIONS <count>
///     <chrom> <left> <right> <strand> <v1> <v2> ...
///
/// This is the wire format of the federated protocol (Section 4.4) — its
/// byte length is what the protocol's transfer accounting measures — and the
/// durable format of the repository catalog.

/// Serializes a dataset to the stream.
void WriteGdm(const gdm::Dataset& dataset, std::ostream& out);

/// Serializes to a string (convenience for the protocol layer).
std::string WriteGdmString(const gdm::Dataset& dataset);

/// Parses a dataset from the stream.
Result<gdm::Dataset> ReadGdm(std::istream& in);

/// Parses from a string.
Result<gdm::Dataset> ReadGdmString(const std::string& text);

}  // namespace gdms::io

#endif  // GDMS_IO_GDM_FORMAT_H_
