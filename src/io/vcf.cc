#include "io/vcf.h"

#include "common/string_util.h"

namespace gdms::io {

namespace {
using gdm::AttrType;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;
}  // namespace

gdm::RegionSchema VcfSchema() {
  RegionSchema s;
  (void)s.AddAttr("var_id", AttrType::kString);
  (void)s.AddAttr("ref", AttrType::kString);
  (void)s.AddAttr("alt", AttrType::kString);
  (void)s.AddAttr("qual", AttrType::kDouble);
  (void)s.AddAttr("filter", AttrType::kString);
  (void)s.AddAttr("info", AttrType::kString);
  return s;
}

Result<gdm::Sample> ReadVcfSample(std::istream& in, gdm::SampleId id) {
  Sample sample(id);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = Split(std::string(trimmed), '\t');
    if (fields.size() < 8) {
      return Status::ParseError("VCF line " + std::to_string(line_no) +
                                " has fewer than 8 columns");
    }
    GDMS_ASSIGN_OR_RETURN(int64_t pos1, ParseInt64(fields[1]));
    if (pos1 < 1) {
      return Status::ParseError("VCF line " + std::to_string(line_no) +
                                " has POS < 1");
    }
    int64_t ref_len =
        fields[3] == "." ? 1 : static_cast<int64_t>(fields[3].size());
    GenomicRegion r(gdm::InternChrom(fields[0]), pos1 - 1, pos1 - 1 + ref_len);
    r.values.push_back(fields[2] == "." ? Value::Null() : Value(fields[2]));
    r.values.push_back(Value(fields[3]));
    r.values.push_back(Value(fields[4]));
    if (fields[5] == ".") {
      r.values.push_back(Value::Null());
    } else {
      GDMS_ASSIGN_OR_RETURN(Value qual,
                            Value::Parse(fields[5], AttrType::kDouble));
      r.values.push_back(std::move(qual));
    }
    r.values.push_back(fields[6] == "." ? Value::Null() : Value(fields[6]));
    r.values.push_back(fields[7] == "." ? Value::Null() : Value(fields[7]));
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  return sample;
}

}  // namespace gdms::io
