#ifndef GDMS_IO_GTF_H_
#define GDMS_IO_GTF_H_

#include <istream>
#include <ostream>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// Schema produced by the GTF reader: source, feature, score, frame plus the
/// attribute keys requested at read time (all STRING except score:DOUBLE).
gdm::RegionSchema GtfSchema(const std::vector<std::string>& attr_keys);

/// \brief Reads one GTF/GFF2 sample.
///
/// GTF is 1-based closed; regions convert to GDM's 0-based half-open. The
/// 9th column's `key "value";` attributes are exploded: each name in
/// `attr_keys` becomes a STRING region attribute (NULL when absent).
Result<gdm::Sample> ReadGtfSample(std::istream& in, gdm::SampleId id,
                                  const std::vector<std::string>& attr_keys);

/// Writes a sample as GTF, mapping schema attrs back: `source`, `feature`,
/// `score`, `frame` fill their columns (defaults when missing); every other
/// attribute lands in column 9.
void WriteGtfSample(const gdm::Sample& sample, const gdm::RegionSchema& schema,
                    std::ostream& out);

}  // namespace gdms::io

#endif  // GDMS_IO_GTF_H_
