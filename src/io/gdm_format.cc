#include "io/gdm_format.h"

#include <sstream>

#include "common/string_util.h"

namespace gdms::io {

namespace {
using gdm::AttrDef;
using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;
}  // namespace

void WriteGdm(const gdm::Dataset& dataset, std::ostream& out) {
  out << "#GDMS v1\n";
  out << "#NAME " << dataset.name() << '\n';
  out << "#SCHEMA";
  for (const auto& a : dataset.schema().attrs()) {
    out << '\t' << a.name << ':' << AttrTypeName(a.type);
  }
  out << '\n';
  for (const auto& s : dataset.samples()) {
    out << "#SAMPLE " << s.id << '\n';
    for (const auto& e : s.metadata.entries()) {
      out << "#META " << e.attr << '\t' << e.value << '\n';
    }
    out << "#REGIONS " << s.regions.size() << '\n';
    for (const auto& r : s.regions) {
      out << gdm::ChromName(r.chrom) << '\t' << r.left << '\t' << r.right
          << '\t' << gdm::StrandChar(r.strand);
      for (const auto& v : r.values) out << '\t' << v.ToString();
      out << '\n';
    }
  }
}

std::string WriteGdmString(const gdm::Dataset& dataset) {
  std::ostringstream oss;
  WriteGdm(dataset, oss);
  return oss.str();
}

Result<gdm::Dataset> ReadGdm(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "#GDMS v1") {
    return Status::ParseError("missing #GDMS v1 magic");
  }
  Dataset ds;
  Sample* current = nullptr;
  size_t pending_regions = 0;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (pending_regions > 0) {
      auto fields = Split(line, '\t');
      if (fields.size() < 4) {
        return Status::ParseError("region line " + std::to_string(line_no) +
                                  " has fewer than 4 columns");
      }
      if (fields.size() != 4 + ds.schema().size()) {
        return Status::ParseError("region line " + std::to_string(line_no) +
                                  " does not match schema arity");
      }
      GDMS_ASSIGN_OR_RETURN(int64_t left, ParseInt64(fields[1]));
      GDMS_ASSIGN_OR_RETURN(int64_t right, ParseInt64(fields[2]));
      GenomicRegion r(gdm::InternChrom(fields[0]), left, right);
      if (!fields[3].empty()) r.strand = gdm::StrandFromChar(fields[3][0]);
      for (size_t i = 0; i < ds.schema().size(); ++i) {
        GDMS_ASSIGN_OR_RETURN(
            Value v, Value::Parse(fields[4 + i], ds.schema().attr(i).type));
        r.values.push_back(std::move(v));
      }
      current->regions.push_back(std::move(r));
      --pending_regions;
      continue;
    }
    if (StartsWith(line, "#NAME ")) {
      ds.set_name(std::string(Trim(line.substr(6))));
    } else if (StartsWith(line, "#SCHEMA")) {
      RegionSchema schema;
      auto fields = Split(line, '\t');
      for (size_t i = 1; i < fields.size(); ++i) {
        auto parts = Split(fields[i], ':');
        if (parts.size() != 2) {
          return Status::ParseError("bad schema attr: " + fields[i]);
        }
        GDMS_ASSIGN_OR_RETURN(AttrType t, gdm::ParseAttrType(parts[1]));
        GDMS_RETURN_NOT_OK(schema.AddAttr(parts[0], t));
      }
      *ds.mutable_schema() = std::move(schema);
    } else if (StartsWith(line, "#SAMPLE ")) {
      GDMS_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(line.substr(8)));
      ds.AddSample(Sample(static_cast<gdm::SampleId>(id)));
      current = &ds.mutable_samples()->back();
    } else if (StartsWith(line, "#META ")) {
      if (current == nullptr) {
        return Status::ParseError("#META before any #SAMPLE at line " +
                                  std::to_string(line_no));
      }
      auto rest = line.substr(6);
      auto tab = rest.find('\t');
      if (tab == std::string::npos) {
        return Status::ParseError("#META without tab at line " +
                                  std::to_string(line_no));
      }
      current->metadata.Add(rest.substr(0, tab), rest.substr(tab + 1));
    } else if (StartsWith(line, "#REGIONS ")) {
      if (current == nullptr) {
        return Status::ParseError("#REGIONS before any #SAMPLE at line " +
                                  std::to_string(line_no));
      }
      GDMS_ASSIGN_OR_RETURN(int64_t count, ParseInt64(line.substr(9)));
      if (count < 0) return Status::ParseError("negative region count");
      pending_regions = static_cast<size_t>(count);
      current->regions.reserve(pending_regions);
    } else {
      return Status::ParseError("unrecognized line " + std::to_string(line_no) +
                                ": " + line.substr(0, 40));
    }
  }
  if (pending_regions > 0) {
    return Status::ParseError("stream ended mid region table");
  }
  for (auto& s : *ds.mutable_samples()) s.SortNow();
  GDMS_RETURN_NOT_OK(ds.Validate());
  return ds;
}

Result<gdm::Dataset> ReadGdmString(const std::string& text) {
  std::istringstream iss(text);
  return ReadGdm(iss);
}

}  // namespace gdms::io
