#include "io/track_render.h"

#include <algorithm>
#include <cstdio>

namespace gdms::io {

void TrackRenderer::AddTrack(const std::string& label,
                             const std::vector<gdm::GenomicRegion>& regions,
                             char glyph) {
  tracks_.push_back({label, &regions, glyph});
}

Result<std::string> TrackRenderer::Render() const {
  if (window_.right <= window_.left || window_.width == 0) {
    return Status::InvalidArgument("empty rendering window");
  }
  double span = static_cast<double>(window_.right - window_.left);
  double bases_per_col = span / static_cast<double>(window_.width);

  size_t label_width = 8;
  for (const auto& t : tracks_) {
    label_width = std::max(label_width, t.label.size() + 1);
  }

  std::string out;
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s:%lld-%lld (%.1f kb, %.0f bp/col)\n",
                  gdm::ChromName(window_.chrom).c_str(),
                  static_cast<long long>(window_.left),
                  static_cast<long long>(window_.right), span / 1000.0,
                  bases_per_col);
    out += buf;
  }
  // Ruler: a tick every ~width/4 columns.
  {
    std::string ruler(window_.width, ' ');
    std::string label(label_width, ' ');
    label.replace(0, 5, "ruler");
    size_t tick_every = std::max<size_t>(10, window_.width / 4);
    for (size_t col = 0; col < window_.width; col += tick_every) {
      int64_t pos =
          window_.left +
          static_cast<int64_t>(static_cast<double>(col) * bases_per_col);
      std::string mark = "|" + std::to_string(pos);
      for (size_t i = 0; i < mark.size() && col + i < window_.width; ++i) {
        ruler[col + i] = mark[i];
      }
    }
    out += label + ruler + "\n";
  }

  for (const auto& track : tracks_) {
    std::vector<int> depth(window_.width, 0);
    std::vector<char> strand_glyph(window_.width, 0);
    for (const auto& r : *track.regions) {
      if (r.chrom != window_.chrom) continue;
      if (r.right <= window_.left || r.left >= window_.right) continue;
      int64_t lo = std::max(r.left, window_.left);
      int64_t hi = std::min(r.right, window_.right);
      size_t c0 = static_cast<size_t>(
          static_cast<double>(lo - window_.left) / bases_per_col);
      size_t c1 = static_cast<size_t>(
          static_cast<double>(hi - window_.left - 1) / bases_per_col);
      c1 = std::min(c1, window_.width - 1);
      char sg = r.strand == gdm::Strand::kPlus
                    ? '>'
                    : (r.strand == gdm::Strand::kMinus ? '<' : 0);
      for (size_t c = c0; c <= c1; ++c) {
        ++depth[c];
        if (sg != 0) strand_glyph[c] = sg;
      }
    }
    std::string row(window_.width, '.');
    for (size_t c = 0; c < window_.width; ++c) {
      if (depth[c] == 0) continue;
      if (depth[c] == 1) {
        row[c] = strand_glyph[c] != 0 ? strand_glyph[c] : track.glyph;
      } else {
        row[c] = depth[c] < 10 ? static_cast<char>('0' + depth[c]) : '+';
      }
    }
    std::string label(label_width, ' ');
    label.replace(0, std::min(track.label.size(), label_width), track.label);
    out += label + row + "\n";
  }
  return out;
}

}  // namespace gdms::io
