#include "io/bed.h"

#include <string>
#include <vector>

#include "common/string_util.h"

namespace gdms::io {

namespace {

using gdm::AttrType;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

bool IsSkippableLine(const std::string& line) {
  auto t = Trim(line);
  return t.empty() || t[0] == '#' || StartsWith(t, "track") ||
         StartsWith(t, "browser");
}

Result<GenomicRegion> ParseFixed(const std::vector<std::string>& f) {
  GDMS_ASSIGN_OR_RETURN(int64_t left, ParseInt64(f[1]));
  GDMS_ASSIGN_OR_RETURN(int64_t right, ParseInt64(f[2]));
  if (left < 0 || right < left) {
    return Status::ParseError("invalid BED interval: " + f[1] + "-" + f[2]);
  }
  GenomicRegion r(gdm::InternChrom(f[0]), left, right);
  if (f.size() >= 6 && !f[5].empty()) r.strand = gdm::StrandFromChar(f[5][0]);
  return r;
}

}  // namespace

gdm::RegionSchema BedSchema(int columns) {
  RegionSchema s;
  if (columns >= 4) (void)s.AddAttr("name", AttrType::kString);
  if (columns >= 5) (void)s.AddAttr("score", AttrType::kDouble);
  return s;
}

gdm::RegionSchema NarrowPeakSchema() {
  RegionSchema s = BedSchema(5);
  (void)s.AddAttr("signal_value", AttrType::kDouble);
  (void)s.AddAttr("p_value", AttrType::kDouble);
  (void)s.AddAttr("q_value", AttrType::kDouble);
  (void)s.AddAttr("peak", AttrType::kInt);
  return s;
}

Result<gdm::Sample> ReadBedSample(std::istream& in, gdm::SampleId id) {
  Sample sample(id);
  std::string line;
  int columns = -1;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsSkippableLine(line)) continue;
    auto fields = Split(std::string(Trim(line)), '\t');
    if (fields.size() == 1) fields = SplitWhitespace(line);
    if (fields.size() < 3) {
      return Status::ParseError("BED line " + std::to_string(line_no) +
                                " has fewer than 3 columns");
    }
    if (columns < 0) columns = static_cast<int>(fields.size());
    if (static_cast<int>(fields.size()) != columns) {
      return Status::ParseError("BED line " + std::to_string(line_no) +
                                " has inconsistent column count");
    }
    GDMS_ASSIGN_OR_RETURN(GenomicRegion r, ParseFixed(fields));
    if (columns >= 4) r.values.push_back(Value(fields[3]));
    if (columns >= 5) {
      GDMS_ASSIGN_OR_RETURN(Value score,
                            Value::Parse(fields[4], AttrType::kDouble));
      r.values.push_back(std::move(score));
    }
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  return sample;
}

namespace {

/// Shared narrowPeak/broadPeak row parser; `columns` is 10 or 9.
Result<gdm::Sample> ReadEncodePeakSample(std::istream& in, gdm::SampleId id,
                                         size_t columns, const char* format) {
  Sample sample(id);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsSkippableLine(line)) continue;
    auto fields = Split(std::string(Trim(line)), '\t');
    if (fields.size() != columns) {
      return Status::ParseError(std::string(format) + " line " +
                                std::to_string(line_no) + " must have " +
                                std::to_string(columns) + " columns, got " +
                                std::to_string(fields.size()));
    }
    GDMS_ASSIGN_OR_RETURN(GenomicRegion r, ParseFixed(fields));
    r.values.push_back(Value(fields[3]));
    GDMS_ASSIGN_OR_RETURN(Value score,
                          Value::Parse(fields[4], AttrType::kDouble));
    r.values.push_back(std::move(score));
    GDMS_ASSIGN_OR_RETURN(Value signal,
                          Value::Parse(fields[6], AttrType::kDouble));
    r.values.push_back(std::move(signal));
    GDMS_ASSIGN_OR_RETURN(Value pval,
                          Value::Parse(fields[7], AttrType::kDouble));
    r.values.push_back(std::move(pval));
    GDMS_ASSIGN_OR_RETURN(Value qval,
                          Value::Parse(fields[8], AttrType::kDouble));
    r.values.push_back(std::move(qval));
    if (columns == 10) {
      GDMS_ASSIGN_OR_RETURN(Value peak,
                            Value::Parse(fields[9], AttrType::kInt));
      r.values.push_back(std::move(peak));
    }
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  return sample;
}

}  // namespace

gdm::RegionSchema BroadPeakSchema() {
  RegionSchema s = BedSchema(5);
  (void)s.AddAttr("signal_value", AttrType::kDouble);
  (void)s.AddAttr("p_value", AttrType::kDouble);
  (void)s.AddAttr("q_value", AttrType::kDouble);
  return s;
}

Result<gdm::Sample> ReadNarrowPeakSample(std::istream& in, gdm::SampleId id) {
  return ReadEncodePeakSample(in, id, 10, "narrowPeak");
}

Result<gdm::Sample> ReadBroadPeakSample(std::istream& in, gdm::SampleId id) {
  return ReadEncodePeakSample(in, id, 9, "broadPeak");
}

void WriteBedSample(const gdm::Sample& sample, const gdm::RegionSchema& schema,
                    std::ostream& out) {
  for (const auto& r : sample.regions) {
    out << gdm::ChromName(r.chrom) << '\t' << r.left << '\t' << r.right;
    // BED requires name and score before strand; fill placeholders when the
    // schema lacks them but the region is stranded.
    auto name_idx = schema.IndexOf("name");
    auto score_idx = schema.IndexOf("score");
    bool need_strand = r.strand != gdm::Strand::kNone;
    if (name_idx || score_idx || need_strand) {
      out << '\t'
          << (name_idx ? r.values[*name_idx].ToString() : std::string("."));
      out << '\t'
          << (score_idx ? r.values[*score_idx].ToString() : std::string("0"));
      out << '\t' << gdm::StrandChar(r.strand);
    }
    // Remaining variable attributes append after the BED6 block.
    for (size_t i = 0; i < schema.size(); ++i) {
      if (name_idx && i == *name_idx) continue;
      if (score_idx && i == *score_idx) continue;
      out << '\t' << r.values[i].ToString();
    }
    out << '\n';
  }
}

}  // namespace gdms::io
