#ifndef GDMS_IO_GDMZ_H_
#define GDMS_IO_GDMZ_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// \brief The compressed columnar binary dataset format (".gdmz").
///
/// Layout (all integers little-endian; "varint" is LEB128, "zigzag" maps
/// signed to unsigned before LEB128):
///
///     +------------------------------------------------------------+
///     | header (32 B): magic "GDMZ" | u32 version | u64 total_size |
///     |                u64 dir_offset | u64 dir_size               |
///     +------------------------------------------------------------+
///     | body: per-sample column blobs, 64-byte aligned             |
///     +------------------------------------------------------------+
///     | directory: dataset name, schema, chromosome name table,    |
///     |   metadata string dictionary, per sample: id, metadata     |
///     |   (attr/value dictionary indices), blob offset + size      |
///     +------------------------------------------------------------+
///
/// Each sample blob stores the region columns of gdm/region_columns.h:
/// the per-chromosome chunk directory (chrom table index, row count, max
/// region length), then delta-varint left coordinates (delta within each
/// chunk — sorted order makes them non-negative), varint region lengths,
/// a strand column (uniform byte or 2-bit packed), and one value column
/// per schema attribute. Value columns elide the validity bitmap when all
/// rows are valid; INT values are zigzag varints, BOOL values bit-packed,
/// STRING columns are dictionary- or shared-prefix(front)-coded by
/// cardinality, and DOUBLE values use a 6-significant-digit decimal
/// encoding (zigzag mantissa + run-length-encoded exponents) — exactly the
/// fidelity of the "%.6g" text format, so a .gdmz round-trip equals a .gdm
/// text round-trip bit for bit (non-finite and negative-zero doubles
/// escape to raw 8-byte form).
///
/// total_size in the header frames the document, so concatenated .gdmz
/// blobs (the federation wire format) can be split without scanning.

inline constexpr char kGdmzMagic[4] = {'G', 'D', 'M', 'Z'};
inline constexpr uint32_t kGdmzVersion = 1;
inline constexpr size_t kGdmzHeaderSize = 32;

/// True when `bytes` starts with the .gdmz magic.
bool LooksLikeGdmz(std::string_view bytes);

/// Total framed size of the .gdmz document starting at `bytes`, from the
/// header (fails on short/foreign/corrupt input).
Result<uint64_t> GdmzFramedSize(std::string_view bytes);

/// Serializes `dataset` to the binary format.
std::string WriteGdmzString(const gdm::Dataset& dataset);

/// Writes `dataset` to `path`.
Status WriteGdmz(const gdm::Dataset& dataset, const std::string& path);

/// Parses a dataset from an in-memory .gdmz image. Every read is
/// bounds-checked; truncated or corrupt input yields ParseError.
Result<gdm::Dataset> ReadGdmzBytes(std::string_view bytes);

/// Parses from a string (convenience for the protocol layer).
Result<gdm::Dataset> ReadGdmzString(const std::string& bytes);

/// \brief An mmap'd .gdmz file image (move-only RAII).
///
/// Beyond the one-shot parse of OpenGdmz, a MappedGdmz keeps the mapping
/// alive so its page-level behavior is observable and controllable:
/// ResidentBytes() samples actual residency with mincore(2),
/// WillNeedPrefix() prefetches the hot prefix (header, directory, first
/// sample blob) with madvise(MADV_WILLNEED), and DropColdPages() returns
/// cold body pages to the kernel with madvise(MADV_DONTNEED) — the mapping
/// is PROT_READ/MAP_PRIVATE with no writes, so dropped pages re-fault from
/// the file unchanged. RegisterWithTracker() publishes the mapping to
/// obs::ResourceTracker (map length + resident bytes in the
/// gdms_storage_gdmz_* gauges, DropColdPages as the shed callback);
/// the destructor unregisters. On platforms without mmap the image is
/// buffered in memory and the madvise hooks are no-ops.
class MappedGdmz {
 public:
  MappedGdmz() = default;
  ~MappedGdmz();
  MappedGdmz(const MappedGdmz&) = delete;
  MappedGdmz& operator=(const MappedGdmz&) = delete;
  MappedGdmz(MappedGdmz&& other) noexcept;
  MappedGdmz& operator=(MappedGdmz&& other) noexcept;

  /// Maps `path` read-only (buffered-read fallback). Fails with IoError
  /// when the file cannot be opened; parse errors surface from Parse().
  static Result<MappedGdmz> Open(const std::string& path);

  /// True when the image is an actual mmap (false on the buffered
  /// fallback, where the madvise hooks are no-ops).
  bool mapped() const { return map_ != nullptr; }

  /// The full file image.
  std::string_view bytes() const;

  /// Mapped (or buffered) length in bytes.
  uint64_t map_length() const;

  const std::string& path() const { return path_; }

  /// Parses the dataset out of the image (ReadGdmzBytes).
  Result<gdm::Dataset> Parse() const;

  /// Resident bytes of the mapping in this process's page tables
  /// (pagemap-sampled, mincore fallback; buffer size on the non-mmap
  /// fallback path, which is trivially all resident).
  uint64_t ResidentBytes() const;

  /// Prefetch hint for the hot prefix: header, directory, and the first
  /// 256 KB of the body (the first sample blobs). No-op on the fallback.
  void WillNeedPrefix() const;

  /// Returns cold body pages (between header and directory) to the kernel;
  /// returns resident bytes actually dropped. The directory stays warm so
  /// a later re-parse touches only the blobs it needs.
  uint64_t DropColdPages();

  /// Registers this mapping with obs::ResourceTracker under
  /// "gdmz:<basename>" (idempotent). The registration follows moves and is
  /// dropped by the destructor.
  void RegisterWithTracker();

 private:
  void Close();

  std::string path_;
  void* map_ = nullptr;
  size_t size_ = 0;
  std::string buffer_;  ///< fallback image when mmap is unavailable
  uint64_t token_ = 0;  ///< ResourceTracker registration (0 = none)
};

/// Opens `path` via mmap (falling back to a buffered read when mapping is
/// unavailable) and parses it — column payloads decode straight out of the
/// page cache with no intermediate copy of the file image. Prefetches the
/// hot prefix (MADV_WILLNEED) and reports the map length as the
/// gdms_storage_gdmz_open_map_bytes gauge before parsing.
Result<gdm::Dataset> OpenGdmz(const std::string& path);

}  // namespace gdms::io

#endif  // GDMS_IO_GDMZ_H_
