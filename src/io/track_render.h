#ifndef GDMS_IO_TRACK_RENDER_H_
#define GDMS_IO_TRACK_RENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// A genomic viewing window.
struct TrackWindow {
  int32_t chrom = 0;
  int64_t left = 0;
  int64_t right = 0;
  /// Character columns the window maps onto.
  size_t width = 80;
};

/// One named track to draw.
struct Track {
  std::string label;
  const std::vector<gdm::GenomicRegion>* regions = nullptr;
  /// Glyph for covered columns; overlap depth 2-9 is drawn as the digit.
  char glyph = '=';
};

/// \brief Text genome-browser rendering.
///
/// Section 4.3 has results "visualize[d] on genome browsers"; this renders
/// region tracks for a window as fixed-width text — one row per track, a
/// coordinate ruler on top:
///
///     chr1:10000-20000 (10.0 kb, 125 bp/col)
///     ruler     |10000      |12500      |15000      |17500
///     peaks     ..===..2222=====...........====...........
///     genes     ....<<<<<<<<<<<<..............>>>>>>>......
///
/// Stranded regions draw as '>' / '<'; overlaps deepen to digits.
class TrackRenderer {
 public:
  explicit TrackRenderer(TrackWindow window) : window_(window) {}

  /// Adds a track; `regions` must stay alive until Render and must be
  /// coordinate-sorted.
  void AddTrack(const std::string& label,
                const std::vector<gdm::GenomicRegion>& regions,
                char glyph = '=');

  /// Renders all tracks. Fails on an empty or inverted window.
  Result<std::string> Render() const;

 private:
  TrackWindow window_;
  std::vector<Track> tracks_;
};

}  // namespace gdms::io

#endif  // GDMS_IO_TRACK_RENDER_H_
