#ifndef GDMS_IO_DATASET_DIR_H_
#define GDMS_IO_DATASET_DIR_H_

#include <string>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::io {

/// \brief The on-disk repository layout: one directory per dataset.
///
/// Mirrors the layout of real GMQL repositories, where each sample is a
/// region file accompanied by a `.meta` file of attribute-value pairs:
///
///     <dir>/schema.txt            name + tab-separated attr:TYPE list
///     <dir>/S_<id>.regions.tsv    chrom left right strand v1 v2 ...
///     <dir>/S_<id>.meta.tsv       attribute <tab> value
///
/// SaveDatasetDir creates the directory (parents included) and replaces any
/// previous content for the same sample ids; LoadDatasetDir reads every
/// S_*.regions.tsv it finds and validates the result against the schema.

Status SaveDatasetDir(const gdm::Dataset& dataset, const std::string& dir);

Result<gdm::Dataset> LoadDatasetDir(const std::string& dir);

}  // namespace gdms::io

#endif  // GDMS_IO_DATASET_DIR_H_
