#include "io/dataset_dir.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"

namespace gdms::io {

namespace fs = std::filesystem;

namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Value;

std::string RegionFileName(gdm::SampleId id) {
  return "S_" + std::to_string(id) + ".regions.tsv";
}

std::string MetaFileName(gdm::SampleId id) {
  return "S_" + std::to_string(id) + ".meta.tsv";
}

}  // namespace

Status SaveDatasetDir(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  {
    std::ofstream schema_out(fs::path(dir) / "schema.txt");
    if (!schema_out) {
      return Status::IoError("cannot write schema.txt in " + dir);
    }
    schema_out << dataset.name() << '\n';
    bool first = true;
    for (const auto& attr : dataset.schema().attrs()) {
      if (!first) schema_out << '\t';
      first = false;
      schema_out << attr.name << ':' << AttrTypeName(attr.type);
    }
    schema_out << '\n';
  }
  for (const auto& s : dataset.samples()) {
    std::ofstream regions_out(fs::path(dir) / RegionFileName(s.id));
    if (!regions_out) {
      return Status::IoError("cannot write regions for sample " +
                             std::to_string(s.id));
    }
    for (const auto& r : s.regions) {
      regions_out << gdm::ChromName(r.chrom) << '\t' << r.left << '\t'
                  << r.right << '\t' << gdm::StrandChar(r.strand);
      for (const auto& v : r.values) regions_out << '\t' << v.ToString();
      regions_out << '\n';
    }
    std::ofstream meta_out(fs::path(dir) / MetaFileName(s.id));
    if (!meta_out) {
      return Status::IoError("cannot write metadata for sample " +
                             std::to_string(s.id));
    }
    for (const auto& e : s.metadata.entries()) {
      meta_out << e.attr << '\t' << e.value << '\n';
    }
  }
  return Status::OK();
}

Result<gdm::Dataset> LoadDatasetDir(const std::string& dir) {
  std::ifstream schema_in(fs::path(dir) / "schema.txt");
  if (!schema_in) {
    return Status::IoError("missing schema.txt in " + dir);
  }
  std::string name;
  if (!std::getline(schema_in, name)) {
    return Status::ParseError("schema.txt is empty in " + dir);
  }
  RegionSchema schema;
  std::string schema_line;
  if (std::getline(schema_in, schema_line) && !Trim(schema_line).empty()) {
    for (const auto& field : Split(schema_line, '\t')) {
      auto parts = Split(field, ':');
      if (parts.size() != 2) {
        return Status::ParseError("bad schema attribute: " + field);
      }
      GDMS_ASSIGN_OR_RETURN(AttrType type, gdm::ParseAttrType(parts[1]));
      GDMS_RETURN_NOT_OK(schema.AddAttr(parts[0], type));
    }
  }
  Dataset ds(std::string(Trim(name)), schema);

  // Collect sample ids from region files, sorted for determinism.
  std::vector<std::pair<gdm::SampleId, fs::path>> region_files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string file = entry.path().filename().string();
    if (!StartsWith(file, "S_") || !EndsWith(file, ".regions.tsv")) continue;
    std::string id_text = file.substr(2, file.size() - 2 - 12);
    GDMS_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(id_text));
    region_files.push_back({id, entry.path()});
  }
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
  std::sort(region_files.begin(), region_files.end());

  for (const auto& [id, path] : region_files) {
    Sample sample(id);
    std::ifstream regions_in(path);
    std::string line;
    size_t line_no = 0;
    while (std::getline(regions_in, line)) {
      ++line_no;
      if (Trim(line).empty()) continue;
      auto fields = Split(line, '\t');
      if (fields.size() != 4 + schema.size()) {
        return Status::ParseError(path.string() + " line " +
                                  std::to_string(line_no) +
                                  " does not match schema arity");
      }
      GDMS_ASSIGN_OR_RETURN(int64_t left, ParseInt64(fields[1]));
      GDMS_ASSIGN_OR_RETURN(int64_t right, ParseInt64(fields[2]));
      GenomicRegion r(gdm::InternChrom(fields[0]), left, right);
      if (!fields[3].empty()) r.strand = gdm::StrandFromChar(fields[3][0]);
      for (size_t i = 0; i < schema.size(); ++i) {
        GDMS_ASSIGN_OR_RETURN(Value v,
                              Value::Parse(fields[4 + i], schema.attr(i).type));
        r.values.push_back(std::move(v));
      }
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    std::ifstream meta_in(fs::path(dir) / MetaFileName(id));
    if (meta_in) {
      while (std::getline(meta_in, line)) {
        if (Trim(line).empty()) continue;
        auto tab = line.find('\t');
        if (tab == std::string::npos) {
          return Status::ParseError("meta line without tab for sample " +
                                    std::to_string(id));
        }
        sample.metadata.Add(line.substr(0, tab), line.substr(tab + 1));
      }
    }
    ds.AddSample(std::move(sample));
  }
  GDMS_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace gdms::io
