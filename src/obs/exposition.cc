#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gdms::obs {

namespace {

/// Splits "base{labels}" into its parts; labels empty when unlabeled.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; legacy dotted registry
/// names become underscored.
std::string SanitizeBase(const std::string& base) {
  std::string out = base;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  // Integral values print without a trailing ".000000" so counter lines
  // stay exact-integer comparable across scrapes.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  *out += buf;
}

void AppendTypeHeader(std::string* out, std::string* last_base,
                      const std::string& base, const char* type) {
  if (base == *last_base) return;
  *last_base = base;
  *out += "# TYPE " + base + " " + type + "\n";
  const char* unit = MetricUnit(base);
  if (*unit != '\0') *out += "# UNIT " + base + " " + unit + "\n";
}

}  // namespace

std::string ExpositionLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderExposition(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  std::string last_base;
  for (const MetricSnapshot& m : snapshot) {
    std::string base, labels;
    SplitLabels(m.name, &base, &labels);
    base = SanitizeBase(base);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter: {
        AppendTypeHeader(&out, &last_base, base, "counter");
        out += base + labels + " ";
        AppendDouble(&out, static_cast<double>(m.counter_value));
        out += "\n";
        break;
      }
      case MetricSnapshot::Kind::kGauge: {
        AppendTypeHeader(&out, &last_base, base, "gauge");
        out += base + labels + " ";
        AppendDouble(&out, static_cast<double>(m.gauge_value));
        out += "\n";
        break;
      }
      case MetricSnapshot::Kind::kHistogram: {
        AppendTypeHeader(&out, &last_base, base, "summary");
        // Labeled histograms would need label-merged quantile sets; the
        // codebase only labels gauges today, so quantile lines carry just
        // the quantile label.
        for (double q : {0.5, 0.95, 0.99}) {
          char qbuf[16];
          std::snprintf(qbuf, sizeof(qbuf), "%g", q);
          out += base + "{quantile=\"" + qbuf + "\"} ";
          AppendDouble(&out, Histogram::QuantileFromBuckets(m.hist_buckets, q));
          out += "\n";
        }
        out += base + "_sum ";
        AppendDouble(&out, static_cast<double>(m.hist_sum));
        out += "\n" + base + "_count ";
        AppendDouble(&out, static_cast<double>(m.hist_count));
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string RenderExposition(const MetricsRegistry& registry) {
  return RenderExposition(registry.Snapshot());
}

bool WriteExpositionFile(const MetricsRegistry& registry,
                         const std::string& path, const std::string& extra) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << RenderExposition(registry);
    if (!extra.empty()) out << extra;
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

ScrapedExposition ParseExposition(const std::string& text) {
  ScrapedExposition out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <base> <type>" / "# UNIT <base> <unit>".
      std::istringstream meta(line);
      std::string hash, keyword, base, value;
      if (meta >> hash >> keyword >> base >> value) {
        if (keyword == "TYPE") out.types[base] = value;
        if (keyword == "UNIT") out.units[base] = value;
      }
      continue;
    }
    // "<name>[{labels}] <value>"; the name may contain spaces only inside
    // a label block, so split at the last space.
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    std::string name = line.substr(0, space);
    char* end = nullptr;
    double value = std::strtod(line.c_str() + space + 1, &end);
    if (end == line.c_str() + space + 1) continue;
    out.samples[name] = value;
  }
  return out;
}

}  // namespace gdms::obs
