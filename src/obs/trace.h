#ifndef GDMS_OBS_TRACE_H_
#define GDMS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gdms::obs {

/// One finished span: a named, timed slice of a query with numeric
/// attributes. Parent links form the profile tree (0 = root).
///
/// `origin` namespaces the id: every tracer mints ids from its own
/// process-local counter, so spans merged from multiple tracers (remote
/// sites, per-node tracers in tests) collide on bare ids. Identity is the
/// (origin, id) pair; parent links are resolved within the same origin.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;      ///< e.g. "MAP", "map:compute", "site:node_a"
  /// "query" | "operator" | "stage" | "federation" | "search"
  std::string category;
  int64_t start_ns = 0;  ///< steady time since the tracer epoch
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, double>> attrs;
  /// Tracer origin tag: span identity is (origin, id) in merged span sets,
  /// and parent links resolve within the same origin. 0 = this process's
  /// default tracer.
  uint64_t origin = 0;
};

/// Per-partition duration spread of one parallel stage.
struct SkewStats {
  int64_t min_ns = 0;
  int64_t median_ns = 0;
  int64_t max_ns = 0;
  double mean_ns = 0;
};

/// min/median/max/mean of a stage's per-task durations (the skew figures
/// attached to stage spans). Zeros when empty.
SkewStats ComputeSkew(std::vector<int64_t> durations_ns);

class Tracer;

/// \brief Movable handle for an in-flight span.
///
/// Inactive (all methods no-ops) when the tracer was disabled at StartSpan
/// time, so call sites stay unconditional. The record is assembled locally
/// and only touches the tracer (one mutex-guarded append) at End/destruction.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      rec_ = std::move(other.rec_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }
  /// 0 when inactive — safe to pass as a parent id.
  uint64_t id() const { return active() ? rec_.id : 0; }

  void AddAttr(const char* key, double value) {
    if (active()) rec_.attrs.emplace_back(key, value);
  }

  /// Stamps the duration and hands the record to the tracer; idempotent.
  void End();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// \brief Low-overhead span collector; one per process via Global().
///
/// Compiled-in but runtime-toggleable: when disabled (the default),
/// StartSpan is a relaxed atomic load returning an inactive handle — the
/// no-op fast path every instrumentation site rides. When enabled, finished
/// spans accumulate (bounded) until a caller collects them.
///
/// Cross-layer parent linkage: the query runner publishes the span id of
/// the operator currently executing (ExchangeCurrentParent); engine stages
/// and federation hops attach their spans under it without any plumbing
/// through the Executor interface. The runner evaluates one operator at a
/// time, so a single slot suffices; worker threads only read it.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Origin tag stamped on every span this tracer starts. Distinct per
  /// tracer instance when span sets are merged across tracers (the global
  /// tracer keeps the default 0).
  void set_origin(uint64_t origin) {
    origin_.store(origin, std::memory_order_relaxed);
  }
  uint64_t origin() const { return origin_.load(std::memory_order_relaxed); }

  /// Starts a span under `parent` (0 = root). Inactive handle when disabled.
  Span StartSpan(std::string name, const char* category, uint64_t parent);

  /// Publishes `id` as the current cross-layer parent, returning the
  /// previous value (restore it when the operator finishes).
  uint64_t ExchangeCurrentParent(uint64_t id) {
    return current_parent_.exchange(id, std::memory_order_relaxed);
  }
  uint64_t current_parent() const {
    return current_parent_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer epoch.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Copies the finished spans reachable from `root_id` (inclusive),
  /// leaving the buffer untouched — per-query collection under a
  /// process-wide tracer.
  std::vector<SpanRecord> Collect(uint64_t root_id) const;

  /// Removes and returns every finished span (whole-process export).
  std::vector<SpanRecord> TakeAll();

  void Clear();
  size_t pending() const;
  /// Spans discarded because the buffer was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Buffer bound; beyond it spans are dropped and counted, not grown —
  /// a long-lived process with tracing left on must not grow unbounded.
  static constexpr size_t kMaxSpans = 1 << 20;

 private:
  friend class Span;
  void Finish(SpanRecord rec);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> origin_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> current_parent_{0};
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> done_;
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_TRACE_H_
