#ifndef GDMS_OBS_QUERY_LOG_H_
#define GDMS_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/dtrace.h"
#include "obs/profile.h"

namespace gdms::obs {

/// Everything the query log records about one query. Producers fill the
/// raw figures (core::MakeQueryLogEntry does this from RunStats); the log
/// derives per-operator self-times and queue-wait/skew aggregates from the
/// attached profile at write time.
struct QueryLogEntry {
  std::string query;  ///< GMQL text (truncated to options.max_query_chars)
  bool ok = true;
  std::string error;  ///< status text when !ok
  double wall_ms = 0;
  uint64_t operators = 0;
  uint64_t cache_hits = 0;
  uint64_t intermediate_datasets = 0;
  uint64_t fused_chains = 0;
  // Flat-scheduler figures for the query.
  uint64_t tasks = 0;
  uint64_t partitions = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t stage_barriers = 0;
  // Federation protocol deltas attributed to this query.
  uint64_t fed_requests = 0;
  uint64_t fed_bytes_shipped = 0;
  uint64_t fed_bytes_received = 0;
  // Byte accounting of the query (zeros when accounting is disabled).
  uint64_t alloc_bytes = 0;
  uint64_t peak_bytes = 0;
  // Serve-path figures (gdms_shell --workers). `serve` switches the block
  // on; plan_cache is one of "hit"/"rebind"/"miss" and result_cache_hit
  // marks a query answered straight from the result cache.
  bool serve = false;
  uint64_t session_id = 0;
  double queue_ms = 0;
  std::string plan_cache;
  bool result_cache_hit = false;
  /// Span tree of the query when tracing was on; null otherwise. Source of
  /// the per-operator self-times, the queue-wait/skew aggregates, and the
  /// slow-query EXPLAIN ANALYZE capture.
  std::shared_ptr<const Profile> profile;
  /// Distributed-trace linkage: the hex trace id (empty when untraced) and
  /// the critical-path attribution of the end-to-end time. Emitted as
  /// "trace_id" and "critical_path" fields when present.
  std::string trace_id;
  std::vector<PathSegment> critical_path;
};

struct QueryLogOptions {
  std::string path;  ///< JSONL sink, appended to
  /// Queries at or above this wall time escalate: the full EXPLAIN ANALYZE
  /// tree is embedded in the entry (field "explain"). <= 0 escalates every
  /// query.
  double slow_ms = 250.0;
  size_t max_query_chars = 4000;
};

/// \brief Structured JSONL query log.
///
/// One JSON object per line per query:
///
///   {"ts_ms":..., "seq":1, "query":"...", "ok":true, "wall_ms":12.4,
///    "operators":5, "cache_hits":0, "intermediate_datasets":2,
///    "fused_chains":1, "tasks":96, "partitions":96, "shuffle_bytes":0,
///    "stage_barriers":4, "queue_wait_mean_us":1.9, "part_max_us":344.0,
///    "skew":1.6, "fed":{"requests":0,"bytes_shipped":0,
///    "bytes_received":0}, "mem":{"alloc_bytes":52000,"peak_bytes":26000},
///    "ops":[{"op":"MAP","total_ms":9.1,
///    "self_ms":3.0}, ...], "slow":false}
///
/// Entries whose wall time reaches options.slow_ms additionally carry
/// "explain": the rendered EXPLAIN ANALYZE tree (requires an attached
/// profile, i.e. tracing on). Thread-safe; every line is flushed so a
/// concurrent scraper sees complete records.
class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options);

  /// False when the sink could not be opened; Record becomes a no-op.
  bool ok() const { return out_ != nullptr && out_->good(); }

  const QueryLogOptions& options() const { return options_; }

  void Record(const QueryLogEntry& entry);

  uint64_t entries() const { return entries_; }
  uint64_t slow_entries() const { return slow_entries_; }

  /// The JSON line Record would write (exposed for tests; no I/O).
  std::string FormatEntry(const QueryLogEntry& entry, uint64_t seq) const;

 private:
  QueryLogOptions options_;
  std::unique_ptr<std::ofstream> out_;
  mutable std::mutex mu_;
  uint64_t entries_ = 0;
  uint64_t slow_entries_ = 0;
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_QUERY_LOG_H_
