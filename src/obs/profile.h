#ifndef GDMS_OBS_PROFILE_H_
#define GDMS_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gdms::obs {

/// \brief A collected span set arranged as the per-query profile tree,
/// with the two exporters: the human-readable EXPLAIN ANALYZE rendering
/// and the Chrome trace-event JSON (chrome://tracing / Perfetto).
class Profile {
 public:
  /// Tree node over one span; children sorted by start time.
  struct Node {
    const SpanRecord* rec = nullptr;
    std::vector<size_t> children;  ///< indexes into nodes()
    /// Wall time not covered by child spans (clamped at 0): child spans are
    /// strictly nested and sequential, so self times telescope — they sum
    /// to the root's duration across the whole tree.
    int64_t self_ns = 0;
  };

  explicit Profile(std::vector<SpanRecord> spans);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Indexes of nodes whose parent is absent from the collected set.
  const std::vector<size_t>& roots() const { return roots_; }
  /// Total duration of the root spans.
  int64_t total_ns() const { return total_ns_; }

  /// The annotated plan tree:
  ///
  ///   query                               12.53ms  self 2.1%
  ///   └─ MATERIALIZE RESULT               12.27ms  self 0.1%
  ///      └─ MAP                           12.26ms  self 34.0%  out_regions=...
  ///         ├─ SELECT                      1.05ms  self 100%
  ///         └─ map:compute [stage]         7.11ms  tasks=96 part_max_us=...
  std::string RenderTree() const;

  /// Chrome trace-event JSON ("X" complete events; ts/dur in microseconds).
  /// Spans share one pid with one tid lane per span origin, so strictly
  /// nested single-tracer ranges render as a nested flame and merged
  /// multi-tracer sets get a row each.
  std::string RenderChromeTrace() const;

  /// Writes RenderChromeTrace to `path`; false (with stderr note) on error.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<SpanRecord> spans_;
  std::vector<Node> nodes_;
  std::vector<size_t> roots_;
  int64_t total_ns_ = 0;
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_PROFILE_H_
