#include "obs/trace.h"

#include <algorithm>
#include <set>

namespace gdms::obs {

SkewStats ComputeSkew(std::vector<int64_t> durations_ns) {
  SkewStats out;
  if (durations_ns.empty()) return out;
  std::sort(durations_ns.begin(), durations_ns.end());
  out.min_ns = durations_ns.front();
  out.max_ns = durations_ns.back();
  out.median_ns = durations_ns[durations_ns.size() / 2];
  int64_t sum = 0;
  for (int64_t d : durations_ns) sum += d;
  out.mean_ns =
      static_cast<double>(sum) / static_cast<double>(durations_ns.size());
  return out;
}

void Span::End() {
  if (!active()) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  rec_.duration_ns = t->NowNs() - rec_.start_ns;
  t->Finish(std::move(rec_));
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Span Tracer::StartSpan(std::string name, const char* category,
                       uint64_t parent) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.rec_.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.rec_.origin = origin_.load(std::memory_order_relaxed);
  span.rec_.parent = parent;
  span.rec_.name = std::move(name);
  span.rec_.category = category;
  span.rec_.start_ns = NowNs();
  return span;
}

void Tracer::Finish(SpanRecord rec) {
  std::lock_guard<std::mutex> lk(mu_);
  if (done_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  done_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::Collect(uint64_t root_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::set<uint64_t> keep{root_id};
  std::vector<SpanRecord> out;
  // Children finish before their parents (End order), so one reverse pass
  // sees every parent before its children; a forward fixpoint loop backs
  // that up for spans ended out of order (e.g. explicitly).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = done_.rbegin(); it != done_.rend(); ++it) {
      if (keep.count(it->id) == 0 && keep.count(it->parent) > 0) {
        keep.insert(it->id);
        changed = true;
      }
    }
  }
  for (const auto& rec : done_) {
    if (keep.count(rec.id) > 0) out.push_back(rec);
  }
  return out;
}

std::vector<SpanRecord> Tracer::TakeAll() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  out.swap(done_);
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  done_.clear();
}

size_t Tracer::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_.size();
}

}  // namespace gdms::obs
