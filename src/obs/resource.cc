#include "obs/resource.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#ifdef __unix__
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"

namespace gdms::obs {

namespace {

std::string BytesLabel(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

/// The canonical instruments, resolved once (registry pointers are stable).
struct MemMetrics {
  Gauge* rss;
  Gauge* tracked;
  Gauge* reclaimable;
  Gauge* columnar;
  Gauge* budget;
  Gauge* gdmz_map;
  Gauge* gdmz_resident;
  Counter* minor_faults;
  Counter* major_faults;
  Counter* evictions;
  Counter* evicted_bytes;
  Counter* shed_passes;
  Histogram* query_peak;

  static const MemMetrics& Get() {
    auto& reg = MetricsRegistry::Global();
    static MemMetrics m{
        reg.GetGauge("gdms_mem_rss_bytes"),
        reg.GetGauge("gdms_mem_tracked_bytes"),
        reg.GetGauge("gdms_mem_reclaimable_bytes"),
        reg.GetGauge("gdms_mem_columnar_cache_bytes"),
        reg.GetGauge("gdms_mem_budget_bytes"),
        reg.GetGauge("gdms_storage_gdmz_map_bytes"),
        reg.GetGauge("gdms_storage_gdmz_resident_bytes"),
        reg.GetCounter("gdms_mem_minor_page_faults_total"),
        reg.GetCounter("gdms_mem_major_page_faults_total"),
        reg.GetCounter("gdms_mem_evictions_total"),
        reg.GetCounter("gdms_mem_evicted_bytes_total"),
        reg.GetCounter("gdms_mem_shed_passes_total"),
        reg.GetHistogram("gdms_mem_query_peak_bytes")};
    return m;
  }
};

Gauge* DatasetGauge(const char* family, const std::string& label) {
  return MetricsRegistry::Global().GetGauge(std::string(family) +
                                            "{dataset=\"" + label + "\"}");
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryAccounting
// ---------------------------------------------------------------------------

void QueryAccounting::SetCurrentOp(const std::string& op) {
  std::lock_guard<std::mutex> lk(mu_);
  current_op_ = op;
}

void QueryAccounting::Charge(uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  OpByteStat& op = ops_[current_op_];
  if (op.op.empty()) op.op = current_op_;
  op.alloc_bytes += bytes;
  ++op.charges;
  uint64_t& live = op_live_[current_op_];
  live += bytes;
  op.peak_bytes = std::max(op.peak_bytes, live);
  alloc_ += bytes;
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void QueryAccounting::ChargeTo(const std::string& op_name, uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  OpByteStat& op = ops_[op_name];
  if (op.op.empty()) op.op = op_name;
  op.alloc_bytes += bytes;
  ++op.charges;
  uint64_t& live = op_live_[op_name];
  live += bytes;
  op.peak_bytes = std::max(op.peak_bytes, live);
  alloc_ += bytes;
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void QueryAccounting::ReleaseFrom(const std::string& op_name,
                                  uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t& live = op_live_[op_name];
  live = live >= bytes ? live - bytes : 0;
  current_ = current_ >= bytes ? current_ - bytes : 0;
}

void QueryAccounting::Drain() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [op, live] : op_live_) live = 0;
  current_ = 0;
}

uint64_t QueryAccounting::alloc_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return alloc_;
}

uint64_t QueryAccounting::peak_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_;
}

uint64_t QueryAccounting::current_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

std::string QueryAccounting::current_op() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_op_;
}

std::vector<OpByteStat> QueryAccounting::OperatorStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<OpByteStat> out;
  out.reserve(ops_.size());
  for (const auto& [name, op] : ops_) out.push_back(op);
  std::sort(out.begin(), out.end(),
            [](const OpByteStat& a, const OpByteStat& b) {
              return a.alloc_bytes != b.alloc_bytes
                         ? a.alloc_bytes > b.alloc_bytes
                         : a.op < b.op;
            });
  return out;
}

std::string QueryAccounting::RenderTree(
    const std::string& query_label) const {
  std::vector<OpByteStat> ops = OperatorStats();
  uint64_t alloc, peak;
  {
    std::lock_guard<std::mutex> lk(mu_);
    alloc = alloc_;
    peak = peak_;
  }
  std::string out = "query " + query_label + "  alloc " + BytesLabel(alloc) +
                    "  peak " + BytesLabel(peak) + "\n";
  for (const OpByteStat& op : ops) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  %-24s alloc %-12s peak %-12s (%" PRIu64 " charge%s)\n",
                  op.op.c_str(), BytesLabel(op.alloc_bytes).c_str(),
                  BytesLabel(op.peak_bytes).c_str(), op.charges,
                  op.charges == 1 ? "" : "s");
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScopedCharge
// ---------------------------------------------------------------------------

ScopedCharge::ScopedCharge(uint64_t bytes) {
  std::shared_ptr<QueryAccounting> account =
      ResourceTracker::Global().active_query();
  if (account == nullptr || bytes == 0) return;
  account_ = std::move(account);
  op_ = account_->current_op();
  bytes_ = bytes;
  account_->ChargeTo(op_, bytes_);
}

ScopedCharge& ScopedCharge::operator=(ScopedCharge&& other) noexcept {
  if (this != &other) {
    Release();
    account_ = std::move(other.account_);
    op_ = std::move(other.op_);
    bytes_ = other.bytes_;
    other.account_.reset();
    other.bytes_ = 0;
  }
  return *this;
}

void ScopedCharge::Release() {
  if (account_ == nullptr) return;
  account_->ReleaseFrom(op_, bytes_);
  account_.reset();
  bytes_ = 0;
}

void ChargeActiveQuery(uint64_t bytes) {
  if (bytes == 0) return;
  std::shared_ptr<QueryAccounting> account =
      ResourceTracker::Global().active_query();
  if (account != nullptr) account->Charge(bytes);
}

// ---------------------------------------------------------------------------
// Process memory
// ---------------------------------------------------------------------------

ProcessMemory ReadProcessMemory() {
  ProcessMemory mem;
#ifdef __unix__
  if (FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long vm_pages = 0, rss_pages = 0;
    if (std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages) == 2) {
      long page = ::sysconf(_SC_PAGESIZE);
      uint64_t page_bytes = page > 0 ? static_cast<uint64_t>(page) : 4096;
      mem.vm_bytes = vm_pages * page_bytes;
      mem.rss_bytes = rss_pages * page_bytes;
    }
    std::fclose(f);
  }
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    mem.minor_faults = static_cast<uint64_t>(usage.ru_minflt);
    mem.major_faults = static_cast<uint64_t>(usage.ru_majflt);
  }
#endif
  return mem;
}

// ---------------------------------------------------------------------------
// ResourceTracker
// ---------------------------------------------------------------------------

ResourceTracker& ResourceTracker::Global() {
  static ResourceTracker* tracker = new ResourceTracker();
  return *tracker;
}

uint64_t ResourceTracker::RegisterStorage(const std::string& label,
                                          UsageFn usage, ShedFn shed) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t token = next_token_++;
  Registration& reg = registrations_[token];
  reg.label = label;
  reg.usage = std::move(usage);
  reg.shed = std::move(shed);
  reg.last_touch = touch_clock_.fetch_add(1, std::memory_order_relaxed);
  return token;
}

void ResourceTracker::UnregisterStorage(uint64_t token) {
  std::string label;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = registrations_.find(token);
    if (it == registrations_.end()) return;
    label = it->second.label;
    registrations_.erase(it);
  }
  DatasetGauge("gdms_storage_dataset_resident_bytes", label)->Set(0);
  DatasetGauge("gdms_storage_dataset_columnar_bytes", label)->Set(0);
}

void ResourceTracker::Touch(uint64_t token) {
  uint64_t now = touch_clock_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = registrations_.find(token);
  if (it != registrations_.end()) it->second.last_touch = now;
}

void ResourceTracker::set_budget_bytes(uint64_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
  MemMetrics::Get().budget->Set(static_cast<int64_t>(bytes));
}

uint64_t ResourceTracker::ReclaimableBytes() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [token, reg] : registrations_) {
    if (!reg.usage) continue;
    StorageUsage usage = reg.usage();
    total += usage.columnar_bytes + usage.mapped_resident_bytes;
  }
  return total;
}

uint64_t ResourceTracker::MaybeShed() {
  uint64_t budget = budget_bytes();
  if (budget == 0) return 0;
  uint64_t reclaimable = ReclaimableBytes();
  if (reclaimable <= budget) return 0;
  const MemMetrics& m = MemMetrics::Get();
  m.shed_passes->Add();
  // Shed down to the low watermark so a steady workload does not trigger a
  // pass per query right at the boundary.
  uint64_t low = budget - budget / 10;
  uint64_t freed_total = 0;
  // Snapshot the shed order (LRU first) outside the loop; callbacks may
  // take their own locks.
  std::vector<std::pair<uint64_t, ShedFn>> order;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<const Registration*> regs;
    for (const auto& [token, reg] : registrations_) {
      if (reg.shed) regs.push_back(&reg);
    }
    std::sort(regs.begin(), regs.end(),
              [](const Registration* a, const Registration* b) {
                return a->last_touch < b->last_touch;
              });
    for (const Registration* reg : regs) {
      order.emplace_back(reg->last_touch, reg->shed);
    }
  }
  for (const auto& [touch, shed] : order) {
    if (reclaimable - freed_total <= low) break;
    uint64_t want = reclaimable - freed_total - low;
    uint64_t freed = shed(want);
    if (freed == 0) continue;
    freed_total += freed;
    m.evicted_bytes->Add(freed);
  }
  UpdateGauges();
  return freed_total;
}

void ResourceTracker::UpdateGauges() {
  const MemMetrics& m = MemMetrics::Get();
  ProcessMemory proc = ReadProcessMemory();
  m.rss->Set(static_cast<int64_t>(proc.rss_bytes));
  {
    std::lock_guard<std::mutex> lk(fault_mu_);
    if (have_prev_faults_) {
      if (proc.minor_faults > prev_minor_faults_) {
        m.minor_faults->Add(proc.minor_faults - prev_minor_faults_);
      }
      if (proc.major_faults > prev_major_faults_) {
        m.major_faults->Add(proc.major_faults - prev_major_faults_);
      }
    }
    prev_minor_faults_ = proc.minor_faults;
    prev_major_faults_ = proc.major_faults;
    have_prev_faults_ = true;
  }
  uint64_t rows_total = 0, columnar_total = 0;
  uint64_t mapped_total = 0, mapped_resident_total = 0;
  std::vector<std::pair<std::string, StorageUsage>> per_label;
  {
    std::lock_guard<std::mutex> lk(mu_);
    per_label.reserve(registrations_.size());
    for (const auto& [token, reg] : registrations_) {
      if (!reg.usage) continue;
      per_label.emplace_back(reg.label, reg.usage());
    }
  }
  for (const auto& [label, usage] : per_label) {
    rows_total += usage.rows_bytes;
    columnar_total += usage.columnar_bytes;
    mapped_total += usage.mapped_bytes;
    mapped_resident_total += usage.mapped_resident_bytes;
    if (usage.rows_bytes > 0 || usage.columnar_bytes > 0) {
      DatasetGauge("gdms_storage_dataset_resident_bytes", label)
          ->Set(static_cast<int64_t>(usage.rows_bytes));
      DatasetGauge("gdms_storage_dataset_columnar_bytes", label)
          ->Set(static_cast<int64_t>(usage.columnar_bytes));
    }
  }
  m.columnar->Set(static_cast<int64_t>(columnar_total));
  m.gdmz_map->Set(static_cast<int64_t>(mapped_total));
  m.gdmz_resident->Set(static_cast<int64_t>(mapped_resident_total));
  m.reclaimable->Set(
      static_cast<int64_t>(columnar_total + mapped_resident_total));
  m.tracked->Set(static_cast<int64_t>(rows_total + columnar_total +
                                      mapped_resident_total));
}

std::string ResourceTracker::RenderStorageSummary() const {
  std::vector<std::pair<std::string, StorageUsage>> per_label;
  {
    std::lock_guard<std::mutex> lk(mu_);
    per_label.reserve(registrations_.size());
    for (const auto& [token, reg] : registrations_) {
      if (!reg.usage) continue;
      per_label.emplace_back(reg.label, reg.usage());
    }
  }
  ProcessMemory proc = ReadProcessMemory();
  uint64_t budget = budget_bytes();
  std::string out = "storage residency  rss " + BytesLabel(proc.rss_bytes) +
                    "  budget " +
                    (budget == 0 ? std::string("off") : BytesLabel(budget)) +
                    "  evictions " + std::to_string(evictions()) + " (" +
                    BytesLabel(evicted_bytes()) + ")\n";
  for (const auto& [label, usage] : per_label) {
    char buf[256];
    if (usage.mapped_bytes > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  %-20s mapped %-12s resident %-12s\n", label.c_str(),
                    BytesLabel(usage.mapped_bytes).c_str(),
                    BytesLabel(usage.mapped_resident_bytes).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %-20s rows %-12s columnar %-12s\n", label.c_str(),
                    BytesLabel(usage.rows_bytes).c_str(),
                    BytesLabel(usage.columnar_bytes).c_str());
    }
    out += buf;
  }
  return out;
}

uint64_t ResourceTracker::evictions() const {
  return MemMetrics::Get().evictions->value();
}

uint64_t ResourceTracker::evicted_bytes() const {
  return MemMetrics::Get().evicted_bytes->value();
}

void ResourceTracker::NoteQueryPeak(uint64_t peak_bytes) {
  MemMetrics::Get().query_peak->Record(peak_bytes);
}

}  // namespace gdms::obs
