#ifndef GDMS_OBS_METRICS_H_
#define GDMS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gdms::obs {

/// Canonical metric naming: `gdms_<layer>_<name>[_<unit>][_total]` —
/// counters end in `_total`, histograms and gauges carry their unit as the
/// trailing suffix (`_ns`, `_us`, `_ms`, `_bytes`). A per-instance label may
/// be embedded Prometheus-style in the registry key itself, e.g.
/// `gdms_fed_staged_bytes{node="site_a"}`; renderers split the base name
/// from the label block at the '{'.

/// The unit a canonical metric name declares ("ns", "us", "ms", "bytes",
/// "count" for `_total`/`_count` counters, "" when unrecognized). Labels
/// and the `_total` suffix are stripped before matching.
const char* MetricUnit(const std::string& name);

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// metric names may embed label blocks with quotes, and query-log payloads
/// embed arbitrary GMQL text.
std::string JsonEscape(const std::string& text);

/// \brief Process-wide telemetry primitives.
///
/// All instruments are updated with relaxed atomics: every metric is an
/// independent tally read after the interesting work has quiesced (end of a
/// query, end of a bench), so no cross-metric ordering is required and the
/// hot-path cost is one uncontended atomic RMW. Instrument pointers handed
/// out by the registry are stable for the registry's lifetime — call sites
/// cache them in static locals and skip the name lookup thereafter.

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram: 64 power-of-two buckets (bucket i holds
/// values whose bit width is i, i.e. [2^(i-1), 2^i)), so any uint64 latency
/// in any unit fits without configuration. Quantiles interpolate linearly
/// within the chosen bucket — at most a 2x bucket-width error, which is the
/// standard precision trade of fixed-bucket histograms (HdrHistogram-style).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value) {
    size_t b = BucketOf(value);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  /// Value at quantile q in [0, 1] (0.5 = p50), interpolated within the
  /// bucket holding the q-th sample. 0 when empty.
  double Quantile(double q) const;

  /// Quantile over a caller-supplied bucket array (same power-of-two
  /// layout). The sampler subtracts two bucket snapshots and reads windowed
  /// quantiles from the delta through this.
  static double QuantileFromBuckets(
      const std::array<uint64_t, kBuckets>& buckets, double q);

  /// Relaxed copy of the current bucket counts.
  std::array<uint64_t, kBuckets> SnapshotBuckets() const {
    std::array<uint64_t, kBuckets> out;
    for (size_t b = 0; b < kBuckets; ++b) {
      out[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

  void Reset();

  static size_t BucketOf(uint64_t value) {
    size_t width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width < kBuckets ? width : kBuckets - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One instrument's state at a point in time; what Snapshot() hands the
/// sampler and the exposition renderer. Exactly one of the kind-specific
/// payloads is meaningful, selected by `kind`.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  std::array<uint64_t, Histogram::kBuckets> hist_buckets = {};
};

/// \brief Named instrument registry; one per process via Global().
///
/// Get* registers on first use and returns the same stable pointer for the
/// same name afterwards. A name is bound to one instrument kind; requesting
/// it as a different kind returns a detached scratch instrument (never
/// nullptr) so call sites stay unconditional.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Relaxed point-in-time copy of every instrument, sorted by name. The
  /// mutex guards only the map structure; values are relaxed loads, so a
  /// snapshot taken mid-workload is per-instrument consistent, not
  /// cross-instrument.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable dump, one instrument per line, sorted by name, with
  /// the declared unit (MetricUnit) bracketed after the name.
  std::string RenderText() const;

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..}}}.
  /// Metric names are JSON-escaped (label blocks embed quotes).
  std::string RenderJson() const;

  /// Zeroes every registered instrument (tests / per-bench isolation).
  /// Pointers stay valid.
  void ResetAll();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_METRICS_H_
