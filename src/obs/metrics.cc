#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace gdms::obs {

double Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk buckets.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Bucket b spans [lower, upper): interpolate by rank position.
      double lower = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
      double upper = b == 0 ? 1.0
                    : b >= 63
                        ? lower * 2.0
                        : static_cast<double>(uint64_t{1} << b);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    seen += in_bucket;
  }
  return 0.0;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.gauge != nullptr || e.histogram != nullptr) {
    static Counter scratch;
    return &scratch;
  }
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.histogram != nullptr) {
    static Gauge scratch;
    return &scratch;
  }
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.gauge != nullptr) {
    static Histogram scratch;
    return &scratch;
  }
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>();
  return e.histogram.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      std::snprintf(buf, sizeof(buf), "counter   %-36s %" PRIu64 "\n",
                    name.c_str(), e.counter->value());
    } else if (e.gauge != nullptr) {
      std::snprintf(buf, sizeof(buf), "gauge     %-36s %" PRId64 "\n",
                    name.c_str(), e.gauge->value());
    } else if (e.histogram != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "histogram %-36s count=%" PRIu64 " mean=%.1f p50=%.0f "
                    "p95=%.0f p99=%.0f\n",
                    name.c_str(), e.histogram->count(), e.histogram->mean(),
                    e.histogram->Quantile(0.5), e.histogram->Quantile(0.95),
                    e.histogram->Quantile(0.99));
    } else {
      continue;
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string counters, gauges, histograms;
  char buf[256];
  auto append = [](std::string* dst, const char* text) {
    if (!dst->empty()) *dst += ", ";
    *dst += text;
  };
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, name.c_str(),
                    e.counter->value());
      append(&counters, buf);
    } else if (e.gauge != nullptr) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %" PRId64, name.c_str(),
                    e.gauge->value());
      append(&gauges, buf);
    } else if (e.histogram != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                    ", \"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, "
                    "\"p99\": %.1f}",
                    name.c_str(), e.histogram->count(), e.histogram->sum(),
                    e.histogram->mean(), e.histogram->Quantile(0.5),
                    e.histogram->Quantile(0.95), e.histogram->Quantile(0.99));
      append(&histograms, buf);
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

}  // namespace gdms::obs
