#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace gdms::obs {

namespace {

/// Strips a trailing `{label="..."}` block, leaving the base metric name.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

const char* MetricUnit(const std::string& name) {
  std::string base = BaseName(name);
  bool total = EndsWith(base, "_total");
  if (total) base.resize(base.size() - 6);
  if (EndsWith(base, "_ns")) return "ns";
  if (EndsWith(base, "_us")) return "us";
  if (EndsWith(base, "_ms")) return "ms";
  if (EndsWith(base, "_seconds")) return "s";
  // "bytes" also counts as the unit mid-name: the canonical federation
  // counters (gdms_fed_bytes_shipped_total, ...) put the direction last.
  if (EndsWith(base, "_bytes") ||
      base.find("_bytes_") != std::string::npos) {
    return "bytes";
  }
  if (total || EndsWith(base, "_count")) return "count";
  return "";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

double Histogram::QuantileFromBuckets(
    const std::array<uint64_t, kBuckets>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk buckets.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Bucket b spans [lower, upper): interpolate by rank position.
      double lower = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
      double upper = b == 0 ? 1.0
                    : b >= 63
                        ? lower * 2.0
                        : static_cast<double>(uint64_t{1} << b);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    seen += in_bucket;
  }
  return 0.0;
}

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(SnapshotBuckets(), q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.gauge != nullptr || e.histogram != nullptr) {
    static Counter scratch;
    return &scratch;
  }
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.histogram != nullptr) {
    static Gauge scratch;
    return &scratch;
  }
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  if (e.counter != nullptr || e.gauge != nullptr) {
    static Histogram scratch;
    return &scratch;
  }
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>();
  return e.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot s;
    s.name = name;
    if (e.counter != nullptr) {
      s.kind = MetricSnapshot::Kind::kCounter;
      s.counter_value = e.counter->value();
    } else if (e.gauge != nullptr) {
      s.kind = MetricSnapshot::Kind::kGauge;
      s.gauge_value = e.gauge->value();
    } else if (e.histogram != nullptr) {
      s.kind = MetricSnapshot::Kind::kHistogram;
      s.hist_count = e.histogram->count();
      s.hist_sum = e.histogram->sum();
      s.hist_buckets = e.histogram->SnapshotBuckets();
    } else {
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[320];
  auto unit_tag = [](const std::string& name) {
    const char* unit = MetricUnit(name);
    return *unit == '\0' ? std::string() : " [" + std::string(unit) + "]";
  };
  for (const auto& [name, e] : entries_) {
    std::string shown = name + unit_tag(name);
    if (e.counter != nullptr) {
      std::snprintf(buf, sizeof(buf), "counter   %-44s %" PRIu64 "\n",
                    shown.c_str(), e.counter->value());
    } else if (e.gauge != nullptr) {
      std::snprintf(buf, sizeof(buf), "gauge     %-44s %" PRId64 "\n",
                    shown.c_str(), e.gauge->value());
    } else if (e.histogram != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "histogram %-44s count=%" PRIu64 " mean=%.1f p50=%.0f "
                    "p95=%.0f p99=%.0f\n",
                    shown.c_str(), e.histogram->count(), e.histogram->mean(),
                    e.histogram->Quantile(0.5), e.histogram->Quantile(0.95),
                    e.histogram->Quantile(0.99));
    } else {
      continue;
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string counters, gauges, histograms;
  char buf[320];
  auto append = [](std::string* dst, const char* text) {
    if (!dst->empty()) *dst += ", ";
    *dst += text;
  };
  for (const auto& [name, e] : entries_) {
    std::string escaped = JsonEscape(name);
    if (e.counter != nullptr) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, escaped.c_str(),
                    e.counter->value());
      append(&counters, buf);
    } else if (e.gauge != nullptr) {
      std::snprintf(buf, sizeof(buf), "\"%s\": %" PRId64, escaped.c_str(),
                    e.gauge->value());
      append(&gauges, buf);
    } else if (e.histogram != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                    ", \"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, "
                    "\"p99\": %.1f}",
                    escaped.c_str(), e.histogram->count(), e.histogram->sum(),
                    e.histogram->mean(), e.histogram->Quantile(0.5),
                    e.histogram->Quantile(0.95), e.histogram->Quantile(0.99));
      append(&histograms, buf);
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

}  // namespace gdms::obs
