#ifndef GDMS_OBS_SAMPLER_H_
#define GDMS_OBS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace gdms::obs {

struct SamplerOptions {
  /// Snapshot period. 100 ms keeps a 512-point series just under a minute
  /// of history.
  int64_t period_ms = 100;
  /// Ring capacity of every derived series.
  size_t capacity = TimeSeries::kDefaultCapacity;
  /// Sliding window (in periods) for histogram quantiles: the p50/p95/p99
  /// series are computed over the bucket deltas of the last `window`
  /// samples, so they track the recent distribution instead of the
  /// since-startup aggregate the registry itself reports.
  size_t window = 10;
  /// Invoked on the sampler thread after every snapshot (tick count is
  /// 1-based). Serve mode uses this to dump the exposition periodically.
  std::function<void(uint64_t)> on_tick;
};

/// \brief Background thread turning registry totals into time series.
///
/// Every period the sampler snapshots the registry and derives, per metric:
///
///   counter `X`    -> series `X` (absolute) and `X:rate` (per second)
///   gauge `X`      -> series `X`
///   histogram `X`  -> `X:rate` (samples/s) and `X:p50` / `X:p95` / `X:p99`
///                     windowed quantiles over the last `window` periods
///
/// Series are created on first sight of a metric and live for the sampler's
/// lifetime; Find() pointers stay valid across Stop()/Start(). Readers
/// (exposition dumps, `gdms_top`) walk the lock-free TimeSeries rings
/// concurrently with the sampler thread.
class Sampler {
 public:
  explicit Sampler(MetricsRegistry* registry = &MetricsRegistry::Global());
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Sets the options without starting the thread — for callers driving
  /// SampleOnce/SampleOnceAt manually (tests, synchronous dumps). No-op
  /// while the thread runs.
  void Configure(SamplerOptions options);

  /// Starts the background thread; no-op if already running.
  void Start(SamplerOptions options = {});

  /// Stops and joins the thread; series and their data stay readable.
  void Stop();

  bool running() const;

  /// One synchronous snapshot stamped with the current steady time —
  /// callable without Start() (tests, final flush before an exposition
  /// dump).
  void SampleOnce();

  /// One snapshot at an injected timestamp; deterministic rates for tests.
  void SampleOnceAt(int64_t t_ns);

  /// Snapshots taken so far.
  uint64_t ticks() const { return ticks_.load(); }

  /// Derived series by name (e.g. "gdms_engine_tasks_total:rate");
  /// nullptr when the metric has not been seen yet.
  const TimeSeries* Find(const std::string& series) const;

  /// All derived series names, sorted.
  std::vector<std::string> SeriesNames() const;

 private:
  struct MetricState {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    bool has_prev = false;
    int64_t prev_t_ns = 0;
    uint64_t prev_counter = 0;
    uint64_t prev_hist_count = 0;
    /// Oldest-first bucket snapshots, at most window+1 entries.
    std::deque<std::array<uint64_t, Histogram::kBuckets>> bucket_history;
    std::unique_ptr<TimeSeries> value;
    std::unique_ptr<TimeSeries> rate;
    std::unique_ptr<TimeSeries> p50;
    std::unique_ptr<TimeSeries> p95;
    std::unique_ptr<TimeSeries> p99;
  };

  void Loop();
  TimeSeries* Ensure(MetricState* state, std::unique_ptr<TimeSeries>* slot,
                     const std::string& series_name);

  MetricsRegistry* registry_;
  SamplerOptions options_;

  /// Guards the states_/index_ map structure (TimeSeries payloads are
  /// internally lock-free; readers hold no lock while walking them).
  mutable std::mutex mu_;
  std::map<std::string, MetricState> states_;
  std::map<std::string, TimeSeries*> index_;

  /// Thread lifecycle, separate from the data lock so a stuck reader can
  /// never delay Stop() and the sleeping thread never blocks Find().
  mutable std::mutex ctl_mu_;
  std::thread thread_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<uint64_t> ticks_{0};
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_SAMPLER_H_
