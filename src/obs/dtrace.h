#ifndef GDMS_OBS_DTRACE_H_
#define GDMS_OBS_DTRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gdms::obs {

/// \brief Distributed tracing primitives: the per-query trace identity that
/// crosses layer and wire boundaries, the stitched cross-site span set, the
/// critical-path extractor, and the tail-based exemplar ring.
///
/// Two clock domains coexist deliberately. Serve-path traces are stamped in
/// wall microseconds relative to query admission; federation traces are
/// stamped in SimClock virtual microseconds, so a faulted query's stitched
/// trace — retries, hedges and all — is bit-reproducible across runs with
/// the same transport fault seed (the same property bench_e8 gates for
/// makespans). A DistTrace never mixes the two.

/// 128-bit trace identity. Zero (both halves) means "no trace".
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  bool operator==(const TraceId& o) const { return hi == o.hi && lo == o.lo; }

  /// 32 lowercase hex chars (hi then lo).
  std::string ToHex() const;
  /// Parses ToHex() output; returns an invalid id on malformed input.
  static TraceId FromHex(std::string_view hex);
};

/// Deterministically mints a trace id from two seeds (SplitMix64-mixed) —
/// callers derive the seeds from stable per-query counters so traced runs
/// replay with identical ids.
TraceId MintTraceId(uint64_t seed_a, uint64_t seed_b);

/// The context one layer hands the next: which trace, which span to parent
/// under, and (stamped by the transport on delivery) the virtual arrival
/// time at the remote site.
struct TraceContext {
  TraceId id;
  uint64_t parent_span = 0;  ///< span id in the coordinator origin ("")
  uint64_t arrival_us = 0;   ///< filled in by the transport, not the sender

  bool valid() const { return id.valid(); }
};

/// Wire codec for the transport envelope header line:
///   "<hi-hex>-<lo-hex>-<parent>-<arrival_us>"
std::string EncodeTraceContext(const TraceContext& ctx);
bool DecodeTraceContext(std::string_view text, TraceContext* out);

/// One span of a distributed trace. Span ids are only unique within their
/// origin — every process/site runs its own counter — so identity is the
/// (origin, id) pair and parent links carry the parent's origin explicitly.
/// Names, segments, origins and attr keys must not contain whitespace (they
/// cross the wire in a field-separated line format).
struct DistSpan {
  std::string origin;  ///< "" = the coordinator / serving process
  uint64_t id = 0;
  std::string parent_origin;
  uint64_t parent = 0;  ///< 0 = root
  std::string name;     ///< "rpc:FETCH@milan", "remote:EXECUTE", ...
  /// Critical-path segment this span's wall time is attributed to
  /// ("admit.queue", "wire.fetch", "wait.backoff", ...); "" = detail-only
  /// span, excluded from attribution (remote lanes, hedge losers).
  std::string segment;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  bool wasted = false;  ///< hedge loser / post-deadline delivery
  std::vector<std::pair<std::string, double>> attrs;
};

/// One attributed slice of the end-to-end time.
struct PathSegment {
  std::string label;
  uint64_t us = 0;
};

/// A stitched trace: the coordinator's spans plus every remote span shipped
/// back, deduplicated by (origin, id) and sorted deterministically.
struct DistTrace {
  TraceId id;
  std::vector<DistSpan> spans;
  /// Why the exemplar ring kept it: "slow" | "error" | "shed" | "partial" |
  /// "faulted" | "" (not retained).
  std::string reason;

  /// The root span (parent 0 in the coordinator origin); nullptr if absent.
  const DistSpan* root() const;
  /// Root duration; 0 without a root.
  uint64_t total_us() const;

  /// Structured JSON dump (spans + critical path + totals) — what
  /// `gdms_shell .trace <id> <file>` writes and check_telemetry.py
  /// --expect-trace validates. Deterministic byte-for-byte for a given
  /// span set.
  std::string RenderJson() const;
  /// Human tree rendering for the terminal.
  std::string RenderTree() const;
  /// Chrome trace-event JSON with one process lane per origin, so remote
  /// sites render as separate rows under the coordinator's timeline.
  std::string RenderChromeTrace() const;
};

/// Dedups (origin, id) collisions — per-process span counters collide by
/// construction — keeping the first occurrence, sorts by
/// (start_us, origin, id, name), and wraps the result.
DistTrace StitchTrace(const TraceId& id, std::vector<DistSpan> spans);

/// Attributes the root span's wall time to named segments: spans carrying a
/// non-empty `segment` are swept in start order, each contributing its
/// not-yet-covered interval (clamped to the root window), so the returned
/// segments plus the trailing "self" slice sum exactly to total_us().
/// Ordered by descending time, then label.
std::vector<PathSegment> CriticalPath(const DistTrace& trace);

/// Records one query's critical path into the gdms_trace_critical_<seg>_us
/// registry histograms (segment dots become underscores).
void RecordCriticalPathMetrics(const std::vector<PathSegment>& path);

/// Span-list wire codec: what a FederatedNode piggybacks onto its final
/// FETCH chunk. Line-based, tab-separated; best-effort decode skips
/// malformed lines (a corrupted reply is re-fetched anyway).
std::string EncodeDistSpans(const std::vector<DistSpan>& spans);
std::vector<DistSpan> DecodeDistSpans(std::string_view text);

/// \brief Tail-based exemplar retention: a bounded ring of complete
/// stitched traces, kept only for queries worth debugging (slow, error,
/// shed, partial/faulted federation). Normal queries contribute to the
/// aggregate histograms only and never enter the ring.
class TraceExemplars {
 public:
  static TraceExemplars& Global();

  TraceExemplars() = default;
  TraceExemplars(const TraceExemplars&) = delete;
  TraceExemplars& operator=(const TraceExemplars&) = delete;

  void set_capacity(size_t n);
  size_t capacity() const;

  /// Pushes a retained trace (its `reason` says why); evicts the oldest
  /// beyond capacity. Bumps gdms_trace_exemplars_kept_total.
  void Keep(std::shared_ptr<const DistTrace> trace);

  /// Newest-first snapshot of the ring.
  std::vector<std::shared_ptr<const DistTrace>> Snapshot() const;

  /// Finds by hex-id prefix, or the most recent trace for "last"/"".
  std::shared_ptr<const DistTrace> Find(const std::string& id_prefix) const;

  /// One line per retained trace (id, total ms, reason, top segments) —
  /// the `.trace` listing.
  std::string RenderList() const;

  /// Exposition lines for the slowest retained traces:
  ///   gdms_trace_exemplar_us{rank="1",trace="<hex16>",reason="...",
  ///     seg1="wire.fetch:62%",seg2="wait.backoff:21%"} <total_us>
  /// Appended verbatim to the registry exposition (fresh every scrape, so
  /// rank labels never go stale); gdms_top renders them as the "slowest
  /// recent traces" panel.
  std::string RenderExposition() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 32;
  std::deque<std::shared_ptr<const DistTrace>> ring_;  ///< newest at front
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_DTRACE_H_
