#ifndef GDMS_OBS_EXPOSITION_H_
#define GDMS_OBS_EXPOSITION_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gdms::obs {

/// \brief Prometheus-style text exposition of the metrics registry.
///
/// Format (one `# TYPE` line per base metric, labeled variants grouped):
///
///   # TYPE gdms_engine_tasks_total counter
///   gdms_engine_tasks_total 1234
///   # TYPE gdms_fed_staged_bytes gauge
///   gdms_fed_staged_bytes{node="site_a"} 0
///   gdms_fed_staged_bytes{node="site_b"} 4096
///   # TYPE gdms_runner_query_latency_us summary
///   gdms_runner_query_latency_us{quantile="0.5"} 133
///   gdms_runner_query_latency_us{quantile="0.95"} 287
///   gdms_runner_query_latency_us{quantile="0.99"} 301
///   gdms_runner_query_latency_us_sum 1427
///   gdms_runner_query_latency_us_count 9
///
/// Legacy dotted names are sanitized ('.' -> '_'); canonical names
/// (gdms_<layer>_<name>[_<unit>][_total]) pass through untouched. Units are
/// declared by the name suffix per MetricUnit() and echoed in a `# UNIT`
/// comment when recognized.
std::string RenderExposition(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: snapshot + render in one call.
std::string RenderExposition(const MetricsRegistry& registry);

/// Writes the exposition atomically (temp file + rename) so a concurrent
/// scraper never reads a torn dump. Returns false on I/O error. `extra`
/// is appended verbatim after the registry metrics — exposition-formatted
/// lines computed outside the registry (the trace exemplar gauges, whose
/// label sets change every scrape and must not accrete stale registry
/// entries).
bool WriteExpositionFile(const MetricsRegistry& registry,
                         const std::string& path,
                         const std::string& extra = "");

/// One scraped sample line: full name (labels included) -> value.
/// `# TYPE`/`# UNIT` comments are folded into `types` / `units` keyed by
/// base name. What gdms_top --attach and the tests parse dumps back with.
struct ScrapedExposition {
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
  std::map<std::string, std::string> units;
};

/// Parses exposition text (as produced by RenderExposition); unparseable
/// lines are skipped, never fatal.
ScrapedExposition ParseExposition(const std::string& text);

/// Prometheus label-value escaping for names embedded as
/// `name{label="<value>"}` registry keys: backslash, quote, newline.
std::string ExpositionLabelValue(const std::string& value);

}  // namespace gdms::obs

#endif  // GDMS_OBS_EXPOSITION_H_
