#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace gdms::obs {

namespace {

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatAttr(double v) {
  char buf[32];
  // Counts render without a fraction; timings keep one decimal.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Profile::Profile(std::vector<SpanRecord> spans) : spans_(std::move(spans)) {
  // Span ids are per-tracer counters, so a merged multi-tracer span set
  // collides on bare ids; key the tree on (origin, id) and resolve parent
  // links within the same origin so each tracer's spans form their own
  // subtree instead of cross-linking.
  std::map<std::pair<uint64_t, uint64_t>, size_t> by_id;
  nodes_.resize(spans_.size());
  for (size_t i = 0; i < spans_.size(); ++i) {
    nodes_[i].rec = &spans_[i];
    by_id[{spans_[i].origin, spans_[i].id}] = i;
  }
  for (size_t i = 0; i < spans_.size(); ++i) {
    auto it = by_id.find({spans_[i].origin, spans_[i].parent});
    if (it == by_id.end()) {
      roots_.push_back(i);
      total_ns_ += spans_[i].duration_ns;
    } else {
      nodes_[it->second].children.push_back(i);
    }
  }
  for (auto& node : nodes_) {
    std::sort(node.children.begin(), node.children.end(),
              [this](size_t a, size_t b) {
                return nodes_[a].rec->start_ns < nodes_[b].rec->start_ns;
              });
    int64_t covered = 0;
    for (size_t c : node.children) covered += nodes_[c].rec->duration_ns;
    node.self_ns = std::max<int64_t>(0, node.rec->duration_ns - covered);
  }
}

std::string Profile::RenderTree() const {
  std::string out;
  // Recursive render with box-drawing rails; `prefix` carries the rails of
  // the enclosing levels.
  auto render = [&](auto&& self, size_t ni, const std::string& prefix,
                    bool last, bool root) -> void {
    const Node& node = nodes_[ni];
    const SpanRecord& rec = *node.rec;
    std::string line = prefix;
    if (!root) line += last ? "└─ " : "├─ ";
    line += rec.name;
    if (rec.category != "operator" && rec.category != "query") {
      line += " [" + rec.category + "]";
    }
    char timing[96];
    double self_pct =
        rec.duration_ns > 0
            ? 100.0 * static_cast<double>(node.self_ns) /
                  static_cast<double>(rec.duration_ns)
            : 0.0;
    std::snprintf(timing, sizeof(timing), "  %s  self=%s (%.1f%%)",
                  FormatMs(rec.duration_ns).c_str(),
                  FormatMs(node.self_ns).c_str(), self_pct);
    line += timing;
    for (const auto& [key, value] : rec.attrs) {
      line += "  ";
      line += key;
      line += "=";
      line += FormatAttr(value);
    }
    out += line;
    out += "\n";
    std::string child_prefix = prefix;
    if (!root) child_prefix += last ? "   " : "│  ";
    for (size_t i = 0; i < node.children.size(); ++i) {
      self(self, node.children[i], child_prefix,
           i + 1 == node.children.size(), false);
    }
  };
  for (size_t i = 0; i < roots_.size(); ++i) {
    render(render, roots_[i], "", i + 1 == roots_.size(), true);
  }
  return out;
}

std::string Profile::RenderChromeTrace() const {
  std::string out = "{\"traceEvents\": [";
  char buf[160];
  bool first = true;
  for (const auto& rec : spans_) {
    if (!first) out += ",";
    first = false;
    // One thread lane per origin: spans merged from multiple tracers
    // render as separate rows instead of one garbled flame.
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %llu, "
                  "\"args\": {",
                  JsonEscape(rec.name).c_str(),
                  JsonEscape(rec.category).c_str(),
                  static_cast<double>(rec.start_ns) / 1e3,
                  static_cast<double>(rec.duration_ns) / 1e3,
                  static_cast<unsigned long long>(rec.origin + 1));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"span\": %llu, \"parent\": %llu",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.parent));
    out += buf;
    for (const auto& [key, value] : rec.attrs) {
      std::snprintf(buf, sizeof(buf), ", \"%s\": %s", JsonEscape(key).c_str(),
                    FormatAttr(value).c_str());
      out += buf;
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Profile::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    return false;
  }
  std::string json = RenderChromeTrace();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace gdms::obs
