#include "obs/query_log.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace gdms::obs {

namespace {

void AppendKV(std::string* out, const char* key, uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, double v) {
  char buf[96];
  if (!std::isfinite(v)) v = 0;
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
  *out += buf;
}

/// Stage-span aggregates: task-weighted mean queue wait, the worst
/// partition time, and the worst max/median imbalance across stages.
struct StageAggregates {
  double queue_wait_mean_us = 0;
  double part_max_us = 0;
  double skew = 0;
};

StageAggregates AggregateStages(const Profile& profile) {
  StageAggregates agg;
  double wait_weighted = 0, tasks_total = 0;
  for (const SpanRecord& rec : profile.spans()) {
    if (rec.category != "stage") continue;
    double tasks = 0, wait = 0, max_us = 0, median_us = 0;
    for (const auto& [key, value] : rec.attrs) {
      if (key == "tasks") tasks = value;
      if (key == "queue_wait_mean_us") wait = value;
      if (key == "part_max_us") max_us = value;
      if (key == "part_median_us") median_us = value;
    }
    wait_weighted += wait * tasks;
    tasks_total += tasks;
    agg.part_max_us = std::max(agg.part_max_us, max_us);
    if (median_us > 0) agg.skew = std::max(agg.skew, max_us / median_us);
  }
  if (tasks_total > 0) agg.queue_wait_mean_us = wait_weighted / tasks_total;
  return agg;
}

}  // namespace

QueryLog::QueryLog(QueryLogOptions options) : options_(std::move(options)) {
  if (!options_.path.empty()) {
    out_ = std::make_unique<std::ofstream>(options_.path, std::ios::app);
    if (!out_->good()) {
      std::fprintf(stderr, "query log: cannot open %s\n",
                   options_.path.c_str());
      out_.reset();
    }
  }
}

std::string QueryLog::FormatEntry(const QueryLogEntry& entry,
                                  uint64_t seq) const {
  std::string query = entry.query;
  if (query.size() > options_.max_query_chars) {
    query.resize(options_.max_query_chars);
    query += "...";
  }
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  bool slow = entry.wall_ms >= options_.slow_ms;

  std::string out = "{";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"ts_ms\":%" PRId64 ",\"seq\":%" PRIu64,
                ts_ms, seq);
  out += buf;
  out += ",\"query\":\"" + JsonEscape(query) + "\"";
  out += entry.ok ? ",\"ok\":true" : ",\"ok\":false";
  if (!entry.ok) out += ",\"error\":\"" + JsonEscape(entry.error) + "\"";
  out += ",";
  AppendKV(&out, "wall_ms", entry.wall_ms);
  out += ",";
  AppendKV(&out, "operators", entry.operators);
  out += ",";
  AppendKV(&out, "cache_hits", entry.cache_hits);
  out += ",";
  AppendKV(&out, "intermediate_datasets", entry.intermediate_datasets);
  out += ",";
  AppendKV(&out, "fused_chains", entry.fused_chains);
  out += ",";
  AppendKV(&out, "tasks", entry.tasks);
  out += ",";
  AppendKV(&out, "partitions", entry.partitions);
  out += ",";
  AppendKV(&out, "shuffle_bytes", entry.shuffle_bytes);
  out += ",";
  AppendKV(&out, "stage_barriers", entry.stage_barriers);

  StageAggregates agg;
  if (entry.profile != nullptr) agg = AggregateStages(*entry.profile);
  out += ",";
  AppendKV(&out, "queue_wait_mean_us", agg.queue_wait_mean_us);
  out += ",";
  AppendKV(&out, "part_max_us", agg.part_max_us);
  out += ",";
  AppendKV(&out, "skew", agg.skew);

  out += ",\"fed\":{";
  AppendKV(&out, "requests", entry.fed_requests);
  out += ",";
  AppendKV(&out, "bytes_shipped", entry.fed_bytes_shipped);
  out += ",";
  AppendKV(&out, "bytes_received", entry.fed_bytes_received);
  out += "}";

  out += ",\"mem\":{";
  AppendKV(&out, "alloc_bytes", entry.alloc_bytes);
  out += ",";
  AppendKV(&out, "peak_bytes", entry.peak_bytes);
  out += "}";

  if (entry.serve) {
    out += ",\"serve\":{";
    AppendKV(&out, "session", entry.session_id);
    out += ",";
    AppendKV(&out, "queue_ms", entry.queue_ms);
    out += ",\"plan_cache\":\"" + JsonEscape(entry.plan_cache) + "\"";
    out += entry.result_cache_hit ? ",\"result_cache\":true"
                                  : ",\"result_cache\":false";
    out += "}";
  }

  if (!entry.trace_id.empty()) {
    out += ",\"trace_id\":\"" + JsonEscape(entry.trace_id) + "\"";
  }
  if (!entry.critical_path.empty()) {
    out += ",\"critical_path\":[";
    bool first = true;
    for (const PathSegment& seg : entry.critical_path) {
      if (!first) out += ",";
      first = false;
      out += "{\"segment\":\"" + JsonEscape(seg.label) + "\",";
      AppendKV(&out, "us", seg.us);
      out += "}";
    }
    out += "]";
  }

  // Per-operator self-times, profile tree order (parents before children).
  out += ",\"ops\":[";
  if (entry.profile != nullptr) {
    bool first = true;
    for (const Profile::Node& node : entry.profile->nodes()) {
      if (node.rec->category != "operator") continue;
      if (!first) out += ",";
      first = false;
      out += "{\"op\":\"" + JsonEscape(node.rec->name) + "\",";
      AppendKV(&out, "total_ms",
               static_cast<double>(node.rec->duration_ns) / 1e6);
      out += ",";
      AppendKV(&out, "self_ms", static_cast<double>(node.self_ns) / 1e6);
      out += "}";
    }
  }
  out += "]";

  out += slow ? ",\"slow\":true" : ",\"slow\":false";
  if (slow && entry.profile != nullptr) {
    out += ",\"explain\":\"" + JsonEscape(entry.profile->RenderTree()) + "\"";
  }
  out += "}";
  return out;
}

void QueryLog::Record(const QueryLogEntry& entry) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t seq = entries_ + 1;
  std::string line = FormatEntry(entry, seq);
  ++entries_;
  if (entry.wall_ms >= options_.slow_ms) ++slow_entries_;
  if (out_ == nullptr) return;
  *out_ << line << "\n";
  out_->flush();
}

}  // namespace gdms::obs
