#include "obs/timeseries.h"

namespace gdms::obs {

void TimeSeries::Push(int64_t t_ns, double value) {
  uint64_t h = head_.load();
  Slot& slot = slots_[h % capacity_];
  slot.seq.store(2 * h + 1);  // odd: in progress
  slot.t_ns.store(t_ns);
  slot.value.store(value);
  slot.seq.store(2 * (h + 1));  // even: stable, stamped with generation h
  head_.store(h + 1);
}

std::vector<TimeSeries::Point> TimeSeries::Snapshot() const {
  uint64_t h = head_.load();
  uint64_t n = h < capacity_ ? h : capacity_;
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = h - n; i < h; ++i) {
    const Slot& slot = slots_[i % capacity_];
    Point p;
    uint64_t before = slot.seq.load();
    p.t_ns = slot.t_ns.load();
    p.value = slot.value.load();
    uint64_t after = slot.seq.load();
    // Accept only if the slot was stable with write #i's stamp the whole
    // time; otherwise the writer lapped us and this (oldest) point is gone.
    if (before != after || before != 2 * (i + 1)) continue;
    out.push_back(p);
  }
  return out;
}

double TimeSeries::last() const {
  uint64_t h = head_.load();
  if (h == 0) return 0;
  const Slot& slot = slots_[(h - 1) % capacity_];
  return slot.value.load();
}

}  // namespace gdms::obs
