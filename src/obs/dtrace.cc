#include "obs/dtrace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace gdms::obs {

namespace {

/// Same mixer as repo::SplitMix64; duplicated because obs sits below repo
/// in the build graph.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void AppendHex64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

std::string FormatAttrValue(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Deterministic ordering for stitched span sets.
bool SpanBefore(const DistSpan& a, const DistSpan& b) {
  if (a.start_us != b.start_us) return a.start_us < b.start_us;
  if (a.origin != b.origin) return a.origin < b.origin;
  if (a.id != b.id) return a.id < b.id;
  return a.name < b.name;
}

}  // namespace

std::string TraceId::ToHex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(&out, hi);
  AppendHex64(&out, lo);
  return out;
}

TraceId TraceId::FromHex(std::string_view hex) {
  TraceId out;
  if (hex.size() != 32) return out;
  auto parse = [](std::string_view part, uint64_t* value) {
    *value = 0;
    for (char c : part) {
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      *value = (*value << 4) | digit;
    }
    return true;
  };
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!parse(hex.substr(0, 16), &hi) || !parse(hex.substr(16, 16), &lo)) {
    return TraceId{};
  }
  out.hi = hi;
  out.lo = lo;
  return out;
}

TraceId MintTraceId(uint64_t seed_a, uint64_t seed_b) {
  TraceId id;
  // Both seeds feed both halves, so ids minted from the same counter under
  // different namespaces (serve vs .fed) already differ in their prefix —
  // `.trace <prefix>` lookups stay unambiguous.
  id.hi = Mix64(seed_a ^ Mix64(seed_b ^ 0x6a09e667f3bcc908ull));
  id.lo = Mix64(seed_b + Mix64(seed_a + 0xbb67ae8584caa73bull));
  if (!id.valid()) id.lo = 1;  // all-zero mix would mean "untraced"
  return id;
}

std::string EncodeTraceContext(const TraceContext& ctx) {
  std::string out;
  AppendHex64(&out, ctx.id.hi);
  out += '-';
  AppendHex64(&out, ctx.id.lo);
  out += '-';
  AppendU64(&out, ctx.parent_span);
  out += '-';
  AppendU64(&out, ctx.arrival_us);
  return out;
}

bool DecodeTraceContext(std::string_view text, TraceContext* out) {
  // "<hex16>-<hex16>-<dec>-<dec>"
  if (text.size() < 16 + 1 + 16 + 1 + 1 + 1 + 1) return false;
  if (text[16] != '-' || text[33] != '-') return false;
  TraceId id = TraceId::FromHex(
      std::string(text.substr(0, 16)) + std::string(text.substr(17, 16)));
  if (!id.valid()) return false;
  std::string rest(text.substr(34));
  size_t dash = rest.find('-');
  if (dash == std::string::npos) return false;
  out->id = id;
  out->parent_span = std::strtoull(rest.substr(0, dash).c_str(), nullptr, 10);
  out->arrival_us = std::strtoull(rest.c_str() + dash + 1, nullptr, 10);
  return true;
}

const DistSpan* DistTrace::root() const {
  for (const DistSpan& s : spans) {
    if (s.parent == 0 && s.origin.empty()) return &s;
  }
  return nullptr;
}

uint64_t DistTrace::total_us() const {
  const DistSpan* r = root();
  return r == nullptr ? 0 : r->duration_us;
}

DistTrace StitchTrace(const TraceId& id, std::vector<DistSpan> spans) {
  // Per-origin counters collide by construction; identity is (origin, id).
  // First occurrence wins — a re-shipped remote buffer (retried FETCH)
  // carries the same spans again.
  std::set<std::pair<std::string, uint64_t>> seen;
  std::vector<DistSpan> unique;
  unique.reserve(spans.size());
  for (DistSpan& s : spans) {
    if (seen.emplace(s.origin, s.id).second) unique.push_back(std::move(s));
  }
  std::sort(unique.begin(), unique.end(), SpanBefore);
  DistTrace out;
  out.id = id;
  out.spans = std::move(unique);
  return out;
}

std::vector<PathSegment> CriticalPath(const DistTrace& trace) {
  std::vector<PathSegment> out;
  const DistSpan* root = trace.root();
  if (root == nullptr) return out;
  const uint64_t lo = root->start_us;
  const uint64_t hi = root->start_us + root->duration_us;

  std::vector<const DistSpan*> segs;
  for (const DistSpan& s : trace.spans) {
    // Wasted work (hedge losers, post-deadline deliveries) is retained as
    // detail but never attributed: the winner's span owns that interval.
    if (!s.segment.empty() && !s.wasted && &s != root) segs.push_back(&s);
  }
  std::sort(segs.begin(), segs.end(),
            [](const DistSpan* a, const DistSpan* b) {
              return SpanBefore(*a, *b);
            });

  // Greedy sweep over the root window: each segment-bearing span claims
  // the part of its interval not already covered by an earlier one, so
  // overlaps (hedge races) never double-count and the slices plus the
  // trailing "self" sum exactly to the root duration.
  std::map<std::string, uint64_t> totals;
  uint64_t cursor = lo;
  uint64_t covered = 0;
  for (const DistSpan* s : segs) {
    uint64_t begin = std::max(cursor, std::max(lo, s->start_us));
    uint64_t end = std::min(hi, s->start_us + s->duration_us);
    if (end <= begin) continue;
    totals[s->segment] += end - begin;
    covered += end - begin;
    cursor = end;
  }
  if (hi - lo > covered) totals["self"] += (hi - lo) - covered;

  for (auto& [label, us] : totals) out.push_back({label, us});
  std::sort(out.begin(), out.end(),
            [](const PathSegment& a, const PathSegment& b) {
              if (a.us != b.us) return a.us > b.us;
              return a.label < b.label;
            });
  return out;
}

void RecordCriticalPathMetrics(const std::vector<PathSegment>& path) {
  for (const PathSegment& seg : path) {
    std::string name = "gdms_trace_critical_";
    for (char c : seg.label) name += (c == '.') ? '_' : c;
    name += "_us";
    MetricsRegistry::Global().GetHistogram(name)->Record(seg.us);
  }
}

std::string EncodeDistSpans(const std::vector<DistSpan>& spans) {
  std::string out;
  for (const DistSpan& s : spans) {
    out += "S\t";
    out += s.origin;
    out += '\t';
    AppendU64(&out, s.id);
    out += '\t';
    out += s.parent_origin;
    out += '\t';
    AppendU64(&out, s.parent);
    out += '\t';
    AppendU64(&out, s.start_us);
    out += '\t';
    AppendU64(&out, s.duration_us);
    out += '\t';
    out += s.wasted ? '1' : '0';
    out += '\t';
    out += s.segment;
    out += '\t';
    out += s.name;
    for (const auto& [key, value] : s.attrs) {
      out += '\t';
      out += key;
      out += '=';
      out += FormatAttrValue(value);
    }
    out += '\n';
  }
  return out;
}

std::vector<DistSpan> DecodeDistSpans(std::string_view text) {
  std::vector<DistSpan> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
      size_t tab = line.find('\t', start);
      fields.emplace_back(line.substr(
          start, tab == std::string_view::npos ? std::string_view::npos
                                               : tab - start));
      if (tab == std::string_view::npos) break;
      start = tab + 1;
    }
    if (fields.size() < 9 || fields[0] != "S") continue;
    DistSpan s;
    s.origin = fields[1];
    s.id = std::strtoull(fields[2].c_str(), nullptr, 10);
    s.parent_origin = fields[3];
    s.parent = std::strtoull(fields[4].c_str(), nullptr, 10);
    s.start_us = std::strtoull(fields[5].c_str(), nullptr, 10);
    s.duration_us = std::strtoull(fields[6].c_str(), nullptr, 10);
    s.wasted = fields[7] == "1";
    s.segment = fields[8];
    s.name = fields.size() > 9 ? fields[9] : "";
    for (size_t i = 10; i < fields.size(); ++i) {
      size_t eq = fields[i].find('=');
      if (eq == std::string::npos) continue;
      s.attrs.emplace_back(fields[i].substr(0, eq),
                           std::strtod(fields[i].c_str() + eq + 1, nullptr));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string DistTrace::RenderJson() const {
  std::vector<PathSegment> path = CriticalPath(*this);
  std::string out = "{\"trace_id\": \"" + id.ToHex() + "\", \"total_us\": ";
  AppendU64(&out, total_us());
  if (!reason.empty()) {
    out += ", \"reason\": \"" + JsonEscape(reason) + "\"";
  }
  out += ", \"spans\": [";
  bool first = true;
  for (const DistSpan& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"origin\": \"" + JsonEscape(s.origin) + "\", \"id\": ";
    AppendU64(&out, s.id);
    out += ", \"parent_origin\": \"" + JsonEscape(s.parent_origin) +
           "\", \"parent\": ";
    AppendU64(&out, s.parent);
    out += ", \"name\": \"" + JsonEscape(s.name) + "\", \"segment\": \"" +
           JsonEscape(s.segment) + "\", \"start_us\": ";
    AppendU64(&out, s.start_us);
    out += ", \"duration_us\": ";
    AppendU64(&out, s.duration_us);
    out += ", \"wasted\": ";
    out += s.wasted ? "1" : "0";
    if (!s.attrs.empty()) {
      out += ", \"attrs\": {";
      bool afirst = true;
      for (const auto& [key, value] : s.attrs) {
        if (!afirst) out += ", ";
        afirst = false;
        out += "\"" + JsonEscape(key) + "\": " + FormatAttrValue(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"critical_path\": [";
  first = true;
  for (const PathSegment& seg : path) {
    if (!first) out += ", ";
    first = false;
    out += "{\"segment\": \"" + JsonEscape(seg.label) + "\", \"us\": ";
    AppendU64(&out, seg.us);
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string DistTrace::RenderTree() const {
  std::string out = "trace " + id.ToHex();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  total=%.3fms",
                static_cast<double>(total_us()) / 1e3);
  out += buf;
  if (!reason.empty()) out += "  kept=" + reason;
  out += "\n";

  // Children keyed by (origin, id) of the parent; roots = unresolved
  // parents (foreign or 0).
  std::map<std::pair<std::string, uint64_t>, std::vector<size_t>> children;
  std::map<std::pair<std::string, uint64_t>, size_t> index;
  for (size_t i = 0; i < spans.size(); ++i) {
    index[{spans[i].origin, spans[i].id}] = i;
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    auto pkey = std::make_pair(spans[i].parent_origin, spans[i].parent);
    if (spans[i].parent != 0 && index.count(pkey) > 0) {
      children[pkey].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto render = [&](auto&& self, size_t i, const std::string& prefix,
                    bool last, bool top) -> void {
    const DistSpan& s = spans[i];
    std::string line = prefix;
    if (!top) line += last ? "└─ " : "├─ ";
    if (!s.origin.empty()) line += "[" + s.origin + "] ";
    line += s.name;
    std::snprintf(buf, sizeof(buf), "  %.3fms @%.3fms",
                  static_cast<double>(s.duration_us) / 1e3,
                  static_cast<double>(s.start_us) / 1e3);
    line += buf;
    if (!s.segment.empty()) line += "  seg=" + s.segment;
    if (s.wasted) line += "  wasted=1";
    for (const auto& [key, value] : s.attrs) {
      line += "  " + key + "=" + FormatAttrValue(value);
    }
    out += line;
    out += "\n";
    std::string child_prefix = prefix;
    if (!top) child_prefix += last ? "   " : "│  ";
    auto it = children.find({s.origin, s.id});
    if (it == children.end()) return;
    for (size_t c = 0; c < it->second.size(); ++c) {
      self(self, it->second[c], child_prefix, c + 1 == it->second.size(),
           false);
    }
  };
  for (size_t i = 0; i < roots.size(); ++i) {
    render(render, roots[i], "", i + 1 == roots.size(), true);
  }
  std::vector<PathSegment> path = CriticalPath(*this);
  if (!path.empty()) {
    out += "critical path:";
    uint64_t total = std::max<uint64_t>(total_us(), 1);
    for (const PathSegment& seg : path) {
      std::snprintf(buf, sizeof(buf), "  %s=%.3fms(%.0f%%)",
                    seg.label.c_str(), static_cast<double>(seg.us) / 1e3,
                    100.0 * static_cast<double>(seg.us) /
                        static_cast<double>(total));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string DistTrace::RenderChromeTrace() const {
  // One process lane per origin: the coordinator is pid 1, each remote
  // site gets the next pid in first-appearance order, with process_name
  // metadata so the viewer labels the lanes.
  std::map<std::string, int> pids;
  auto pid_for = [&](const std::string& origin) {
    auto it = pids.find(origin);
    if (it != pids.end()) return it->second;
    int pid = static_cast<int>(pids.size()) + 1;
    pids.emplace(origin, pid);
    return pid;
  };
  pid_for("");  // the coordinator always renders first

  std::string out = "{\"traceEvents\": [";
  char buf[200];
  bool first = true;
  for (const DistSpan& s : spans) pid_for(s.origin);
  for (const auto& [origin, pid] : pids) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"tid\": 1, \"args\": {\"name\": \"%s\"}}",
                  pid,
                  origin.empty() ? "coordinator"
                                 : JsonEscape(origin).c_str());
    out += buf;
  }
  for (const DistSpan& s : spans) {
    out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                  ", \"pid\": %d, \"tid\": 1, \"args\": {",
                  JsonEscape(s.name).c_str(),
                  s.segment.empty() ? "detail" : JsonEscape(s.segment).c_str(),
                  s.start_us, s.duration_us, pid_for(s.origin));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"span\": %" PRIu64 ", \"parent\": %" PRIu64
                  ", \"wasted\": %d",
                  s.id, s.parent, s.wasted ? 1 : 0);
    out += buf;
    for (const auto& [key, value] : s.attrs) {
      out += ", \"" + JsonEscape(key) + "\": " + FormatAttrValue(value);
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

TraceExemplars& TraceExemplars::Global() {
  static TraceExemplars* instance = new TraceExemplars();
  return *instance;
}

void TraceExemplars::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, n);
  while (ring_.size() > capacity_) ring_.pop_back();
}

size_t TraceExemplars::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceExemplars::Keep(std::shared_ptr<const DistTrace> trace) {
  if (trace == nullptr) return;
  static Counter* kept = MetricsRegistry::Global().GetCounter(
      "gdms_trace_exemplars_kept_total");
  kept->Add();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_front(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_back();
}

std::vector<std::shared_ptr<const DistTrace>> TraceExemplars::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::shared_ptr<const DistTrace> TraceExemplars::Find(
    const std::string& id_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return nullptr;
  if (id_prefix.empty() || id_prefix == "last") return ring_.front();
  for (const auto& trace : ring_) {
    if (trace->id.ToHex().rfind(id_prefix, 0) == 0) return trace;
  }
  return nullptr;
}

std::string TraceExemplars::RenderList() const {
  auto traces = Snapshot();
  if (traces.empty()) {
    return "no retained traces (only slow/error/shed/partial queries are "
           "kept)\n";
  }
  std::string out;
  char buf[160];
  for (const auto& trace : traces) {
    std::vector<PathSegment> path = CriticalPath(*trace);
    std::snprintf(buf, sizeof(buf), "%s  %9.3fms  %-8s",
                  trace->id.ToHex().substr(0, 16).c_str(),
                  static_cast<double>(trace->total_us()) / 1e3,
                  trace->reason.empty() ? "-" : trace->reason.c_str());
    out += buf;
    size_t shown = 0;
    for (const PathSegment& seg : path) {
      if (seg.label == "self" || shown >= 2) continue;
      std::snprintf(buf, sizeof(buf), "  %s=%.3fms", seg.label.c_str(),
                    static_cast<double>(seg.us) / 1e3);
      out += buf;
      ++shown;
    }
    out += "\n";
  }
  return out;
}

std::string TraceExemplars::RenderExposition() const {
  auto traces = Snapshot();
  std::sort(traces.begin(), traces.end(),
            [](const std::shared_ptr<const DistTrace>& a,
               const std::shared_ptr<const DistTrace>& b) {
              return a->total_us() > b->total_us();
            });
  std::string out;
  if (traces.empty()) return out;
  out += "# TYPE gdms_trace_exemplar_us gauge\n";
  out += "# UNIT gdms_trace_exemplar_us us\n";
  char buf[64];
  size_t rank = 0;
  for (const auto& trace : traces) {
    if (++rank > 5) break;
    std::vector<PathSegment> path = CriticalPath(*trace);
    uint64_t total = std::max<uint64_t>(trace->total_us(), 1);
    std::string segs[2];
    size_t shown = 0;
    for (const PathSegment& seg : path) {
      if (seg.label == "self" || shown >= 2) continue;
      std::snprintf(buf, sizeof(buf), ":%.0f%%",
                    100.0 * static_cast<double>(seg.us) /
                        static_cast<double>(total));
      segs[shown] = seg.label + buf;
      ++shown;
    }
    out += "gdms_trace_exemplar_us{rank=\"" + std::to_string(rank) +
           "\",trace=\"" + trace->id.ToHex().substr(0, 16) + "\",reason=\"" +
           ExpositionLabelValue(trace->reason) + "\",seg1=\"" +
           ExpositionLabelValue(segs[0]) + "\",seg2=\"" +
           ExpositionLabelValue(segs[1]) + "\"} ";
    AppendU64(&out, trace->total_us());
    out += "\n";
  }
  return out;
}

void TraceExemplars::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace gdms::obs
