#ifndef GDMS_OBS_TIMESERIES_H_
#define GDMS_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gdms::obs {

/// \brief Fixed-capacity lock-free ring buffer of (timestamp, value) points.
///
/// Single writer (the sampler thread), any number of concurrent readers
/// (the exposition dumper, `gdms_top`'s render loop) — no locks on either
/// side. Each slot is a tiny seqlock: the writer marks the slot odd, stores
/// the point, then marks it even with the generation number, so a reader
/// that races a wrap-around detects the overwrite and drops that (oldest)
/// point instead of returning a torn pair. The writer path runs once per
/// sampler period per series, so sequentially-consistent atomics are used
/// throughout for simplicity — this is cold code made safe, not a hot path.
class TimeSeries {
 public:
  struct Point {
    int64_t t_ns = 0;  ///< sampler timestamp (tracer epoch)
    double value = 0;
  };

  explicit TimeSeries(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Appends a point, overwriting the oldest once full. Single writer.
  void Push(int64_t t_ns, double value);

  /// Copies the stored points oldest-to-newest. Points being overwritten
  /// concurrently are skipped (they are the oldest entries), so the result
  /// is always a consistent suffix of the series.
  std::vector<Point> Snapshot() const;

  /// Most recent value; 0 before any push.
  double last() const;

  /// Total points ever pushed (monotonic, exceeds capacity after wrap).
  uint64_t total_pushed() const { return head_.load(); }

  size_t capacity() const { return capacity_; }
  size_t size() const {
    uint64_t h = head_.load();
    return h < capacity_ ? static_cast<size_t>(h) : capacity_;
  }

  static constexpr size_t kDefaultCapacity = 512;

 private:
  struct Slot {
    /// 2*(generation+1) when slot holds the point of write #generation;
    /// odd while the writer is mid-store.
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> t_ns{0};
    std::atomic<double> value{0};
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  ///< next write index (== total pushed)
};

}  // namespace gdms::obs

#endif  // GDMS_OBS_TIMESERIES_H_
