#include "obs/sampler.h"

#include <chrono>

#include "obs/resource.h"
#include "obs/trace.h"

namespace gdms::obs {

Sampler::Sampler(MetricsRegistry* registry) : registry_(registry) {}

Sampler::~Sampler() { Stop(); }

void Sampler::Configure(SamplerOptions options) {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  if (running_) return;
  if (options.period_ms < 1) options.period_ms = 1;
  if (options.window < 1) options.window = 1;
  options_ = std::move(options);
}

void Sampler::Start(SamplerOptions options) {
  Configure(std::move(options));
  std::lock_guard<std::mutex> lk(ctl_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread(&Sampler::Loop, this);
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(ctl_mu_);
  running_ = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  return running_;
}

void Sampler::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lk(ctl_mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(options_.period_ms),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
    if (options_.on_tick) options_.on_tick(ticks());
  }
}

void Sampler::SampleOnce() { SampleOnceAt(Tracer::Global().NowNs()); }

TimeSeries* Sampler::Ensure(MetricState* state,
                            std::unique_ptr<TimeSeries>* slot,
                            const std::string& series_name) {
  (void)state;
  if (*slot == nullptr) {
    *slot = std::make_unique<TimeSeries>(options_.capacity);
    index_[series_name] = slot->get();
  }
  return slot->get();
}

void Sampler::SampleOnceAt(int64_t t_ns) {
  // Pull-refresh the resource gauges (RSS, page-fault deltas, per-dataset
  // residency, columnar-cache occupancy) so every snapshot carries current
  // byte figures without any push traffic from the data paths. Only done
  // for the global registry — unit tests sampling a private registry stay
  // deterministic.
  if (registry_ == &MetricsRegistry::Global()) {
    ResourceTracker::Global().UpdateGauges();
  }
  std::vector<MetricSnapshot> snap = registry_->Snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  for (const MetricSnapshot& m : snap) {
    MetricState& st = states_[m.name];
    st.kind = m.kind;
    double dt_s = st.has_prev && t_ns > st.prev_t_ns
                      ? static_cast<double>(t_ns - st.prev_t_ns) / 1e9
                      : 0.0;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter: {
        Ensure(&st, &st.value, m.name)
            ->Push(t_ns, static_cast<double>(m.counter_value));
        // A registry ResetAll() between samples makes the counter go
        // backwards; report a zero rate for that window instead of a
        // huge negative spike.
        double rate = dt_s > 0 && m.counter_value >= st.prev_counter
                          ? static_cast<double>(m.counter_value -
                                                st.prev_counter) /
                                dt_s
                          : 0.0;
        Ensure(&st, &st.rate, m.name + ":rate")->Push(t_ns, rate);
        st.prev_counter = m.counter_value;
        break;
      }
      case MetricSnapshot::Kind::kGauge: {
        Ensure(&st, &st.value, m.name)
            ->Push(t_ns, static_cast<double>(m.gauge_value));
        break;
      }
      case MetricSnapshot::Kind::kHistogram: {
        double rate = dt_s > 0 && m.hist_count >= st.prev_hist_count
                          ? static_cast<double>(m.hist_count -
                                                st.prev_hist_count) /
                                dt_s
                          : 0.0;
        Ensure(&st, &st.rate, m.name + ":rate")->Push(t_ns, rate);
        st.prev_hist_count = m.hist_count;
        st.bucket_history.push_back(m.hist_buckets);
        while (st.bucket_history.size() > options_.window + 1) {
          st.bucket_history.pop_front();
        }
        // Windowed distribution: the samples recorded between the oldest
        // retained snapshot and now.
        std::array<uint64_t, Histogram::kBuckets> delta = m.hist_buckets;
        const auto& oldest = st.bucket_history.front();
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          delta[b] = delta[b] >= oldest[b] ? delta[b] - oldest[b] : 0;
        }
        Ensure(&st, &st.p50, m.name + ":p50")
            ->Push(t_ns, Histogram::QuantileFromBuckets(delta, 0.5));
        Ensure(&st, &st.p95, m.name + ":p95")
            ->Push(t_ns, Histogram::QuantileFromBuckets(delta, 0.95));
        Ensure(&st, &st.p99, m.name + ":p99")
            ->Push(t_ns, Histogram::QuantileFromBuckets(delta, 0.99));
        break;
      }
    }
    st.prev_t_ns = t_ns;
    st.has_prev = true;
  }
  ticks_.fetch_add(1);
}

const TimeSeries* Sampler::Find(const std::string& series) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(series);
  return it == index_.end() ? nullptr : it->second;
}

std::vector<std::string> Sampler::SeriesNames() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [name, series] : index_) out.push_back(name);
  return out;
}

}  // namespace gdms::obs
