#ifndef GDMS_OBS_RESOURCE_H_
#define GDMS_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gdms::obs {

/// \brief Memory & resource accounting (the byte-side companion of the
/// time-side telemetry in metrics/trace).
///
/// Three cooperating pieces:
///
///   - QueryAccounting: one scoped account per running query. The runner
///     names the operator currently executing; every byte charge lands on
///     that operator, so `peak_bytes`/`alloc_bytes` decompose into a
///     query -> operator -> bytes tree (RunStats, EXPLAIN ANALYZE attrs,
///     the query log's "mem" block, the shell's `.mem` command).
///   - ResourceTracker: the process-wide registry of storage residency.
///     Layers register labeled usage providers (datasets, .gdmz mappings);
///     the Sampler asks the tracker to refresh the canonical `gdms_mem_*` /
///     `gdms_storage_*` gauges every tick, and process figures (RSS, page
///     faults) ride along from /proc + getrusage.
///   - The shedder: a watermark loop over the same registrations. Under a
///     configured budget the tracker asks registered shed callbacks to
///     evict reclaimable bytes (lazily built columnar caches, cold .gdmz
///     page ranges) in LRU order until usage is back under the low
///     watermark. Eviction only drops caches that rebuild on demand, so
///     query results are bit-identical with or without shedding.

/// Per-operator slice of one query's byte accounting.
struct OpByteStat {
  std::string op;            ///< operator span name ("MAP", "MAP+SELECT", ...)
  uint64_t alloc_bytes = 0;  ///< cumulative bytes charged to the operator
  uint64_t peak_bytes = 0;   ///< high-water of the operator's live bytes
  uint64_t charges = 0;      ///< individual charge events
};

/// \brief Scoped byte account of one query.
///
/// Thread-safe: the runner charges operator outputs from its own thread
/// while engine workers charge shuffle/scratch buffers concurrently; every
/// mutation takes the account's mutex (charges are per-buffer, not
/// per-region, so the lock is far off any hot loop).
class QueryAccounting {
 public:
  QueryAccounting() = default;
  QueryAccounting(const QueryAccounting&) = delete;
  QueryAccounting& operator=(const QueryAccounting&) = delete;

  /// Names the operator subsequent charges attribute to. The runner sets
  /// this around each Execute; "query" before the first operator.
  void SetCurrentOp(const std::string& op);

  /// Charges `bytes` to the current operator. The bytes stay live (counted
  /// in current/peak) until Release or Drain.
  void Charge(uint64_t bytes);

  /// Charges `bytes` to an explicit operator (scoped charges captured on
  /// one thread and released on another keep their attribution).
  void ChargeTo(const std::string& op, uint64_t bytes);

  /// Returns `bytes` of operator `op` to the pool (live-byte bookkeeping;
  /// alloc figures are cumulative and never decrease).
  void ReleaseFrom(const std::string& op, uint64_t bytes);

  /// Drops all remaining live bytes (query finished; its intermediates are
  /// about to be destroyed with the memo table).
  void Drain();

  uint64_t alloc_bytes() const;    ///< cumulative bytes charged
  uint64_t peak_bytes() const;     ///< high-water of live bytes
  uint64_t current_bytes() const;  ///< live bytes right now
  std::string current_op() const;

  /// Per-operator breakdown, largest alloc first.
  std::vector<OpByteStat> OperatorStats() const;

  /// Human-readable query -> operator -> bytes tree (the `.mem` command).
  std::string RenderTree(const std::string& query_label) const;

 private:
  mutable std::mutex mu_;
  std::string current_op_ = "query";
  std::map<std::string, OpByteStat> ops_;
  std::map<std::string, uint64_t> op_live_;
  uint64_t alloc_ = 0;
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

/// RAII transient charge against the process's active query account: bytes
/// a stage allocates and frees within one operator (shuffle buffers). The
/// operator attribution is captured at construction so destruction may run
/// after the runner moved on. No-op when no query account is active.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(uint64_t bytes);
  ~ScopedCharge() { Release(); }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ScopedCharge(ScopedCharge&& other) noexcept { *this = std::move(other); }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept;

  /// Releases early (idempotent).
  void Release();

 private:
  std::shared_ptr<QueryAccounting> account_;
  std::string op_;
  uint64_t bytes_ = 0;
};

/// Storage residency figures one registration reports. Rows are the
/// irreducible resident form; columnar and mapped-resident bytes are the
/// reclaimable overlay the shedder may drop.
struct StorageUsage {
  uint64_t rows_bytes = 0;             ///< row structs + metadata (resident)
  uint64_t columnar_bytes = 0;         ///< lazily built columnar caches
  uint64_t mapped_bytes = 0;           ///< mmap'd file length
  uint64_t mapped_resident_bytes = 0;  ///< resident pages (pagemap-sampled)
};

/// Process-level memory figures (zeros on non-Linux platforms).
struct ProcessMemory {
  uint64_t rss_bytes = 0;
  uint64_t vm_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

/// Reads /proc/self/statm and getrusage(RUSAGE_SELF).
ProcessMemory ReadProcessMemory();

/// \brief Process-wide resource accounting registry; one per process via
/// Global().
class ResourceTracker {
 public:
  /// Reports current usage; called from the sampler thread and the shedder,
  /// concurrently with queries, so providers must only read atomically
  /// published state (cache pointers, sizes).
  using UsageFn = std::function<StorageUsage()>;
  /// Evicts up to `want_bytes` of reclaimable bytes, returns bytes freed.
  using ShedFn = std::function<uint64_t(uint64_t want_bytes)>;

  ResourceTracker() = default;
  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  static ResourceTracker& Global();

  // ---- scoped query accounting ----

  /// Publishes `account` as the process's active query account (nullptr
  /// clears). The runner brackets each query with this; charge helpers and
  /// ScopedCharge route through it. The slot holds a shared_ptr so a charge
  /// captured by a concurrent runner can never dangle: attribution is
  /// per-process (concurrent runners may cross-attribute engine scratch
  /// charges, like the federation counters), but lifetime is safe.
  void SetActiveQuery(std::shared_ptr<QueryAccounting> account) {
    std::atomic_store_explicit(&active_, std::move(account),
                               std::memory_order_release);
  }
  /// Clears the slot only when `account` is still the published one, so a
  /// finishing query cannot clobber a sibling's registration.
  void ClearActiveQuery(std::shared_ptr<QueryAccounting> account) {
    std::atomic_compare_exchange_strong_explicit(
        &active_, &account, std::shared_ptr<QueryAccounting>(),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }
  std::shared_ptr<QueryAccounting> active_query() const {
    return std::atomic_load_explicit(&active_, std::memory_order_acquire);
  }

  /// Runtime kill switch for byte accounting (the A3 accounting gate
  /// A/Bs against this). Enabled by default; when off, the runner skips
  /// per-operator charges and estimates entirely.
  void set_accounting_enabled(bool on) {
    accounting_enabled_.store(on, std::memory_order_relaxed);
  }
  bool accounting_enabled() const {
    return accounting_enabled_.load(std::memory_order_relaxed);
  }

  // ---- storage residency registrations ----

  /// Registers a labeled usage provider (and optional shed callback);
  /// returns a token for Touch/Unregister. Labels feed the per-dataset
  /// gauges: gdms_storage_dataset_*_bytes{dataset="<label>"}.
  uint64_t RegisterStorage(const std::string& label, UsageFn usage,
                           ShedFn shed = nullptr);

  /// Drops the registration and zeroes its gauges.
  void UnregisterStorage(uint64_t token);

  /// LRU bump: the registration's storage was just used by a query.
  void Touch(uint64_t token);

  // ---- budget & shedding ----

  /// Memory budget over reclaimable bytes (columnar caches + mapped
  /// resident pages); 0 disables shedding.
  void set_budget_bytes(uint64_t bytes);
  uint64_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// One watermark pass: when reclaimable usage exceeds the budget, asks
  /// shed callbacks, least-recently-touched registration first, to evict
  /// down to the low watermark (90% of budget). Returns bytes freed.
  /// Callers run this between queries — eviction invalidates caches other
  /// threads must not be holding references into.
  uint64_t MaybeShed();

  /// Reclaimable bytes (columnar + mapped resident) right now.
  uint64_t ReclaimableBytes() const;

  /// Refreshes every gdms_mem_* / gdms_storage_* gauge from the providers
  /// and /proc; the Sampler calls this before each snapshot so the series
  /// and exposition stay current without any push traffic from data paths.
  void UpdateGauges();

  /// Storage residency summary, one line per registration (the `.mem`
  /// command's lower half).
  std::string RenderStorageSummary() const;

  // Shedding counters (tests read these; the exposition carries the
  // matching gdms_mem_* metrics).
  uint64_t evictions() const;
  uint64_t evicted_bytes() const;

  /// Records one finished query's peak bytes into the
  /// gdms_mem_query_peak_bytes histogram.
  void NoteQueryPeak(uint64_t peak_bytes);

 private:
  struct Registration {
    std::string label;
    UsageFn usage;
    ShedFn shed;
    uint64_t last_touch = 0;
  };

  /// Accessed only through the std::atomic_* shared_ptr free functions.
  std::shared_ptr<QueryAccounting> active_;
  std::atomic<bool> accounting_enabled_{true};
  std::atomic<uint64_t> budget_{0};
  std::atomic<uint64_t> touch_clock_{0};

  mutable std::mutex mu_;  ///< guards registrations_ structure
  std::map<uint64_t, Registration> registrations_;
  uint64_t next_token_ = 1;

  // Previous fault readings, for counter deltas.
  std::mutex fault_mu_;
  uint64_t prev_minor_faults_ = 0;
  uint64_t prev_major_faults_ = 0;
  bool have_prev_faults_ = false;
};

/// Charges `bytes` to the active query account's current operator (no-op
/// without an active account). For callers that allocate on behalf of the
/// operator the runner is currently executing.
void ChargeActiveQuery(uint64_t bytes);

}  // namespace gdms::obs

#endif  // GDMS_OBS_RESOURCE_H_
