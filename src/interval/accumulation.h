#ifndef GDMS_INTERVAL_ACCUMULATION_H_
#define GDMS_INTERVAL_ACCUMULATION_H_

#include <cstdint>
#include <vector>

#include "gdm/region.h"

namespace gdms::interval {

/// One maximal genomic segment with constant accumulation (overlap count).
struct AccSegment {
  int32_t chrom;
  int64_t left;
  int64_t right;
  int64_t count;  // number of input regions covering every base of the segment
};

/// \brief Computes the accumulation profile of a region multiset.
///
/// The profile is the sequence of maximal constant-count segments with
/// count > 0, in coordinate order — the primitive beneath GMQL's COVER
/// family (COVER / FLAT / SUMMIT / HISTOGRAM). Input must be sorted.
std::vector<AccSegment> AccumulationProfile(
    const std::vector<gdm::GenomicRegion>& regions);

/// Bounds for COVER: minimum and maximum accepted accumulation.
/// `max_acc` of kAny means "no upper bound" (the GMQL ANY keyword);
/// `min_acc` of kAll means "the maximum accumulation observed" (ALL).
struct CoverBounds {
  static constexpr int64_t kAny = -1;
  static constexpr int64_t kAll = -2;
  int64_t min_acc = 1;
  int64_t max_acc = kAny;
};

/// COVER: merges consecutive profile segments whose count lies within
/// bounds into maximal result regions.
std::vector<gdm::GenomicRegion> Cover(const std::vector<AccSegment>& profile,
                                      CoverBounds bounds);

/// HISTOGRAM: one region per profile segment within bounds; the segment
/// count is exposed by the caller (returned parallel vector).
std::vector<gdm::GenomicRegion> Histogram(
    const std::vector<AccSegment>& profile, CoverBounds bounds,
    std::vector<int64_t>* counts);

/// SUMMIT: regions of local accumulation maxima within bounds (count
/// strictly greater than both neighbouring in-cover segments).
std::vector<gdm::GenomicRegion> Summit(const std::vector<AccSegment>& profile,
                                       CoverBounds bounds,
                                       std::vector<int64_t>* counts);

/// FLAT: for each COVER region, extends to the union span of every input
/// region that intersects it. Inputs must be sorted.
std::vector<gdm::GenomicRegion> Flat(
    const std::vector<AccSegment>& profile, CoverBounds bounds,
    const std::vector<gdm::GenomicRegion>& inputs);

/// Maximum accumulation in a profile (0 if empty).
int64_t MaxAccumulation(const std::vector<AccSegment>& profile);

/// Resolves ANY/ALL placeholders against a profile's max accumulation.
CoverBounds ResolveBounds(CoverBounds bounds,
                          const std::vector<AccSegment>& profile);

}  // namespace gdms::interval

#endif  // GDMS_INTERVAL_ACCUMULATION_H_
