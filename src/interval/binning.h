#ifndef GDMS_INTERVAL_BINNING_H_
#define GDMS_INTERVAL_BINNING_H_

#include <cstdint>
#include <utility>

#include "common/hash.h"
#include "gdm/region.h"

namespace gdms::interval {

/// \brief Fixed-width genomic binning.
///
/// The parallel executors partition work by (chromosome, bin); a region is
/// assigned to every bin it overlaps, and binary operations claim a pair in
/// the bin containing max(left_a, left_b) so each pair is produced exactly
/// once across partitions (the standard replica-elimination rule of binned
/// genomic joins).
class Binning {
 public:
  explicit Binning(int64_t bin_size) : bin_size_(bin_size) {}

  int64_t bin_size() const { return bin_size_; }

  /// Bin holding position `pos`.
  int64_t BinOf(int64_t pos) const { return pos / bin_size_; }

  /// [first, last] bins a region spans; `slack` widens the span (used for
  /// distance joins where matches may sit `slack` bases away).
  std::pair<int64_t, int64_t> BinSpan(const gdm::GenomicRegion& r,
                                      int64_t slack = 0) const {
    int64_t first = BinOf(r.left - slack < 0 ? 0 : r.left - slack);
    int64_t right = r.right + slack;
    // right is exclusive; a region ending exactly on a boundary does not
    // enter the next bin.
    int64_t last = BinOf(right > 0 ? right - 1 : 0);
    return {first, last};
  }

  /// True if bin `bin` owns the pair (a, b): the pair is claimed by the bin
  /// containing max(a.left, b.left).
  bool OwnsPair(int64_t bin, const gdm::GenomicRegion& a,
                const gdm::GenomicRegion& b) const {
    int64_t anchor = a.left > b.left ? a.left : b.left;
    return BinOf(anchor) == bin;
  }

  /// Stable partition id for (chrom, bin) across `num_partitions` workers.
  static size_t PartitionOf(int32_t chrom, int64_t bin,
                            size_t num_partitions) {
    uint64_t h = HashCombine(Mix64(static_cast<uint64_t>(chrom)),
                             Mix64(static_cast<uint64_t>(bin)));
    return static_cast<size_t>(h % num_partitions);
  }

 private:
  int64_t bin_size_;
};

}  // namespace gdms::interval

#endif  // GDMS_INTERVAL_BINNING_H_
