#ifndef GDMS_INTERVAL_SWEEP_H_
#define GDMS_INTERVAL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "gdm/region.h"

namespace gdms::interval {

/// Callback receiving (ref_index, exp_index) for each matched pair.
using PairSink = std::function<void(size_t, size_t)>;

/// \brief Reports every overlapping (ref, exp) pair between two
/// coordinate-sorted region lists.
///
/// Linear-ish sweep with an active list; both inputs MUST be sorted by
/// (chrom, left, right) — the canonical sample order. Complexity is
/// O(n + m + pairs) for bounded-length regions.
void OverlapJoin(const std::vector<gdm::GenomicRegion>& refs,
                 const std::vector<gdm::GenomicRegion>& exps,
                 const PairSink& sink);

/// \brief Reports (ref, exp) pairs whose genometric distance lies in
/// [min_dist, max_dist] (see GenomicRegion::DistanceTo; overlaps have
/// negative distance).
///
/// `max_dist` must be >= 0 for non-overlapping matches to be found; the
/// sweep window is sized by max_dist. Both inputs must be sorted.
void DistanceJoin(const std::vector<gdm::GenomicRegion>& refs,
                  const std::vector<gdm::GenomicRegion>& exps,
                  int64_t min_dist, int64_t max_dist, const PairSink& sink);

/// \brief For each ref region, reports its k nearest exp regions by
/// genometric distance (ties broken by coordinate order). Regions on other
/// chromosomes are never matched.
///
/// Both inputs must be sorted.
void NearestK(const std::vector<gdm::GenomicRegion>& refs,
              const std::vector<gdm::GenomicRegion>& exps, size_t k,
              const PairSink& sink);

/// \brief Marks refs that overlap at least one exp region.
///
/// Returns a vector of flags parallel to `refs`. Used by DIFFERENCE (drop
/// flagged) and by SELECT-with-region-intersection style filters.
std::vector<char> ExistsOverlap(const std::vector<gdm::GenomicRegion>& refs,
                                const std::vector<gdm::GenomicRegion>& exps);

/// \brief Merges overlapping or touching regions of a sorted list into
/// maximal disjoint regions (strand-insensitive). Values are dropped.
std::vector<gdm::GenomicRegion> MergeTouching(
    const std::vector<gdm::GenomicRegion>& regions);

/// \brief Intersects each overlapping pair and returns the intersection
/// coordinates, i.e. the INT output option of a genometric join.
gdm::GenomicRegion IntersectCoords(const gdm::GenomicRegion& a,
                                   const gdm::GenomicRegion& b);

/// \brief Smallest region spanning both a and b (the CAT / contig output
/// option of a genometric join); requires same chromosome.
gdm::GenomicRegion SpanCoords(const gdm::GenomicRegion& a,
                              const gdm::GenomicRegion& b);

}  // namespace gdms::interval

#endif  // GDMS_INTERVAL_SWEEP_H_
