#include "interval/interval_tree.h"

#include <algorithm>

namespace gdms::interval {

IntervalIndex::IntervalIndex(const std::vector<gdm::GenomicRegion>& regions) {
  entries_.reserve(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    entries_.push_back(
        {regions[i].left, regions[i].right, regions[i].right, i});
  }
  // Sort by (chrom, left): chrom comes from the original regions, so sort an
  // index permutation keyed by it.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto& ra = regions[a];
    const auto& rb = regions[b];
    if (ra.chrom != rb.chrom) return ra.chrom < rb.chrom;
    if (ra.left != rb.left) return ra.left < rb.left;
    return ra.right < rb.right;
  });
  std::vector<Entry> sorted;
  sorted.reserve(entries_.size());
  for (size_t idx : order) {
    sorted.push_back({regions[idx].left, regions[idx].right, regions[idx].right,
                      idx});
  }
  entries_ = std::move(sorted);
  // Chromosome segments + per-segment augmentation.
  size_t i = 0;
  while (i < order.size()) {
    int32_t chrom = regions[order[i]].chrom;
    size_t j = i;
    while (j < order.size() && regions[order[j]].chrom == chrom) ++j;
    ChromRange cr{i, j, 0};
    cr.levels = BuildAugmentation(&entries_, i, j);
    chroms_.emplace(chrom, cr);
    i = j;
  }
}

int IntervalIndex::BuildAugmentation(std::vector<Entry>* entries, size_t begin,
                                     size_t end) {
  // cgranges-style implicit augmented tree (Li, "cgranges"): entries sorted
  // by left; max_right of each implicit internal node covers its subtree.
  int64_t n = static_cast<int64_t>(end - begin);
  if (n == 0) return 0;
  Entry* a = entries->data() + begin;
  int64_t last_i = 0;
  int64_t last = 0;
  for (int64_t i = 0; i < n; i += 2) {
    last_i = i;
    a[i].max_right = a[i].right;
    last = a[i].max_right;
  }
  int k = 1;
  for (; (1LL << k) <= n; ++k) {
    int64_t x = 1LL << (k - 1);
    int64_t i0 = (x << 1) - 1;
    int64_t step = x << 2;
    for (int64_t i = i0; i < n; i += step) {
      int64_t el = a[i - x].max_right;
      int64_t er = (i + x < n) ? a[i + x].max_right : last;
      int64_t e = a[i].right;
      if (el > e) e = el;
      if (er > e) e = er;
      a[i].max_right = e;
    }
    last_i = ((last_i >> k) & 1) ? last_i - x : last_i + x;
    if (last_i < n && a[last_i].max_right > last) last = a[last_i].max_right;
  }
  return k - 1;
}

void IntervalIndex::QueryRange(const ChromRange& cr, int64_t left,
                               int64_t right,
                               const std::function<void(size_t)>& sink) const {
  int64_t n = static_cast<int64_t>(cr.end - cr.begin);
  if (n == 0 || right <= left) return;
  const Entry* a = entries_.data() + cr.begin;
  struct Frame {
    int64_t x;
    int k;
    int w;
  };
  Frame stack[64];
  int t = 0;
  stack[t++] = {(1LL << cr.levels) - 1, cr.levels, 0};
  while (t > 0) {
    Frame z = stack[--t];
    if (z.k <= 3) {
      int64_t i0 = (z.x >> z.k) << z.k;
      int64_t i1 = i0 + (1LL << (z.k + 1)) - 1;
      if (i1 >= n) i1 = n;
      for (int64_t i = i0; i < i1 && a[i].left < right; ++i) {
        if (left < a[i].right) sink(a[i].original_index);
      }
    } else if (z.w == 0) {
      int64_t y = z.x - (1LL << (z.k - 1));
      stack[t++] = {z.x, z.k, 1};
      if (y >= n || a[y].max_right > left) stack[t++] = {y, z.k - 1, 0};
    } else if (z.x < n && a[z.x].left < right) {
      if (left < a[z.x].right) sink(a[z.x].original_index);
      stack[t++] = {z.x + (1LL << (z.k - 1)), z.k - 1, 0};
    }
  }
}

void IntervalIndex::Query(int32_t chrom, int64_t left, int64_t right,
                          const std::function<void(size_t)>& sink) const {
  auto it = chroms_.find(chrom);
  if (it == chroms_.end()) return;
  QueryRange(it->second, left, right, sink);
}

size_t IntervalIndex::CountOverlaps(int32_t chrom, int64_t left,
                                    int64_t right) const {
  size_t count = 0;
  Query(chrom, left, right, [&](size_t) { ++count; });
  return count;
}

bool IntervalIndex::AnyOverlap(int32_t chrom, int64_t left,
                               int64_t right) const {
  // No early-exit plumbing in Query; counting is fine at our scales.
  return CountOverlaps(chrom, left, right) > 0;
}

}  // namespace gdms::interval
