#include "interval/accumulation.h"

#include <algorithm>

#include "interval/sweep.h"

namespace gdms::interval {

namespace {

using gdm::GenomicRegion;

bool InBounds(int64_t count, const CoverBounds& b) {
  if (count < b.min_acc) return false;
  if (b.max_acc >= 0 && count > b.max_acc) return false;
  return true;
}

}  // namespace

std::vector<AccSegment> AccumulationProfile(
    const std::vector<GenomicRegion>& regions) {
  // Event sweep per chromosome: +1 at left ends, -1 at right ends.
  std::vector<AccSegment> out;
  size_t i = 0;
  while (i < regions.size()) {
    int32_t chrom = regions[i].chrom;
    size_t j = i;
    while (j < regions.size() && regions[j].chrom == chrom) ++j;
    std::vector<std::pair<int64_t, int32_t>> events;  // (pos, +-1)
    events.reserve(2 * (j - i));
    for (size_t k = i; k < j; ++k) {
      if (regions[k].left == regions[k].right) continue;  // zero-length
      events.push_back({regions[k].left, +1});
      events.push_back({regions[k].right, -1});
    }
    std::sort(events.begin(), events.end());
    int64_t acc = 0;
    size_t e = 0;
    while (e < events.size()) {
      int64_t pos = events[e].first;
      while (e < events.size() && events[e].first == pos) {
        acc += events[e].second;
        ++e;
      }
      if (e >= events.size()) break;
      int64_t next = events[e].first;
      if (acc > 0 && next > pos) {
        out.push_back({chrom, pos, next, acc});
      }
    }
    i = j;
  }
  return out;
}

int64_t MaxAccumulation(const std::vector<AccSegment>& profile) {
  int64_t mx = 0;
  for (const auto& s : profile) mx = std::max(mx, s.count);
  return mx;
}

CoverBounds ResolveBounds(CoverBounds bounds,
                          const std::vector<AccSegment>& profile) {
  int64_t mx = MaxAccumulation(profile);
  if (bounds.min_acc == CoverBounds::kAll) bounds.min_acc = mx;
  if (bounds.max_acc == CoverBounds::kAll) bounds.max_acc = mx;
  // kAny for max stays negative (no bound); kAny for min means 1.
  if (bounds.min_acc == CoverBounds::kAny) bounds.min_acc = 1;
  return bounds;
}

std::vector<GenomicRegion> Cover(const std::vector<AccSegment>& profile,
                                 CoverBounds bounds) {
  bounds = ResolveBounds(bounds, profile);
  std::vector<GenomicRegion> out;
  for (const auto& s : profile) {
    if (!InBounds(s.count, bounds)) continue;
    if (!out.empty() && out.back().chrom == s.chrom &&
        out.back().right == s.left) {
      out.back().right = s.right;  // contiguous in-bounds segments merge
    } else {
      out.emplace_back(s.chrom, s.left, s.right, gdm::Strand::kNone);
    }
  }
  return out;
}

std::vector<GenomicRegion> Histogram(const std::vector<AccSegment>& profile,
                                     CoverBounds bounds,
                                     std::vector<int64_t>* counts) {
  bounds = ResolveBounds(bounds, profile);
  std::vector<GenomicRegion> out;
  if (counts != nullptr) counts->clear();
  for (const auto& s : profile) {
    if (!InBounds(s.count, bounds)) continue;
    out.emplace_back(s.chrom, s.left, s.right, gdm::Strand::kNone);
    if (counts != nullptr) counts->push_back(s.count);
  }
  return out;
}

std::vector<GenomicRegion> Summit(const std::vector<AccSegment>& profile,
                                  CoverBounds bounds,
                                  std::vector<int64_t>* counts) {
  bounds = ResolveBounds(bounds, profile);
  std::vector<GenomicRegion> out;
  if (counts != nullptr) counts->clear();
  for (size_t i = 0; i < profile.size(); ++i) {
    const auto& s = profile[i];
    if (!InBounds(s.count, bounds)) continue;
    // A summit is a segment whose count is >= its adjacent segments (and
    // strictly greater than at least one side unless it is a plateau edge).
    int64_t prev = 0;
    int64_t next = 0;
    if (i > 0 && profile[i - 1].chrom == s.chrom &&
        profile[i - 1].right == s.left) {
      prev = profile[i - 1].count;
    }
    if (i + 1 < profile.size() && profile[i + 1].chrom == s.chrom &&
        profile[i + 1].left == s.right) {
      next = profile[i + 1].count;
    }
    if (s.count >= prev && s.count >= next &&
        (s.count > prev || s.count > next || (prev == 0 && next == 0))) {
      out.emplace_back(s.chrom, s.left, s.right, gdm::Strand::kNone);
      if (counts != nullptr) counts->push_back(s.count);
    }
  }
  return out;
}

std::vector<GenomicRegion> Flat(const std::vector<AccSegment>& profile,
                                CoverBounds bounds,
                                const std::vector<GenomicRegion>& inputs) {
  std::vector<GenomicRegion> covers = Cover(profile, bounds);
  if (covers.empty()) return covers;
  std::vector<GenomicRegion> out = covers;
  OverlapJoin(covers, inputs, [&](size_t ci, size_t ii) {
    out[ci].left = std::min(out[ci].left, inputs[ii].left);
    out[ci].right = std::max(out[ci].right, inputs[ii].right);
  });
  // Extension can make neighbours overlap; merge them.
  return MergeTouching(out);
}

}  // namespace gdms::interval
