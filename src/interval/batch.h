#ifndef GDMS_INTERVAL_BATCH_H_
#define GDMS_INTERVAL_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "gdm/region_columns.h"
#include "interval/accumulation.h"

namespace gdms::interval {

/// \brief A borrowed view over one chromosome's sorted coordinate columns.
///
/// The batch kernels sweep these dense arrays instead of row-structured
/// GenomicRegion vectors: no Value payloads in the cache lines, 4-byte
/// elements in the common (narrow) case. Exactly one of the 32/64-bit
/// pointer pairs is set; left(i)/right(i) widen on access.
struct CoordView {
  const int32_t* l32 = nullptr;
  const int32_t* r32 = nullptr;
  const int64_t* l64 = nullptr;
  const int64_t* r64 = nullptr;
  size_t size = 0;

  bool narrow() const { return l32 != nullptr; }
  int64_t left(size_t i) const { return narrow() ? l32[i] : l64[i]; }
  int64_t right(size_t i) const { return narrow() ? r32[i] : r64[i]; }

  /// View over rows [begin, end) of `cols` — typically one ColumnChunk's
  /// range, since a view carries no chromosome ids of its own.
  static CoordView Of(const gdm::RegionColumns& cols, size_t begin,
                      size_t end);
};

/// One overlap match between a ref row and an exp row, as indices local to
/// the two views (add the chunk offsets back to address the full columns).
struct MatchPair {
  uint32_t ref = 0;
  uint32_t exp = 0;
};

/// \brief Batch overlap sweep: appends every overlapping (ref, exp) pair to
/// `out` in the same order the row-based OverlapJoin reports them (refs
/// ascending, active exps ascending per ref) so downstream accumulation is
/// bit-identical to the row path.
///
/// Both views must cover a single chromosome and be sorted by (left, right).
void CollectOverlaps(const CoordView& refs, const CoordView& exps,
                     std::vector<MatchPair>* out);

/// \brief Batch exists-overlap: sets flags[flag_offset + i] for each ref row
/// i of the view that overlaps at least one exp row. Flags are never
/// cleared, so one flag vector can accumulate across chromosome chunks.
void ExistsOverlapInto(const CoordView& refs, const CoordView& exps,
                       size_t flag_offset, std::vector<char>* flags);

/// \brief Accumulation profile from sorted coordinate pairs of a single
/// chromosome, appended to `out`. Identical output to AccumulationProfile
/// over the equivalent rows (zero-length regions are skipped).
void ProfileFromCoords(int32_t chrom, const int64_t* lefts,
                       const int64_t* rights, size_t n,
                       std::vector<AccSegment>* out);

/// \brief Batch k-nearest: for each ref row of the view reports its k
/// nearest exp rows by genometric distance (ties by coordinate order),
/// matching the row-based NearestK. Indices passed to `sink` are local to
/// the views.
void NearestKView(const CoordView& refs, const CoordView& exps, size_t k,
                  const std::function<void(size_t, size_t)>& sink);

}  // namespace gdms::interval

#endif  // GDMS_INTERVAL_BATCH_H_
