#include "interval/batch.h"

#include <algorithm>
#include <utility>

namespace gdms::interval {

namespace {

/// Same structure as WindowSweep(window = 0) in sweep.cc, specialized to one
/// chromosome and dense coordinate arrays: admission (el[j] < ref right),
/// prune (er[a] > ref left), emit in active-list order. The admission
/// re-test equals the Overlaps predicate at window 0, so the emitted pair
/// set and order are exactly the row kernel's.
template <typename T>
void CollectOverlapsImpl(const T* rl, const T* rr, size_t n, const T* el,
                         const T* er, size_t m, std::vector<MatchPair>* out) {
  size_t j = 0;
  std::vector<uint32_t> active;
  for (size_t i = 0; i < n; ++i) {
    const int64_t ref_left = rl[i];
    const int64_t ref_right = rr[i];
    while (j < m && el[j] < ref_right) {
      active.push_back(static_cast<uint32_t>(j));
      ++j;
    }
    size_t keep = 0;
    for (uint32_t a : active) {
      if (er[a] > ref_left) active[keep++] = a;
    }
    active.resize(keep);
    for (uint32_t a : active) {
      if (el[a] < ref_right) {
        out->push_back({static_cast<uint32_t>(i), a});
      }
    }
  }
}

template <typename T>
void ExistsOverlapImpl(const T* rl, const T* rr, size_t n, const T* el,
                       const T* er, size_t m, size_t flag_offset,
                       std::vector<char>* flags) {
  size_t j = 0;
  std::vector<uint32_t> active;
  for (size_t i = 0; i < n; ++i) {
    const int64_t ref_left = rl[i];
    const int64_t ref_right = rr[i];
    while (j < m && el[j] < ref_right) {
      active.push_back(static_cast<uint32_t>(j));
      ++j;
    }
    size_t keep = 0;
    for (uint32_t a : active) {
      if (er[a] > ref_left) active[keep++] = a;
    }
    active.resize(keep);
    for (uint32_t a : active) {
      if (el[a] < ref_right) {
        (*flags)[flag_offset + i] = 1;
        break;
      }
    }
  }
}

int64_t DistCoords(int64_t al, int64_t ar, int64_t bl, int64_t br) {
  // Same-chromosome genometric distance (GenomicRegion::DistanceTo):
  // gap size when disjoint, 0 when adjacent, negated overlap size otherwise.
  return std::max(al, bl) - std::min(ar, br);
}

}  // namespace

CoordView CoordView::Of(const gdm::RegionColumns& cols, size_t begin,
                        size_t end) {
  CoordView v;
  v.size = end - begin;
  if (cols.narrow()) {
    v.l32 = cols.left32().data() + begin;
    v.r32 = cols.right32().data() + begin;
  } else {
    v.l64 = cols.left64().data() + begin;
    v.r64 = cols.right64().data() + begin;
  }
  return v;
}

void CollectOverlaps(const CoordView& refs, const CoordView& exps,
                     std::vector<MatchPair>* out) {
  if (refs.size == 0 || exps.size == 0) return;
  if (refs.narrow() && exps.narrow()) {
    CollectOverlapsImpl<int32_t>(refs.l32, refs.r32, refs.size, exps.l32,
                                 exps.r32, exps.size, out);
    return;
  }
  // Mixed-width pairs are rare (one sample escaped to int64); widen on the
  // fly via the accessor-based fallback.
  size_t j = 0;
  std::vector<uint32_t> active;
  for (size_t i = 0; i < refs.size; ++i) {
    const int64_t ref_left = refs.left(i);
    const int64_t ref_right = refs.right(i);
    while (j < exps.size && exps.left(j) < ref_right) {
      active.push_back(static_cast<uint32_t>(j));
      ++j;
    }
    size_t keep = 0;
    for (uint32_t a : active) {
      if (exps.right(a) > ref_left) active[keep++] = a;
    }
    active.resize(keep);
    for (uint32_t a : active) {
      if (exps.left(a) < ref_right) {
        out->push_back({static_cast<uint32_t>(i), a});
      }
    }
  }
}

void ExistsOverlapInto(const CoordView& refs, const CoordView& exps,
                       size_t flag_offset, std::vector<char>* flags) {
  if (refs.size == 0 || exps.size == 0) return;
  if (refs.narrow() && exps.narrow()) {
    ExistsOverlapImpl<int32_t>(refs.l32, refs.r32, refs.size, exps.l32,
                               exps.r32, exps.size, flag_offset, flags);
  } else {
    std::vector<MatchPair> pairs;
    CollectOverlaps(refs, exps, &pairs);
    for (const MatchPair& p : pairs) (*flags)[flag_offset + p.ref] = 1;
  }
}

void ProfileFromCoords(int32_t chrom, const int64_t* lefts,
                       const int64_t* rights, size_t n,
                       std::vector<AccSegment>* out) {
  // Mirror of AccumulationProfile's per-chromosome event sweep.
  std::vector<std::pair<int64_t, int32_t>> events;
  events.reserve(2 * n);
  for (size_t k = 0; k < n; ++k) {
    if (lefts[k] == rights[k]) continue;  // zero-length
    events.push_back({lefts[k], +1});
    events.push_back({rights[k], -1});
  }
  std::sort(events.begin(), events.end());
  int64_t acc = 0;
  size_t e = 0;
  while (e < events.size()) {
    int64_t pos = events[e].first;
    while (e < events.size() && events[e].first == pos) {
      acc += events[e].second;
      ++e;
    }
    if (e >= events.size()) break;
    int64_t next = events[e].first;
    if (acc > 0 && next > pos) {
      out->push_back({chrom, pos, next, acc});
    }
  }
}

void NearestKView(const CoordView& refs, const CoordView& exps, size_t k,
                  const std::function<void(size_t, size_t)>& sink) {
  if (k == 0 || refs.size == 0 || exps.size == 0) return;
  int64_t max_len = 0;
  for (size_t j = 0; j < exps.size; ++j) {
    max_len = std::max(max_len, exps.right(j) - exps.left(j));
  }
  for (size_t i = 0; i < refs.size; ++i) {
    const int64_t ref_left = refs.left(i);
    const int64_t ref_right = refs.right(i);
    size_t lo = 0, hi = exps.size;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (exps.left(mid) < ref_left) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Same expanding-window candidate search as the row NearestK; see
    // sweep.cc for the invariant argument.
    std::vector<std::pair<int64_t, size_t>> cand;  // (distance, index)
    int64_t radius = 1024;
    while (true) {
      cand.clear();
      int64_t wlo = ref_left - radius - max_len;
      int64_t whi = ref_right + radius;
      for (size_t j = lo; j-- > 0;) {
        if (exps.left(j) < wlo) break;
        cand.push_back(
            {DistCoords(ref_left, ref_right, exps.left(j), exps.right(j)), j});
      }
      for (size_t j = lo; j < exps.size; ++j) {
        if (exps.left(j) > whi) break;
        cand.push_back(
            {DistCoords(ref_left, ref_right, exps.left(j), exps.right(j)), j});
      }
      size_t within = 0;
      for (const auto& c : cand) {
        if (c.first <= radius) ++within;
      }
      bool window_covers_all =
          exps.left(0) >= wlo && exps.left(exps.size - 1) <= whi;
      if (within >= k || window_covers_all) break;
      radius *= 4;
    }
    std::sort(cand.begin(), cand.end());
    size_t take = std::min(k, cand.size());
    for (size_t t = 0; t < take; ++t) sink(i, cand[t].second);
  }
}

}  // namespace gdms::interval
