#ifndef GDMS_INTERVAL_INTERVAL_TREE_H_
#define GDMS_INTERVAL_INTERVAL_TREE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "gdm/region.h"

namespace gdms::interval {

/// \brief Static stabbing index over a set of regions.
///
/// An implicit augmented interval layout (cgranges-style): regions are
/// sorted by (chrom, left) and each entry carries the maximum right end of
/// the subtree rooted at it in the implicit binary layout. Build once,
/// query many times — used for random-access overlap queries (feature
/// search, genome-browser style probes) where a full sweep would be wasteful.
class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// Builds the index over `regions`; the vector must outlive the index.
  /// Regions need not be pre-sorted.
  explicit IntervalIndex(const std::vector<gdm::GenomicRegion>& regions);

  /// Invokes `sink` with the index (into the original vector) of each region
  /// overlapping [left, right) on `chrom`.
  void Query(int32_t chrom, int64_t left, int64_t right,
             const std::function<void(size_t)>& sink) const;

  /// Number of regions overlapping [left, right) on `chrom`.
  size_t CountOverlaps(int32_t chrom, int64_t left, int64_t right) const;

  /// True if any region overlaps [left, right) on `chrom`.
  bool AnyOverlap(int32_t chrom, int64_t left, int64_t right) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int64_t left;
    int64_t right;
    int64_t max_right;  // max right end within the implicit subtree
    size_t original_index;
  };

  struct ChromRange {
    size_t begin = 0;
    size_t end = 0;
    int levels = 0;
  };

  static int BuildAugmentation(std::vector<Entry>* entries, size_t begin,
                               size_t end);
  void QueryRange(const ChromRange& cr, int64_t left, int64_t right,
                  const std::function<void(size_t)>& sink) const;

  std::vector<Entry> entries_;
  std::unordered_map<int32_t, ChromRange> chroms_;
};

}  // namespace gdms::interval

#endif  // GDMS_INTERVAL_INTERVAL_TREE_H_
