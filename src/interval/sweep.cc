#include "interval/sweep.h"

#include <algorithm>
#include <limits>

namespace gdms::interval {

namespace {

using gdm::GenomicRegion;

/// Iterates maximal runs of equal chromosome in a sorted region list.
/// Returns pairs of [begin, end) index ranges keyed by chrom id.
struct ChromSegments {
  explicit ChromSegments(const std::vector<GenomicRegion>& regions) {
    size_t i = 0;
    while (i < regions.size()) {
      size_t j = i;
      while (j < regions.size() && regions[j].chrom == regions[i].chrom) ++j;
      segments.push_back({regions[i].chrom, i, j});
      i = j;
    }
  }

  struct Segment {
    int32_t chrom;
    size_t begin;
    size_t end;
  };
  std::vector<Segment> segments;

  const Segment* Find(int32_t chrom) const {
    for (const auto& s : segments) {
      if (s.chrom == chrom) return &s;
    }
    return nullptr;
  }
};

/// Core windowed sweep shared by OverlapJoin and DistanceJoin: for each ref,
/// considers exps whose left end is < ref.right + window and whose right end
/// is > ref.left - window, then defers to `test`.
void WindowSweep(const std::vector<GenomicRegion>& refs,
                 const std::vector<GenomicRegion>& exps, int64_t window,
                 const std::function<void(size_t, size_t)>& test) {
  ChromSegments ref_segs(refs);
  ChromSegments exp_segs(exps);
  for (const auto& rs : ref_segs.segments) {
    const auto* es = exp_segs.Find(rs.chrom);
    if (es == nullptr) continue;
    size_t j = es->begin;
    std::vector<size_t> active;
    for (size_t i = rs.begin; i < rs.end; ++i) {
      const GenomicRegion& r = refs[i];
      while (j < es->end && exps[j].left < r.right + window) {
        active.push_back(j);
        ++j;
      }
      // Prune exps that ended before the sweep line; ref.left is
      // non-decreasing so they cannot match later refs either.
      size_t keep = 0;
      for (size_t a : active) {
        if (exps[a].right > r.left - window) active[keep++] = a;
      }
      active.resize(keep);
      for (size_t a : active) {
        // Window admission is necessary but not sufficient (later refs may
        // have smaller right ends); re-test admission before the predicate.
        if (exps[a].left < r.right + window &&
            exps[a].right > r.left - window) {
          test(i, a);
        }
      }
    }
  }
}

}  // namespace

void OverlapJoin(const std::vector<GenomicRegion>& refs,
                 const std::vector<GenomicRegion>& exps, const PairSink& sink) {
  WindowSweep(refs, exps, 0, [&](size_t i, size_t a) {
    if (refs[i].Overlaps(exps[a])) sink(i, a);
  });
}

void DistanceJoin(const std::vector<GenomicRegion>& refs,
                  const std::vector<GenomicRegion>& exps, int64_t min_dist,
                  int64_t max_dist, const PairSink& sink) {
  int64_t window = std::max<int64_t>(0, max_dist) + 1;
  WindowSweep(refs, exps, window, [&](size_t i, size_t a) {
    int64_t d = refs[i].DistanceTo(exps[a]);
    if (d >= min_dist && d <= max_dist) sink(i, a);
  });
}

void NearestK(const std::vector<GenomicRegion>& refs,
              const std::vector<GenomicRegion>& exps, size_t k,
              const PairSink& sink) {
  if (k == 0) return;
  ChromSegments ref_segs(refs);
  ChromSegments exp_segs(exps);
  for (const auto& rs : ref_segs.segments) {
    const auto* es = exp_segs.Find(rs.chrom);
    if (es == nullptr) continue;
    // Max exp length on this chromosome bounds how far beyond a position an
    // overlapping region's left end can be.
    int64_t max_len = 0;
    for (size_t j = es->begin; j < es->end; ++j) {
      max_len = std::max(max_len, exps[j].length());
    }
    for (size_t i = rs.begin; i < rs.end; ++i) {
      const GenomicRegion& r = refs[i];
      // Binary search for the first exp with left >= r.left.
      size_t lo = es->begin, hi = es->end;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (exps[mid].left < r.left) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      // Expand a window around the insertion point until it certainly holds
      // the k nearest. Any region with left outside [wlo, whi] is farther
      // than `radius` (using max_len to bound right ends), so once k
      // candidates lie within `radius` — or the window spans the whole
      // chromosome segment — the k nearest are among the candidates.
      std::vector<std::pair<int64_t, size_t>> cand;  // (distance, index)
      int64_t radius = 1024;
      while (true) {
        cand.clear();
        int64_t wlo = r.left - radius - max_len;
        int64_t whi = r.right + radius;
        for (size_t j = lo; j-- > es->begin;) {  // scan left of insertion
          if (exps[j].left < wlo) break;
          cand.push_back({r.DistanceTo(exps[j]), j});
        }
        for (size_t j = lo; j < es->end; ++j) {  // scan right of insertion
          if (exps[j].left > whi) break;
          cand.push_back({r.DistanceTo(exps[j]), j});
        }
        size_t within = 0;
        for (const auto& c : cand) {
          if (c.first <= radius) ++within;
        }
        bool window_covers_all = exps[es->begin].left >= wlo &&
                                 exps[es->end - 1].left <= whi;
        if (within >= k || window_covers_all) break;
        radius *= 4;
      }
      std::sort(cand.begin(), cand.end());
      size_t take = std::min(k, cand.size());
      for (size_t t = 0; t < take; ++t) sink(i, cand[t].second);
    }
  }
}

std::vector<char> ExistsOverlap(const std::vector<GenomicRegion>& refs,
                                const std::vector<GenomicRegion>& exps) {
  std::vector<char> flags(refs.size(), 0);
  OverlapJoin(refs, exps, [&](size_t i, size_t) { flags[i] = 1; });
  return flags;
}

std::vector<GenomicRegion> MergeTouching(
    const std::vector<GenomicRegion>& regions) {
  std::vector<GenomicRegion> out;
  for (const auto& r : regions) {
    if (!out.empty() && out.back().chrom == r.chrom &&
        r.left <= out.back().right) {
      out.back().right = std::max(out.back().right, r.right);
    } else {
      out.emplace_back(r.chrom, r.left, r.right, gdm::Strand::kNone);
    }
  }
  return out;
}

gdm::GenomicRegion IntersectCoords(const GenomicRegion& a,
                                   const GenomicRegion& b) {
  GenomicRegion out(a.chrom, std::max(a.left, b.left),
                    std::min(a.right, b.right));
  out.strand = (a.strand == b.strand) ? a.strand : gdm::Strand::kNone;
  return out;
}

gdm::GenomicRegion SpanCoords(const GenomicRegion& a, const GenomicRegion& b) {
  GenomicRegion out(a.chrom, std::min(a.left, b.left),
                    std::max(a.right, b.right));
  out.strand = (a.strand == b.strand) ? a.strand : gdm::Strand::kNone;
  return out;
}

}  // namespace gdms::interval
