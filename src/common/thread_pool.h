#ifndef GDMS_COMMON_THREAD_POOL_H_
#define GDMS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdms {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// Used by the parallel executors (src/engine) as the stand-in for cluster
/// workers. Tasks are plain std::function<void()>; callers coordinate
/// completion either with WaitIdle() or by running a batch through
/// ParallelFor.
class ThreadPool {
 public:
  /// Creates `threads` workers (>= 1; 0 means hardware_concurrency).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle.
  void WaitIdle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Grain size is chosen automatically; fn must be thread-safe. The calling
  /// thread participates in the work, so the call is safe to nest (a
  /// ParallelFor issued from inside a worker cannot deadlock the pool: the
  /// caller can always drain the whole batch itself).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace gdms

#endif  // GDMS_COMMON_THREAD_POOL_H_
