#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gdms {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kSchemaMismatch:
      return "SchemaMismatch";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {

void AbortWithStatus(const std::string& rendered) {
  std::fprintf(stderr, "ValueOrDie on errored Result: %s\n", rendered.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gdms
