#ifndef GDMS_COMMON_STATUS_H_
#define GDMS_COMMON_STATUS_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace gdms {

/// Error categories used across the library. Follows the RocksDB/Arrow idiom
/// of status-based error handling: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kSchemaMismatch,
  kIoError,
  kInternal,
  kNotImplemented,
  kResourceExhausted,
  kUnavailable,        ///< remote site unreachable / circuit open
  kDeadlineExceeded,   ///< RPC did not complete within its deadline
  kDataCorruption,     ///< payload failed its checksum on arrival
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A Status is either OK or carries a code and a message. It is cheap to
/// copy in the OK case and is intended as the return type of every fallible
/// operation in the library.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status SchemaMismatch(std::string msg) {
    return Status(StatusCode::kSchemaMismatch, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief First-error capture for parallel task groups.
///
/// Tasks report failures with Capture(); the first non-OK status wins and
/// later ones are dropped (std::call_once), unlike a mutex-guarded
/// "last error wins" slot where the surviving status depends on scheduling.
/// failed() is a cheap atomic read usable as an early-out inside tasks.
class FirstError {
 public:
  FirstError() = default;
  FirstError(const FirstError&) = delete;
  FirstError& operator=(const FirstError&) = delete;

  /// Records `status` if it is the first non-OK one; OK statuses are ignored.
  void Capture(Status status) {
    if (status.ok()) return;
    std::call_once(once_, [&] {
      status_ = std::move(status);
      failed_.store(true, std::memory_order_release);
    });
  }

  /// True once any task has captured a failure.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// The first captured failure, or OK. Safe to call concurrently with
  /// Capture: the status is only read behind the release/acquire flag.
  Status status() const { return failed() ? status_ : Status::OK(); }

 private:
  std::once_flag once_;
  std::atomic<bool> failed_{false};
  Status status_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result is a
/// programming error; callers must check ok() first (ValueOrDie aborts
/// otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; requires ok().
  T ValueOrDie() {
    if (!ok()) {
      AbortOnError(status_);
    }
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  static void AbortOnError(const Status& s);

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const std::string& rendered);
}  // namespace internal

template <typename T>
void Result<T>::AbortOnError(const Status& s) {
  internal::AbortWithStatus(s.ToString());
}

/// Propagates a non-OK Status from the current function.
#define GDMS_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::gdms::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define GDMS_ASSIGN_OR_RETURN(lhs, rexpr)    \
  auto GDMS_CONCAT_(_res, __LINE__) = (rexpr);              \
  if (!GDMS_CONCAT_(_res, __LINE__).ok())                   \
    return GDMS_CONCAT_(_res, __LINE__).status();           \
  lhs = std::move(GDMS_CONCAT_(_res, __LINE__)).value()

#define GDMS_CONCAT_IMPL_(a, b) a##b
#define GDMS_CONCAT_(a, b) GDMS_CONCAT_IMPL_(a, b)

}  // namespace gdms

#endif  // GDMS_COMMON_STATUS_H_
