#ifndef GDMS_COMMON_RNG_H_
#define GDMS_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

#include "common/hash.h"

namespace gdms {

/// Deterministic, seedable pseudo-random generator (xoshiro256** core with a
/// SplitMix64 seeder). All synthetic workloads in the library derive from
/// this type so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = Mix64(x);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = UniformDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  /// Bernoulli with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Geometric-ish positive integer with mean approximately `mean`.
  int64_t PositiveGeometric(double mean) {
    if (mean <= 1.0) return 1;
    double v = Exponential(1.0 / (mean - 1.0));
    return 1 + static_cast<int64_t>(v);
  }

  /// Zipf-distributed rank in [0, n) with exponent s (approximate, via
  /// rejection-free inverse CDF on a precomputable harmonic estimate).
  int64_t Zipf(int64_t n, double s) {
    // Inverse-transform on the continuous approximation of the Zipf CDF.
    double u = UniformDouble();
    if (s == 1.0) s = 1.0000001;
    double t = std::pow(static_cast<double>(n), 1.0 - s);
    double x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    int64_t k = static_cast<int64_t>(x) - 1;
    if (k < 0) k = 0;
    if (k >= n) k = n - 1;
    return k;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace gdms

#endif  // GDMS_COMMON_RNG_H_
