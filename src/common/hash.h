#ifndef GDMS_COMMON_HASH_H_
#define GDMS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace gdms {

/// 64-bit FNV-1a hash of a byte string. Stable across platforms and runs;
/// used for content-derived sample ids (provenance) and partitioning.
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t seed = 14695981039346656037ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixes two 64-bit hashes (boost::hash_combine style, 64-bit constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

/// Finalizer from SplitMix64; good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace gdms

#endif  // GDMS_COMMON_HASH_H_
