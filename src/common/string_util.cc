#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace gdms {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer");
  if (s[0] == '-' || s[0] == '+') {
    return Status::ParseError("sign not allowed in unsigned integer");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("unsigned integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: " + buf);
  }
  return v;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string WithThousands(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace gdms
