#ifndef GDMS_COMMON_STRING_UTIL_H_
#define GDMS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdms {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` starts with / ends with `prefix`/`suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses an unsigned 64-bit integer (needed for content-hashed sample ids,
/// which use the full 64-bit space); rejects signs and trailing garbage.
Result<uint64_t> ParseUint64(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Formats a byte count as a human-readable string ("1.2 GB").
std::string HumanBytes(uint64_t bytes);

/// Formats `n` with thousands separators ("83,899,526").
std::string WithThousands(uint64_t n);

}  // namespace gdms

#endif  // GDMS_COMMON_STRING_UTIL_H_
