#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

namespace {

/// Shared state of one ParallelFor batch. Helper tasks hold it by
/// shared_ptr, so a helper that only gets scheduled after the batch has
/// finished (its caller drained the cursor alone) finds an exhausted cursor
/// and exits without touching freed caller stack.
struct ParallelForBatch {
  std::function<void(size_t)> fn;
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> completed{0};
  size_t n = 0;
  size_t grain = 1;
  std::mutex mu;
  std::condition_variable cv;

  /// Claims chunks until the cursor is exhausted; returns items completed.
  size_t Drain() {
    size_t local = 0;
    while (true) {
      size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) fn(i);
      local += end - begin;
    }
    if (local > 0 &&
        completed.fetch_add(local, std::memory_order_acq_rel) + local == n) {
      std::lock_guard<std::mutex> lk(mu);
      cv.notify_all();
    }
    return local;
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads = workers_.size();
  if (n == 1 || threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling over a shared atomic cursor. The caller
  // participates in draining the cursor, which makes the batch
  // nesting-safe: completion never depends on the queued helper tasks
  // actually running, so a ParallelFor issued from inside a worker (or
  // while every worker is blocked in another batch) still finishes — the
  // calling thread can always complete every item by itself.
  auto batch = std::make_shared<ParallelForBatch>();
  batch->fn = fn;
  batch->n = n;
  batch->grain = std::max<size_t>(1, n / (threads * 8));
  size_t helpers =
      std::min(threads, (n + batch->grain - 1) / batch->grain);
  // Queue-wait telemetry (submit -> first helper execution) is profiling
  // data: measured only while the span tracer is on, so the disabled path
  // costs one relaxed load per batch.
  const bool traced = obs::Tracer::Global().enabled();
  auto submitted = std::chrono::steady_clock::now();
  for (size_t t = 0; t < helpers; ++t) {
    if (traced) {
      Submit([batch, submitted] {
        static obs::Histogram* queue_wait =
            obs::MetricsRegistry::Global().GetHistogram(
                "gdms_engine_queue_wait_ns");
        queue_wait->Record(static_cast<uint64_t>(std::max<int64_t>(
            0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - submitted)
                   .count())));
        batch->Drain();
      });
    } else {
      Submit([batch] { batch->Drain(); });
    }
  }
  batch->Drain();
  if (batch->completed.load(std::memory_order_acquire) < n) {
    std::unique_lock<std::mutex> lk(batch->mu);
    batch->cv.wait(lk, [&] {
      return batch->completed.load(std::memory_order_acquire) == n;
    });
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gdms
