#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace gdms {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads = workers_.size();
  if (n == 1 || threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling: a shared atomic cursor, one task per worker.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  size_t grain = std::max<size_t>(1, n / (threads * 8));
  size_t tasks = std::min(threads, (n + grain - 1) / grain);
  auto remaining = std::make_shared<std::atomic<size_t>>(tasks);
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  for (size_t t = 0; t < tasks; ++t) {
    Submit([&, cursor, remaining, grain, n] {
      while (true) {
        size_t begin = cursor->fetch_add(grain);
        if (begin >= n) break;
        size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
      if (remaining->fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lk(done_mu);
        done = true;
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return done; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gdms
