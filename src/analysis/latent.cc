#include "analysis/latent.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gdms::analysis {

namespace {

double Norm(const std::vector<double>& v) {
  double total = 0;
  for (double x : v) total += x * x;
  return std::sqrt(total);
}

void Scale(std::vector<double>* v, double factor) {
  for (double& x : *v) x *= factor;
}

}  // namespace

double LatentModel::Reconstruct(size_t region, size_t experiment) const {
  double total = 0;
  for (size_t k = 0; k < rank; ++k) {
    total += singular_values[k] * region_factors[k][region] *
             experiment_factors[k][experiment];
  }
  return total;
}

Result<LatentModel> TruncatedSvd(const GenomeSpace& space, size_t rank,
                                 uint64_t seed, size_t iterations) {
  size_t rows = space.num_regions();
  size_t cols = space.num_experiments();
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("cannot factorize an empty genome space");
  }
  rank = std::min(rank, std::min(rows, cols));
  if (rank == 0) return Status::InvalidArgument("rank must be positive");

  // Residual copy of the matrix; deflated after each extracted component.
  std::vector<double> residual(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t e = 0; e < cols; ++e) residual[r * cols + e] = space.at(r, e);
  }

  LatentModel model;
  Rng rng(seed);
  for (size_t k = 0; k < rank; ++k) {
    // Power iteration on residual^T * residual via alternating products.
    std::vector<double> v(cols);
    for (double& x : v) x = rng.Normal();
    double nv = Norm(v);
    if (nv == 0) v[0] = 1;
    Scale(&v, 1.0 / std::max(1e-300, nv));
    std::vector<double> u(rows, 0.0);
    double sigma = 0;
    for (size_t it = 0; it < iterations; ++it) {
      // u = A v
      for (size_t r = 0; r < rows; ++r) {
        double dot = 0;
        const double* row = &residual[r * cols];
        for (size_t e = 0; e < cols; ++e) dot += row[e] * v[e];
        u[r] = dot;
      }
      double nu = Norm(u);
      if (nu < 1e-12) {
        sigma = 0;
        break;
      }
      Scale(&u, 1.0 / nu);
      // v = A^T u
      for (size_t e = 0; e < cols; ++e) v[e] = 0;
      for (size_t r = 0; r < rows; ++r) {
        const double* row = &residual[r * cols];
        for (size_t e = 0; e < cols; ++e) v[e] += row[e] * u[r];
      }
      sigma = Norm(v);
      if (sigma < 1e-12) break;
      Scale(&v, 1.0 / sigma);
    }
    if (sigma < 1e-12) break;  // residual is (numerically) zero
    // Deflate: residual -= sigma * u v^T.
    for (size_t r = 0; r < rows; ++r) {
      double* row = &residual[r * cols];
      for (size_t e = 0; e < cols; ++e) row[e] -= sigma * u[r] * v[e];
    }
    model.singular_values.push_back(sigma);
    model.region_factors.push_back(u);
    model.experiment_factors.push_back(v);
  }
  model.rank = model.singular_values.size();
  return model;
}

double ReconstructionError(const GenomeSpace& space, const LatentModel& model) {
  double total = 0;
  for (size_t r = 0; r < space.num_regions(); ++r) {
    for (size_t e = 0; e < space.num_experiments(); ++e) {
      double diff = space.at(r, e) - model.Reconstruct(r, e);
      total += diff * diff;
    }
  }
  return std::sqrt(total);
}

}  // namespace gdms::analysis
