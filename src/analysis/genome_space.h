#ifndef GDMS_ANALYSIS_GENOME_SPACE_H_
#define GDMS_ANALYSIS_GENOME_SPACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::analysis {

/// \brief The genome space of Figure 4: a regions x experiments matrix.
///
/// "Every map operation produces what we call a genome space, i.e., a
/// tabular space of regions vs. experiments, which is the starting point
/// for data analysis." Rows are the (shared) reference regions of the MAP
/// output; columns are the MAP output samples (one per experiment); cells
/// are the numeric value of a chosen aggregate attribute.
class GenomeSpace {
 public:
  GenomeSpace() = default;

  /// Builds from a MAP result: every sample must carry the same reference
  /// regions (coordinates) — exactly what MAP produces. `value_attr` names
  /// the aggregate attribute to read; NULL cells become 0.
  static Result<GenomeSpace> FromMapResult(const gdm::Dataset& map_result,
                                           const std::string& value_attr);

  size_t num_regions() const { return region_labels_.size(); }
  size_t num_experiments() const { return experiment_labels_.size(); }

  double at(size_t region, size_t experiment) const {
    return cells_[region * num_experiments() + experiment];
  }

  /// Row of one region across all experiments.
  std::vector<double> Row(size_t region) const;

  const std::vector<std::string>& region_labels() const {
    return region_labels_;
  }
  const std::vector<std::string>& experiment_labels() const {
    return experiment_labels_;
  }
  const std::vector<gdm::GenomicRegion>& regions() const { return regions_; }

  /// Pretty-prints the top-left corner (Figure 4 rendering).
  std::string RenderCorner(size_t max_rows = 6, size_t max_cols = 6) const;

 private:
  std::vector<std::string> region_labels_;
  std::vector<std::string> experiment_labels_;
  std::vector<gdm::GenomicRegion> regions_;
  std::vector<double> cells_;  // row-major
};

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_GENOME_SPACE_H_
