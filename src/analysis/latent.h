#ifndef GDMS_ANALYSIS_LATENT_H_
#define GDMS_ANALYSIS_LATENT_H_

#include <cstdint>
#include <vector>

#include "analysis/genome_space.h"
#include "common/status.h"

namespace gdms::analysis {

/// Rank-k factorization of a genome space.
struct LatentModel {
  size_t rank = 0;
  /// Singular values, non-increasing.
  std::vector<double> singular_values;
  /// Region factors: rank vectors of length num_regions (left singular
  /// vectors, unit norm).
  std::vector<std::vector<double>> region_factors;
  /// Experiment factors: rank vectors of length num_experiments (right
  /// singular vectors, unit norm).
  std::vector<std::vector<double>> experiment_factors;

  /// Reconstructed cell value sum_k s_k * u_k[r] * v_k[e].
  double Reconstruct(size_t region, size_t experiment) const;
};

/// \brief Truncated SVD of the genome space by power iteration + deflation.
///
/// The paper's Section 4.1 points at "advanced latent semantic analysis and
/// topic modelling" over genome spaces; the truncated SVD is the LSA core:
/// latent components are co-binding programs shared by experiments. Rows
/// are regions, columns experiments; `iterations` power steps per component
/// (50 is plenty at these sizes). Deterministic from `seed`.
Result<LatentModel> TruncatedSvd(const GenomeSpace& space, size_t rank,
                                 uint64_t seed, size_t iterations = 50);

/// Frobenius norm of the reconstruction error of `model` against `space`.
double ReconstructionError(const GenomeSpace& space, const LatentModel& model);

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_LATENT_H_
