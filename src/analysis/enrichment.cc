#include "analysis/enrichment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "interval/sweep.h"

namespace gdms::analysis {

double BinomialUpperTail(int64_t k, int64_t n, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0) return 0.0;
  if (p >= 1) return 1.0;
  // Sum P(X = i) for i in [k, n] in log space, starting from the log PMF at
  // k and using the recurrence P(i+1)/P(i) = (n-i)/(i+1) * p/(1-p).
  double log_p = std::log(p);
  double log_q = std::log1p(-p);
  // log C(n, k) via lgamma.
  double log_pmf = std::lgamma(static_cast<double>(n) + 1) -
                   std::lgamma(static_cast<double>(k) + 1) -
                   std::lgamma(static_cast<double>(n - k) + 1) +
                   static_cast<double>(k) * log_p +
                   static_cast<double>(n - k) * log_q;
  double ratio_log_base = log_p - log_q;
  double total = 0;
  double log_term = log_pmf;
  for (int64_t i = k; i <= n; ++i) {
    total += std::exp(log_term);
    if (log_term < -745.0) break;  // below double underflow; tail negligible
    log_term += std::log(static_cast<double>(n - i)) -
                std::log(static_cast<double>(i + 1)) + ratio_log_base;
    if (i + 1 > n) break;
  }
  return std::min(1.0, total);
}

Result<EnrichmentResult> BinomialEnrichment(
    const std::vector<gdm::GenomicRegion>& query,
    const std::vector<gdm::GenomicRegion>& annotation, int64_t genome_bases) {
  if (genome_bases <= 0) {
    return Status::InvalidArgument("genome_bases must be positive");
  }
  EnrichmentResult out;
  out.query_regions = query.size();
  // Flatten the annotation and compute covered bases.
  std::vector<gdm::GenomicRegion> flat = interval::MergeTouching(annotation);
  int64_t covered = 0;
  for (const auto& r : flat) covered += r.length();
  out.coverage_fraction =
      std::min(1.0, static_cast<double>(covered) /
                        static_cast<double>(genome_bases));
  // Count query regions with at least one overlap.
  auto flags = interval::ExistsOverlap(query, flat);
  for (char f : flags) {
    if (f) ++out.hits;
  }
  out.expected_hits =
      static_cast<double>(out.query_regions) * out.coverage_fraction;
  out.fold_enrichment =
      out.expected_hits > 0
          ? static_cast<double>(out.hits) / out.expected_hits
          : (out.hits > 0 ? std::numeric_limits<double>::infinity() : 0.0);
  out.p_value = BinomialUpperTail(static_cast<int64_t>(out.hits),
                                  static_cast<int64_t>(out.query_regions),
                                  out.coverage_fraction);
  out.log10_p = out.p_value > 0 ? -std::log10(out.p_value) : 320.0;
  return out;
}

}  // namespace gdms::analysis
