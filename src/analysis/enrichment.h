#ifndef GDMS_ANALYSIS_ENRICHMENT_H_
#define GDMS_ANALYSIS_ENRICHMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gdm/region.h"

namespace gdms::analysis {

/// Result of a region-enrichment test.
struct EnrichmentResult {
  size_t query_regions = 0;      ///< n
  size_t hits = 0;               ///< k: query regions hitting the annotation
  double expected_hits = 0;      ///< n * p
  double coverage_fraction = 0;  ///< p: genome fraction the annotation covers
  double fold_enrichment = 0;    ///< k / (n * p)
  double p_value = 1.0;          ///< P(X >= k), X ~ Binomial(n, p)
  double log10_p = 0;            ///< -log10(p_value)
};

/// \brief GREAT-style binomial enrichment of query regions in an annotation.
///
/// Section 4.3 envisions custom queries "augmented with suitable mechanisms
/// for reasoning about data ... imitat[ing] the GREAT service ... which
/// includes powerful statistics to indicate the significance of query
/// results". The test: under the null, each query region hits the
/// annotation independently with probability p = covered bases / genome
/// bases; significance is the binomial upper tail of the observed hit count
/// (McLean et al. 2010, the paper's ref [18]).
///
/// `annotation` need not be disjoint (it is flattened internally); both
/// inputs must be coordinate-sorted. `genome_bases` is the denominator of
/// p — typically GenomeAssembly::TotalLength().
Result<EnrichmentResult> BinomialEnrichment(
    const std::vector<gdm::GenomicRegion>& query,
    const std::vector<gdm::GenomicRegion>& annotation, int64_t genome_bases);

/// Upper-tail binomial probability P(X >= k) for X ~ Binomial(n, p),
/// computed in log space (exact summation; stable for n up to ~10^7).
double BinomialUpperTail(int64_t k, int64_t n, double p);

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_ENRICHMENT_H_
