#include "analysis/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace gdms::analysis {

namespace {

double Sq(double x) { return x * x; }

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += Sq(a[i] - b[i]);
  return d;
}

}  // namespace

ClusteringResult KMeans(const GenomeSpace& space, size_t k, uint64_t seed,
                        size_t max_iters) {
  ClusteringResult result;
  size_t n = space.num_regions();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);

  std::vector<std::vector<double>> rows(n);
  for (size_t r = 0; r < n; ++r) rows[r] = space.Row(r);

  // k-means++ seeding.
  Rng rng(seed);
  result.centroids.push_back(rows[rng.Next() % n]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0;
    for (size_t r = 0; r < n; ++r) {
      min_d2[r] = std::min(min_d2[r], Dist2(rows[r], result.centroids.back()));
      total += min_d2[r];
    }
    if (total <= 0) break;  // all remaining points identical to centroids
    double pick = rng.UniformDouble() * total;
    size_t chosen = n - 1;
    for (size_t r = 0; r < n; ++r) {
      pick -= min_d2[r];
      if (pick <= 0) {
        chosen = r;
        break;
      }
    }
    result.centroids.push_back(rows[chosen]);
  }
  k = result.centroids.size();

  // Lloyd iterations.
  result.assignment.assign(n, 0);
  for (result.iterations = 0; result.iterations < max_iters;
       ++result.iterations) {
    bool changed = false;
    for (size_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      uint32_t arg = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = Dist2(rows[r], result.centroids[c]);
        if (d < best) {
          best = d;
          arg = static_cast<uint32_t>(c);
        }
      }
      if (result.assignment[r] != arg) {
        result.assignment[r] = arg;
        changed = true;
      }
    }
    if (!changed && result.iterations > 0) break;
    // Recompute centroids.
    size_t dims = rows[0].size();
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t r = 0; r < n; ++r) {
      auto& sum = sums[result.assignment[r]];
      for (size_t d = 0; d < dims; ++d) sum[d] += rows[r][d];
      ++counts[result.assignment[r]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  result.inertia = 0;
  for (size_t r = 0; r < n; ++r) {
    result.inertia += Dist2(rows[r], result.centroids[result.assignment[r]]);
  }
  return result;
}

}  // namespace gdms::analysis
