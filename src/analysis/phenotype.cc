#include "analysis/phenotype.h"

#include <algorithm>
#include <cmath>

namespace gdms::analysis {

double PointBiserial(const std::vector<double>& values,
                     const std::vector<char>& group) {
  size_t n = values.size();
  if (n == 0 || group.size() != n) return 0;
  size_t n1 = 0;
  double sum1 = 0;
  double sum0 = 0;
  for (size_t i = 0; i < n; ++i) {
    if (group[i]) {
      ++n1;
      sum1 += values[i];
    } else {
      sum0 += values[i];
    }
  }
  size_t n0 = n - n1;
  if (n0 == 0 || n1 == 0) return 0;
  double mean1 = sum1 / n1;
  double mean0 = sum0 / n0;
  double mean = (sum1 + sum0) / n;
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= n;  // population variance, the standard point-biserial form
  if (var <= 0) return 0;
  double p = static_cast<double>(n1) / n;
  return (mean1 - mean0) / std::sqrt(var) * std::sqrt(p * (1 - p));
}

Result<std::vector<PhenotypeAssociation>> PhenotypeCorrelation(
    const GenomeSpace& space, const gdm::Dataset& map_result,
    const std::string& meta_attr, const std::string& meta_value) {
  if (map_result.num_samples() != space.num_experiments()) {
    return Status::InvalidArgument(
        "map_result does not match the genome space (sample count differs)");
  }
  std::vector<char> group(space.num_experiments(), 0);
  size_t positives = 0;
  for (size_t e = 0; e < map_result.num_samples(); ++e) {
    if (map_result.sample(e).metadata.HasPair(meta_attr, meta_value)) {
      group[e] = 1;
      ++positives;
    }
  }
  if (positives == 0 || positives == group.size()) {
    return Status::InvalidArgument(
        "phenotype " + meta_attr + "==" + meta_value +
        " does not split the samples into two non-empty groups");
  }
  std::vector<PhenotypeAssociation> out;
  out.reserve(space.num_regions());
  for (size_t r = 0; r < space.num_regions(); ++r) {
    PhenotypeAssociation assoc;
    assoc.region = r;
    assoc.label = space.region_labels()[r];
    assoc.correlation = PointBiserial(space.Row(r), group);
    out.push_back(std::move(assoc));
  }
  std::sort(out.begin(), out.end(),
            [](const PhenotypeAssociation& a, const PhenotypeAssociation& b) {
              double fa = std::fabs(a.correlation);
              double fb = std::fabs(b.correlation);
              if (fa != fb) return fa > fb;
              return a.region < b.region;
            });
  return out;
}

}  // namespace gdms::analysis
