#ifndef GDMS_ANALYSIS_NETWORK_H_
#define GDMS_ANALYSIS_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/genome_space.h"

namespace gdms::analysis {

/// One weighted edge of a gene network.
struct NetworkEdge {
  uint32_t a = 0;
  uint32_t b = 0;
  double weight = 0;
};

/// Summary statistics of a network.
struct NetworkStats {
  size_t nodes = 0;
  size_t edges = 0;
  double avg_degree = 0;
  size_t max_degree = 0;
  size_t connected_components = 0;
  size_t largest_component = 0;
};

/// How node similarity is computed from genome-space rows.
enum class SimilarityKind {
  kPearson,  ///< correlation of aggregate values across experiments
  kCosine,
  kJaccard,  ///< on rows binarized at > 0
};

const char* SimilarityKindName(SimilarityKind kind);

/// \brief The genome space -> gene network transformation of Figure 4.
///
/// "Such table can also be interpreted as an adjacency matrix representing a
/// network, where regions are nodes and arcs have a weight obtained by
/// further aggregating properties across experiments." Nodes are genome-
/// space regions (genes); an edge joins two nodes whose row similarity
/// exceeds `threshold`; the weight is the similarity.
class GeneNetwork {
 public:
  GeneNetwork() = default;

  static GeneNetwork FromGenomeSpace(const GenomeSpace& space,
                                     SimilarityKind kind, double threshold);

  size_t num_nodes() const { return num_nodes_; }
  const std::vector<NetworkEdge>& edges() const { return edges_; }
  const std::vector<std::string>& node_labels() const { return labels_; }

  NetworkStats Stats() const;

  /// The `k` heaviest edges, best first.
  std::vector<NetworkEdge> TopEdges(size_t k) const;

  /// Degree of each node.
  std::vector<size_t> Degrees() const;

 private:
  size_t num_nodes_ = 0;
  std::vector<NetworkEdge> edges_;
  std::vector<std::string> labels_;
};

/// Row similarity between two equal-length vectors.
double RowSimilarity(const std::vector<double>& a, const std::vector<double>& b,
                     SimilarityKind kind);

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_NETWORK_H_
