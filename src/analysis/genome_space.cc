#include "analysis/genome_space.h"

#include <cstdio>

namespace gdms::analysis {

Result<GenomeSpace> GenomeSpace::FromMapResult(const gdm::Dataset& map_result,
                                               const std::string& value_attr) {
  auto attr = map_result.schema().IndexOf(value_attr);
  if (!attr.has_value()) {
    return Status::InvalidArgument("MAP result has no attribute " + value_attr);
  }
  GenomeSpace space;
  if (map_result.num_samples() == 0) return space;

  const auto& first = map_result.sample(0);
  space.regions_ = first.regions;
  space.region_labels_.reserve(first.regions.size());
  for (const auto& r : first.regions) {
    space.region_labels_.push_back(r.CoordString());
  }
  space.experiment_labels_.reserve(map_result.num_samples());
  for (const auto& s : map_result.samples()) {
    if (s.regions.size() != first.regions.size()) {
      return Status::InvalidArgument(
          "samples carry different region counts; not a MAP result");
    }
    std::string label = s.metadata.FirstValue("sample_name");
    if (label.empty()) label = s.metadata.FirstValue("antibody");
    if (label.empty()) label = "exp_" + std::to_string(s.id);
    space.experiment_labels_.push_back(label);
  }
  size_t cols = map_result.num_samples();
  space.cells_.assign(first.regions.size() * cols, 0.0);
  for (size_t e = 0; e < cols; ++e) {
    const auto& s = map_result.sample(e);
    for (size_t r = 0; r < s.regions.size(); ++r) {
      if (s.regions[r].left != first.regions[r].left ||
          s.regions[r].chrom != first.regions[r].chrom) {
        return Status::InvalidArgument(
            "sample regions misaligned; not a MAP result");
      }
      const gdm::Value& v = s.regions[r].values[*attr];
      auto num = v.ToNumeric();
      space.cells_[r * cols + e] = num.ok() ? num.value() : 0.0;
    }
  }
  return space;
}

std::vector<double> GenomeSpace::Row(size_t region) const {
  size_t cols = num_experiments();
  std::vector<double> out(cols);
  for (size_t e = 0; e < cols; ++e) out[e] = at(region, e);
  return out;
}

std::string GenomeSpace::RenderCorner(size_t max_rows, size_t max_cols) const {
  std::string out = "region";
  size_t cols = std::min(max_cols, num_experiments());
  size_t rows = std::min(max_rows, num_regions());
  for (size_t e = 0; e < cols; ++e) {
    out += "\t" + experiment_labels_[e];
  }
  if (cols < num_experiments()) out += "\t...";
  out += "\n";
  for (size_t r = 0; r < rows; ++r) {
    out += region_labels_[r];
    for (size_t e = 0; e < cols; ++e) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "\t%.3g", at(r, e));
      out += buf;
    }
    if (cols < num_experiments()) out += "\t...";
    out += "\n";
  }
  if (rows < num_regions()) out += "...\n";
  return out;
}

}  // namespace gdms::analysis
